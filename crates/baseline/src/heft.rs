//! HEFT-style list scheduler adapted to the PDR setting.
//!
//! Classic HEFT (Topcuoglu et al.) ranks tasks by *upward rank* — the
//! longest path to a sink using mean execution times — and assigns each,
//! in rank order, to the processor finishing it earliest. Here the
//! "processors" are the cores plus the reconfigurable fabric (existing
//! regions, with reconfiguration and module-reuse accounting, or a new
//! region while capacity lasts), reusing the option enumeration of
//! [`PartialSchedule`]. It is an extra baseline beyond the paper, cheap
//! and order-robust, useful to sanity-check both PA and IS-k.

use prfpga_dag::Dag;
use prfpga_model::{ProblemInstance, Schedule, TaskId, Time};

use crate::partial::PartialSchedule;

/// The HEFT-style scheduler.
#[derive(Debug, Clone, Default)]
pub struct HeftScheduler {
    /// Exploit module reuse when placing hardware tasks.
    pub module_reuse: bool,
}

impl HeftScheduler {
    /// Creates the scheduler (module reuse on).
    pub fn new() -> Self {
        HeftScheduler { module_reuse: true }
    }

    /// Schedules `inst` by upward-rank order + earliest-finish placement.
    pub fn schedule(&self, inst: &ProblemInstance) -> Result<Schedule, prfpga_sched::SchedError> {
        inst.validate()
            .map_err(|e| prfpga_sched::SchedError::InvalidInstance(e.to_string()))?;
        let dag = Dag::from_taskgraph(&inst.graph)
            .map_err(|_| prfpga_sched::SchedError::CyclicTaskGraph)?;
        let ranks = upward_ranks(inst, &dag);

        // Rank order, repaired to a topological order (highest rank first
        // among ready tasks).
        let mut indeg: Vec<u32> = (0..dag.len() as u32)
            .map(|v| dag.preds(v).len() as u32)
            .collect();
        let mut ready: Vec<TaskId> = inst
            .graph
            .task_ids()
            .filter(|t| indeg[t.index()] == 0)
            .collect();
        let mut ps = PartialSchedule::new(inst);
        while !ready.is_empty() {
            let (pos, _) = ready
                .iter()
                .enumerate()
                .max_by_key(|(_, t)| (ranks[t.index()], std::cmp::Reverse(t.0)))
                .unwrap();
            let t = ready.swap_remove(pos);
            let options = ps.enumerate_options(t, self.module_reuse);
            let best = options
                .into_iter()
                .min_by_key(|o| (o.end, o.start))
                .expect("software fallback always offers an option");
            ps.apply(t, &best);
            for &s in dag.succs(t.0) {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    ready.push(TaskId(s));
                }
            }
        }
        Ok(ps.into_schedule())
    }
}

/// Upward ranks with mean execution time over each task's implementations.
fn upward_ranks(inst: &ProblemInstance, dag: &Dag) -> Vec<Time> {
    let mean: Vec<Time> = inst
        .graph
        .task_ids()
        .map(|t| {
            let impls = &inst.graph.task(t).impls;
            let sum: Time = impls.iter().map(|&i| inst.impls.get(i).time).sum();
            sum / impls.len() as Time
        })
        .collect();
    let mut rank = vec![0 as Time; dag.len()];
    for &v in dag.topo_order().iter().rev() {
        let best_succ = dag
            .succs(v)
            .iter()
            .map(|&s| rank[s as usize])
            .max()
            .unwrap_or(0);
        rank[v as usize] = mean[v as usize] + best_succ;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_gen::{GraphConfig, TaskGraphGenerator};
    use prfpga_model::Architecture;
    use prfpga_sim::validate_schedule;

    #[test]
    fn produces_valid_schedules() {
        let heft = HeftScheduler::new();
        for (n, seed) in [(8usize, 3u64), (20, 5), (40, 7)] {
            let inst = TaskGraphGenerator::new(seed).generate(
                &format!("heft{n}"),
                &GraphConfig::standard(n),
                Architecture::zedboard(),
            );
            let s = heft.schedule(&inst).unwrap();
            validate_schedule(&inst, &s).expect("valid");
        }
    }

    #[test]
    fn ranks_decrease_along_edges() {
        let inst = TaskGraphGenerator::new(11).generate(
            "rank",
            &GraphConfig::standard(15),
            Architecture::zedboard(),
        );
        let dag = Dag::from_taskgraph(&inst.graph).unwrap();
        let ranks = upward_ranks(&inst, &dag);
        for &(a, b) in &inst.graph.edges {
            assert!(ranks[a.index()] > ranks[b.index()]);
        }
    }

    #[test]
    fn determinism() {
        let inst = TaskGraphGenerator::new(13).generate(
            "det",
            &GraphConfig::standard(25),
            Architecture::zedboard(),
        );
        let heft = HeftScheduler::new();
        assert_eq!(heft.schedule(&inst).unwrap(), heft.schedule(&inst).unwrap());
    }
}
