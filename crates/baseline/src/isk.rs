//! IS-k: iterative optimal scheduling of k tasks at a time (paper ref. \[6\]).

use std::time::{Duration, Instant};

use prfpga_dag::{CpmAnalysis, Dag};
use prfpga_floorplan::{FloorplanOutcome, Floorplanner, FloorplannerConfig};
use prfpga_model::{CancelToken, ProblemInstance, Schedule, TaskId, Time};
use prfpga_sched::SchedError;

use crate::partial::{PartialSchedule, TaskOption};

/// Configuration of the IS-k scheduler.
#[derive(Debug, Clone)]
pub struct IsKConfig {
    /// Window size `k` (the paper evaluates IS-1 and IS-5).
    pub k: usize,
    /// Module reuse (ref. \[6\] supports it; §VII-A notes IS-k exploits it).
    pub module_reuse: bool,
    /// Branch-and-bound node budget per window; when exhausted the best
    /// incumbent found so far is committed (0 = unbounded). Stands in for
    /// Gurobi's internal limits and keeps worst-case windows bounded.
    pub node_budget: u64,
    /// Floorplanner settings for the final feasibility check.
    pub floorplan: FloorplannerConfig,
    /// Capacity shrink factor on floorplan failure, as in PA.
    pub shrink_factor: (u64, u64),
    /// Maximum shrink-and-restart attempts.
    pub max_attempts: usize,
}

impl IsKConfig {
    /// IS-1: the cheap greedy end of the spectrum.
    pub fn is1() -> Self {
        IsKConfig {
            k: 1,
            ..Self::is5()
        }
    }

    /// IS-5: the expensive high-quality end evaluated in the paper.
    pub fn is5() -> Self {
        IsKConfig {
            k: 5,
            module_reuse: true,
            node_budget: 300_000,
            floorplan: FloorplannerConfig::default(),
            shrink_factor: (85, 100),
            max_attempts: 8,
        }
    }
}

/// Diagnostics of one IS-k run.
#[derive(Debug, Clone)]
pub struct IsKResult {
    /// The floorplan-feasible schedule.
    pub schedule: Schedule,
    /// Branch-and-bound nodes explored, summed over windows and restarts.
    pub nodes_explored: u64,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Pipeline runs (1 = no capacity shrink was needed).
    pub attempts: usize,
}

/// The IS-k iterative scheduler.
#[derive(Debug, Clone)]
pub struct IsKScheduler {
    config: IsKConfig,
}

impl IsKScheduler {
    /// Creates an IS-k scheduler.
    pub fn new(config: IsKConfig) -> Self {
        IsKScheduler { config }
    }

    /// Convenience constructor for a given `k` with default settings.
    pub fn with_k(k: usize) -> Self {
        IsKScheduler::new(IsKConfig {
            k: k.max(1),
            ..IsKConfig::is5()
        })
    }

    /// Schedules `inst`, returning only the schedule.
    pub fn schedule(&self, inst: &ProblemInstance) -> Result<Schedule, prfpga_sched::SchedError> {
        self.schedule_detailed(inst).map(|r| r.schedule)
    }

    /// Schedules `inst` with diagnostics: iterate windows of `k` tasks in
    /// list order, solve each window exactly, commit; then check the
    /// floorplan and restart with shrunk virtual capacity on failure.
    pub fn schedule_detailed(&self, inst: &ProblemInstance) -> Result<IsKResult, SchedError> {
        self.schedule_with_cancel(inst, &CancelToken::never())
    }

    /// [`schedule_detailed`](Self::schedule_detailed) honouring a
    /// cooperative [`CancelToken`].
    ///
    /// Unlike PA/PA-R, IS-k has no cheap anytime fallback of its own — a
    /// half-committed window prefix is not a schedule — so a fired token
    /// yields a clean [`SchedError::DeadlineExceeded`]. The branch-and-bound
    /// descent polls the token once per node and unwinds every applied move
    /// through the timeline's rollback journal before returning, so the
    /// partial-schedule state is fully rewound on the error path.
    pub fn schedule_with_cancel(
        &self,
        inst: &ProblemInstance,
        cancel: &CancelToken,
    ) -> Result<IsKResult, SchedError> {
        inst.validate()
            .map_err(|e| SchedError::InvalidInstance(e.to_string()))?;
        let t0 = Instant::now();
        let order = list_order(inst)?;
        let planner = Floorplanner::new(self.config.floorplan.clone());
        let mut nodes_total = 0u64;
        let mut virtual_inst = inst.clone();

        for attempt in 1..=self.config.max_attempts.max(1) {
            if cancel.is_cancelled() {
                return Err(SchedError::DeadlineExceeded);
            }
            let (schedule, nodes) = self.run_windows(&virtual_inst, &order, cancel)?;
            nodes_total += nodes;
            let demands: Vec<_> = schedule.regions.iter().map(|r| r.res).collect();
            let outcome = planner.check_device_cancel(&inst.architecture.device, &demands, cancel);
            if let FloorplanOutcome::Feasible(_) = outcome {
                return Ok(IsKResult {
                    schedule,
                    nodes_explored: nodes_total,
                    elapsed: t0.elapsed(),
                    attempts: attempt,
                });
            }
            // A cancellation-induced Timeout is not a capacity verdict:
            // surface the deadline instead of shrinking and retrying.
            if cancel.is_cancelled() {
                return Err(SchedError::DeadlineExceeded);
            }
            let (num, den) = self.config.shrink_factor;
            virtual_inst.architecture.device = virtual_inst
                .architecture
                .device
                .with_scaled_capacity(num, den);
        }

        // All-software fallback.
        let mut zero = inst.clone();
        zero.architecture.device.max_res = prfpga_model::ResourceVec::ZERO;
        let (schedule, nodes) = self.run_windows(&zero, &order, cancel)?;
        nodes_total += nodes;
        Ok(IsKResult {
            schedule,
            nodes_explored: nodes_total,
            elapsed: t0.elapsed(),
            attempts: self.config.max_attempts.max(1) + 1,
        })
    }

    /// Runs the iterative window loop against (a possibly capacity-shrunk
    /// copy of) the instance. `Err(DeadlineExceeded)` when `cancel` fires
    /// mid-window; the in-progress window is rolled back before returning.
    fn run_windows(
        &self,
        inst: &ProblemInstance,
        order: &[TaskId],
        cancel: &CancelToken,
    ) -> Result<(Schedule, u64), SchedError> {
        let mut ps = PartialSchedule::new(inst);
        let mut nodes = 0u64;
        for window in order.chunks(self.config.k.max(1)) {
            let mut search = WindowSearch {
                window,
                module_reuse: self.config.module_reuse,
                budget: if self.config.node_budget == 0 {
                    u64::MAX
                } else {
                    self.config.node_budget
                },
                nodes: 0,
                best_cost: Time::MAX,
                best: None,
                cancel,
                cancelled: false,
            };
            search.dfs(&mut ps, 0, &mut Vec::with_capacity(window.len()));
            nodes += search.nodes;
            if search.cancelled {
                // No partial commit: a half-explored window's incumbent may
                // be arbitrarily bad and later windows would still need
                // search time the deadline no longer affords.
                return Err(SchedError::DeadlineExceeded);
            }
            let plan = search
                .best
                .expect("software options always exist, so every window has a solution");
            for (t, opt) in window.iter().zip(plan.iter()) {
                ps.apply(*t, opt);
            }
        }
        Ok((ps.into_schedule(), nodes))
    }
}

/// List order: topological, tie-broken by earliest CPM start under the
/// fastest implementations, then id — the natural ready-list priority.
fn list_order(inst: &ProblemInstance) -> Result<Vec<TaskId>, prfpga_sched::SchedError> {
    let dag =
        Dag::from_taskgraph(&inst.graph).map_err(|_| prfpga_sched::SchedError::CyclicTaskGraph)?;
    let durations: Vec<Time> = inst
        .graph
        .task_ids()
        .map(|t| {
            inst.graph
                .task(t)
                .impls
                .iter()
                .map(|&i| inst.impls.get(i).time)
                .min()
                .unwrap_or(0)
        })
        .collect();
    let cpm = CpmAnalysis::run(&dag, &durations);
    let mut order: Vec<TaskId> = inst.graph.task_ids().collect();
    // Stable priority sort, then repair to a true topological order.
    order.sort_by_key(|&t| (cpm.windows[t.index()].min, t));
    // Kahn repair: pick, among ready tasks, the one earliest in `order`.
    let mut rank = vec![0usize; order.len()];
    for (i, &t) in order.iter().enumerate() {
        rank[t.index()] = i;
    }
    let mut indeg: Vec<u32> = (0..dag.len() as u32)
        .map(|v| dag.preds(v).len() as u32)
        .collect();
    let mut ready: Vec<TaskId> = inst
        .graph
        .task_ids()
        .filter(|t| indeg[t.index()] == 0)
        .collect();
    let mut out = Vec::with_capacity(order.len());
    while !ready.is_empty() {
        let (pos, _) = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| rank[t.index()])
            .unwrap();
        let t = ready.swap_remove(pos);
        out.push(t);
        for &s in dag.succs(t.0) {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                ready.push(TaskId(s));
            }
        }
    }
    Ok(out)
}

/// Depth-first branch-and-bound over one window.
struct WindowSearch<'a> {
    window: &'a [TaskId],
    module_reuse: bool,
    budget: u64,
    nodes: u64,
    best_cost: Time,
    best: Option<Vec<TaskOption>>,
    cancel: &'a CancelToken,
    cancelled: bool,
}

impl WindowSearch<'_> {
    /// In-place depth-first search: each branch is applied to `ps`,
    /// explored, and reverted through the timeline's rollback journal —
    /// no per-branch clone of the partial schedule. A fired [`CancelToken`]
    /// sets `cancelled` and unwinds; the undo discipline guarantees `ps` is
    /// back to its pre-window state when the root call returns.
    fn dfs(&mut self, ps: &mut PartialSchedule<'_>, depth: usize, chosen: &mut Vec<TaskOption>) {
        if self.cancelled {
            return;
        }
        if depth == self.window.len() {
            if ps.makespan < self.best_cost {
                self.best_cost = ps.makespan;
                self.best = Some(chosen.clone());
            }
            return;
        }
        // One cancellation poll per internal node, mirroring the node
        // budget's granularity.
        if self.cancel.is_cancelled() {
            self.cancelled = true;
            return;
        }
        if self.nodes >= self.budget && self.best.is_some() {
            return;
        }
        let t = self.window[depth];
        let mut options = ps.enumerate_options(t, self.module_reuse);
        debug_assert!(
            !options.is_empty(),
            "software fallback guarantees at least one option"
        );
        // Explore promising branches first: earliest completion.
        options.sort_by_key(|o| (o.end, o.start));
        for opt in options {
            // Bound: a partial makespan already at/above the incumbent
            // cannot improve (times only grow).
            if ps.makespan.max(opt.end) >= self.best_cost {
                continue;
            }
            self.nodes += 1;
            let mv = ps.apply(t, &opt);
            chosen.push(opt);
            self.dfs(ps, depth + 1, chosen);
            chosen.pop();
            ps.undo(mv);
            if self.cancelled {
                return;
            }
            if self.nodes >= self.budget && self.best.is_some() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_gen::{GraphConfig, TaskGraphGenerator};
    use prfpga_model::Architecture;
    use prfpga_sim::validate_schedule;

    fn instance(n: usize, seed: u64) -> ProblemInstance {
        TaskGraphGenerator::new(seed).generate(
            &format!("isk{n}"),
            &GraphConfig::standard(n),
            Architecture::zedboard(),
        )
    }

    #[test]
    fn is1_produces_valid_schedules() {
        let isk = IsKScheduler::new(IsKConfig::is1());
        for n in [5usize, 12, 25] {
            let inst = instance(n, 31);
            let s = isk.schedule(&inst).unwrap();
            validate_schedule(&inst, &s).expect("valid");
            assert!(s.makespan() > 0);
        }
    }

    #[test]
    fn is3_produces_valid_schedules() {
        let isk = IsKScheduler::with_k(3);
        let inst = instance(12, 37);
        let s = isk.schedule(&inst).unwrap();
        validate_schedule(&inst, &s).expect("valid");
    }

    #[test]
    fn larger_k_never_worse_on_first_window() {
        // With n <= k the whole problem is solved exactly in one window,
        // so IS-n is at least as good as IS-1 on the same instance.
        let inst = instance(6, 41);
        let greedy = IsKScheduler::new(IsKConfig::is1())
            .schedule(&inst)
            .unwrap()
            .makespan();
        let exact = IsKScheduler::new(IsKConfig {
            k: 6,
            node_budget: 0,
            ..IsKConfig::is5()
        })
        .schedule(&inst)
        .unwrap()
        .makespan();
        assert!(exact <= greedy);
    }

    #[test]
    fn module_reuse_helps_shared_implementations() {
        // Chain of three tasks sharing one hardware implementation on a
        // device with room for exactly one region: with module reuse there
        // are no reconfigurations at all.
        use prfpga_model::{Device, ImplPool, Implementation, ResourceVec, TaskGraph};
        let mut pool = ImplPool::new();
        let sw = pool.add(Implementation::software("sw", 1000));
        let hw = pool.add(Implementation::hardware(
            "hw",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let mut g = TaskGraph::new();
        let mut prev = None;
        for i in 0..3 {
            let t = g.add_task(format!("t{i}"), vec![sw, hw]);
            if let Some(p) = prev {
                g.add_edge(p, t);
            }
            prev = Some(t);
        }
        let inst = ProblemInstance::new(
            "mr",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(5, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap();
        let with = IsKScheduler::new(IsKConfig {
            module_reuse: true,
            ..IsKConfig::is1()
        })
        .schedule(&inst)
        .unwrap();
        let without = IsKScheduler::new(IsKConfig {
            module_reuse: false,
            ..IsKConfig::is1()
        })
        .schedule(&inst)
        .unwrap();
        validate_schedule(&inst, &with).expect("valid");
        validate_schedule(&inst, &without).expect("valid");
        assert!(with.reconfigurations.is_empty());
        assert_eq!(with.makespan(), 30);
        assert!(without.makespan() > with.makespan());
    }

    #[test]
    fn determinism() {
        let inst = instance(15, 43);
        let isk = IsKScheduler::new(IsKConfig::is1());
        assert_eq!(isk.schedule(&inst).unwrap(), isk.schedule(&inst).unwrap());
    }

    #[test]
    fn node_budget_caps_search() {
        let inst = instance(10, 47);
        let tight = IsKScheduler::new(IsKConfig {
            k: 5,
            node_budget: 50,
            ..IsKConfig::is5()
        });
        let r = tight.schedule_detailed(&inst).unwrap();
        validate_schedule(&inst, &r.schedule).expect("valid");
        // The budget is per window (2 windows of 5) and per attempt.
        assert!(r.nodes_explored <= 50 * 2 * r.attempts as u64 + 1000);
    }

    #[test]
    fn cancellation_yields_clean_deadline_error() {
        let inst = instance(12, 53);
        let isk = IsKScheduler::new(IsKConfig::is5());
        let baseline_token = CancelToken::never();
        let baseline = isk.schedule_with_cancel(&inst, &baseline_token).unwrap();
        let total = baseline_token.polls();
        assert!(total > 0, "the run must cross cancellation checkpoints");
        for n in [1, 2, total / 2 + 1, total] {
            let tok = CancelToken::fire_on_poll(n);
            match isk.schedule_with_cancel(&inst, &tok) {
                Err(SchedError::DeadlineExceeded) => {
                    assert!(tok.deadline_hits() >= 1);
                }
                Ok(res) => assert_eq!(
                    res.schedule, baseline.schedule,
                    "a token firing after the last checkpoint cannot change the result"
                ),
                Err(e) => panic!("cancellation must never surface as {e}"),
            }
        }
        // The never-firing path is unperturbed by the sweep machinery.
        let again = isk.schedule_detailed(&inst).unwrap();
        assert_eq!(again.schedule, baseline.schedule);
    }

    #[test]
    fn rejects_invalid_instances() {
        use prfpga_model::{Device, ImplPool, ResourceVec, TaskGraph};
        let mut g = TaskGraph::new();
        g.add_task("t", vec![]);
        let inst = ProblemInstance {
            name: "bad".into(),
            architecture: Architecture::new(1, Device::tiny_test(ResourceVec::new(1, 1, 1), 1)),
            graph: g,
            impls: ImplPool::new(),
        };
        assert!(IsKScheduler::new(IsKConfig::is1()).schedule(&inst).is_err());
    }
}
