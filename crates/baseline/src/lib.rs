//! # prfpga-baseline
//!
//! Comparison schedulers for the `prfpga` workspace.
//!
//! * [`IsKScheduler`] — a reproduction of the *IS-k* iterative scheduler of
//!   the paper's ref. \[6\] (Deiana et al., ReConFig 2015): tasks are taken
//!   `k` at a time in list order and the joint decision (implementation x
//!   placement x timing, with reconfiguration prefetching and module
//!   reuse) for the window is made *optimally* by branch-and-bound over
//!   the same discrete decision space the original MILP explores. IS-1 is
//!   the fast greedy end of the spectrum, IS-5 the slow high-quality end
//!   (§VII compares PA against both).
//! * [`HeftScheduler`] — an HEFT-style upward-rank list scheduler adapted
//!   to the PDR setting; an extra sanity baseline outside the paper.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! Ref. \[6\] solves each window with a Gurobi MILP in which *some* time
//! variables of earlier windows may still move. Our branch-and-bound
//! keeps earlier commitments fully fixed — a faithful reproduction of the
//! iterative scheme, slightly greedier than the original. Experiments
//! inherit the paper's qualitative shape (IS-k quality grows with k, cost
//! grows super-linearly) without matching Gurobi's absolute runtimes.

#![warn(missing_docs)]

pub mod heft;
pub mod isk;
pub mod partial;

pub use heft::HeftScheduler;
pub use isk::{IsKConfig, IsKScheduler};
