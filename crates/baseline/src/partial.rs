//! Incremental partial-schedule state shared by the baseline schedulers.
//!
//! Tracks, for a growing prefix of scheduled tasks: per-core availability,
//! per-region availability and currently-loaded module, the busy intervals
//! of the reconfiguration controllers (supporting prefetch into gaps),
//! committed fabric resources and the partial makespan. All exclusivity
//! state lives in one [`Timeline`] (core / region / controller lanes), so
//! every reservation is conflict-checked by construction and the whole
//! prefix supports O(1)-amortized rollback: options for the next task are
//! enumerated by [`PartialSchedule::enumerate_options`], applied with
//! [`PartialSchedule::apply`] and reverted with [`PartialSchedule::undo`],
//! which is what lets branch-and-bound search walk the tree in place
//! instead of cloning the state per branch. The same LIFO undo discipline
//! is what makes cooperative cancellation safe: a descent aborted by a
//! fired [`CancelToken`](prfpga_model::CancelToken) unwinds its applied
//! moves on the way out, leaving the state exactly as it was before the
//! window — rewound and reusable.

use prfpga_model::{
    ImplId, Placement, ProblemInstance, Reconfiguration, Region, RegionId, ResourceVec, Schedule,
    TaskAssignment, TaskId, Time, TimeWindow,
};
use prfpga_timeline::{LaneId, LaneKind, Timeline, TimelineMark};

/// One region in the partial schedule. Availability (the tick from which
/// the region is free) lives in the region's timeline lane; see
/// [`PartialSchedule::region_free_from`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionState {
    /// Resource budget, fixed when the region is opened.
    pub res: ResourceVec,
    /// Module currently configured (the implementation of the last task
    /// hosted or prefetched).
    pub loaded: ImplId,
    /// Number of hosted tasks.
    pub task_count: usize,
}

/// One scheduling option for a task: implementation, placement, and the
/// times that placement induces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskOption {
    /// Chosen implementation.
    pub impl_id: ImplId,
    /// `Some(s)` reuses region `s`; `None` with a hardware implementation
    /// opens a new region; irrelevant for software.
    pub region: Option<usize>,
    /// Core for software options.
    pub core: Option<usize>,
    /// Induced reconfiguration `(controller, window)` if one is needed.
    pub reconf: Option<(usize, TimeWindow)>,
    /// Task start tick.
    pub start: Time,
    /// Task end tick.
    pub end: Time,
}

/// Undo token returned by [`PartialSchedule::apply`]: everything needed to
/// revert the move with [`PartialSchedule::undo`]. Tokens must be undone
/// in LIFO order (the timeline journal is a stack).
#[derive(Debug, Clone, Copy)]
pub struct AppliedMove {
    task: TaskId,
    mark: TimelineMark,
    prev_makespan: Time,
    /// The move opened a new region (popped on undo).
    opened_region: bool,
    /// The move pushed a reconfiguration (popped on undo).
    pushed_reconf: bool,
    /// Reused region: `(index, previous loaded module, previous task count)`.
    prev_region: Option<(usize, ImplId, usize)>,
}

/// A partial schedule over a prefix of the task list.
#[derive(Debug, Clone)]
pub struct PartialSchedule<'a> {
    inst: &'a ProblemInstance,
    /// Per-task decision (`None` = not yet scheduled).
    pub decisions: Vec<Option<TaskAssignment>>,
    /// Regions opened so far.
    pub regions: Vec<RegionState>,
    /// Reconfigurations committed so far.
    pub reconfigurations: Vec<Reconfiguration>,
    /// Reservation lanes: one per core, per open region, per controller.
    pub timeline: Timeline,
    /// Fabric resources committed to regions.
    pub used_res: ResourceVec,
    /// Current partial makespan.
    pub makespan: Time,
}

impl<'a> PartialSchedule<'a> {
    /// Empty partial schedule.
    pub fn new(inst: &'a ProblemInstance) -> Self {
        PartialSchedule {
            inst,
            decisions: vec![None; inst.graph.len()],
            regions: Vec::new(),
            reconfigurations: Vec::new(),
            timeline: Timeline::with_lanes(
                inst.architecture.num_processors,
                0,
                inst.architecture.num_reconfig_controllers.max(1),
            ),
            used_res: ResourceVec::ZERO,
            makespan: 0,
        }
    }

    /// Tick from which core `p` is free.
    #[inline]
    pub fn core_free_from(&self, p: usize) -> Time {
        self.timeline.free_from(LaneId::core(p))
    }

    /// Tick from which region `s` is free (end of its last task).
    #[inline]
    pub fn region_free_from(&self, s: usize) -> Time {
        self.timeline.free_from(LaneId::region(s))
    }

    /// Earliest tick at which `t` may start: all predecessors scheduled
    /// and finished. Panics if a predecessor is unscheduled (the callers
    /// process tasks in topological order). Ignores communication costs;
    /// use [`PartialSchedule::ready_time_for`] when they matter.
    pub fn ready_time(&self, t: TaskId) -> Time {
        self.ready_time_for(t, None)
    }

    /// Earliest start of `t` if it were placed at `placement`
    /// (`None` = a fresh region, co-located with nothing): predecessors'
    /// end times plus the edge communication cost for non-co-located
    /// producers (zero-cost edges are unaffected).
    pub fn ready_time_for(&self, t: TaskId, placement: Option<Placement>) -> Time {
        self.inst
            .graph
            .edges_with_costs()
            .filter(|&(_, to, _)| to == t)
            .map(|(from, _, cost)| {
                let d = self.decisions[from.index()]
                    .as_ref()
                    .expect("predecessors scheduled first (topological order)");
                let comm = match placement {
                    Some(p) if cost > 0 && d.placement.colocated(p) => 0,
                    _ => cost,
                };
                d.end + comm
            })
            .max()
            .unwrap_or(0)
    }

    /// First gap of length `dur` across all controllers starting at or
    /// after `earliest`; returns `(controller, start)` for the controller
    /// offering the earliest slot (ties: lowest index).
    pub fn icap_first_fit(&self, earliest: Time, dur: Time) -> (usize, Time) {
        self.timeline.controller_first_fit(earliest, dur)
    }

    /// Enumerates every legal option for task `t` (capacity limited by the
    /// device's `max_res`), given its ready time.
    pub fn enumerate_options(&self, t: TaskId, module_reuse: bool) -> Vec<TaskOption> {
        let device = &self.inst.architecture.device;
        let mut out = Vec::new();

        for &impl_id in &self.inst.graph.task(t).impls {
            let imp = self.inst.impls.get(impl_id);
            if imp.is_software() {
                // Distinct core availabilities only (cores are homogeneous,
                // identical free times are symmetric)... unless
                // communication costs make the *identity* of the core
                // matter; then every core is a distinct option.
                let has_comm = self
                    .inst
                    .graph
                    .edges_with_costs()
                    .any(|(_, to, c)| to == t && c > 0);
                let mut seen = Vec::new();
                for p in 0..self.inst.architecture.num_processors {
                    let free = self.core_free_from(p);
                    if !has_comm && seen.contains(&free) {
                        continue;
                    }
                    seen.push(free);
                    let ready = self.ready_time_for(t, Some(Placement::Core(p)));
                    let start = ready.max(free);
                    out.push(TaskOption {
                        impl_id,
                        region: None,
                        core: Some(p),
                        reconf: None,
                        start,
                        end: start + imp.time,
                    });
                }
                continue;
            }
            let res = imp.resources();
            // Reuse an existing region.
            for (s, region) in self.regions.iter().enumerate() {
                if !res.fits_in(&region.res) {
                    continue;
                }
                let free_from = self.region_free_from(s);
                let ready = self.ready_time_for(t, Some(Placement::Region(RegionId(s as u32))));
                if module_reuse && region.loaded == impl_id {
                    // Same module already configured: no reconfiguration.
                    let start = ready.max(free_from);
                    out.push(TaskOption {
                        impl_id,
                        region: Some(s),
                        core: None,
                        reconf: None,
                        start,
                        end: start + imp.time,
                    });
                } else {
                    // Prefetchable reconfiguration: may start as soon as the
                    // region drains, in the first controller gap.
                    let dur = device.reconf_time(&region.res);
                    let (ctrl, rs) = self.icap_first_fit(free_from, dur);
                    let rw = TimeWindow::from_start(rs, dur);
                    let start = ready.max(rw.max);
                    out.push(TaskOption {
                        impl_id,
                        region: Some(s),
                        core: None,
                        reconf: Some((ctrl, rw)),
                        start,
                        end: start + imp.time,
                    });
                }
            }
            // Open a new region (first configuration rides the initial
            // bitstream: no reconfiguration task; co-located with nothing).
            if (self.used_res + res).fits_in(&device.max_res) {
                let ready = self.ready_time_for(t, None);
                out.push(TaskOption {
                    impl_id,
                    region: None,
                    core: None,
                    reconf: None,
                    start: ready,
                    end: ready + imp.time,
                });
            }
        }
        out
    }

    /// Applies an option for task `t`, returning the token that
    /// [`PartialSchedule::undo`] needs to revert it.
    pub fn apply(&mut self, t: TaskId, opt: &TaskOption) -> AppliedMove {
        let mark = self.timeline.mark();
        let prev_makespan = self.makespan;
        let mut opened_region = false;
        let mut pushed_reconf = false;
        let mut prev_region = None;

        let imp = self.inst.impls.get(opt.impl_id);
        let placement = if imp.is_software() {
            let p = opt.core.expect("software option carries a core");
            self.timeline
                .reserve(LaneId::core(p), TimeWindow::new(opt.start, opt.end))
                .expect("enumerated software option fits its core");
            Placement::Core(p)
        } else {
            let s = match opt.region {
                Some(s) => {
                    let region = &self.regions[s];
                    prev_region = Some((s, region.loaded, region.task_count));
                    s
                }
                None => {
                    let res = imp.resources();
                    self.used_res += res;
                    self.regions.push(RegionState {
                        res,
                        loaded: opt.impl_id,
                        task_count: 0,
                    });
                    let lane = self.timeline.add_lane(LaneKind::Region);
                    debug_assert_eq!(lane.index, self.regions.len() - 1);
                    opened_region = true;
                    self.regions.len() - 1
                }
            };
            let lane = LaneId::region(s);
            if let Some((ctrl, rw)) = opt.reconf {
                self.timeline
                    .reserve(LaneId::controller(ctrl), rw)
                    .expect("first-fit reconfiguration slot is free");
                self.timeline
                    .reserve(lane, rw)
                    .expect("region drained before its reconfiguration");
                self.reconfigurations.push(Reconfiguration {
                    region: RegionId(s as u32),
                    loads_impl: opt.impl_id,
                    outgoing_task: t,
                    start: rw.min,
                    end: rw.max,
                });
                pushed_reconf = true;
            }
            self.timeline
                .reserve(lane, TimeWindow::new(opt.start, opt.end))
                .expect("enumerated hardware option fits its region");
            let region = &mut self.regions[s];
            region.loaded = opt.impl_id;
            region.task_count += 1;
            Placement::Region(RegionId(s as u32))
        };
        self.decisions[t.index()] = Some(TaskAssignment {
            impl_id: opt.impl_id,
            placement,
            start: opt.start,
            end: opt.end,
        });
        self.makespan = self.makespan.max(opt.end);
        AppliedMove {
            task: t,
            mark,
            prev_makespan,
            opened_region,
            pushed_reconf,
            prev_region,
        }
    }

    /// Reverts the most recent not-yet-undone [`PartialSchedule::apply`].
    /// Tokens are a stack: undoing out of LIFO order corrupts the state.
    pub fn undo(&mut self, mv: AppliedMove) {
        self.timeline.rollback(mv.mark);
        if mv.pushed_reconf {
            self.reconfigurations.pop();
        }
        if mv.opened_region {
            let region = self.regions.pop().expect("opened region present");
            self.used_res -= region.res;
        } else if let Some((s, loaded, task_count)) = mv.prev_region {
            let region = &mut self.regions[s];
            region.loaded = loaded;
            region.task_count = task_count;
        }
        self.decisions[mv.task.index()] = None;
        self.makespan = mv.prev_makespan;
    }

    /// Converts a complete partial schedule into the final artifact.
    /// Panics if any task is unscheduled.
    pub fn into_schedule(self) -> Schedule {
        Schedule {
            regions: self
                .regions
                .into_iter()
                .map(|r| Region {
                    res: r.res,
                    fabric: 0,
                })
                .collect(),
            assignments: self
                .decisions
                .into_iter()
                .map(|d| d.expect("all tasks scheduled"))
                .collect(),
            reconfigurations: self.reconfigurations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::{Architecture, Device, ImplPool, Implementation, TaskGraph};

    fn instance() -> ProblemInstance {
        let mut pool = ImplPool::new();
        let mut g = TaskGraph::new();
        let sa = pool.add(Implementation::software("sa", 100));
        let ha = pool.add(Implementation::hardware(
            "ha",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let a = g.add_task("a", vec![sa, ha]);
        let sb = pool.add(Implementation::software("sb", 90));
        let hb = pool.add(Implementation::hardware("hb", 8, ResourceVec::new(4, 0, 0)));
        let b = g.add_task("b", vec![sb, hb]);
        g.add_edge(a, b);
        ProblemInstance::new(
            "p",
            Architecture::new(2, Device::tiny_test(ResourceVec::new(8, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap()
    }

    #[test]
    fn enumerates_sw_hw_and_new_region_options() {
        let inst = instance();
        let ps = PartialSchedule::new(&inst);
        let opts = ps.enumerate_options(TaskId(0), true);
        // 1 SW option (cores symmetric at t=0) + 1 new-region option.
        assert_eq!(opts.len(), 2);
        assert!(opts.iter().any(|o| o.core.is_some() && o.end == 100));
        assert!(opts
            .iter()
            .any(|o| o.core.is_none() && o.region.is_none() && o.end == 10));
    }

    #[test]
    fn region_reuse_with_and_without_module_reuse() {
        let inst = instance();
        let mut ps = PartialSchedule::new(&inst);
        // Schedule task a in hardware (new region, 5 CLB).
        let opt = ps
            .enumerate_options(TaskId(0), true)
            .into_iter()
            .find(|o| o.core.is_none())
            .unwrap();
        ps.apply(TaskId(0), &opt);
        assert_eq!(ps.regions.len(), 1);
        assert_eq!(ps.used_res, ResourceVec::new(5, 0, 0));
        assert_eq!(ps.region_free_from(0), 10);

        // Task b options: SW, reuse region (4 <= 5, different impl =>
        // reconfiguration of 5 ticks), or a new region (4 CLB fits in the
        // remaining 3? no: 5+4=9 > 8 -> no new region).
        let opts = ps.enumerate_options(TaskId(1), true);
        assert!(opts
            .iter()
            .all(|o| !(o.core.is_none() && o.region.is_none())));
        let reuse = opts.iter().find(|o| o.region == Some(0)).unwrap();
        let (ctrl, rw) = reuse
            .reconf
            .expect("different module needs reconfiguration");
        assert_eq!(
            (ctrl, rw),
            (0, TimeWindow::new(10, 15)),
            "prefetch right after region drains"
        );
        assert_eq!(reuse.start, 15);
        assert_eq!(reuse.end, 23);
    }

    #[test]
    fn module_reuse_skips_reconfiguration() {
        // Two independent tasks sharing one implementation.
        let mut pool = ImplPool::new();
        let sw = pool.add(Implementation::software("sw", 100));
        let hw = pool.add(Implementation::hardware(
            "hw",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let mut g = TaskGraph::new();
        g.add_task("a", vec![sw, hw]);
        g.add_task("b", vec![sw, hw]);
        let inst = ProblemInstance::new(
            "mr",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(5, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap();
        let mut ps = PartialSchedule::new(&inst);
        let opt = ps
            .enumerate_options(TaskId(0), true)
            .into_iter()
            .find(|o| o.core.is_none())
            .unwrap();
        ps.apply(TaskId(0), &opt);
        let opts = ps.enumerate_options(TaskId(1), true);
        let reuse = opts.iter().find(|o| o.region == Some(0)).unwrap();
        assert!(reuse.reconf.is_none(), "same module: no reconfiguration");
        assert_eq!(reuse.start, 10);
        // Without module reuse the same placement pays a reconfiguration.
        let opts_nr = ps.enumerate_options(TaskId(1), false);
        let reuse_nr = opts_nr.iter().find(|o| o.region == Some(0)).unwrap();
        assert!(reuse_nr.reconf.is_some());
    }

    #[test]
    fn icap_first_fit_respects_gaps() {
        let inst = instance();
        let mut ps = PartialSchedule::new(&inst);
        let icap = LaneId::controller(0);
        ps.timeline.reserve(icap, TimeWindow::new(10, 20)).unwrap();
        ps.timeline.reserve(icap, TimeWindow::new(25, 30)).unwrap();
        assert_eq!(ps.icap_first_fit(0, 5), (0, 0));
        assert_eq!(ps.icap_first_fit(0, 12), (0, 30));
        assert_eq!(ps.icap_first_fit(12, 5), (0, 20));
        assert_eq!(ps.icap_first_fit(12, 6), (0, 30));
        assert_eq!(ps.icap_first_fit(40, 100), (0, 40));
    }

    #[test]
    fn second_controller_offers_earlier_slots() {
        let inst = instance();
        let mut ps = PartialSchedule::new(&inst);
        ps.timeline.reset(0, 0, 2);
        ps.timeline
            .reserve(LaneId::controller(0), TimeWindow::new(0, 50))
            .unwrap();
        ps.timeline
            .reserve(LaneId::controller(1), TimeWindow::new(0, 10))
            .unwrap();
        assert_eq!(ps.icap_first_fit(0, 5), (1, 10));
        // Controller 0 wins once it is the earlier one.
        ps.timeline.reset(0, 0, 2);
        ps.timeline
            .reserve(LaneId::controller(1), TimeWindow::new(0, 10))
            .unwrap();
        assert_eq!(ps.icap_first_fit(0, 5), (0, 0));
    }

    #[test]
    fn undo_reverts_apply_exactly() {
        let inst = instance();
        let mut ps = PartialSchedule::new(&inst);
        let hw = ps
            .enumerate_options(TaskId(0), true)
            .into_iter()
            .find(|o| o.core.is_none())
            .unwrap();
        let before_opts = ps.enumerate_options(TaskId(0), true);

        // Apply the hardware option (opens a region), then a dependent
        // task with a reconfiguration, then undo both in LIFO order.
        let mv_a = ps.apply(TaskId(0), &hw);
        let reuse = ps
            .enumerate_options(TaskId(1), true)
            .into_iter()
            .find(|o| o.region == Some(0))
            .unwrap();
        let mv_b = ps.apply(TaskId(1), &reuse);
        assert_eq!(ps.reconfigurations.len(), 1);
        assert_eq!(ps.makespan, reuse.end);

        ps.undo(mv_b);
        assert_eq!(ps.reconfigurations.len(), 0);
        assert_eq!(ps.regions.len(), 1);
        assert_eq!(ps.regions[0].loaded, hw.impl_id);
        assert_eq!(ps.regions[0].task_count, 1);
        assert_eq!(ps.region_free_from(0), hw.end);
        assert_eq!(ps.makespan, hw.end);
        assert!(ps.decisions[1].is_none());

        ps.undo(mv_a);
        assert_eq!(ps.regions.len(), 0);
        assert_eq!(ps.used_res, ResourceVec::ZERO);
        assert_eq!(ps.makespan, 0);
        assert!(ps.decisions[0].is_none());
        // The reverted state enumerates exactly the original options.
        assert_eq!(ps.enumerate_options(TaskId(0), true), before_opts);
    }

    #[test]
    fn cancelled_descent_unwinds_to_pristine_state() {
        // Mimics a branch-and-bound descent aborted by a fired CancelToken:
        // the whole stack of applied moves is unwound in LIFO order, after
        // which the partial schedule must behave exactly like a fresh one.
        let inst = instance();
        let greedy = |ps: &mut PartialSchedule<'_>| -> Schedule {
            for t in inst.graph.task_ids() {
                let best = ps
                    .enumerate_options(t, true)
                    .into_iter()
                    .min_by_key(|o| (o.end, o.start))
                    .unwrap();
                ps.apply(t, &best);
            }
            ps.clone().into_schedule()
        };

        let mut fresh = PartialSchedule::new(&inst);
        let expected = greedy(&mut fresh);

        let mut ps = PartialSchedule::new(&inst);
        let mut stack = Vec::new();
        for t in inst.graph.task_ids() {
            let opt = ps
                .enumerate_options(t, true)
                .into_iter()
                .max_by_key(|o| (o.end, o.start))
                .unwrap();
            stack.push(ps.apply(t, &opt));
        }
        while let Some(mv) = stack.pop() {
            ps.undo(mv);
        }
        assert_eq!(ps.makespan, 0);
        assert_eq!(ps.used_res, ResourceVec::ZERO);
        assert_eq!(
            greedy(&mut ps),
            expected,
            "rewound state replays byte-identically"
        );
    }

    #[test]
    fn into_schedule_roundtrip() {
        let inst = instance();
        let mut ps = PartialSchedule::new(&inst);
        for t in inst.graph.task_ids() {
            let opts = ps.enumerate_options(t, true);
            let best = opts.iter().min_by_key(|o| o.end).copied().unwrap();
            ps.apply(t, &best);
        }
        let sched = ps.into_schedule();
        assert_eq!(sched.assignments.len(), 2);
        prfpga_sim::validate_schedule(&inst, &sched).expect("valid");
    }
}
