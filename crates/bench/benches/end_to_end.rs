//! Criterion end-to-end comparison: PA vs IS-1 vs HEFT on a 30-task
//! instance (the runtime-vs-quality trade-off behind Table I).

use criterion::{criterion_group, criterion_main, Criterion};
use prfpga_baseline::{HeftScheduler, IsKConfig, IsKScheduler};
use prfpga_gen::{GraphConfig, TaskGraphGenerator};
use prfpga_model::Architecture;
use prfpga_sched::{PaScheduler, SchedulerConfig};

fn end_to_end(c: &mut Criterion) {
    let inst = TaskGraphGenerator::new(0xE2E).generate(
        "e2e30",
        &GraphConfig::standard(30),
        Architecture::zedboard(),
    );
    let pa = PaScheduler::new(SchedulerConfig::default());
    c.bench_function("pa_30_tasks", |b| {
        b.iter(|| pa.schedule(std::hint::black_box(&inst)).unwrap())
    });
    let is1 = IsKScheduler::new(IsKConfig::is1());
    c.bench_function("is1_30_tasks", |b| {
        b.iter(|| is1.schedule(std::hint::black_box(&inst)).unwrap())
    });
    let heft = HeftScheduler::new();
    c.bench_function("heft_30_tasks", |b| {
        b.iter(|| heft.schedule(std::hint::black_box(&inst)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = end_to_end
}
criterion_main!(benches);
