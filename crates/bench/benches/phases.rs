//! Criterion microbenchmarks of the PA pipeline's building blocks:
//! CPM window computation, implementation selection, and the
//! floorplanner feasibility query.

use criterion::{criterion_group, criterion_main, Criterion};
use prfpga_dag::{CpmAnalysis, Dag};
use prfpga_floorplan::{Floorplanner, FloorplannerConfig};
use prfpga_gen::{GraphConfig, TaskGraphGenerator};
use prfpga_model::{Architecture, ResourceVec, Time};
use prfpga_sched::metrics::MetricWeights;
use prfpga_sched::phases::impl_select::{max_t, select_implementations};
use prfpga_sched::CostPolicy;

fn phases(c: &mut Criterion) {
    let inst = TaskGraphGenerator::new(0xFACE).generate(
        "phases50",
        &GraphConfig::standard(50),
        Architecture::zedboard(),
    );
    let dag = Dag::from_taskgraph(&inst.graph).unwrap();
    let durations: Vec<Time> = inst
        .graph
        .task_ids()
        .map(|t| inst.impls.get(inst.fastest_sw_impl(t)).time)
        .collect();
    c.bench_function("cpm_50_tasks", |b| {
        b.iter(|| CpmAnalysis::run(std::hint::black_box(&dag), std::hint::black_box(&durations)))
    });

    let weights = MetricWeights::new(&inst.architecture.device.max_res, max_t(&inst));
    c.bench_function("impl_select_50_tasks", |b| {
        b.iter(|| {
            select_implementations(
                std::hint::black_box(&inst),
                std::hint::black_box(&weights),
                CostPolicy::Full,
            )
        })
    });

    let device = Architecture::zedboard().device;
    let demands = vec![
        ResourceVec::new(600, 10, 20),
        ResourceVec::new(400, 4, 10),
        ResourceVec::new(900, 16, 0),
        ResourceVec::new(200, 0, 40),
        ResourceVec::new(350, 8, 8),
    ];
    let planner = Floorplanner::new(FloorplannerConfig::default());
    c.bench_function("floorplan_5_regions_xc7z020", |b| {
        b.iter(|| {
            planner.check_device(
                std::hint::black_box(&device),
                std::hint::black_box(&demands),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = phases
}
criterion_main!(benches);
