//! Criterion microbenchmark behind Table I's PA column: PA runtime as a
//! function of the task-graph size (the paper reports near-linear growth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prfpga_gen::{GraphConfig, TaskGraphGenerator};
use prfpga_model::Architecture;
use prfpga_sched::{PaScheduler, SchedulerConfig};

fn pa_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pa_runtime_vs_tasks");
    for n in [10usize, 20, 40, 60, 80, 100] {
        let inst = TaskGraphGenerator::new(0xBEEF).generate(
            &format!("bench{n}"),
            &GraphConfig::standard(n),
            Architecture::zedboard(),
        );
        let pa = PaScheduler::new(SchedulerConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| pa.schedule(std::hint::black_box(inst)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = pa_scaling
}
criterion_main!(benches);
