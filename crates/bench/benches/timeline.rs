//! Microbenchmarks of the timeline kernel and its consumers.
//!
//! Two angles:
//!
//! * raw kernel throughput — reserve/rollback bursts and `earliest_fit`
//!   gap queries against a lane with a thousand committed windows;
//! * the sweep-line validator against the pairwise oracle on a real PA
//!   schedule, pinning the "no regression" claim for the refactor: the
//!   sweep path must not lose to the oracle it replaces on the hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prfpga_gen::{GraphConfig, TaskGraphGenerator};
use prfpga_model::{Architecture, TimeWindow};
use prfpga_sched::{PaScheduler, SchedulerConfig};
use prfpga_sim::{validate_schedule, validate_schedule_sweep};
use prfpga_timeline::{LaneId, Timeline};

fn kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeline_kernel");

    group.bench_function(BenchmarkId::from_parameter("reserve_rollback_1k"), |b| {
        let mut tl = Timeline::with_lanes(4, 0, 1);
        b.iter(|| {
            let mark = tl.mark();
            for i in 0..1_000u64 {
                let lane = LaneId::core((i % 4) as usize);
                tl.reserve(lane, TimeWindow::from_start(i * 7, 5))
                    .expect("windows are disjoint per lane");
            }
            tl.rollback(mark);
        })
    });

    group.bench_function(BenchmarkId::from_parameter("earliest_fit_1k"), |b| {
        let mut tl = Timeline::with_lanes(1, 0, 0);
        for i in 0..1_000u64 {
            tl.reserve(LaneId::core(0), TimeWindow::from_start(i * 10, 6))
                .expect("disjoint");
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000u64 {
                // Gaps are 4 ticks wide, so a 3-tick probe lands after a
                // short slide from the binary-searched entry point.
                acc += tl.earliest_fit(LaneId::core(0), std::hint::black_box(i * 9), 3);
            }
            acc
        })
    });

    group.finish();
}

fn validators(c: &mut Criterion) {
    let inst = TaskGraphGenerator::new(0x71AE).generate(
        "val120",
        &GraphConfig::standard(120),
        Architecture::zedboard_pr(),
    );
    let schedule = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst)
        .expect("feasible schedule");

    let mut group = c.benchmark_group("validator_120_tasks");
    group.bench_function(BenchmarkId::from_parameter("pairwise_oracle"), |b| {
        b.iter(|| validate_schedule(std::hint::black_box(&inst), &schedule).expect("valid"))
    });
    group.bench_function(BenchmarkId::from_parameter("sweep"), |b| {
        b.iter(|| validate_schedule_sweep(std::hint::black_box(&inst), &schedule).expect("valid"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = kernel, validators
}
criterion_main!(benches);
