//! Head-to-head benchmark of the allocation-free scheduling workspace:
//! the same PA-R iteration budget on the same 60-task instance, with the
//! workspace-reuse fast path (buffer recycling, incremental CPM rollback,
//! floorplan-feasibility cache) on versus off.
//!
//! Both paths produce byte-identical schedules (see
//! `tests/differential.rs`); the only difference is iteration throughput.
//! The reuse path is expected to complete the fixed budget at least 1.5x
//! faster than the fresh-allocation path.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prfpga_gen::{GraphConfig, TaskGraphGenerator};
use prfpga_model::Architecture;
use prfpga_sched::{PaRScheduler, SchedulerConfig};

/// A fixed iteration count instead of a wall-clock budget, so a sample's
/// time directly inverts into iterations-per-second.
const ITERS: usize = 200;

fn workspace_reuse(c: &mut Criterion) {
    let inst = TaskGraphGenerator::new(0xB0B0).generate(
        "ws60",
        &GraphConfig::standard(60),
        Architecture::zedboard_pr(),
    );
    let config = |reuse: bool| SchedulerConfig {
        max_iterations: ITERS,
        time_budget: Duration::from_secs(600),
        workspace_reuse: reuse,
        ..Default::default()
    };

    let mut group = c.benchmark_group("par_60_tasks_fixed_iters");
    for (label, reuse) in [("fresh", false), ("reuse", true)] {
        let par = PaRScheduler::new(config(reuse));
        group.bench_with_input(BenchmarkId::from_parameter(label), &par, |b, par| {
            b.iter(|| {
                let r = par.schedule_detailed(std::hint::black_box(&inst)).unwrap();
                assert_eq!(r.iterations, ITERS);
                r
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = workspace_reuse
}
criterion_main!(benches);
