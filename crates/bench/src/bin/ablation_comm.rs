//! Ablation: the communication-cost extension (§VIII future work #2).
//!
//! The base model folds data movement into execution times; this study
//! turns explicit per-edge costs on (charged when producer and consumer
//! are not co-located) and measures how each scheduler degrades.

use prfpga_baseline::IsKConfig;
use prfpga_bench::report::{markdown_table, mean};
use prfpga_bench::runners::{run_isk, run_pa};
use prfpga_bench::Scale;
use prfpga_gen::{GraphConfig, TaskGraphGenerator};
use prfpga_sched::SchedulerConfig;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running communication-cost ablation at {scale:?} scale");
    let cfg = scale.config();
    let ranges = [
        ("none (paper)", (0u64, 0u64)),
        ("light", (50, 500)),
        ("heavy", (500, 2000)),
    ];
    let mut rows = Vec::new();
    for &tasks in &cfg.suite.groups {
        let mut row = vec![tasks.to_string()];
        for &(_, range) in &ranges {
            let mut pa_mks = Vec::new();
            let mut is1_mks = Vec::new();
            for i in 0..cfg.suite.graphs_per_group {
                let gcfg = GraphConfig {
                    comm_cost_range: range,
                    ..GraphConfig::standard(tasks)
                };
                let inst = TaskGraphGenerator::new(cfg.suite.seed ^ (i as u64) << 8 ^ tasks as u64)
                    .generate(
                        &format!("comm{tasks}_{i}"),
                        &gcfg,
                        prfpga_model::Architecture::zedboard_pr(),
                    );
                pa_mks.push(run_pa(&inst, &SchedulerConfig::default()).makespan as f64);
                is1_mks.push(run_isk(&inst, &IsKConfig::is1()).makespan as f64);
            }
            row.push(format!("{:.0} / {:.0}", mean(&pa_mks), mean(&is1_mks)));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("# Tasks")
        .chain(ranges.iter().map(|(n, _)| *n))
        .collect();
    println!(
        "### Ablation — communication costs (mean makespan PA / IS-1, ticks)\n\n{}",
        markdown_table(&headers, &rows)
    );
}
