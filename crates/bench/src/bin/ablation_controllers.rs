//! Ablation: multiple reconfiguration controllers (the generalization of
//! the paper's ref. \[8\]; the paper itself fixes one controller).

use prfpga_baseline::IsKConfig;
use prfpga_bench::report::{markdown_table, mean};
use prfpga_bench::runners::{run_isk, run_pa};
use prfpga_bench::Scale;
use prfpga_sched::SchedulerConfig;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running controller-count ablation at {scale:?} scale");
    let cfg = scale.config();
    let suite = cfg
        .suite
        .generate(&prfpga_model::Architecture::zedboard_pr());
    let mut rows = Vec::new();
    for group in &suite {
        let tasks = group[0].graph.len();
        let mut row = vec![tasks.to_string()];
        for k in [1usize, 2, 4] {
            let mut pa_mks = Vec::new();
            let mut is1_mks = Vec::new();
            for inst in group {
                let mut inst = inst.clone();
                inst.architecture.num_reconfig_controllers = k;
                pa_mks.push(run_pa(&inst, &SchedulerConfig::default()).makespan as f64);
                is1_mks.push(run_isk(&inst, &IsKConfig::is1()).makespan as f64);
            }
            row.push(format!("{:.0} / {:.0}", mean(&pa_mks), mean(&is1_mks)));
        }
        rows.push(row);
    }
    println!(
        "### Ablation — reconfiguration controllers (mean makespan PA / IS-1, ticks)\n\n{}",
        markdown_table(
            &[
                "# Tasks",
                "1 controller (paper)",
                "2 controllers",
                "4 controllers"
            ],
            &rows
        )
    );
}
