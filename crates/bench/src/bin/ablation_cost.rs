//! Ablation: the two terms of the implementation cost metric (eq. 3).
//!
//! `TimeOnly` reproduces the failure mode of the paper's Figure 1 — always
//! picking the fastest (largest) implementation; `ResourceOnly` ignores
//! execution time. The full metric should dominate on average.

use prfpga_bench::report::{markdown_table, mean};
use prfpga_bench::runners::run_pa;
use prfpga_bench::Scale;
use prfpga_sched::{CostPolicy, SchedulerConfig};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running cost-metric ablation at {scale:?} scale");
    let cfg = scale.config();
    let suite = cfg
        .suite
        .generate(&prfpga_model::Architecture::zedboard_pr());
    let policies = [
        ("full (paper)", CostPolicy::Full),
        ("resource only", CostPolicy::ResourceOnly),
        ("time only", CostPolicy::TimeOnly),
    ];
    let mut rows = Vec::new();
    for group in &suite {
        let tasks = group[0].graph.len();
        let mut row = vec![tasks.to_string()];
        for (_, policy) in &policies {
            let sched_cfg = SchedulerConfig {
                cost_policy: *policy,
                ..Default::default()
            };
            let mks: Vec<f64> = group
                .iter()
                .map(|inst| run_pa(inst, &sched_cfg).makespan as f64)
                .collect();
            row.push(format!("{:.0}", mean(&mks)));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("# Tasks")
        .chain(policies.iter().map(|(n, _)| *n))
        .collect();
    println!(
        "### Ablation — cost metric terms (mean makespan, ticks)\n\n{}",
        markdown_table(&headers, &rows)
    );
}
