//! Ablation: how much does the efficiency-index ordering of §V-C matter?
//!
//! Compares PA with its paper ordering against inverse-efficiency,
//! plain-task-id and single-draw random orderings of the non-critical
//! hardware tasks. The paper's claim (§IV): efficiency-first ordering
//! spreads load over more, smaller regions and shortens schedules.

use prfpga_bench::report::{markdown_table, mean};
use prfpga_bench::runners::run_pa;
use prfpga_bench::Scale;
use prfpga_sched::{OrderingPolicy, SchedulerConfig};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running ordering ablation at {scale:?} scale");
    let cfg = scale.config();
    let suite = cfg
        .suite
        .generate(&prfpga_model::Architecture::zedboard_pr());
    let policies = [
        ("efficiency (paper)", OrderingPolicy::EfficiencyIndex),
        ("inverse efficiency", OrderingPolicy::InverseEfficiency),
        ("task id", OrderingPolicy::TaskId),
        ("random (1 draw)", OrderingPolicy::RandomizedNonCritical(7)),
    ];
    let mut rows = Vec::new();
    for group in &suite {
        let tasks = group[0].graph.len();
        let mut row = vec![tasks.to_string()];
        for (_, policy) in &policies {
            let sched_cfg = SchedulerConfig {
                ordering: *policy,
                ..Default::default()
            };
            let mks: Vec<f64> = group
                .iter()
                .map(|inst| run_pa(inst, &sched_cfg).makespan as f64)
                .collect();
            row.push(format!("{:.0}", mean(&mks)));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("# Tasks")
        .chain(policies.iter().map(|(n, _)| *n))
        .collect();
    println!(
        "### Ablation — non-critical ordering policy (mean makespan, ticks)\n\n{}",
        markdown_table(&headers, &rows)
    );
}
