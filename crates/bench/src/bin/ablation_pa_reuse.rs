//! Ablation: the paper's future-work extension — module reuse in PA.
//!
//! §VIII: "Future work will investigate the possibility to leverage module
//! reuse in order to further improve the solutions by removing the
//! reconfiguration overhead for tasks sharing the same hardware
//! implementations." This binary measures exactly that.

use prfpga_bench::report::{markdown_table, mean};
use prfpga_bench::runners::run_pa;
use prfpga_bench::Scale;
use prfpga_sched::SchedulerConfig;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running PA module-reuse ablation at {scale:?} scale");
    let cfg = scale.config();
    let suite = cfg
        .suite
        .generate(&prfpga_model::Architecture::zedboard_pr());
    let mut rows = Vec::new();
    for group in &suite {
        let tasks = group[0].graph.len();
        let mut row = vec![tasks.to_string()];
        for reuse in [false, true] {
            let sched_cfg = SchedulerConfig {
                module_reuse: reuse,
                ..Default::default()
            };
            let mks: Vec<f64> = group
                .iter()
                .map(|inst| run_pa(inst, &sched_cfg).makespan as f64)
                .collect();
            row.push(format!("{:.0}", mean(&mks)));
        }
        rows.push(row);
    }
    println!(
        "### Ablation — PA module reuse, the paper's future-work extension (mean makespan, ticks)\n\n{}",
        markdown_table(&["# Tasks", "reuse off (paper PA)", "reuse on (extension)"], &rows)
    );
}
