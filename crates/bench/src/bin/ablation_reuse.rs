//! Ablation: module reuse in the IS-k baseline (the paper's future-work
//! item for PA; IS-k already exploits it, §VII-A).

use prfpga_baseline::IsKConfig;
use prfpga_bench::report::{markdown_table, mean};
use prfpga_bench::runners::run_isk;
use prfpga_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running module-reuse ablation at {scale:?} scale");
    let cfg = scale.config();
    let suite = cfg
        .suite
        .generate(&prfpga_model::Architecture::zedboard_pr());
    let mut rows = Vec::new();
    for group in &suite {
        let tasks = group[0].graph.len();
        let mut row = vec![tasks.to_string()];
        for reuse in [true, false] {
            let isk_cfg = IsKConfig {
                module_reuse: reuse,
                ..IsKConfig::is1()
            };
            let mks: Vec<f64> = group
                .iter()
                .map(|inst| run_isk(inst, &isk_cfg).makespan as f64)
                .collect();
            row.push(format!("{:.0}", mean(&mks)));
        }
        rows.push(row);
    }
    println!(
        "### Ablation — IS-1 module reuse (mean makespan, ticks)\n\n{}",
        markdown_table(&["# Tasks", "reuse on", "reuse off"], &rows)
    );
}
