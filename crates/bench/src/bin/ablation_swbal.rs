//! Ablation: software task balancing (§V-D) on vs off.

use prfpga_bench::report::{markdown_table, mean};
use prfpga_bench::runners::run_pa;
use prfpga_bench::Scale;
use prfpga_sched::SchedulerConfig;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running software-balancing ablation at {scale:?} scale");
    let cfg = scale.config();
    let suite = cfg
        .suite
        .generate(&prfpga_model::Architecture::zedboard_pr());
    let mut rows = Vec::new();
    for group in &suite {
        let tasks = group[0].graph.len();
        let mut row = vec![tasks.to_string()];
        for balancing in [true, false] {
            let sched_cfg = SchedulerConfig {
                sw_balancing: balancing,
                ..Default::default()
            };
            let mks: Vec<f64> = group
                .iter()
                .map(|inst| run_pa(inst, &sched_cfg).makespan as f64)
                .collect();
            row.push(format!("{:.0}", mean(&mks)));
        }
        rows.push(row);
    }
    println!(
        "### Ablation — software task balancing (mean makespan, ticks)\n\n{}",
        markdown_table(&["# Tasks", "balancing on (paper)", "balancing off"], &rows)
    );
}
