//! Runs the full evaluation and prints one Markdown report covering
//! Table I and Figures 2-6. The per-figure binaries exist for targeted
//! runs; this one shares a single suite execution across all sections.
//!
//! Instances fan out over the parallel suite executor (`--threads N`,
//! `--serial`, or `PRFPGA_THREADS`); every table is byte-identical across
//! thread counts except for measured wall-clocks. The Fig. 6 convergence
//! traces always run serially — they measure anytime-search behaviour
//! under a wall-clock budget, which concurrent workers would distort.

use prfpga_bench::experiments::{
    fig2_section, fig6_section, fig6_traces, improvement_section, improvement_summaries,
    run_suite_exec, table1_section, Algo,
};
use prfpga_bench::{phase_trace_section, ExecPolicy, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exec = ExecPolicy::from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let scale = Scale::from_env();
    let cfg = scale.config();
    eprintln!(
        "running ALL experiments at {scale:?} scale on {} thread(s) \
         (PRFPGA_SCALE=full for the paper suite; --serial for measurement-grade timings)",
        exec.threads()
    );

    let results = run_suite_exec(
        &cfg,
        &[Algo::Pa, Algo::ParTimed, Algo::Is1, Algo::Is5, Algo::Heft],
        exec,
    );

    println!("# prfpga experiment report ({scale:?} scale)\n");
    println!("{}\n", table1_section(&results));
    println!("{}\n", phase_trace_section(&results));
    println!("{}\n", fig2_section(&results));
    println!(
        "{}\n",
        improvement_section(
            "Figure 3 — average improvement of PA over IS-1 [%]",
            &improvement_summaries(&results, Algo::Pa, Algo::Is1)
        )
    );
    println!(
        "{}\n",
        improvement_section(
            "Figure 4 — average improvement of PA over IS-5 [%]",
            &improvement_summaries(&results, Algo::Pa, Algo::Is5)
        )
    );
    println!(
        "{}\n",
        improvement_section(
            "Figure 5 — average improvement of PA-R over IS-5, time-matched [%]",
            &improvement_summaries(&results, Algo::ParTimed, Algo::Is5)
        )
    );
    println!(
        "{}\n",
        improvement_section(
            "Extra — average improvement of PA over HEFT [%]",
            &improvement_summaries(&results, Algo::Pa, Algo::Heft)
        )
    );
    let traces = fig6_traces(&cfg);
    println!("{}", fig6_section(&traces));
}
