//! Regenerates Figure 2: average schedule makespan per group for PA,
//! PA-R, IS-1 and IS-5.

use prfpga_bench::experiments::{fig2_section, run_suite_exec, Algo};
use prfpga_bench::{ExecPolicy, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exec = ExecPolicy::from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let scale = Scale::from_env();
    eprintln!(
        "running Figure 2 at {scale:?} scale on {} thread(s)",
        exec.threads()
    );
    let results = run_suite_exec(
        &scale.config(),
        &[Algo::Pa, Algo::ParTimed, Algo::Is1, Algo::Is5],
        exec,
    );
    println!("{}", fig2_section(&results));
}
