//! Regenerates Figure 2: average schedule makespan per group for PA,
//! PA-R, IS-1 and IS-5.

use prfpga_bench::experiments::{fig2_section, run_suite, Algo};
use prfpga_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running Figure 2 at {scale:?} scale");
    let results = run_suite(
        &scale.config(),
        &[Algo::Pa, Algo::ParTimed, Algo::Is1, Algo::Is5],
    );
    println!("{}", fig2_section(&results));
}
