//! Regenerates Figure 3: average improvement of PA over IS-1
//! (paper: 14.8% on average, peaking for 20-60 task graphs).

use prfpga_bench::experiments::{improvement_section, improvement_summaries, run_suite_exec, Algo};
use prfpga_bench::{ExecPolicy, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exec = ExecPolicy::from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let scale = Scale::from_env();
    eprintln!(
        "running Figure 3 at {scale:?} scale on {} thread(s)",
        exec.threads()
    );
    let results = run_suite_exec(&scale.config(), &[Algo::Pa, Algo::Is1], exec);
    let summaries = improvement_summaries(&results, Algo::Pa, Algo::Is1);
    println!(
        "{}",
        improvement_section(
            "Figure 3 — average improvement of PA over IS-1 [%]",
            &summaries
        )
    );
}
