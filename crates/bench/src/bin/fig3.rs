//! Regenerates Figure 3: average improvement of PA over IS-1
//! (paper: 14.8% on average, peaking for 20-60 task graphs).

use prfpga_bench::experiments::{improvement_section, improvement_summaries, run_suite, Algo};
use prfpga_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running Figure 3 at {scale:?} scale");
    let results = run_suite(&scale.config(), &[Algo::Pa, Algo::Is1]);
    let summaries = improvement_summaries(&results, Algo::Pa, Algo::Is1);
    println!(
        "{}",
        improvement_section("Figure 3 — average improvement of PA over IS-1 [%]", &summaries)
    );
}
