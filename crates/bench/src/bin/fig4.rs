//! Regenerates Figure 4: average improvement of PA over IS-5
//! (paper: smaller than the IS-1 gap — IS-5's joint window narrows it).

use prfpga_bench::experiments::{improvement_section, improvement_summaries, run_suite, Algo};
use prfpga_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running Figure 4 at {scale:?} scale");
    let results = run_suite(&scale.config(), &[Algo::Pa, Algo::Is5]);
    let summaries = improvement_summaries(&results, Algo::Pa, Algo::Is5);
    println!(
        "{}",
        improvement_section("Figure 4 — average improvement of PA over IS-5 [%]", &summaries)
    );
}
