//! Regenerates Figure 5: average improvement of time-matched PA-R over
//! IS-5 (paper: IS-5 wins at 10 tasks; PA-R averages 22.3% beyond 20).

use prfpga_bench::experiments::{improvement_section, improvement_summaries, run_suite_exec, Algo};
use prfpga_bench::{ExecPolicy, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exec = ExecPolicy::from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let scale = Scale::from_env();
    eprintln!(
        "running Figure 5 at {scale:?} scale on {} thread(s) (PA-R budget = measured IS-5 time)",
        exec.threads()
    );
    let results = run_suite_exec(&scale.config(), &[Algo::ParTimed, Algo::Is5], exec);
    let summaries = improvement_summaries(&results, Algo::ParTimed, Algo::Is5);
    println!(
        "{}",
        improvement_section(
            "Figure 5 — average improvement of PA-R over IS-5, time-matched [%]",
            &summaries
        )
    );
}
