//! Regenerates Figure 5: average improvement of time-matched PA-R over
//! IS-5 (paper: IS-5 wins at 10 tasks; PA-R averages 22.3% beyond 20).

use prfpga_bench::experiments::{improvement_section, improvement_summaries, run_suite, Algo};
use prfpga_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running Figure 5 at {scale:?} scale (PA-R budget = measured IS-5 time)");
    let results = run_suite(&scale.config(), &[Algo::ParTimed, Algo::Is5]);
    let summaries = improvement_summaries(&results, Algo::ParTimed, Algo::Is5);
    println!(
        "{}",
        improvement_section(
            "Figure 5 — average improvement of PA-R over IS-5, time-matched [%]",
            &summaries
        )
    );
}
