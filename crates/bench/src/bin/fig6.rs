//! Regenerates Figure 6: PA-R solution improvement over time on one
//! representative task graph per size in {20, 40, 60, 80, 100}.

use prfpga_bench::experiments::{fig6_section, fig6_traces};
use prfpga_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let cfg = scale.config();
    eprintln!(
        "running Figure 6 at {scale:?} scale ({}s budget per instance)",
        cfg.fig6_budget.as_secs_f64()
    );
    let traces = fig6_traces(&cfg);
    println!("{}", fig6_section(&traces));
}
