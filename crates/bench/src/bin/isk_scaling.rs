//! IS-k runtime scaling: the claim behind Table I's right-hand columns.
//!
//! The paper's IS-k pays an exponential (MILP) cost per window that grows
//! with k and with the task count. Our branch-and-bound substitute runs
//! under a node budget by default; this study lifts the budget on small
//! instances to expose the same explosion, and reports nodes explored —
//! a hardware-independent cost measure.
//!
//! Sweep points are independent, so they fan out over the parallel suite
//! executor (`--threads N` / `--serial` / `PRFPGA_THREADS`); node counts
//! and makespans are deterministic, only the wall-clock column varies.

use prfpga_baseline::{IsKConfig, IsKScheduler};
use prfpga_bench::report::markdown_table;
use prfpga_bench::{parallel_map, ExecPolicy};
use prfpga_gen::{GraphConfig, TaskGraphGenerator};
use prfpga_model::Architecture;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exec = ExecPolicy::from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "running IS-k scaling on {} thread(s); seconds are most faithful with --serial",
        exec.threads()
    );
    println!("### IS-k cost scaling (branch-and-bound nodes, unbounded budget)\n");

    // Scaling in k on one 12-task instance.
    let inst = TaskGraphGenerator::new(0x15C).generate(
        "isk_scaling",
        &GraphConfig::standard(12),
        Architecture::zedboard_pr(),
    );
    let ks: Vec<usize> = (1..=4).collect();
    let rows = parallel_map(&ks, exec, |_, &k| {
        let isk = IsKScheduler::new(IsKConfig {
            k,
            node_budget: 0,
            ..IsKConfig::is5()
        });
        let r = isk.schedule_detailed(&inst).expect("schedulable");
        vec![
            format!("IS-{k}"),
            r.nodes_explored.to_string(),
            format!("{:.3}", r.elapsed.as_secs_f64()),
            r.schedule.makespan().to_string(),
        ]
    });
    println!(
        "12-task instance, window size sweep:\n\n{}",
        markdown_table(&["algorithm", "nodes", "seconds", "makespan"], &rows)
    );

    // Scaling in n for k = 3.
    let sizes = [8usize, 12, 16, 20];
    let rows = parallel_map(&sizes, exec, |_, &n| {
        let inst = TaskGraphGenerator::new(0x15C).generate(
            &format!("isk_n{n}"),
            &GraphConfig::standard(n),
            Architecture::zedboard_pr(),
        );
        let isk = IsKScheduler::new(IsKConfig {
            k: 3,
            node_budget: 0,
            ..IsKConfig::is5()
        });
        let r = isk.schedule_detailed(&inst).expect("schedulable");
        vec![
            n.to_string(),
            r.nodes_explored.to_string(),
            format!("{:.3}", r.elapsed.as_secs_f64()),
        ]
    });
    println!(
        "IS-3, task-count sweep:\n\n{}",
        markdown_table(&["# tasks", "nodes", "seconds"], &rows)
    );
}
