//! IS-k runtime scaling: the claim behind Table I's right-hand columns.
//!
//! The paper's IS-k pays an exponential (MILP) cost per window that grows
//! with k and with the task count. Our branch-and-bound substitute runs
//! under a node budget by default; this study lifts the budget on small
//! instances to expose the same explosion, and reports nodes explored —
//! a hardware-independent cost measure.

use prfpga_baseline::{IsKConfig, IsKScheduler};
use prfpga_bench::report::markdown_table;
use prfpga_gen::{GraphConfig, TaskGraphGenerator};
use prfpga_model::Architecture;

fn main() {
    println!("### IS-k cost scaling (branch-and-bound nodes, unbounded budget)\n");

    // Scaling in k on one 12-task instance.
    let inst = TaskGraphGenerator::new(0x15C).generate(
        "isk_scaling",
        &GraphConfig::standard(12),
        Architecture::zedboard_pr(),
    );
    let mut rows = Vec::new();
    for k in 1..=4 {
        let isk = IsKScheduler::new(IsKConfig {
            k,
            node_budget: 0,
            ..IsKConfig::is5()
        });
        let r = isk.schedule_detailed(&inst).expect("schedulable");
        rows.push(vec![
            format!("IS-{k}"),
            r.nodes_explored.to_string(),
            format!("{:.3}", r.elapsed.as_secs_f64()),
            r.schedule.makespan().to_string(),
        ]);
    }
    println!(
        "12-task instance, window size sweep:\n\n{}",
        markdown_table(&["algorithm", "nodes", "seconds", "makespan"], &rows)
    );

    // Scaling in n for k = 3.
    let mut rows = Vec::new();
    for n in [8usize, 12, 16, 20] {
        let inst = TaskGraphGenerator::new(0x15C).generate(
            &format!("isk_n{n}"),
            &GraphConfig::standard(n),
            Architecture::zedboard_pr(),
        );
        let isk = IsKScheduler::new(IsKConfig {
            k: 3,
            node_budget: 0,
            ..IsKConfig::is5()
        });
        let r = isk.schedule_detailed(&inst).expect("schedulable");
        rows.push(vec![
            n.to_string(),
            r.nodes_explored.to_string(),
            format!("{:.3}", r.elapsed.as_secs_f64()),
        ]);
    }
    println!(
        "IS-3, task-count sweep:\n\n{}",
        markdown_table(&["# tasks", "nodes", "seconds"], &rows)
    );
}
