//! Service load generator: `BENCH_server.json`.
//!
//! Replays seeded synthetic traffic against the scheduling daemon — by
//! default 60-task portfolio requests under 50 ms deadlines with a 20 ms
//! inner budget, over the in-process transport — sweep-validates every
//! response client-side, and writes the throughput / latency /
//! deadline-hit report. A single invalid schedule fails the run.
//!
//! ```text
//! loadgen [--requests N] [--clients N] [--threads N] [--tasks N]
//!         [--seeds N] [--algo pa|par|is-5|portfolio] [--deadline-ms N]
//!         [--budget-ms N] [--no-deadline] [--tcp]
//!         [--out BENCH_server.json] [--check <baseline.json>]
//!         [--tolerance-pct 20] [--min-hit-rate <pct>]
//! ```
//!
//! With `--check`, exits non-zero when throughput drops more than the
//! tolerance below the baseline file (CI's service smoke gate);
//! `--min-hit-rate` additionally enforces a deadline-hit-rate floor.

use prfpga_bench::{check_server_regression, run_server_load, LoadConfig, ServerLoadReport};
use prfpga_model::service::AlgoChoice;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = LoadConfig::default();
    if let Some(v) = flag(&args, "--requests") {
        config.requests = v.parse().expect("--requests takes a count");
    }
    if let Some(v) = flag(&args, "--clients") {
        config.clients = v.parse().expect("--clients takes a count");
    }
    if let Some(v) = flag(&args, "--threads") {
        config.workers = v.parse().expect("--threads takes a count");
    }
    if let Some(v) = flag(&args, "--tasks") {
        config.tasks = v.parse().expect("--tasks takes a count");
    }
    if let Some(v) = flag(&args, "--seeds") {
        config.seeds = v.parse().expect("--seeds takes a count");
    }
    if let Some(v) = flag(&args, "--algo") {
        config.algo = AlgoChoice::parse(&v)
            .unwrap_or_else(|| panic!("--algo takes pa|par|is-<k>|portfolio, not {v}"));
    }
    if let Some(v) = flag(&args, "--deadline-ms") {
        config.deadline_ms = Some(v.parse().expect("--deadline-ms takes milliseconds"));
    }
    if let Some(v) = flag(&args, "--budget-ms") {
        config.budget_ms = Some(v.parse().expect("--budget-ms takes milliseconds"));
    }
    if args.iter().any(|a| a == "--no-deadline") {
        config.deadline_ms = None;
    }
    config.tcp = args.iter().any(|a| a == "--tcp");
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_server.json".into());
    let tolerance: f64 = flag(&args, "--tolerance-pct")
        .map(|v| v.parse().expect("--tolerance-pct takes a percentage"))
        .unwrap_or(20.0);
    let min_hit_rate: f64 = flag(&args, "--min-hit-rate")
        .map(|v| v.parse().expect("--min-hit-rate takes a percentage"))
        .unwrap_or(0.0);

    eprintln!(
        "loadgen: {} x {}-task {} requests, {} client(s) -> {} worker(s), deadline {:?} ms, budget {:?} ms, {}",
        config.requests,
        config.tasks,
        config.algo,
        if config.clients == 0 {
            config.workers
        } else {
            config.clients
        },
        config.workers,
        config.deadline_ms,
        config.budget_ms,
        if config.tcp { "tcp" } else { "in-proc" },
    );

    let report = run_server_load(&config);
    println!(
        "served {}/{} ok ({} errors) in {:.2} s: {:.1} req/s, p50 {:.1} ms, p99 {:.1} ms",
        report.ok,
        report.requests,
        report.errors,
        report.duration_s,
        report.req_per_sec,
        report.p50_us as f64 / 1000.0,
        report.p99_us as f64 / 1000.0,
    );
    println!(
        "deadlines: {}/{} met ({:.1}%); workspaces: {} reuses / {} rebuilds",
        report.deadline_met,
        report.deadline_declared,
        report.deadline_hit_rate_pct,
        report.workspace_reuses,
        report.workspace_rebuilds,
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write server report");
    eprintln!("wrote {out}");

    if report.invalid_schedules > 0 {
        eprintln!(
            "INVALID SCHEDULES: {} responses failed sweep validation",
            report.invalid_schedules
        );
        std::process::exit(1);
    }
    if report.deadline_hit_rate_pct < min_hit_rate {
        eprintln!(
            "DEADLINE HIT RATE {:.1}% below the {min_hit_rate}% floor",
            report.deadline_hit_rate_pct
        );
        std::process::exit(1);
    }
    if let Some(baseline_path) = flag(&args, "--check") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline: ServerLoadReport =
            serde_json::from_str(&text).expect("baseline parses as a server load report");
        match check_server_regression(&baseline, &report, tolerance) {
            Ok(()) => eprintln!("service throughput within {tolerance}% of {baseline_path}"),
            Err(msg) => {
                eprintln!("SERVICE REGRESSION vs {baseline_path}: {msg}");
                std::process::exit(1);
            }
        }
    }
}
