//! Repair-cost-vs-perturbation trajectory: `BENCH_repair.json`.
//!
//! Per size, commits a baseline PA schedule, replays standard-mix event
//! traces of increasing length through the repair engine and reports the
//! mean per-event repair cost against the full-pipeline re-solve cost.
//!
//! ```text
//! repair [--sizes 1000,10000] [--events 1,8,64]
//!        [--out BENCH_repair.json] [--check <baseline.json>]
//!        [--tolerance-pct 20]
//! ```
//!
//! With `--check`, the run exits non-zero when any point's speedup drops
//! more than the tolerance below the baseline file (CI's repair gate).

use prfpga_bench::report::markdown_table;
use prfpga_bench::{
    baseline_with_resolve_us, check_repair_regression, measure_repair_entry, repair_instance,
    warmup_run, RepairReport,
};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes: Vec<usize> = flag(&args, "--sizes")
        .unwrap_or_else(|| "1000,10000".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--sizes takes task counts"))
        .collect();
    sizes.sort_unstable();
    let events: Vec<usize> = flag(&args, "--events")
        .unwrap_or_else(|| "1,8,64".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--events takes counts"))
        .collect();
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_repair.json".into());
    let tolerance: f64 = flag(&args, "--tolerance-pct")
        .map(|v| v.parse().expect("--tolerance-pct takes a percentage"))
        .unwrap_or(20.0);

    eprintln!("repair study: sizes {sizes:?}, trace lengths {events:?}");
    // Same rationale as the scaling study: the first PA run of a fresh
    // process pays page faults and allocator growth.
    warmup_run();

    let mut entries = Vec::new();
    for &tasks in &sizes {
        let inst = repair_instance(tasks);
        let (baseline, resolve_us) = baseline_with_resolve_us(&inst);
        eprintln!("  {tasks} tasks: full re-solve {:.0} us", resolve_us);
        for &k in &events {
            let entry = measure_repair_entry(&inst, &baseline, resolve_us, k);
            eprintln!(
                "    {k:3} events: {:.0} us/event ({:.1}x vs re-solve, {} full re-solves)",
                entry.repair_us_per_event, entry.speedup, entry.full_resolves
            );
            entries.push(entry);
        }
    }

    let report = RepairReport {
        schema: RepairReport::SCHEMA.into(),
        entries,
    };

    println!("### Repair cost vs perturbation\n");
    let rows: Vec<Vec<String>> = report
        .entries
        .iter()
        .map(|e| {
            vec![
                e.tasks.to_string(),
                e.events.to_string(),
                format!("{:.0}", e.resolve_us),
                format!("{:.0}", e.repair_us_per_event),
                format!("{:.1}", e.speedup),
                e.full_resolves.to_string(),
                format!("{} -> {}", e.makespan_before, e.makespan_after),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "# tasks",
                "events",
                "re-solve us",
                "repair us/event",
                "speedup",
                "full re-solves",
                "makespan",
            ],
            &rows
        )
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write repair report");
    eprintln!("wrote {out}");

    if let Some(baseline_path) = flag(&args, "--check") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline: RepairReport =
            serde_json::from_str(&text).expect("baseline parses as a repair report");
        match check_repair_regression(&baseline, &report, tolerance) {
            Ok(()) => eprintln!("repair speedups within {tolerance}% of {baseline_path}"),
            Err(msg) => {
                eprintln!("REPAIR REGRESSION vs {baseline_path}: {msg}");
                std::process::exit(1);
            }
        }
    }
}
