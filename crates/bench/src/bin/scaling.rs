//! Task-graph scaling trajectory: `BENCH_scaling.json`.
//!
//! The paper's evaluation tops out at 100-task graphs; the ROADMAP's
//! north star needs three orders of magnitude more. This study streams a
//! deterministic corpus of large generated instances through the PA
//! pipeline (CSR/bitset fast paths on), one PA-R end-to-end run per size,
//! and a DFS-vs-closure reachability microbenchmark, and writes the
//! per-size throughput / phase-median / peak-RSS trajectory to JSON so
//! cross-PR regressions are machine-checkable.
//!
//! ```text
//! scaling [--sizes 1000,10000] [--instances N] [--par-iters N]
//!         [--out BENCH_scaling.json] [--check <baseline.json>]
//!         [--tolerance-pct 20] [--no-reach-bench] [--no-partition-bench]
//!         [--threads N | --serial]
//! ```
//!
//! With `--check`, the run exits non-zero when any size's throughput
//! drops more than the tolerance below the baseline file (CI's
//! scaling-smoke gate). Sizes run ascending so the monotonic `VmHWM`
//! figure is attributable per size.

use prfpga_bench::report::markdown_table;
use prfpga_bench::{
    check_throughput_regression, measure_scaling_entry, partition_quality_bench, reach_microbench,
    warmup_run, ExecPolicy, PartitionBench, ReachBench, ScalingReport, ScalingStudyConfig,
};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exec = ExecPolicy::from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let mut sizes: Vec<usize> = flag(&args, "--sizes")
        .unwrap_or_else(|| "1000,10000".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--sizes takes task counts"))
        .collect();
    sizes.sort_unstable();
    let mut config = ScalingStudyConfig::default();
    if let Some(v) = flag(&args, "--instances") {
        config.instances = v.parse().expect("--instances takes a count");
    }
    if let Some(v) = flag(&args, "--par-iters") {
        config.par_iterations = v.parse().expect("--par-iters takes a count");
    }
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_scaling.json".into());
    let tolerance: f64 = flag(&args, "--tolerance-pct")
        .map(|v| v.parse().expect("--tolerance-pct takes a percentage"))
        .unwrap_or(20.0);

    eprintln!(
        "scaling study: sizes {sizes:?}, {} instance(s)/size, {} thread(s)",
        config.instances,
        exec.threads()
    );
    // Unmeasured warmup: a fresh process pays page faults and allocator
    // growth on its first PA run, which skews the smallest (sub-second)
    // size by 20%+ — enough to trip the CI throughput gate spuriously.
    warmup_run();
    let entries = sizes
        .iter()
        .map(|&tasks| {
            let t0 = std::time::Instant::now();
            let entry = measure_scaling_entry(tasks, &config, exec);
            eprintln!(
                "  {tasks} tasks: {:.0} tasks/s, median {:.1} ms, {:.1} s total",
                entry.tasks_per_sec,
                entry.sched_ms_median,
                t0.elapsed().as_secs_f64()
            );
            entry
        })
        .collect();

    let reach: Vec<ReachBench> = if args.iter().any(|a| a == "--no-reach-bench") {
        Vec::new()
    } else {
        // One probe-heavy size: the closure's O(1) lookup vs the DFS.
        let tasks = sizes
            .iter()
            .copied()
            .find(|&n| n >= 10_000)
            .unwrap_or(*sizes.last().expect("at least one size"));
        let b = reach_microbench(tasks, 20_000);
        eprintln!(
            "  reach @ {tasks}: DFS {:.0} ns/query, closure {:.1} ns/query ({:.1}x)",
            b.dfs_ns_per_query, b.index_ns_per_query, b.speedup
        );
        vec![b]
    };

    // Partition-quality probe: fixed small size so the row tracks the
    // heuristic's quality, not generator scaling.
    let partition: Vec<PartitionBench> = if args.iter().any(|a| a == "--no-partition-bench") {
        Vec::new()
    } else {
        let b = partition_quality_bench(120);
        eprintln!(
            "  partition @ {} tasks on {}: {} ticks vs {} relaxed ({:+.1}%)",
            b.tasks, b.platform, b.makespan_partitioned, b.makespan_relaxed, b.overhead_pct
        );
        vec![b]
    };

    let report = ScalingReport {
        schema: ScalingReport::SCHEMA.into(),
        entries,
        reach,
        partition,
    };

    println!("### Task-graph scaling trajectory\n");
    let rows: Vec<Vec<String>> = report
        .entries
        .iter()
        .map(|e| {
            vec![
                e.tasks.to_string(),
                e.edges.to_string(),
                format!("{:.1}", e.sched_ms_median),
                format!("{:.0}", e.tasks_per_sec),
                format!("{:.1}", e.par_ms),
                e.peak_rss_kb.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "# tasks",
                "edges",
                "PA median ms",
                "tasks/s",
                "PA-R ms",
                "peak RSS kB"
            ],
            &rows
        )
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write scaling report");
    eprintln!("wrote {out}");

    if let Some(baseline_path) = flag(&args, "--check") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline: ScalingReport =
            serde_json::from_str(&text).expect("baseline parses as a scaling report");
        match check_throughput_regression(&baseline, &report, tolerance) {
            Ok(()) => eprintln!("throughput within {tolerance}% of {baseline_path}"),
            Err(msg) => {
                eprintln!("THROUGHPUT REGRESSION vs {baseline_path}: {msg}");
                std::process::exit(1);
            }
        }
    }
}
