//! Regenerates Table I: algorithm execution times vs task-graph size.

use prfpga_bench::experiments::{run_suite_exec, table1_section, Algo};
use prfpga_bench::{phase_trace_section, ExecPolicy, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exec = ExecPolicy::from_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let scale = Scale::from_env();
    eprintln!(
        "running Table I at {scale:?} scale on {} thread(s); timings are most faithful with --serial",
        exec.threads()
    );
    let results = run_suite_exec(
        &scale.config(),
        &[Algo::Pa, Algo::Is1, Algo::Is5, Algo::ParTimed],
        exec,
    );
    println!("{}", table1_section(&results));
    println!();
    println!("{}", phase_trace_section(&results));
}
