//! Regenerates Table I: algorithm execution times vs task-graph size.

use prfpga_bench::experiments::{run_suite, table1_section, Algo};
use prfpga_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running Table I at {scale:?} scale (set PRFPGA_SCALE=full for the paper suite)");
    let results = run_suite(
        &scale.config(),
        &[Algo::Pa, Algo::Is1, Algo::Is5, Algo::ParTimed],
    );
    println!("{}", table1_section(&results));
}
