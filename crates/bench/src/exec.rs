//! Parallel suite execution — re-exported from `prfpga_sched::exec`.
//!
//! The executor moved into `prfpga-sched` so crates below the bench
//! harness (the portfolio race, the server worker pool) can fan work out
//! without a dependency cycle; the experiment binaries keep importing it
//! from here.

pub use prfpga_sched::exec::{parallel_map, ExecPolicy};
