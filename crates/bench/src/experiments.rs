//! Shared experiment drivers and section renderers used by the
//! per-figure binaries and by `all_experiments`.

use std::collections::BTreeMap;
use std::time::Duration;

use prfpga_baseline::IsKConfig;
use prfpga_model::ProblemInstance;
use prfpga_sched::{PaRScheduler, SchedulerConfig};

use crate::exec::{parallel_map, ExecPolicy};
use crate::report::{improvement_pct, markdown_table, mean, sample_std, secs, GroupSummary};
use crate::runners::{run_heft, run_isk, run_pa, run_par_timed, InstanceResult};
use crate::scale::ScaleConfig;

/// The algorithms the suite driver can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Algo {
    /// Deterministic PA.
    Pa,
    /// PA-R, time-matched to IS-5 (implies running IS-5).
    ParTimed,
    /// IS-1.
    Is1,
    /// IS-5.
    Is5,
    /// HEFT-style list scheduler.
    Heft,
}

/// Results of one group: per algorithm, one [`InstanceResult`] per graph.
#[derive(Debug, Clone, Default)]
pub struct GroupResults {
    /// Task count of this group.
    pub tasks: usize,
    /// Per-algorithm results, aligned with the group's instances.
    pub per_algo: BTreeMap<Algo, Vec<InstanceResult>>,
}

/// Results over the whole suite, in group order.
#[derive(Debug, Clone, Default)]
pub struct SuiteResults {
    /// One entry per group.
    pub groups: Vec<GroupResults>,
}

/// Runs the requested algorithms over the configured suite with the
/// executor picked by `PRFPGA_THREADS` (see [`ExecPolicy::from_env`]).
pub fn run_suite(cfg: &ScaleConfig, algos: &[Algo]) -> SuiteResults {
    run_suite_exec(cfg, algos, ExecPolicy::from_env())
}

/// Runs the requested algorithms over the configured suite under an
/// explicit execution policy. PA-R is time-matched: each instance's PA-R
/// budget equals the measured IS-5 time on that instance (floored at
/// `par_min_budget`), the paper's fairness protocol.
///
/// The work item is *one instance running all requested algorithms* — the
/// time-matching protocol needs the IS-5 wall-clock of an instance before
/// its PA-R run, so the (instance, algo) pairs of one instance stay on one
/// worker. Results merge back in suite order, making every derived table
/// independent of the thread count (timings aside).
pub fn run_suite_exec(cfg: &ScaleConfig, algos: &[Algo], exec: ExecPolicy) -> SuiteResults {
    let suite = cfg
        .suite
        .generate(&prfpga_model::Architecture::zedboard_pr());

    let mut out = SuiteResults::default();
    for group in &suite {
        let tasks = group.first().map_or(0, |i| i.graph.len());
        let mut gr = GroupResults {
            tasks,
            per_algo: BTreeMap::new(),
        };
        let per_instance = parallel_map(group, exec, |_, inst| run_instance(cfg, algos, inst));
        for results in per_instance {
            for (algo, r) in results {
                gr.per_algo.entry(algo).or_default().push(r);
            }
        }
        out.groups.push(gr);
    }
    out
}

/// Runs every requested algorithm on one instance, in the fixed
/// measurement order (PA, IS-1, IS-5, time-matched PA-R, HEFT).
fn run_instance(
    cfg: &ScaleConfig,
    algos: &[Algo],
    inst: &ProblemInstance,
) -> Vec<(Algo, InstanceResult)> {
    let need_is5 = algos.contains(&Algo::Is5) || algos.contains(&Algo::ParTimed);
    let pa_cfg = SchedulerConfig::default();
    let is1_cfg = IsKConfig::is1();

    let mut results = Vec::new();
    if algos.contains(&Algo::Pa) {
        results.push((Algo::Pa, run_pa(inst, &pa_cfg)));
    }
    if algos.contains(&Algo::Is1) {
        results.push((Algo::Is1, run_isk(inst, &is1_cfg)));
    }
    let mut is5_elapsed = Duration::ZERO;
    if need_is5 {
        let r = run_isk(inst, &cfg.is5);
        is5_elapsed = r.elapsed;
        results.push((Algo::Is5, r));
    }
    if algos.contains(&Algo::ParTimed) {
        let budget = is5_elapsed.max(cfg.par_min_budget);
        results.push((Algo::ParTimed, run_par_timed(inst, &pa_cfg, budget)));
    }
    if algos.contains(&Algo::Heft) {
        results.push((Algo::Heft, run_heft(inst)));
    }
    results
}

/// Table I: algorithm execution times per group.
pub fn table1_section(results: &SuiteResults) -> String {
    let mut rows = Vec::new();
    for g in &results.groups {
        let pa = &g.per_algo[&Algo::Pa];
        let avg = |f: &dyn Fn(&InstanceResult) -> Duration, rs: &[InstanceResult]| {
            rs.iter().map(f).sum::<Duration>() / rs.len().max(1) as u32
        };
        let pa_sched = avg(&|r: &InstanceResult| r.scheduling_time, pa);
        let pa_fp = avg(&|r: &InstanceResult| r.floorplanning_time, pa);
        let pa_tot = avg(&|r: &InstanceResult| r.elapsed, pa);
        let is1 = avg(&|r: &InstanceResult| r.elapsed, &g.per_algo[&Algo::Is1]);
        let is5 = avg(&|r: &InstanceResult| r.elapsed, &g.per_algo[&Algo::Is5]);
        let par = avg(
            &|r: &InstanceResult| r.elapsed,
            &g.per_algo[&Algo::ParTimed],
        );
        rows.push(vec![
            g.tasks.to_string(),
            secs(pa_sched),
            secs(pa_fp),
            secs(pa_tot),
            secs(is1),
            secs(par.max(is5)),
        ]);
    }
    format!(
        "### Table I — algorithm execution time [s]\n\n{}",
        markdown_table(
            &[
                "# Tasks",
                "PA scheduling",
                "PA floorplanning",
                "PA total",
                "IS-1",
                "PA-R / IS-5",
            ],
            &rows,
        )
    )
}

/// Figure 2: average schedule makespan per group and algorithm.
pub fn fig2_section(results: &SuiteResults) -> String {
    let mut rows = Vec::new();
    for g in &results.groups {
        let avg_mk = |algo: Algo| {
            let rs = &g.per_algo[&algo];
            mean(&rs.iter().map(|r| r.makespan as f64).collect::<Vec<_>>())
        };
        rows.push(vec![
            g.tasks.to_string(),
            format!("{:.0}", avg_mk(Algo::Pa)),
            format!("{:.0}", avg_mk(Algo::ParTimed)),
            format!("{:.0}", avg_mk(Algo::Is1)),
            format!("{:.0}", avg_mk(Algo::Is5)),
        ]);
    }
    format!(
        "### Figure 2 — average schedule makespan [ticks]\n\n{}",
        markdown_table(&["# Tasks", "PA", "PA-R", "IS-1", "IS-5"], &rows)
    )
}

/// Per-group improvement of `ours` over `baseline` (mean ± std), the shape
/// of Figures 3–5.
pub fn improvement_summaries(
    results: &SuiteResults,
    ours: Algo,
    baseline: Algo,
) -> Vec<GroupSummary> {
    results
        .groups
        .iter()
        .map(|g| {
            let o = &g.per_algo[&ours];
            let b = &g.per_algo[&baseline];
            let vals: Vec<f64> = o
                .iter()
                .zip(b.iter())
                .map(|(or_, br)| improvement_pct(br.makespan, or_.makespan))
                .collect();
            GroupSummary::from_values(g.tasks, &vals)
        })
        .collect()
}

/// Renders a Figures-3/4/5-style improvement section.
pub fn improvement_section(title: &str, summaries: &[GroupSummary]) -> String {
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.tasks.to_string(),
                format!("{:.1}", s.mean),
                format!("{:.1}", s.std),
            ]
        })
        .collect();
    let overall = mean(&summaries.iter().map(|s| s.mean).collect::<Vec<_>>());
    let overall_std = sample_std(&summaries.iter().map(|s| s.mean).collect::<Vec<_>>());
    format!(
        "### {title}\n\n{}\noverall average improvement: {:.1}% (std over groups {:.1})\n",
        markdown_table(&["# Tasks", "mean improvement %", "std %"], &rows),
        overall,
        overall_std
    )
}

/// Figure 6 data: PA-R convergence traces on one representative instance
/// per requested size.
pub fn fig6_traces(
    cfg: &ScaleConfig,
) -> Vec<(usize, Vec<prfpga_sched::randomized::ConvergencePoint>)> {
    let arch = prfpga_model::Architecture::zedboard_pr();
    let suite = cfg.suite.generate(&arch);
    let mut out = Vec::new();
    for &size in &cfg.fig6_sizes {
        let Some(group) = suite
            .iter()
            .find(|g| g.first().is_some_and(|i| i.graph.len() == size))
        else {
            continue;
        };
        let inst: &ProblemInstance = &group[0];
        let par = PaRScheduler::new(SchedulerConfig {
            time_budget: cfg.fig6_budget,
            max_iterations: 0,
            ..Default::default()
        });
        let r = par.schedule_detailed(inst).expect("valid instance");
        out.push((size, r.trace));
    }
    out
}

/// Renders the Figure 6 section.
pub fn fig6_section(traces: &[(usize, Vec<prfpga_sched::randomized::ConvergencePoint>)]) -> String {
    let mut out = String::from("### Figure 6 — PA-R best makespan over time\n\n");
    for (size, trace) in traces {
        out.push_str(&format!("instance with {size} tasks:\n\n"));
        let rows: Vec<Vec<String>> = trace
            .iter()
            .map(|p| {
                vec![
                    p.iteration.to_string(),
                    format!("{:.3}", p.elapsed.as_secs_f64()),
                    p.makespan.to_string(),
                ]
            })
            .collect();
        out.push_str(&markdown_table(
            &["iteration", "elapsed [s]", "best makespan"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use prfpga_gen::SuiteConfig;

    fn tiny_cfg() -> ScaleConfig {
        let mut cfg = Scale::Smoke.config();
        cfg.suite = SuiteConfig {
            groups: vec![8, 12],
            graphs_per_group: 2,
            seed: 1,
        };
        cfg.is5.node_budget = 500;
        cfg.par_min_budget = Duration::from_millis(5);
        cfg.fig6_budget = Duration::from_millis(30);
        cfg.fig6_sizes = vec![8];
        cfg
    }

    #[test]
    fn run_suite_collects_requested_algorithms() {
        let cfg = tiny_cfg();
        let r = run_suite(&cfg, &[Algo::Pa, Algo::Is1]);
        assert_eq!(r.groups.len(), 2);
        for g in &r.groups {
            assert_eq!(g.per_algo.len(), 2);
            assert_eq!(g.per_algo[&Algo::Pa].len(), 2);
        }
    }

    #[test]
    fn par_timed_pulls_in_is5() {
        let cfg = tiny_cfg();
        let r = run_suite(&cfg, &[Algo::ParTimed]);
        for g in &r.groups {
            assert!(g.per_algo.contains_key(&Algo::Is5));
            assert!(g.per_algo.contains_key(&Algo::ParTimed));
        }
    }

    #[test]
    fn sections_render() {
        let cfg = tiny_cfg();
        let r = run_suite(&cfg, &[Algo::Pa, Algo::ParTimed, Algo::Is1, Algo::Is5]);
        let t1 = table1_section(&r);
        assert!(t1.contains("Table I"));
        assert!(t1.contains("| 8 |"));
        let f2 = fig2_section(&r);
        assert!(f2.contains("| 12 |"));
        let imp = improvement_summaries(&r, Algo::Pa, Algo::Is1);
        assert_eq!(imp.len(), 2);
        let sec = improvement_section("Figure 3 — PA vs IS-1", &imp);
        assert!(sec.contains("overall average improvement"));
    }

    #[test]
    fn fig6_produces_traces() {
        let cfg = tiny_cfg();
        let traces = fig6_traces(&cfg);
        assert_eq!(traces.len(), 1);
        assert!(
            !traces[0].1.is_empty(),
            "at least the first feasible improvement"
        );
        let sec = fig6_section(&traces);
        assert!(sec.contains("8 tasks"));
    }
}
