//! # prfpga-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§VII):
//!
//! | Artifact | Binary | What it reports |
//! |---|---|---|
//! | Table I | `table1` | algorithm execution times vs task count (PA split into scheduling/floorplanning/total; IS-1; PA-R / IS-5) |
//! | Fig. 2 | `fig2` | average schedule makespan per group for PA, PA-R, IS-1, IS-5 |
//! | Fig. 3 | `fig3` | average improvement of PA over IS-1 |
//! | Fig. 4 | `fig4` | average improvement of PA over IS-5 |
//! | Fig. 5 | `fig5` | average improvement of time-matched PA-R over IS-5 |
//! | Fig. 6 | `fig6` | PA-R best-makespan-vs-time convergence on 5 graphs |
//! | Ablations | `ablation_*` | ordering / cost metric / balancing studies |
//! | All | `all_experiments` | runs everything and emits a Markdown report |
//!
//! Instances come from the deterministic generator (`prfpga-gen`); every
//! schedule is revalidated by `prfpga-sim` before its makespan is
//! counted. The harness honours a `PRFPGA_SCALE` environment variable:
//! `smoke` (default: fewer/smaller graphs, trimmed IS-5 budget, for CI)
//! or `full` (the paper's 10x10 suite).

#![warn(missing_docs)]

pub mod exec;
pub mod experiments;
pub mod repair;
pub mod report;
pub mod runners;
pub mod scale;
pub mod server_load;

pub use exec::{parallel_map, ExecPolicy};
pub use repair::{
    baseline_with_resolve_us, check_repair_regression, measure_repair_entry, repair_instance,
    RepairEntry, RepairReport, REPAIR_SEED,
};
pub use report::{improvement_pct, mean, phase_trace_section, sample_std, GroupSummary};
pub use runners::{run_heft, run_isk, run_pa, run_par_iters, run_par_timed, InstanceResult};
pub use scale::{
    check_throughput_regression, measure_scaling_entry, partition_quality_bench, peak_rss_kb,
    reach_microbench, scaling_instances, warmup_run, PartitionBench, PhaseMs, ReachBench, Scale,
    ScaleConfig, ScalingEntry, ScalingReport, ScalingStudyConfig,
};
pub use server_load::{check_server_regression, run_server_load, LoadConfig, ServerLoadReport};
