//! Repair-cost-vs-perturbation study (`BENCH_repair.json`).
//!
//! The point of the repair engine is that reacting to one runtime event
//! must cost a small fraction of re-running the whole PA pipeline. This
//! study pins that claim: per size (1k / 10k tasks) it commits a baseline
//! PA schedule, synthesizes standard-mix event traces of increasing length
//! (k = 1, 8, 64), replays each through [`RepairEngine`] — pinned to the
//! delta path, cascade disabled — and reports the mean per-event repair
//! cost against the full-pipeline re-solve cost on the same machine — the
//! `speedup` column is the figure the CI gate defends (a drop of more than
//! the tolerance vs the committed baseline fails the run).
//!
//! Every repaired schedule is revalidated with the sweep-line validator
//! before its numbers are counted.

use std::time::Instant;

use prfpga_gen::{EventConfig, EventTraceGenerator, GraphConfig, TaskGraphGenerator};
use prfpga_model::{Architecture, ProblemInstance, Schedule};
use prfpga_sched::{PaScheduler, RepairConfig, RepairEngine, SchedulerConfig};
use prfpga_sim::validate_schedule_sweep;
use serde::{Deserialize, Serialize};

/// Seed of the repair corpus (instances and traces are pure functions of
/// it, so every run replays identical work).
pub const REPAIR_SEED: u64 = 0x000E_7A11;

/// One `(size, trace length)` measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairEntry {
    /// Tasks in the instance.
    pub tasks: usize,
    /// Events in the replayed trace.
    pub events: usize,
    /// Full PA pipeline wall-clock on the instance, microseconds (the
    /// re-solve an online system would otherwise pay per event).
    pub resolve_us: f64,
    /// Mean repair wall-clock per event, microseconds.
    pub repair_us_per_event: f64,
    /// `resolve_us / repair_us_per_event` — the study's headline figure.
    pub speedup: f64,
    /// Events the engine escalated to a full re-solve (cascade threshold).
    pub full_resolves: u64,
    /// Tasks re-timed across the whole trace.
    pub frontier_tasks: u64,
    /// Baseline makespan, ticks.
    pub makespan_before: u64,
    /// Makespan after the full trace, ticks.
    pub makespan_after: u64,
}

/// The persisted repair-cost trajectory (`BENCH_repair.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Format tag for forward compatibility.
    pub schema: String,
    /// Per-(size, trace length) measurements.
    pub entries: Vec<RepairEntry>,
}

impl RepairReport {
    /// Schema tag written by this version of the study.
    pub const SCHEMA: &'static str = "prfpga-repair-v1";
}

/// Generates the deterministic instance for one size.
pub fn repair_instance(tasks: usize) -> ProblemInstance {
    TaskGraphGenerator::new(REPAIR_SEED).generate(
        &format!("repair_{tasks}"),
        &GraphConfig::standard(tasks),
        Architecture::zedboard_pr(),
    )
}

/// Commits the baseline PA schedule for `inst`, returning it with the
/// pipeline's wall-clock in microseconds (the re-solve cost).
pub fn baseline_with_resolve_us(inst: &ProblemInstance) -> (Schedule, f64) {
    let scheduler = PaScheduler::new(SchedulerConfig::default());
    // Median of three runs: the re-solve cost is the denominator of the
    // headline speedup, so a one-off scheduling hiccup must not skew it.
    let mut us = [0.0f64; 3];
    let mut schedule = None;
    for slot in &mut us {
        let t0 = Instant::now();
        let s = scheduler.schedule(inst).expect("generated instance solves");
        *slot = t0.elapsed().as_secs_f64() * 1e6;
        schedule = Some(s);
    }
    us.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (schedule.expect("three runs happened"), us[1])
}

/// Measures one `(size, events)` point: replays a standard-mix trace of
/// `events` events against a fresh engine and times the repairs.
pub fn measure_repair_entry(
    inst: &ProblemInstance,
    baseline: &Schedule,
    resolve_us: f64,
    events: usize,
) -> RepairEntry {
    let trace = EventTraceGenerator::new(REPAIR_SEED ^ events as u64).generate(
        inst,
        baseline,
        &EventConfig::standard(events),
    );
    // The engine is pinned to the delta path (cascade disabled): this study
    // measures the cost of frontier retiming itself, and the cascade
    // fallback's cost *is* the `resolve_us` column — early events on a deep
    // DAG invalidate most of the graph, so the default 50% threshold would
    // turn nearly every measurement into a full re-solve and the speedup
    // into a tautological 1x.
    let config = RepairConfig {
        cascade_threshold_pct: 100,
        ..RepairConfig::default()
    };
    let mut engine = RepairEngine::new(inst.clone(), baseline.clone(), config)
        .expect("PA baselines satisfy the engine's preconditions");

    let t0 = Instant::now();
    for ev in &trace.events {
        engine.apply(ev).expect("generated traces replay cleanly");
    }
    let repair_us_total = t0.elapsed().as_secs_f64() * 1e6;
    validate_schedule_sweep(engine.instance(), engine.schedule())
        .expect("repaired schedule validates");

    let stats = engine.stats();
    let per_event = repair_us_total / trace.events.len().max(1) as f64;
    RepairEntry {
        tasks: inst.graph.len(),
        events: trace.events.len(),
        resolve_us,
        repair_us_per_event: per_event,
        speedup: resolve_us / per_event.max(1e-3),
        full_resolves: stats.full_resolves,
        frontier_tasks: stats.frontier_tasks,
        makespan_before: baseline.makespan(),
        makespan_after: engine.schedule().makespan(),
    }
}

/// Compares `current` against `baseline`: an error lists every
/// `(size, events)` point whose speedup dropped more than `tolerance_pct`
/// percent. Points present only on one side are ignored.
pub fn check_repair_regression(
    baseline: &RepairReport,
    current: &RepairReport,
    tolerance_pct: f64,
) -> Result<(), String> {
    let mut failures = Vec::new();
    for base in &baseline.entries {
        let Some(cur) = current
            .entries
            .iter()
            .find(|e| e.tasks == base.tasks && e.events == base.events)
        else {
            continue;
        };
        let floor = base.speedup * (1.0 - tolerance_pct / 100.0);
        if cur.speedup < floor {
            failures.push(format!(
                "{} tasks / {} events: speedup {:.1}x < {:.1}x ({}% below baseline {:.1}x)",
                base.tasks, base.events, cur.speedup, floor, tolerance_pct, base.speedup
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_entry_on_small_instance() {
        let inst = repair_instance(60);
        let (baseline, resolve_us) = baseline_with_resolve_us(&inst);
        let entry = measure_repair_entry(&inst, &baseline, resolve_us, 8);
        assert_eq!(entry.tasks, 60);
        assert_eq!(entry.events, 8);
        assert!(entry.repair_us_per_event > 0.0);
        assert!(entry.speedup > 0.0);
    }

    #[test]
    fn repair_report_round_trips_through_json() {
        let report = RepairReport {
            schema: RepairReport::SCHEMA.into(),
            entries: vec![RepairEntry {
                tasks: 1000,
                events: 8,
                resolve_us: 50_000.0,
                repair_us_per_event: 500.0,
                speedup: 100.0,
                full_resolves: 1,
                frontier_tasks: 42,
                makespan_before: 90_000,
                makespan_after: 88_000,
            }],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: RepairReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn regression_check_flags_speedup_drops_only() {
        let entry = |tasks: usize, events: usize, speedup: f64| RepairEntry {
            tasks,
            events,
            resolve_us: 0.0,
            repair_us_per_event: 0.0,
            speedup,
            full_resolves: 0,
            frontier_tasks: 0,
            makespan_before: 0,
            makespan_after: 0,
        };
        let report = |entries: Vec<RepairEntry>| RepairReport {
            schema: RepairReport::SCHEMA.into(),
            entries,
        };
        let base = report(vec![entry(1000, 1, 100.0), entry(10_000, 64, 40.0)]);
        let ok = report(vec![entry(1000, 1, 81.0), entry(10_000, 64, 60.0)]);
        assert!(check_repair_regression(&base, &ok, 20.0).is_ok());
        let slow = report(vec![entry(1000, 1, 79.0), entry(10_000, 64, 40.0)]);
        let err = check_repair_regression(&base, &slow, 20.0).unwrap_err();
        assert!(err.contains("1000 tasks / 1 events"), "{err}");
        assert!(!err.contains("10000"), "{err}");
    }
}
