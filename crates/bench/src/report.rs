//! Aggregation and Markdown-table formatting for the experiment binaries.

use prfpga_model::Time;
use prfpga_sched::Phase;

use crate::experiments::{Algo, SuiteResults};

/// Mean of a slice of f64 (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two points).
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Relative improvement of `ours` over `baseline` in percent
/// (`(baseline - ours) / baseline * 100`): positive means we are faster.
pub fn improvement_pct(baseline: Time, ours: Time) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    (baseline as f64 - ours as f64) / baseline as f64 * 100.0
}

/// Per-group summary used by the figure binaries: mean and standard
/// deviation of the per-instance improvements.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Task count of the group.
    pub tasks: usize,
    /// Mean of the metric across the group's instances.
    pub mean: f64,
    /// Sample standard deviation across the group's instances.
    pub std: f64,
}

impl GroupSummary {
    /// Builds a summary from raw per-instance values.
    pub fn from_values(tasks: usize, values: &[f64]) -> GroupSummary {
        GroupSummary {
            tasks,
            mean: mean(values),
            std: sample_std(values),
        }
    }
}

/// Formats a Markdown table: `headers` then one row per entry.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Renders seconds with three decimals (Table I style).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// PA phase breakdown: per group, the mean wall-clock of every pipeline
/// phase (A–H) over the group's instances, plus the mean restart count.
/// Complements Table I, which only reports the scheduling/floorplanning
/// split.
pub fn phase_trace_section(results: &SuiteResults) -> String {
    let mut rows = Vec::new();
    for g in &results.groups {
        let traces: Vec<_> = g
            .per_algo
            .get(&Algo::Pa)
            .map(|rs| rs.iter().filter_map(|r| r.trace.as_ref()).collect())
            .unwrap_or_default();
        if traces.is_empty() {
            continue;
        }
        let mut row = vec![g.tasks.to_string()];
        for phase in Phase::ALL {
            let ms = mean(
                &traces
                    .iter()
                    .map(|t| t.time(phase).as_secs_f64() * 1e3)
                    .collect::<Vec<_>>(),
            );
            row.push(format!("{ms:.3}"));
        }
        row.push(format!(
            "{:.1}",
            mean(&traces.iter().map(|t| t.attempts as f64).collect::<Vec<_>>())
        ));
        // Workspace/cache counters: structural, not timing, so they also
        // appear in the deterministic canonical report.
        let counter_mean = |f: fn(u64, u64, u64) -> u64| {
            let vals: Vec<f64> = traces
                .iter()
                .map(|t| f(t.workspace_reuses, t.fp_cache_hits, t.fp_cache_misses) as f64)
                .collect();
            format!("{:.1}", mean(&vals))
        };
        row.push(counter_mean(|r, _, _| r));
        row.push(counter_mean(|_, h, _| h));
        row.push(counter_mean(|_, _, m| m));
        rows.push(row);
    }
    if rows.is_empty() {
        return String::from("### PA phase breakdown\n\n(no PA runs in this suite)\n");
    }
    let mut headers = vec!["# Tasks"];
    for phase in Phase::ALL {
        headers.push(phase.name());
    }
    headers.extend(["attempts", "ws reuses", "fp hits", "fp misses"]);
    format!(
        "### PA phase breakdown — mean wall-clock per phase [ms]\n\n{}",
        markdown_table(&headers, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(sample_std(&[5.0]), 0.0);
        let s = sample_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138).abs() < 0.01);
    }

    #[test]
    fn improvement_sign_convention() {
        assert!((improvement_pct(100, 80) - 20.0).abs() < 1e-9);
        assert!((improvement_pct(100, 120) + 20.0).abs() < 1e-9);
        assert_eq!(improvement_pct(0, 50), 0.0);
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[3], "| 3 | 4 |");
    }

    #[test]
    fn group_summary() {
        let g = GroupSummary::from_values(30, &[10.0, 20.0]);
        assert_eq!(g.tasks, 30);
        assert_eq!(g.mean, 15.0);
        assert!(g.std > 0.0);
    }
}
