//! Scheduler runners: execute one scheduler on one instance, revalidate
//! the schedule, and collect timings.

use std::time::{Duration, Instant};

use prfpga_baseline::{HeftScheduler, IsKConfig, IsKScheduler};
use prfpga_model::{ProblemInstance, Time};
use prfpga_sched::{PaRScheduler, PaScheduler, PhaseTrace, SchedulerConfig};
use prfpga_sim::validate_schedule;

/// Outcome of one scheduler on one instance. Every schedule behind one of
/// these has passed the independent validator.
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// Instance label.
    pub instance: String,
    /// Schedule makespan (ticks).
    pub makespan: Time,
    /// Total wall-clock of the scheduler run.
    pub elapsed: Duration,
    /// Scheduling-only time where the algorithm reports the split
    /// (PA: phases A–G; others: equal to `elapsed`).
    pub scheduling_time: Duration,
    /// Floorplanning-only time where reported.
    pub floorplanning_time: Duration,
    /// Per-phase timing trace (PA only; `None` for the other algorithms).
    pub trace: Option<PhaseTrace>,
}

fn check(inst: &ProblemInstance, schedule: &prfpga_model::Schedule) {
    if let Err(e) = validate_schedule(inst, schedule) {
        panic!(
            "scheduler produced an invalid schedule for {}: {e}",
            inst.name
        );
    }
}

/// Runs the deterministic PA.
pub fn run_pa(inst: &ProblemInstance, config: &SchedulerConfig) -> InstanceResult {
    let t0 = Instant::now();
    let r = PaScheduler::new(config.clone())
        .schedule_detailed(inst)
        .expect("validated instance");
    let elapsed = t0.elapsed();
    check(inst, &r.schedule);
    InstanceResult {
        instance: inst.name.clone(),
        makespan: r.schedule.makespan(),
        elapsed,
        scheduling_time: r.scheduling_time,
        floorplanning_time: r.floorplanning_time,
        trace: Some(r.trace),
    }
}

/// Runs PA-R under a wall-clock budget (the paper's protocol: the budget
/// equals the IS-5 time on the same instance).
pub fn run_par_timed(
    inst: &ProblemInstance,
    config: &SchedulerConfig,
    budget: Duration,
) -> InstanceResult {
    let cfg = SchedulerConfig {
        time_budget: budget,
        max_iterations: 0,
        ..config.clone()
    };
    let t0 = Instant::now();
    let r = PaRScheduler::new(cfg)
        .schedule_detailed(inst)
        .expect("validated instance");
    let elapsed = t0.elapsed();
    check(inst, &r.schedule);
    InstanceResult {
        instance: inst.name.clone(),
        makespan: r.schedule.makespan(),
        elapsed,
        scheduling_time: elapsed,
        floorplanning_time: Duration::ZERO,
        trace: None,
    }
}

/// Runs PA-R for a fixed iteration count (reproducible variant used in
/// tests and ablations).
pub fn run_par_iters(
    inst: &ProblemInstance,
    config: &SchedulerConfig,
    iterations: usize,
) -> InstanceResult {
    let cfg = SchedulerConfig {
        time_budget: Duration::from_secs(3600),
        max_iterations: iterations,
        ..config.clone()
    };
    let t0 = Instant::now();
    let r = PaRScheduler::new(cfg)
        .schedule_detailed(inst)
        .expect("validated instance");
    let elapsed = t0.elapsed();
    check(inst, &r.schedule);
    InstanceResult {
        instance: inst.name.clone(),
        makespan: r.schedule.makespan(),
        elapsed,
        scheduling_time: elapsed,
        floorplanning_time: Duration::ZERO,
        trace: None,
    }
}

/// Runs IS-k.
pub fn run_isk(inst: &ProblemInstance, config: &IsKConfig) -> InstanceResult {
    let r = IsKScheduler::new(config.clone())
        .schedule_detailed(inst)
        .expect("validated instance");
    check(inst, &r.schedule);
    InstanceResult {
        instance: inst.name.clone(),
        makespan: r.schedule.makespan(),
        elapsed: r.elapsed,
        scheduling_time: r.elapsed,
        floorplanning_time: Duration::ZERO,
        trace: None,
    }
}

/// Runs the HEFT-style baseline.
pub fn run_heft(inst: &ProblemInstance) -> InstanceResult {
    let t0 = Instant::now();
    let s = HeftScheduler::new()
        .schedule(inst)
        .expect("validated instance");
    let elapsed = t0.elapsed();
    check(inst, &s);
    InstanceResult {
        instance: inst.name.clone(),
        makespan: s.makespan(),
        elapsed,
        scheduling_time: elapsed,
        floorplanning_time: Duration::ZERO,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_gen::{GraphConfig, TaskGraphGenerator};
    use prfpga_model::Architecture;

    fn inst() -> ProblemInstance {
        TaskGraphGenerator::new(99).generate(
            "runners",
            &GraphConfig::standard(15),
            Architecture::zedboard(),
        )
    }

    #[test]
    fn all_runners_produce_results() {
        let i = inst();
        let pa = run_pa(&i, &SchedulerConfig::default());
        let par = run_par_iters(&i, &SchedulerConfig::default(), 3);
        let is1 = run_isk(&i, &IsKConfig::is1());
        let heft = run_heft(&i);
        for r in [&pa, &par, &is1, &heft] {
            assert!(r.makespan > 0);
            assert_eq!(r.instance, "runners");
        }
        // PA-R with a few iterations is never worse than... nothing general
        // to assert across algorithms beyond validity; validity was checked
        // inside each runner.
    }

    #[test]
    fn par_timed_respects_minimum_one_iteration() {
        let i = inst();
        let r = run_par_timed(&i, &SchedulerConfig::default(), Duration::ZERO);
        assert!(r.makespan > 0);
    }
}
