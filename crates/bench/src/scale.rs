//! Experiment scale selection.
//!
//! The paper's protocol ran Gurobi-backed IS-k for minutes per instance on
//! a 2013 i7; our reproduction keeps the *protocol* and exposes two scales
//! so both CI (`smoke`) and a patient full run (`full`) are practical. The
//! qualitative shapes the paper reports hold at both scales.

use std::time::Duration;

use prfpga_baseline::IsKConfig;
use prfpga_gen::SuiteConfig;

/// Which scale the harness runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced suite, trimmed IS-5 node budget. Minutes, not hours.
    Smoke,
    /// The paper's full 10 groups x 10 graphs.
    Full,
}

impl Scale {
    /// Reads `PRFPGA_SCALE` (`smoke` | `full`), defaulting to smoke.
    pub fn from_env() -> Scale {
        match std::env::var("PRFPGA_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Smoke,
        }
    }

    /// Materializes the knob settings for this scale.
    pub fn config(self) -> ScaleConfig {
        match self {
            Scale::Smoke => ScaleConfig {
                suite: SuiteConfig {
                    groups: (1..=10).map(|g| g * 10).collect(),
                    graphs_per_group: 3,
                    seed: 0x5EED_2016,
                },
                is5: IsKConfig {
                    node_budget: 20_000,
                    ..IsKConfig::is5()
                },
                fig6_budget: Duration::from_secs(3),
                fig6_sizes: vec![20, 40, 60, 80, 100],
                par_min_budget: Duration::from_millis(50),
            },
            Scale::Full => ScaleConfig {
                suite: SuiteConfig::default(),
                is5: IsKConfig {
                    node_budget: 300_000,
                    ..IsKConfig::is5()
                },
                fig6_budget: Duration::from_secs(30),
                fig6_sizes: vec![20, 40, 60, 80, 100],
                par_min_budget: Duration::from_millis(200),
            },
        }
    }
}

/// Materialized knobs for one scale.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Benchmark suite shape.
    pub suite: SuiteConfig,
    /// IS-5 configuration (node budget is the lever).
    pub is5: IsKConfig,
    /// PA-R budget for the Fig. 6 convergence study.
    pub fig6_budget: Duration,
    /// Task counts for Fig. 6.
    pub fig6_sizes: Vec<usize>,
    /// Floor for the time-matched PA-R budget in Fig. 5 (an IS-5 run can
    /// finish in microseconds on tiny graphs; PA-R still deserves a few
    /// iterations, as the paper always grants it at least one).
    pub par_min_budget: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_is_smaller_than_full() {
        let s = Scale::Smoke.config();
        let f = Scale::Full.config();
        assert!(s.suite.graphs_per_group < f.suite.graphs_per_group);
        assert!(s.is5.node_budget < f.is5.node_budget);
        assert_eq!(
            s.suite.groups, f.suite.groups,
            "same group sizes, fewer graphs"
        );
    }

    #[test]
    fn env_default_is_smoke() {
        // The variable is unlikely to be set in the test environment; if it
        // is, the assertion below still documents the mapping.
        if std::env::var("PRFPGA_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Smoke);
        }
    }
}
