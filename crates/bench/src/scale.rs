//! Experiment scale selection and the task-graph scaling study.
//!
//! The paper's protocol ran Gurobi-backed IS-k for minutes per instance on
//! a 2013 i7; our reproduction keeps the *protocol* and exposes two scales
//! so both CI (`smoke`) and a patient full run (`full`) are practical. The
//! qualitative shapes the paper reports hold at both scales.
//!
//! The second half of this module is the *task-graph axis* study behind
//! `BENCH_scaling.json` (the `scaling` binary): it streams generated
//! 1k–100k-task instances through the PA pipeline with the CSR/bitset fast
//! paths on, measures per-size throughput, phase-breakdown medians and
//! peak RSS, and compares against a committed baseline so cross-PR
//! performance regressions fail loudly instead of silently accumulating.

use std::time::{Duration, Instant};

use prfpga_baseline::IsKConfig;
use prfpga_dag::{reach, Dag, ReachIndex};
use prfpga_gen::{GraphConfig, SuiteConfig, TaskGraphGenerator};
use prfpga_model::{Architecture, Platform, ProblemInstance};
use prfpga_sched::{Phase, SchedulerConfig};
use prfpga_sim::validate_schedule_sweep;
use serde::{Deserialize, Serialize};

use crate::exec::{parallel_map, ExecPolicy};

/// Which scale the harness runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced suite, trimmed IS-5 node budget. Minutes, not hours.
    Smoke,
    /// The paper's full 10 groups x 10 graphs.
    Full,
}

impl Scale {
    /// Reads `PRFPGA_SCALE` (`smoke` | `full`), defaulting to smoke.
    pub fn from_env() -> Scale {
        match std::env::var("PRFPGA_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Smoke,
        }
    }

    /// Materializes the knob settings for this scale.
    pub fn config(self) -> ScaleConfig {
        match self {
            Scale::Smoke => ScaleConfig {
                suite: SuiteConfig {
                    groups: (1..=10).map(|g| g * 10).collect(),
                    graphs_per_group: 3,
                    seed: 0x5EED_2016,
                },
                is5: IsKConfig {
                    node_budget: 20_000,
                    ..IsKConfig::is5()
                },
                fig6_budget: Duration::from_secs(3),
                fig6_sizes: vec![20, 40, 60, 80, 100],
                par_min_budget: Duration::from_millis(50),
            },
            Scale::Full => ScaleConfig {
                suite: SuiteConfig::default(),
                is5: IsKConfig {
                    node_budget: 300_000,
                    ..IsKConfig::is5()
                },
                fig6_budget: Duration::from_secs(30),
                fig6_sizes: vec![20, 40, 60, 80, 100],
                par_min_budget: Duration::from_millis(200),
            },
        }
    }
}

/// Materialized knobs for one scale.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Benchmark suite shape.
    pub suite: SuiteConfig,
    /// IS-5 configuration (node budget is the lever).
    pub is5: IsKConfig,
    /// PA-R budget for the Fig. 6 convergence study.
    pub fig6_budget: Duration,
    /// Task counts for Fig. 6.
    pub fig6_sizes: Vec<usize>,
    /// Floor for the time-matched PA-R budget in Fig. 5 (an IS-5 run can
    /// finish in microseconds on tiny graphs; PA-R still deserves a few
    /// iterations, as the paper always grants it at least one).
    pub par_min_budget: Duration,
}

// ---------------------------------------------------------------------------
// Task-graph scaling study (`BENCH_scaling.json`).
// ---------------------------------------------------------------------------

/// Seed of the scaling corpus; instances are a pure function of
/// `(SCALING_SEED, tasks, index)`, so every run measures identical work.
pub const SCALING_SEED: u64 = 0x5CA_1E06;

/// Median per-phase wall-clock at one size, milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseMs {
    /// Phase name (`impl_select`, `regions`, …).
    pub phase: String,
    /// Median wall-clock across the size's instances, milliseconds.
    pub ms: f64,
}

/// One size point of the scaling trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingEntry {
    /// Tasks per instance.
    pub tasks: usize,
    /// Instances measured at this size.
    pub instances: usize,
    /// Dependency edges of the first instance (corpus fingerprint).
    pub edges: usize,
    /// Median PA pipeline wall-clock per instance, milliseconds.
    pub sched_ms_median: f64,
    /// Scheduling throughput: total tasks / summed per-instance PA
    /// wall-clock. Summing per-instance times (not the fan-out's
    /// wall-clock) keeps the figure comparable across `--threads`.
    pub tasks_per_sec: f64,
    /// PA-R wall-clock for [`ScalingStudyConfig::par_iterations`]
    /// iterations on the first instance, milliseconds.
    pub par_ms: f64,
    /// Peak resident set (`VmHWM`) observed after this size, kB; 0 when
    /// the platform does not expose it. Monotonic per process — the study
    /// runs sizes ascending so each size's figure is attributable.
    pub peak_rss_kb: u64,
    /// Median per-phase breakdown of the PA runs.
    pub phase_ms_median: Vec<PhaseMs>,
}

/// DFS vs bitset-closure reachability microbenchmark at one size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReachBench {
    /// Nodes in the probed DAG.
    pub tasks: usize,
    /// Random (from, to) probes timed per variant.
    pub queries: usize,
    /// Mean DFS cost per probe, nanoseconds.
    pub dfs_ns_per_query: f64,
    /// Mean closure-lookup cost per probe, nanoseconds.
    pub index_ns_per_query: f64,
    /// `dfs_ns_per_query / index_ns_per_query`.
    pub speedup: f64,
}

/// Partition quality at one size: PA's makespan on a real multi-fabric
/// platform vs the same graph on the platform's sum-capacity single-fabric
/// relaxation. The relaxation ignores partitioning and crossing latency
/// entirely, so it is the yardstick the partition heuristic is measured
/// against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionBench {
    /// Platform name (`dual-zedboard`).
    pub platform: String,
    /// Tasks in the probed instance.
    pub tasks: usize,
    /// PA makespan on the partitioned multi-fabric platform, ticks.
    pub makespan_partitioned: u64,
    /// PA makespan on the sum-capacity relaxation, ticks.
    pub makespan_relaxed: u64,
    /// `(partitioned / relaxed - 1) * 100`: the partition + crossing
    /// overhead in percent (can go negative — both runs are heuristic).
    pub overhead_pct: f64,
}

/// The persisted scaling trajectory (`BENCH_scaling.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingReport {
    /// Format tag for forward compatibility.
    pub schema: String,
    /// Per-size measurements, ascending task count.
    pub entries: Vec<ScalingEntry>,
    /// Reachability microbenchmarks (empty when skipped).
    pub reach: Vec<ReachBench>,
    /// Partition-quality probes (empty when skipped; absent in reports
    /// written before the multi-fabric axis existed).
    #[serde(default)]
    pub partition: Vec<PartitionBench>,
}

impl ScalingReport {
    /// Schema tag written by this version of the study.
    pub const SCHEMA: &'static str = "prfpga-scaling-v1";
}

/// Knobs of one scaling-study run.
#[derive(Debug, Clone)]
pub struct ScalingStudyConfig {
    /// Instances per size.
    pub instances: usize,
    /// PA-R iterations for the per-size end-to-end randomized run.
    pub par_iterations: usize,
    /// Scheduler configuration (CSR fast paths on by default).
    pub sched: SchedulerConfig,
}

impl Default for ScalingStudyConfig {
    fn default() -> Self {
        ScalingStudyConfig {
            instances: 3,
            par_iterations: 2,
            sched: SchedulerConfig::default(),
        }
    }
}

/// Generates the deterministic corpus for one size.
pub fn scaling_instances(tasks: usize, count: usize) -> Vec<ProblemInstance> {
    let generator = TaskGraphGenerator::new(SCALING_SEED);
    (0..count)
        .map(|i| {
            generator.generate(
                &format!("scale_{tasks}_{i}"),
                &GraphConfig::standard(tasks),
                Architecture::zedboard_pr(),
            )
        })
        .collect()
}

/// Peak resident set (`VmHWM`) of this process in kB; 0 when unavailable.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

/// One unmeasured PA run on a small corpus instance, priming page tables,
/// allocator arenas and code paths so a fresh process's first *measured*
/// run is not 20%+ slower than steady state — enough, on sub-second
/// sizes, to trip the CI throughput gate without any real regression.
pub fn warmup_run() {
    let inst = &scaling_instances(1000, 1)[0];
    let r = prfpga_sched::PaScheduler::new(SchedulerConfig::default())
        .schedule(inst)
        .expect("validated instance");
    std::hint::black_box(r);
}

/// Measures one size point: PA over every instance of the corpus (fanned
/// out under `exec`), PA-R end-to-end on the first instance, every
/// schedule revalidated with the sweep-line validator (the quadratic
/// oracle is impractical at 50k+ tasks).
pub fn measure_scaling_entry(
    tasks: usize,
    config: &ScalingStudyConfig,
    exec: ExecPolicy,
) -> ScalingEntry {
    let instances = scaling_instances(tasks, config.instances);
    let results = parallel_map(&instances, exec, |_, inst| {
        let t0 = Instant::now();
        let r = prfpga_sched::PaScheduler::new(config.sched.clone())
            .schedule_detailed(inst)
            .expect("validated instance");
        let elapsed = t0.elapsed();
        validate_schedule_sweep(inst, &r.schedule).expect("PA schedule validates");
        (elapsed, r.trace)
    });

    let mut sched_ms: Vec<f64> = results.iter().map(|(e, _)| e.as_secs_f64() * 1e3).collect();
    let total_secs: f64 = results.iter().map(|(e, _)| e.as_secs_f64()).sum();
    let phase_ms_median = Phase::ALL
        .iter()
        .map(|&p| {
            let mut ms: Vec<f64> = results
                .iter()
                .map(|(_, t)| t.time(p).as_secs_f64() * 1e3)
                .collect();
            PhaseMs {
                phase: p.name().to_string(),
                ms: median(&mut ms),
            }
        })
        .collect();

    // PA-R end-to-end (bounded iterations, reproducible) on instance 0;
    // `par_iterations: 0` skips the leg (CI's trimmed smoke run).
    let par_ms = if config.par_iterations == 0 {
        0.0
    } else {
        let t0 = Instant::now();
        let par = prfpga_sched::PaRScheduler::new(SchedulerConfig {
            time_budget: Duration::from_secs(3600),
            max_iterations: config.par_iterations,
            ..config.sched.clone()
        })
        .schedule_detailed(&instances[0])
        .expect("validated instance");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        validate_schedule_sweep(&instances[0], &par.schedule).expect("PA-R schedule validates");
        ms
    };

    ScalingEntry {
        tasks,
        instances: instances.len(),
        edges: instances[0].graph.edges.len(),
        sched_ms_median: median(&mut sched_ms),
        tasks_per_sec: (tasks * instances.len()) as f64 / total_secs.max(1e-9),
        par_ms,
        peak_rss_kb: peak_rss_kb(),
        phase_ms_median,
    }
}

/// Measures one partition-quality point: PA on `tasks` tasks targeting
/// [`Platform::dual_zedboard`] (partition phase, per-fabric floorplanning
/// and crossing latencies) vs PA on the same graph and implementation
/// pool targeting the platform's sum-capacity relaxation device. Both
/// schedules are sweep-validated against their own instance.
pub fn partition_quality_bench(tasks: usize) -> PartitionBench {
    let platform = Platform::dual_zedboard();
    let generator = TaskGraphGenerator::new(SCALING_SEED);
    let mf = generator.generate(
        &format!("part_{tasks}"),
        &GraphConfig::standard(tasks),
        Architecture::on_platform(2, platform.clone()),
    );
    // The relaxation reuses the multi-fabric instance's graph and pool so
    // both runs schedule identical work; only the target differs.
    let relaxed = ProblemInstance::new(
        format!("part_{tasks}_relaxed"),
        Architecture::new(2, platform.relaxation_device()),
        mf.graph.clone(),
        mf.impls.clone(),
    )
    .expect("relaxation only grows capacity");

    let run = |inst: &ProblemInstance| -> u64 {
        let s = prfpga_sched::PaScheduler::new(SchedulerConfig::default())
            .schedule(inst)
            .expect("validated instance");
        validate_schedule_sweep(inst, &s).expect("PA schedule validates");
        s.makespan()
    };
    let makespan_partitioned = run(&mf);
    let makespan_relaxed = run(&relaxed);
    PartitionBench {
        platform: platform.name,
        tasks,
        makespan_partitioned,
        makespan_relaxed,
        overhead_pct: (makespan_partitioned as f64 / makespan_relaxed.max(1) as f64 - 1.0) * 100.0,
    }
}

/// Times DFS vs bitset-closure reachability over `queries` deterministic
/// pseudo-random probe pairs on one generated instance, verifying both
/// variants agree on every probe.
pub fn reach_microbench(tasks: usize, queries: usize) -> ReachBench {
    let inst = &scaling_instances(tasks, 1)[0];
    let dag = Dag::from_taskgraph(&inst.graph).expect("generated graphs are acyclic");
    let mut index = ReachIndex::new();
    index.sync(&dag, &dag.topo_order());

    // Deterministic probe pairs (splitmix-style mix, no external RNG).
    let n = dag.len() as u64;
    let pairs: Vec<(u32, u32)> = (0..queries as u64)
        .map(|i| {
            let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ SCALING_SEED;
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            ((x % n) as u32, ((x >> 32) % n) as u32)
        })
        .collect();

    let t0 = Instant::now();
    let dfs_hits = pairs
        .iter()
        .filter(|&&(a, b)| reach::is_reachable(&dag, a, b))
        .count();
    let dfs_ns = t0.elapsed().as_secs_f64() * 1e9 / queries as f64;

    let t0 = Instant::now();
    let idx_hits = pairs.iter().filter(|&&(a, b)| index.query(a, b)).count();
    let index_ns = t0.elapsed().as_secs_f64() * 1e9 / queries as f64;

    assert_eq!(dfs_hits, idx_hits, "closure must agree with DFS");
    ReachBench {
        tasks,
        queries,
        dfs_ns_per_query: dfs_ns,
        index_ns_per_query: index_ns,
        speedup: dfs_ns / index_ns.max(1e-9),
    }
}

/// Compares `current` against `baseline`: an error lists every size whose
/// throughput dropped more than `tolerance_pct` percent. Sizes present
/// only on one side are ignored (the baseline pins CI sizes; deeper local
/// runs may carry more).
pub fn check_throughput_regression(
    baseline: &ScalingReport,
    current: &ScalingReport,
    tolerance_pct: f64,
) -> Result<(), String> {
    let mut failures = Vec::new();
    for base in &baseline.entries {
        let Some(cur) = current.entries.iter().find(|e| e.tasks == base.tasks) else {
            continue;
        };
        let floor = base.tasks_per_sec * (1.0 - tolerance_pct / 100.0);
        if cur.tasks_per_sec < floor {
            failures.push(format!(
                "{} tasks: {:.0} tasks/s < {:.0} ({}% below baseline {:.0})",
                base.tasks, cur.tasks_per_sec, floor, tolerance_pct, base.tasks_per_sec
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_is_smaller_than_full() {
        let s = Scale::Smoke.config();
        let f = Scale::Full.config();
        assert!(s.suite.graphs_per_group < f.suite.graphs_per_group);
        assert!(s.is5.node_budget < f.is5.node_budget);
        assert_eq!(
            s.suite.groups, f.suite.groups,
            "same group sizes, fewer graphs"
        );
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn regression_check_flags_slowdowns_only() {
        let entry = |tasks: usize, tps: f64| ScalingEntry {
            tasks,
            instances: 1,
            edges: 0,
            sched_ms_median: 0.0,
            tasks_per_sec: tps,
            par_ms: 0.0,
            peak_rss_kb: 0,
            phase_ms_median: Vec::new(),
        };
        let report = |entries: Vec<ScalingEntry>| ScalingReport {
            schema: ScalingReport::SCHEMA.into(),
            entries,
            reach: Vec::new(),
            partition: Vec::new(),
        };
        let base = report(vec![entry(1000, 1000.0), entry(10_000, 500.0)]);
        // Within tolerance, faster, and baseline-only sizes all pass.
        let ok = report(vec![entry(1000, 810.0), entry(10_000, 800.0)]);
        assert!(check_throughput_regression(&base, &ok, 20.0).is_ok());
        // 21% below fails and names the size.
        let slow = report(vec![entry(1000, 790.0), entry(10_000, 500.0)]);
        let err = check_throughput_regression(&base, &slow, 20.0).unwrap_err();
        assert!(err.contains("1000 tasks"), "{err}");
        assert!(!err.contains("10000"), "{err}");
    }

    #[test]
    fn scaling_report_round_trips_through_json() {
        let report = ScalingReport {
            schema: ScalingReport::SCHEMA.into(),
            entries: vec![ScalingEntry {
                tasks: 1000,
                instances: 3,
                edges: 1500,
                sched_ms_median: 12.5,
                tasks_per_sec: 80_000.0,
                par_ms: 30.0,
                peak_rss_kb: 10_240,
                phase_ms_median: vec![PhaseMs {
                    phase: "regions".into(),
                    ms: 4.25,
                }],
            }],
            reach: vec![ReachBench {
                tasks: 1000,
                queries: 10_000,
                dfs_ns_per_query: 500.0,
                index_ns_per_query: 10.0,
                speedup: 50.0,
            }],
            partition: vec![PartitionBench {
                platform: "dual-zedboard".into(),
                tasks: 120,
                makespan_partitioned: 1100,
                makespan_relaxed: 1000,
                overhead_pct: 10.0,
            }],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ScalingReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        // Reports written before the partition row existed still parse.
        let legacy = json.replace("\"partition\"", "\"_partition_gone\"");
        let back: ScalingReport = serde_json::from_str(&legacy).unwrap();
        assert!(back.partition.is_empty());
    }

    #[test]
    fn scaling_corpus_is_deterministic() {
        let a = scaling_instances(60, 2);
        let b = scaling_instances(60, 2);
        assert_eq!(a, b);
        assert_eq!(a[0].graph.len(), 60);
        assert_ne!(a[0].graph.edges, a[1].graph.edges, "distinct instances");
    }

    #[test]
    fn partition_bench_runs_on_small_graph() {
        let b = partition_quality_bench(30);
        assert_eq!(b.platform, "dual-zedboard");
        assert!(b.makespan_partitioned > 0 && b.makespan_relaxed > 0);
        assert!(b.overhead_pct.is_finite());
    }

    #[test]
    fn reach_microbench_runs_on_small_graph() {
        let b = reach_microbench(120, 500);
        assert_eq!(b.tasks, 120);
        assert!(b.dfs_ns_per_query > 0.0 && b.index_ns_per_query > 0.0);
    }

    #[test]
    fn env_default_is_smoke() {
        // The variable is unlikely to be set in the test environment; if it
        // is, the assertion below still documents the mapping.
        if std::env::var("PRFPGA_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Smoke);
        }
    }
}
