//! Server load study: seeded synthetic traffic against the scheduling
//! daemon (`BENCH_server.json`, the `loadgen` binary).
//!
//! A fleet of closed-loop clients replays a deterministic request blend
//! (rotating seeds, one algorithm, one deadline envelope) against an
//! in-process — or, with `--tcp`, a real socket — server, sweep-validates
//! every returned schedule client-side, and writes throughput, latency
//! percentiles and the deadline-hit rate to JSON. Like the scaling study,
//! a committed baseline plus `--check` turns cross-PR service-throughput
//! regressions into hard CI failures.

use std::time::Instant;

use prfpga_model::service::{
    AlgoChoice, InstanceSpec, ScheduleRequest, ServiceRequest, ServiceResponse,
};
use prfpga_model::ProblemInstance;
use prfpga_server::{in_proc, tcp_client, ClientConn, Server, ServerConfig, TcpTransport};
use prfpga_sim::validate_schedule_sweep;
use serde::{Deserialize, Serialize};

/// Traffic shape of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total schedule requests across all clients.
    pub requests: usize,
    /// Concurrent closed-loop clients (0 = one per worker).
    pub clients: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Tasks per generated instance.
    pub tasks: usize,
    /// Distinct generator seeds the traffic rotates through.
    pub seeds: u64,
    /// Algorithm every request asks for.
    pub algo: AlgoChoice,
    /// Per-request deadline, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-request inner search budget, milliseconds.
    pub budget_ms: Option<u64>,
    /// Drive a real TCP socket instead of the in-process transport.
    pub tcp: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            requests: 400,
            clients: 0,
            workers: ServerConfig::default().workers,
            tasks: 60,
            seeds: 8,
            algo: AlgoChoice::Portfolio,
            deadline_ms: Some(50),
            // Well under the deadline: the inner search budget must leave
            // room for queueing, validation, framing — and for core
            // contention, since every in-flight portfolio request races
            // several members at once.
            budget_ms: Some(10),
            tcp: false,
        }
    }
}

/// One load run's results (`prfpga-server-v1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerLoadReport {
    /// Schema tag, [`ServerLoadReport::SCHEMA`].
    pub schema: String,
    /// `in-proc` or `tcp`.
    pub transport: String,
    /// Algorithm the traffic requested.
    pub algo: String,
    /// Tasks per instance.
    pub tasks: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Schedule requests sent.
    pub requests: u64,
    /// `ok` responses.
    pub ok: u64,
    /// Typed error responses (admission rejections included).
    pub errors: u64,
    /// Responses whose schedule failed the client-side sweep validation
    /// (any nonzero value fails the run).
    pub invalid_schedules: u64,
    /// Wall-clock of the traffic phase, seconds.
    pub duration_s: f64,
    /// Served requests per second over the traffic phase.
    pub req_per_sec: f64,
    /// Requests that declared a deadline.
    pub deadline_declared: u64,
    /// Declared-deadline requests answered in time.
    pub deadline_met: u64,
    /// `deadline_met / deadline_declared`, percent (100 when none).
    pub deadline_hit_rate_pct: f64,
    /// Server-side median service time, microseconds.
    pub p50_us: u64,
    /// Server-side 99th-percentile service time, microseconds.
    pub p99_us: u64,
    /// Worker workspace rewinds over the run.
    pub workspace_reuses: u64,
    /// Worker workspace rebuilds over the run.
    pub workspace_rebuilds: u64,
    /// Admission rejections: queue full.
    pub rejected_queue_full: u64,
    /// Admission rejections: deadline unmeetable.
    pub rejected_unmeetable: u64,
}

impl ServerLoadReport {
    /// Schema tag of the report format.
    pub const SCHEMA: &'static str = "prfpga-server-v1";
}

/// Compares a run against a committed baseline: fails when any schedule
/// was invalid or throughput dropped more than `tolerance_pct` percent.
pub fn check_server_regression(
    baseline: &ServerLoadReport,
    current: &ServerLoadReport,
    tolerance_pct: f64,
) -> Result<(), String> {
    if current.invalid_schedules > 0 {
        return Err(format!(
            "{} responses failed client-side sweep validation",
            current.invalid_schedules
        ));
    }
    let floor = baseline.req_per_sec * (1.0 - tolerance_pct / 100.0);
    if current.req_per_sec < floor {
        return Err(format!(
            "throughput {:.1} req/s is below {:.1} (baseline {:.1} - {tolerance_pct}%)",
            current.req_per_sec, floor, baseline.req_per_sec
        ));
    }
    Ok(())
}

/// Builds the wire line of request `id` for profile seed `seed`.
fn request_line(config: &LoadConfig, id: u64, seed: u64) -> String {
    let req = ServiceRequest::Schedule(Box::new(ScheduleRequest {
        id,
        algo: config.algo,
        instance: InstanceSpec::Generated {
            tasks: config.tasks,
            seed,
            platform: None,
            cores: 2,
        },
        deadline_ms: config.deadline_ms,
        budget_ms: config.budget_ms,
        events: Vec::new(),
    }));
    serde_json::to_string(&req).expect("requests serialize")
}

/// Per-client tallies, merged into the report.
#[derive(Default)]
struct ClientTally {
    ok: u64,
    errors: u64,
    invalid: u64,
    declared: u64,
    met: u64,
}

fn drive_client(
    config: &LoadConfig,
    client: &mut ClientConn,
    client_idx: usize,
    count: usize,
    corpus: &[ProblemInstance],
) -> ClientTally {
    let mut tally = ClientTally::default();
    for i in 0..count {
        let seed = (client_idx + i) as u64 % config.seeds;
        let id = client_idx as u64 * 1_000_000 + i as u64;
        let line = request_line(config, id, seed);
        client.send_line(&line).expect("send request");
        let resp = client
            .recv_line()
            .expect("read response")
            .expect("response before EOF");
        let resp: ServiceResponse =
            serde_json::from_str(&resp).unwrap_or_else(|e| panic!("bad response {resp:?}: {e:?}"));
        match resp {
            ServiceResponse::Ok(reply) => {
                tally.ok += 1;
                if validate_schedule_sweep(&corpus[seed as usize], &reply.schedule).is_err() {
                    tally.invalid += 1;
                }
                if config.deadline_ms.is_some() {
                    tally.declared += 1;
                    if reply.deadline_met {
                        tally.met += 1;
                    }
                }
            }
            _ => tally.errors += 1,
        }
    }
    tally
}

/// Runs one load study: starts a server, drives the traffic, stops the
/// server, and merges client- and server-side tallies into the report.
pub fn run_server_load(config: &LoadConfig) -> ServerLoadReport {
    let clients = if config.clients == 0 {
        config.workers
    } else {
        config.clients
    };
    let server_config = ServerConfig {
        workers: config.workers,
        prewarm_tasks: config.tasks,
        log_every: None,
        ..ServerConfig::default()
    };

    // The named profiles the traffic rotates through, regenerated once
    // here so every response can be sweep-validated client-side.
    let corpus: Vec<ProblemInstance> = (0..config.seeds)
        .map(|seed| {
            prfpga_gen::service_instance(config.tasks, seed, None, 2).expect("profile generates")
        })
        .collect();

    // Start the server on the chosen transport and connect the fleet.
    let (handle, mut conns): (_, Vec<ClientConn>) = if config.tcp {
        let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
        let addr = transport.local_addr().expect("local addr");
        let handle = Server::start(transport, server_config);
        let conns = (0..clients)
            .map(|_| tcp_client(addr).expect("connect"))
            .collect();
        (handle, conns)
    } else {
        let (connector, transport) = in_proc();
        let handle = Server::start(transport, server_config);
        let conns = (0..clients)
            .map(|_| connector.connect().expect("connect"))
            .collect();
        (handle, conns)
    };

    // Closed-loop traffic: spread the request count over the fleet.
    let per_client = config.requests / clients;
    let remainder = config.requests % clients;
    let started = Instant::now();
    let mut tallies: Vec<ClientTally> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = conns
            .iter_mut()
            .enumerate()
            .map(|(c, client)| {
                let corpus = &corpus;
                let count = per_client + usize::from(c < remainder);
                scope.spawn(move || drive_client(config, client, c, count, corpus))
            })
            .collect();
        for h in handles {
            tallies.push(h.join().expect("client thread"));
        }
    });
    let duration = started.elapsed();
    drop(conns);
    let stats = handle.stop();

    let sum = |f: fn(&ClientTally) -> u64| tallies.iter().map(f).sum::<u64>();
    let (ok, errors, invalid) = (sum(|t| t.ok), sum(|t| t.errors), sum(|t| t.invalid));
    let (declared, met) = (sum(|t| t.declared), sum(|t| t.met));
    ServerLoadReport {
        schema: ServerLoadReport::SCHEMA.into(),
        transport: if config.tcp { "tcp" } else { "in-proc" }.into(),
        algo: config.algo.to_string(),
        tasks: config.tasks,
        workers: config.workers,
        clients,
        requests: config.requests as u64,
        ok,
        errors,
        invalid_schedules: invalid,
        duration_s: duration.as_secs_f64(),
        req_per_sec: ok as f64 / duration.as_secs_f64().max(f64::EPSILON),
        deadline_declared: declared,
        deadline_met: met,
        deadline_hit_rate_pct: if declared == 0 {
            100.0
        } else {
            met as f64 * 100.0 / declared as f64
        },
        p50_us: stats.p50_us,
        p99_us: stats.p99_us,
        workspace_reuses: stats.workspace_reuses,
        workspace_rebuilds: stats.workspace_rebuilds,
        rejected_queue_full: stats.rejected_queue_full,
        rejected_unmeetable: stats.rejected_unmeetable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> LoadConfig {
        LoadConfig {
            requests: 12,
            clients: 2,
            workers: 2,
            tasks: 12,
            seeds: 3,
            algo: AlgoChoice::Pa,
            deadline_ms: Some(5_000),
            budget_ms: Some(20),
            tcp: false,
        }
    }

    #[test]
    fn tiny_load_run_answers_everything_validly() {
        let report = run_server_load(&tiny_config());
        assert_eq!(report.ok, 12);
        assert_eq!(report.errors, 0);
        assert_eq!(report.invalid_schedules, 0);
        assert_eq!(report.deadline_declared, 12);
        assert!(report.req_per_sec > 0.0);
        assert!(report.workspace_reuses + report.workspace_rebuilds > 0);
    }

    #[test]
    fn tcp_load_run_matches_the_in_proc_path() {
        let report = run_server_load(&LoadConfig {
            requests: 6,
            tcp: true,
            ..tiny_config()
        });
        assert_eq!(report.transport, "tcp");
        assert_eq!(report.ok, 6);
        assert_eq!(report.invalid_schedules, 0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_server_load(&LoadConfig {
            requests: 4,
            ..tiny_config()
        });
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ServerLoadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn regression_check_flags_drops_and_invalid_schedules() {
        let entry = |rps: f64, invalid: u64| ServerLoadReport {
            schema: ServerLoadReport::SCHEMA.into(),
            transport: "in-proc".into(),
            algo: "portfolio".into(),
            tasks: 60,
            workers: 4,
            clients: 4,
            requests: 100,
            ok: 100,
            errors: 0,
            invalid_schedules: invalid,
            duration_s: 1.0,
            req_per_sec: rps,
            deadline_declared: 100,
            deadline_met: 99,
            deadline_hit_rate_pct: 99.0,
            p50_us: 20_000,
            p99_us: 40_000,
            workspace_reuses: 50,
            workspace_rebuilds: 50,
            rejected_queue_full: 0,
            rejected_unmeetable: 0,
        };
        let base = entry(150.0, 0);
        assert!(check_server_regression(&base, &entry(125.0, 0), 20.0).is_ok());
        let err = check_server_regression(&base, &entry(110.0, 0), 20.0).unwrap_err();
        assert!(err.contains("below"), "{err}");
        let err = check_server_regression(&base, &entry(150.0, 1), 20.0).unwrap_err();
        assert!(err.contains("sweep"), "{err}");
    }
}
