//! The parallel suite executor must be a pure execution-policy change:
//! identical schedules, makespans and rendered (timing-free) report
//! sections at any thread count, byte for byte.

use prfpga_bench::experiments::{
    fig2_section, improvement_section, improvement_summaries, run_suite_exec, Algo,
};
use prfpga_bench::{ExecPolicy, Scale};
use prfpga_gen::SuiteConfig;

/// Mini-suite over deterministic algorithms only. PA-R's time-matched
/// budget derives from a *measured* IS-5 wall-clock, so its iteration
/// count — unlike everything below — legitimately varies run to run and
/// has no place in a byte-identity check.
fn run(exec: ExecPolicy) -> prfpga_bench::experiments::SuiteResults {
    let mut cfg = Scale::Smoke.config();
    cfg.suite = SuiteConfig {
        groups: vec![10, 20, 30],
        graphs_per_group: 3,
        seed: 0xD1FF,
    };
    run_suite_exec(&cfg, &[Algo::Pa, Algo::Is1, Algo::Heft], exec)
}

/// Every timing-free rendering of the results (the data behind Figs. 2-5).
fn canonical_report(r: &prfpga_bench::experiments::SuiteResults) -> String {
    let mut out = fig2_section_deterministic(r);
    out.push_str(&improvement_section(
        "PA vs IS-1",
        &improvement_summaries(r, Algo::Pa, Algo::Is1),
    ));
    out.push_str(&improvement_section(
        "PA vs HEFT",
        &improvement_summaries(r, Algo::Pa, Algo::Heft),
    ));
    out
}

/// Fig. 2 restricted to the algorithms this test runs.
fn fig2_section_deterministic(r: &prfpga_bench::experiments::SuiteResults) -> String {
    // fig2_section expects PA-R/IS-5 columns; render the deterministic
    // subset through the same per-group means instead.
    let mut out = String::new();
    for g in &r.groups {
        for algo in [Algo::Pa, Algo::Is1, Algo::Heft] {
            let makespans: Vec<String> = g.per_algo[&algo]
                .iter()
                .map(|ir| format!("{}:{}", ir.instance, ir.makespan))
                .collect();
            out.push_str(&format!("{} {:?} {}\n", g.tasks, algo, makespans.join(" ")));
        }
    }
    let _ = fig2_section; // full renderer exercised in experiments tests
    out
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    let serial = canonical_report(&run(ExecPolicy::Serial));
    let two = canonical_report(&run(ExecPolicy::Threads(2)));
    let many = canonical_report(&run(ExecPolicy::Threads(
        ExecPolicy::default_threads().max(4),
    )));
    assert_eq!(serial, two, "2-thread report diverged from serial");
    assert_eq!(serial, many, "N-thread report diverged from serial");
    // The canonical report is non-trivial: every group and algorithm shows.
    assert!(serial.matches('\n').count() > 9);
}

#[test]
fn per_instance_results_merge_in_suite_order() {
    let serial = run(ExecPolicy::Serial);
    let parallel = run(ExecPolicy::Threads(3));
    assert_eq!(parallel.groups.len(), 3);
    for (gs, gp) in serial.groups.iter().zip(&parallel.groups) {
        assert_eq!(gs.tasks, gp.tasks);
        for algo in [Algo::Pa, Algo::Is1, Algo::Heft] {
            let names = |g: &prfpga_bench::experiments::GroupResults| -> Vec<String> {
                g.per_algo[&algo]
                    .iter()
                    .map(|ir| ir.instance.clone())
                    .collect()
            };
            assert_eq!(names(gs), names(gp), "{algo:?} results out of suite order");
            assert_eq!(gp.per_algo[&algo].len(), 3);
        }
    }
}
