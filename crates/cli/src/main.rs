//! `prfpga` — command-line interface for the scheduling toolkit.
//!
//! ```text
//! prfpga generate --tasks 30 --seed 7 --out app.json [--topology layered]
//!                 [--platform alveo-u250|dual-zedboard|xc7z020|...]
//! prfpga schedule --input app.json [--algo pa|par|is1|is5|heft|portfolio]
//!                 [--gantt] [--out schedule.json] [--budget-ms 500]
//!                 [--deadline-ms 50] [--portfolio] [--trace]
//!                 [--threads N | --serial]
//! prfpga validate --input app.json --schedule schedule.json
//! prfpga replay --input app.json [--trace events.json | --events 20 --seed 7]
//!               [--cascade 50] [--save-trace events.json] [--out repaired.json]
//! prfpga devices
//! prfpga platforms
//! prfpga serve [--addr 127.0.0.1:7070] [--workers N] [--queue-bound N]
//!              [--prewarm-tasks N] [--log-every-s S] [--quiet]
//! ```
//!
//! Instances carry their target inside the JSON, so `schedule`, `validate`
//! and `replay` accept multi-fabric platform instances transparently.

use std::process::ExitCode;
use std::time::Duration;

use prfpga_baseline::{HeftScheduler, IsKConfig, IsKScheduler};
use prfpga_gen::{EventConfig, EventTraceGenerator, GraphConfig, TaskGraphGenerator, Topology};
use prfpga_model::{
    Architecture, Device, EventTrace, Platform, ProblemInstance, Schedule, ScheduleEvent,
};
use prfpga_portfolio::{Portfolio, PortfolioConfig};
use prfpga_sched::{
    CancelToken, PaRScheduler, PaScheduler, RepairConfig, RepairEngine, SchedulerConfig,
};
use prfpga_server::{Server, ServerConfig, TcpTransport};
use prfpga_sim::{render_gantt, schedule_stats, validate_schedule_sweep};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  prfpga generate --tasks <n> [--seed <s>] [--topology layered|chain|forkjoin|seriesparallel]
                  [--cores <p>] [--platform alveo-u250|dual-zedboard|xc7z010|xc7z020|xc7z045]
                  [--device <name>]       (alias of --platform for 1-fabric targets)
                  [--recfreq <bits-per-tick>] [--comm <max-ticks>] --out <file.json>
  prfpga schedule --input <file.json> [--algo pa|par|is1|is5|heft|portfolio]
                  [--budget-ms <ms>] [--gantt] [--out <schedule.json>]
                  [--deadline-ms <ms>]    (hard wall-clock budget; PA/PA-R
                                           degrade to their best-so-far
                                           schedule, IS-k errors cleanly,
                                           portfolio always answers)
                  [--portfolio]           (shorthand for --algo portfolio)
                  [--first-feasible]      (portfolio: first clean finisher
                                           wins and cancels the rest)
                  [--trace]               (PA: per-phase timing table;
                                           portfolio: per-member race table)
                  [--threads <n>]         (PA-R workers; default: all cores,
                                           or the PRFPGA_THREADS variable)
                  [--serial]              (force single-threaded PA-R)
                  [--no-workspace-reuse]  (fresh buffers per pipeline run;
                                           byte-identical, slower)
                  [--no-csr]              (adjacency+DFS graph paths instead
                                           of CSR/bitset; byte-identical,
                                           slower at 10k+ tasks)
  prfpga validate --input <file.json> --schedule <schedule.json>
  prfpga replay   --input <file.json> [--trace <events.json>]
                  [--events <n>] [--seed <s>]   (synthesize a trace with the
                                                 standard perturbation mix
                                                 when --trace is omitted)
                  [--cascade <pct>]             (full re-solve threshold as a
                                                 percent of live tasks;
                                                 default 50)
                  [--save-trace <events.json>] [--out <schedule.json>]
  prfpga devices
  prfpga platforms
  prfpga serve    [--addr 127.0.0.1:7070] [--workers <n>] [--queue-bound <n>]
                  [--prewarm-tasks <n>] [--log-every-s <s>] [--quiet]
                  (scheduling daemon: newline-delimited JSON requests, see
                   DESIGN.md section 8.4; runs until killed)";

/// Pulls the value following `--flag`.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Worker count for PA-R, mirroring the bench executor's precedence:
/// `--serial` beats `--threads <n>` beats `PRFPGA_THREADS` (a count or
/// `serial`) beats all available cores.
fn thread_policy(args: &[String]) -> Result<usize, String> {
    let default = std::thread::available_parallelism().map_or(1, |n| n.get());
    if has(args, "--serial") {
        return Ok(1);
    }
    if let Some(s) = flag(args, "--threads") {
        let n: usize = s.parse().map_err(|e| format!("--threads: {e}"))?;
        if n == 0 {
            return Err("--threads must be at least 1".into());
        }
        return Ok(n);
    }
    Ok(match std::env::var("PRFPGA_THREADS").ok().as_deref() {
        Some("serial") | Some("SERIAL") => 1,
        Some(s) => s.parse().ok().filter(|&n| n > 0).unwrap_or(default),
        None => default,
    })
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("generate") => generate(args),
        Some("schedule") => schedule(args),
        Some("validate") => validate(args),
        Some("replay") => replay(args),
        Some("devices") => {
            devices();
            Ok(())
        }
        Some("platforms") => {
            platforms();
            Ok(())
        }
        Some("serve") => serve(args),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given".into()),
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let tasks: usize = flag(args, "--tasks")
        .ok_or("--tasks is required")?
        .parse()
        .map_err(|e| format!("--tasks: {e}"))?;
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(0x5EED);
    let out = flag(args, "--out").ok_or("--out is required")?;
    let topology = match flag(args, "--topology").as_deref() {
        None | Some("layered") => Topology::Layered,
        Some("chain") => Topology::Chain,
        Some("forkjoin") => Topology::ForkJoin,
        Some("seriesparallel") => Topology::SeriesParallel,
        Some(t) => return Err(format!("unknown topology `{t}`")),
    };
    // `--platform` and `--device` both resolve through the platform
    // catalog; `--device` is the 1-fabric alias the original CLI shipped
    // with. A 1-fabric resolution builds the classic single-device
    // architecture (byte-identical schedules); several fabrics attach the
    // platform.
    let name = match (flag(args, "--platform"), flag(args, "--device")) {
        (Some(p), _) => p,
        (None, Some(d)) => d,
        (None, None) => "xc7z020".to_string(),
    };
    let mut platform =
        Platform::by_name(&name).ok_or_else(|| format!("unknown platform `{name}`"))?;
    // Effective configuration throughput (bits per tick); defaults to the
    // 50 MB/s sustained figure of real PR runtimes, like the benchmark
    // suite. Pass --recfreq 3200 for raw datasheet ICAP bandwidth. Applies
    // to every fabric of a multi-fabric platform; omit it to keep the
    // catalog's per-fabric throughputs.
    if let Some(rf) = flag(args, "--recfreq")
        .map(|s| s.parse::<u64>().map_err(|e| format!("--recfreq: {e}")))
        .transpose()?
    {
        for f in &mut platform.fabrics {
            f.rec_freq = rf;
        }
    } else if platform.num_fabrics() == 1 {
        platform.fabrics[0].rec_freq = 400;
    }
    let cores: usize = flag(args, "--cores")
        .map(|s| s.parse().map_err(|e| format!("--cores: {e}")))
        .transpose()?
        .unwrap_or(2);
    let architecture = if platform.num_fabrics() == 1 {
        Architecture::new(cores, platform.fabrics.pop().expect("one fabric"))
    } else {
        Architecture::on_platform(cores, platform)
    };

    // Optional communication costs: --comm <max> samples each edge cost
    // uniformly from [max/10, max] ticks (0 = the paper's base model).
    let comm_max: u64 = flag(args, "--comm")
        .map(|s| s.parse().map_err(|e| format!("--comm: {e}")))
        .transpose()?
        .unwrap_or(0);
    let config = GraphConfig {
        topology,
        comm_cost_range: if comm_max == 0 {
            (0, 0)
        } else {
            (comm_max / 10, comm_max)
        },
        ..GraphConfig::standard(tasks)
    };
    let inst = TaskGraphGenerator::new(seed).generate(
        &format!("cli_t{tasks}_s{seed}"),
        &config,
        architecture,
    );
    inst.save(&out).map_err(|e| e.to_string())?;
    let target = match &inst.architecture.platform {
        Some(p) => format!(
            "{} ({} fabrics, crossing {} ticks)",
            p.name,
            p.num_fabrics(),
            p.crossing_latency
        ),
        None => inst.architecture.device.name.clone(),
    };
    println!(
        "wrote instance `{}` on {target}: {} tasks, {} edges, {} implementations -> {out}",
        inst.name,
        inst.graph.len(),
        inst.graph.edges.len(),
        inst.impls.len()
    );
    Ok(())
}

fn schedule(args: &[String]) -> Result<(), String> {
    let input = flag(args, "--input").ok_or("--input is required")?;
    let inst = ProblemInstance::load(&input).map_err(|e| e.to_string())?;
    let algo = if has(args, "--portfolio") {
        "portfolio".to_string()
    } else {
        flag(args, "--algo").unwrap_or_else(|| "pa".into())
    };
    let budget_ms: u64 = flag(args, "--budget-ms")
        .map(|s| s.parse().map_err(|e| format!("--budget-ms: {e}")))
        .transpose()?
        .unwrap_or(1000);
    let deadline: Option<Duration> = flag(args, "--deadline-ms")
        .map(|s| s.parse().map_err(|e| format!("--deadline-ms: {e}")))
        .transpose()?
        .map(Duration::from_millis);

    let trace = has(args, "--trace");
    if trace && algo != "pa" && algo != "portfolio" {
        return Err("--trace requires --algo pa or portfolio".into());
    }
    let threads = thread_policy(args)?;
    // Escape hatch for the warm-workspace fast path; schedules are
    // byte-identical either way, only throughput differs.
    let workspace_reuse = !has(args, "--no-workspace-reuse");
    // Likewise for the CSR/bitset graph fast paths.
    let csr_paths = !has(args, "--no-csr");
    // One cooperative token for the whole run; `--deadline-ms` arms it,
    // otherwise it never fires and behaviour is byte-identical to the
    // deadline-free paths.
    let cancel = match deadline {
        Some(d) => CancelToken::after(d),
        None => CancelToken::never(),
    };

    let t0 = std::time::Instant::now();
    let mut phase_table: Option<String> = None;
    let mut degraded = false;
    let sched: Schedule = match algo.as_str() {
        "pa" => {
            let r = PaScheduler::new(SchedulerConfig {
                workspace_reuse,
                csr_paths,
                ..Default::default()
            })
            .schedule_with_cancel(&inst, &cancel)
            .map_err(|e| e.to_string())?;
            if trace {
                phase_table = Some(r.trace.render_table());
            }
            degraded = r.degraded;
            r.schedule
        }
        "par" => {
            let par = PaRScheduler::new(SchedulerConfig {
                time_budget: Duration::from_millis(budget_ms),
                workspace_reuse,
                csr_paths,
                ..Default::default()
            });
            if threads > 1 {
                par.schedule_parallel_with_cancel(&inst, threads, &cancel)
                    .map_err(|e| e.to_string())?
            } else {
                let r = par
                    .schedule_with_cancel(&inst, &cancel)
                    .map_err(|e| e.to_string())?;
                degraded = r.degraded;
                r.schedule
            }
        }
        "is1" => {
            IsKScheduler::new(IsKConfig::is1())
                .schedule_with_cancel(&inst, &cancel)
                .map_err(|e| e.to_string())?
                .schedule
        }
        "is5" => {
            IsKScheduler::new(IsKConfig::is5())
                .schedule_with_cancel(&inst, &cancel)
                .map_err(|e| e.to_string())?
                .schedule
        }
        "heft" => HeftScheduler::new()
            .schedule(&inst)
            .map_err(|e| e.to_string())?,
        "portfolio" => {
            let r = Portfolio::new(PortfolioConfig {
                deadline,
                first_feasible_wins: has(args, "--first-feasible"),
                sched: SchedulerConfig {
                    time_budget: Duration::from_millis(budget_ms),
                    workspace_reuse,
                    csr_paths,
                    ..Default::default()
                },
                ..Default::default()
            })
            .run(&inst)
            .map_err(|e| e.to_string())?;
            if trace {
                phase_table = Some(r.render_report());
            }
            println!(
                "portfolio winner: {}{}",
                r.winner,
                if r.deadline_hit {
                    " (deadline hit)"
                } else {
                    ""
                }
            );
            degraded = r.degraded;
            r.schedule
        }
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    let elapsed = t0.elapsed();
    if degraded {
        println!("note: deadline fired mid-search; returning the best schedule found so far");
    }

    // Sweep-line validator: same verdicts as the quadratic oracle (the
    // mutation corpus pins the equivalence), usable at 10k+ tasks.
    validate_schedule_sweep(&inst, &sched)
        .map_err(|e| format!("internal: invalid schedule: {e}"))?;
    let stats = schedule_stats(&inst, &sched);
    println!(
        "{algo}: makespan {} ticks in {:.3}s | {} regions, {} hw / {} sw tasks, {} reconfigurations ({} ticks on the controller)",
        stats.makespan,
        elapsed.as_secs_f64(),
        stats.num_regions,
        stats.hw_tasks,
        stats.sw_tasks,
        stats.num_reconfigurations,
        stats.reconf_busy,
    );
    if algo == "par" && threads > 1 {
        println!("(PA-R searched on {threads} threads)");
    }
    if let Some(table) = phase_table {
        println!();
        println!("{table}");
    }
    if has(args, "--gantt") {
        println!();
        println!("{}", render_gantt(&inst, &sched, 100));
    }
    if let Some(out) = flag(args, "--out") {
        let json = serde_json::to_string_pretty(&sched).map_err(|e| e.to_string())?;
        std::fs::write(&out, json).map_err(|e| e.to_string())?;
        println!("wrote schedule -> {out}");
    }
    Ok(())
}

fn validate(args: &[String]) -> Result<(), String> {
    let input = flag(args, "--input").ok_or("--input is required")?;
    let schedule_path = flag(args, "--schedule").ok_or("--schedule is required")?;
    let inst = ProblemInstance::load(&input).map_err(|e| e.to_string())?;
    let json = std::fs::read_to_string(&schedule_path).map_err(|e| e.to_string())?;
    let sched: Schedule = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    match validate_schedule_sweep(&inst, &sched) {
        Ok(()) => {
            println!("schedule is VALID (makespan {} ticks)", sched.makespan());
            Ok(())
        }
        Err(e) => Err(format!("schedule is INVALID: {e}")),
    }
}

/// Replays a runtime event trace against a freshly-committed PA schedule,
/// repairing after each event and validating the final result.
fn replay(args: &[String]) -> Result<(), String> {
    let input = flag(args, "--input").ok_or("--input is required")?;
    let inst = ProblemInstance::load(&input).map_err(|e| e.to_string())?;
    let baseline = PaScheduler::new(SchedulerConfig::default())
        .schedule(&inst)
        .map_err(|e| e.to_string())?;
    let before = baseline.makespan();

    let trace = match flag(args, "--trace") {
        Some(path) => EventTrace::load(&path).map_err(|e| e.to_string())?,
        None => {
            let events: usize = flag(args, "--events")
                .map(|s| s.parse().map_err(|e| format!("--events: {e}")))
                .transpose()?
                .unwrap_or(inst.graph.len() / 2);
            let seed: u64 = flag(args, "--seed")
                .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
                .transpose()?
                .unwrap_or(0x5EED);
            EventTraceGenerator::new(seed).generate(
                &inst,
                &baseline,
                &EventConfig::standard(events),
            )
        }
    };
    if let Some(path) = flag(args, "--save-trace") {
        trace.save(&path).map_err(|e| e.to_string())?;
        println!("wrote trace -> {path}");
    }

    let cascade: u32 = flag(args, "--cascade")
        .map(|s| s.parse().map_err(|e| format!("--cascade: {e}")))
        .transpose()?
        .unwrap_or(50);
    let mut engine = RepairEngine::new(
        inst,
        baseline,
        RepairConfig {
            cascade_threshold_pct: cascade,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;

    let t0 = std::time::Instant::now();
    for (i, ev) in trace.events.iter().enumerate() {
        let what = match ev {
            ScheduleEvent::Finish { task, actual } => format!("finish  t{} @ {actual}", task.0),
            ScheduleEvent::DurationRevised { task, duration } => {
                format!("revise  t{} -> {duration} ticks", task.0)
            }
            ScheduleEvent::Cancel { task } => format!("cancel  t{}", task.0),
            ScheduleEvent::Arrive { name, sw_time, .. } => {
                format!("arrive  `{name}` ({sw_time} ticks sw)")
            }
        };
        let out = engine
            .apply(ev)
            .map_err(|e| format!("event {i} ({what}): {e}"))?;
        println!(
            "[{i:4}] {what:32} | frontier {:4} moved {:4} recs {:2}{} | makespan {}",
            out.frontier,
            out.moved,
            out.recs_replaced,
            if out.full_resolve { " FULL" } else { "     " },
            out.makespan,
        );
    }
    let elapsed = t0.elapsed();

    validate_schedule_sweep(engine.instance(), engine.schedule())
        .map_err(|e| format!("internal: repaired schedule is invalid: {e}"))?;
    let s = engine.stats();
    println!(
        "replayed {} events in {:.3}ms: makespan {before} -> {} | {} frontier tasks, {} moved, {} reconfigurations re-placed, {} full re-solves, {} retired",
        s.events,
        elapsed.as_secs_f64() * 1000.0,
        engine.schedule().makespan(),
        s.frontier_tasks,
        s.moved_tasks,
        s.recs_replaced,
        s.full_resolves,
        s.retired_tasks,
    );
    if let Some(out) = flag(args, "--out") {
        let json = serde_json::to_string_pretty(engine.schedule()).map_err(|e| e.to_string())?;
        std::fs::write(&out, json).map_err(|e| e.to_string())?;
        println!("wrote repaired schedule -> {out}");
    }
    Ok(())
}

fn devices() {
    for d in [Device::xc7z010(), Device::xc7z020(), Device::xc7z045()] {
        let geom = d.geometry.as_ref().expect("catalog devices have geometry");
        println!(
            "{:9} capacity {} | {} columns x {} rows | ~{:.1} ms full-fabric reconfiguration",
            d.name,
            d.max_res,
            geom.columns.len(),
            geom.rows,
            d.reconf_time(&d.max_res) as f64 / 1000.0,
        );
    }
}

fn platforms() {
    for p in Platform::catalog() {
        println!(
            "{:14} {} fabrics, total {}, crossing latency {} ticks",
            p.name,
            p.num_fabrics(),
            p.total_resources(),
            p.crossing_latency,
        );
        for (f, d) in p.fabrics.iter().enumerate() {
            let grid = d
                .geometry
                .as_ref()
                .map(|g| format!("{} columns x {} rows", g.columns.len(), g.rows))
                .unwrap_or_else(|| "no geometry".to_string());
            println!(
                "  fabric {f}: {:12} capacity {} | {grid}",
                d.name, d.max_res
            );
        }
    }
    println!();
    println!("single-device targets (1-fabric platforms): see `prfpga devices`");
}

/// `prfpga serve`: the scheduling daemon on a TCP socket. Runs until the
/// process is killed; `stats` requests and the periodic log line expose
/// the service metrics.
fn serve(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7070".into());
    let mut config = ServerConfig::default();
    if let Some(v) = flag(args, "--workers") {
        config.workers = v
            .parse()
            .ok()
            .filter(|&n: &usize| n > 0)
            .ok_or("--workers must be a positive count")?;
    }
    if let Some(v) = flag(args, "--queue-bound") {
        config.queue_bound = v
            .parse()
            .ok()
            .filter(|&n: &usize| n > 0)
            .ok_or("--queue-bound must be a positive count")?;
    }
    if let Some(v) = flag(args, "--prewarm-tasks") {
        config.prewarm_tasks = v.parse().map_err(|e| format!("--prewarm-tasks: {e}"))?;
    }
    let log_every = flag(args, "--log-every-s")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--log-every-s: {e}")))
        .transpose()?
        .unwrap_or(10);
    config.log_every = (!has(args, "--quiet")).then(|| Duration::from_secs(log_every));

    let transport = TcpTransport::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let handle = Server::start(transport, config.clone());
    eprintln!(
        "prfpga-server listening on {} ({} workers, queue bound {})",
        handle.endpoint(),
        config.workers,
        config.queue_bound
    );
    // The daemon runs until the process is killed; the handle keeps the
    // accept loop and worker pool alive.
    loop {
        std::thread::park();
    }
}
