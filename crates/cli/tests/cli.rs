//! End-to-end tests of the `prfpga` binary: generate → schedule →
//! validate round-trips through the actual CLI surface.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_prfpga"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("prfpga_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn devices_lists_catalog() {
    let out = bin().arg("devices").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for part in ["xc7z010", "xc7z020", "xc7z045"] {
        assert!(stdout.contains(part), "missing {part} in:\n{stdout}");
    }
}

#[test]
fn generate_schedule_validate_roundtrip() {
    let inst = tmp("app.json");
    let sched = tmp("sched.json");

    let out = bin()
        .args(["generate", "--tasks", "15", "--seed", "3", "--out"])
        .arg(&inst)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["schedule", "--algo", "pa", "--gantt", "--input"])
        .arg(&inst)
        .arg("--out")
        .arg(&sched)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("makespan"));
    assert!(stdout.contains("icap"));

    let out = bin()
        .args(["validate", "--input"])
        .arg(&inst)
        .arg("--schedule")
        .arg(&sched)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout).unwrap().contains("VALID"));

    let _ = std::fs::remove_file(&inst);
    let _ = std::fs::remove_file(&sched);
}

#[test]
fn every_algorithm_runs() {
    let inst = tmp("algos.json");
    let out = bin()
        .args(["generate", "--tasks", "10", "--seed", "7", "--out"])
        .arg(&inst)
        .output()
        .unwrap();
    assert!(out.status.success());
    for algo in ["pa", "is1", "heft", "par"] {
        let out = bin()
            .args(["schedule", "--algo", algo, "--budget-ms", "50", "--input"])
            .arg(&inst)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let _ = std::fs::remove_file(&inst);
}

#[test]
fn portfolio_with_deadline_returns_schedule_and_trace() {
    let inst = tmp("portfolio.json");
    let out = bin()
        .args(["generate", "--tasks", "20", "--seed", "11", "--out"])
        .arg(&inst)
        .output()
        .unwrap();
    assert!(out.status.success());

    // A tight deadline must still yield a validated schedule (possibly
    // degraded), never an error, and --trace must name the winner and
    // report the cancellation counters.
    let out = bin()
        .args([
            "schedule",
            "--portfolio",
            "--deadline-ms",
            "50",
            "--trace",
            "--input",
        ])
        .arg(&inst)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("portfolio winner:"), "{stdout}");
    assert!(stdout.contains("makespan"), "{stdout}");
    assert!(stdout.contains("deadline hits across members"), "{stdout}");

    // Without a deadline the race runs to completion: no degradation note.
    let out = bin()
        .args(["schedule", "--algo", "portfolio", "--input"])
        .arg(&inst)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("portfolio winner:"), "{stdout}");
    assert!(!stdout.contains("deadline fired mid-search"), "{stdout}");

    let _ = std::fs::remove_file(&inst);
}

#[test]
fn deadline_flag_works_for_every_algorithm() {
    let inst = tmp("deadline_algos.json");
    let out = bin()
        .args(["generate", "--tasks", "12", "--seed", "5", "--out"])
        .arg(&inst)
        .output()
        .unwrap();
    assert!(out.status.success());
    // Generous deadline: every algorithm finishes cleanly under it.
    for algo in ["pa", "par", "is1", "heft"] {
        let out = bin()
            .args([
                "schedule",
                "--algo",
                algo,
                "--deadline-ms",
                "60000",
                "--budget-ms",
                "50",
                "--input",
            ])
            .arg(&inst)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let _ = std::fs::remove_file(&inst);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("usage"));
}

#[test]
fn chain_topology_generation() {
    let inst = tmp("chain.json");
    let out = bin()
        .args([
            "generate",
            "--tasks",
            "8",
            "--topology",
            "chain",
            "--cores",
            "1",
            "--out",
        ])
        .arg(&inst)
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = std::fs::read_to_string(&inst).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed["graph"]["edges"].as_array().unwrap().len(), 7);
    let _ = std::fs::remove_file(&inst);
}
