//! Critical Path Method over a [`Dag`].
//!
//! Implements §V-B: given the DAG and the execution time selected for each
//! node, compute for every node the window `w_t = [T_MIN_t, T_MAX_t]` where
//! `T_MIN` is the earliest start and `T_MAX` the latest completion that does
//! not delay the schedule, the overall makespan (length of the critical
//! path), and the critical flag (zero slack).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use prfpga_model::{Time, TimeWindow};

use crate::csr::{CsrView, GraphRead};
use crate::graph::{Dag, NodeId, TopoScratch};

/// Reusable buffers for [`CpmAnalysis::recompute`] and the incremental
/// updates ([`CpmAnalysis::apply_arc`], [`CpmAnalysis::apply_duration`]).
///
/// The schedulers re-run CPM after every duration or dependency mutation —
/// the single hottest path of the whole pipeline. One warm scratch makes
/// each recomputation allocation-free, and it carries the topological
/// order the incremental updates propagate along. A scratch is paired with
/// the analysis it last recomputed: the incremental methods require that
/// the same scratch was used for the previous `recompute`/`apply_*` call
/// on the same analysis.
#[derive(Debug, Clone, Default)]
pub struct CpmScratch {
    topo: TopoScratch,
    order: Vec<NodeId>,
    t_min: Vec<Time>,
    t_max: Vec<Time>,
    /// `pos[v]` = index of `v` in `order`; valid alongside `order`.
    pos: Vec<usize>,
    /// Min-heap worklist for forward (earliest-start) propagation.
    fwd: BinaryHeap<Reverse<(usize, NodeId)>>,
    /// Max-heap worklist for backward (latest-completion) propagation.
    bwd: BinaryHeap<(usize, NodeId)>,
    /// Epoch marks deduplicating worklist pushes without an `O(V)` clear.
    stamp: Vec<u32>,
    epoch: u32,
    /// Nodes whose window changed; their critical flags need refreshing.
    dirty: Vec<NodeId>,
}

impl CpmScratch {
    /// Starts a worklist pass over `n` nodes: a node is enqueued iff its
    /// stamp differs from the current epoch.
    fn begin_epoch(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }
}

/// Result of a CPM pass.
///
/// ```
/// use prfpga_dag::{CpmAnalysis, Dag};
///
/// // 0 -> 1 -> 2 with durations 5, 3, 2: makespan 10, all critical.
/// let mut dag = Dag::with_nodes(3);
/// dag.add_edge(0, 1).unwrap();
/// dag.add_edge(1, 2).unwrap();
/// let cpm = CpmAnalysis::run(&dag, &[5, 3, 2]);
/// assert_eq!(cpm.makespan, 10);
/// assert_eq!(cpm.windows[1].min, 5);
/// assert!(cpm.critical.iter().all(|&c| c));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpmAnalysis {
    /// Per-node execution window `[T_MIN, T_MAX]`.
    pub windows: Vec<TimeWindow>,
    /// Length of the critical path (the ideal unlimited-resource makespan).
    pub makespan: Time,
    /// `critical[v]` iff node `v` has zero slack.
    pub critical: Vec<bool>,
}

impl CpmAnalysis {
    /// Runs CPM assuming every node may start at tick 0.
    pub fn run(dag: &Dag, durations: &[Time]) -> CpmAnalysis {
        Self::run_with_release(dag, durations, None)
    }

    /// Runs CPM with optional per-node release times (lower bounds on the
    /// start tick). Schedulers use release times to model decisions already
    /// fixed: a task whose start has been committed gets its start as
    /// release, and the windows of everything downstream follow.
    pub fn run_with_release(
        dag: &Dag,
        durations: &[Time],
        release: Option<&[Time]>,
    ) -> CpmAnalysis {
        let mut out = CpmAnalysis::default();
        let mut scratch = CpmScratch::default();
        out.recompute(dag, durations, release, &mut scratch);
        out
    }

    /// [`CpmAnalysis::run_with_release`] into `self`, reusing both this
    /// analysis' buffers and the caller-owned `scratch` — no allocation
    /// once the buffers are warm, byte-identical results.
    pub fn recompute(
        &mut self,
        dag: &Dag,
        durations: &[Time],
        release: Option<&[Time]>,
        scratch: &mut CpmScratch,
    ) {
        dag.topo_order_into(&mut scratch.topo, &mut scratch.order);
        self.recompute_over(dag, durations, release, scratch);
    }

    /// [`CpmAnalysis::recompute`] over a current [`CsrView`]: the cached
    /// topological order replaces the Kahn pass and the forward/backward
    /// sweeps iterate the packed adjacency. Byte-identical results (the
    /// view preserves per-node edge order and the cached order is the same
    /// deterministic Kahn order), and the scratch is left in the same
    /// state, so the incremental `apply_*` methods remain usable against
    /// the underlying `Dag` afterwards.
    pub fn recompute_csr(
        &mut self,
        csr: &CsrView,
        durations: &[Time],
        release: Option<&[Time]>,
        scratch: &mut CpmScratch,
    ) {
        scratch.order.clear();
        scratch.order.extend_from_slice(csr.topo_order());
        self.recompute_over(csr, durations, release, scratch);
    }

    /// The CPM passes over any adjacency layout; `scratch.order` must
    /// already hold the deterministic topological order.
    fn recompute_over<G: GraphRead>(
        &mut self,
        graph: &G,
        durations: &[Time],
        release: Option<&[Time]>,
        scratch: &mut CpmScratch,
    ) {
        let n = graph.num_nodes();
        assert_eq!(durations.len(), n, "one duration per node required");
        if let Some(r) = release {
            assert_eq!(r.len(), n, "one release time per node required");
        }
        let CpmScratch {
            order,
            t_min,
            t_max,
            pos,
            ..
        } = scratch;
        pos.clear();
        pos.resize(n, 0);
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }

        // Forward pass: earliest start.
        t_min.clear();
        t_min.resize(n, 0);
        for &v in order.iter() {
            let mut es = release.map_or(0, |r| r[v as usize]);
            for &p in graph.preds_of(v) {
                es = es.max(t_min[p as usize] + durations[p as usize]);
            }
            t_min[v as usize] = es;
        }
        let makespan = (0..n).map(|v| t_min[v] + durations[v]).max().unwrap_or(0);

        // Backward pass: latest completion.
        t_max.clear();
        t_max.resize(n, makespan);
        for &v in order.iter().rev() {
            let mut lc = makespan;
            for &s in graph.succs_of(v) {
                lc = lc.min(t_max[s as usize] - durations[s as usize]);
            }
            t_max[v as usize] = lc;
        }

        self.windows.clear();
        self.windows.reserve(n);
        self.critical.clear();
        self.critical.reserve(n);
        for v in 0..n {
            self.windows.push(TimeWindow::new(t_min[v], t_max[v]));
            self.critical.push(t_max[v] - t_min[v] == durations[v]);
        }
        self.makespan = makespan;
    }

    /// Incremental update after `dag.add_edge(from, to)` succeeded: the
    /// earliest starts downstream of `to` and the latest completions
    /// upstream of `from` are re-propagated along the cached topological
    /// order, touching only the nodes whose values actually move. Falls
    /// back to a full [`CpmAnalysis::recompute`] when the cached order no
    /// longer orders the new arc or the makespan changes (which shifts
    /// every horizon-clamped latest completion).
    ///
    /// `scratch` must be the one used for the previous
    /// `recompute`/`apply_*` call on this analysis, with `dag` unchanged
    /// since except for arcs already applied through this method (and arc
    /// removals via rollback, which never invalidate the order). Results
    /// are byte-identical to a full recompute — earliest/latest times are
    /// the unique fixed point of the window equations.
    pub fn apply_arc(
        &mut self,
        dag: &Dag,
        durations: &[Time],
        from: NodeId,
        to: NodeId,
        scratch: &mut CpmScratch,
    ) {
        let n = dag.len();
        if scratch.order.len() != n
            || self.windows.len() != n
            || scratch.pos[from as usize] >= scratch.pos[to as usize]
        {
            self.recompute(dag, durations, None, scratch);
            return;
        }
        debug_assert!(order_is_valid(dag, &scratch.pos));
        scratch.dirty.clear();
        self.propagate_forward(dag, durations, [to], scratch);
        if self.refresh_makespan(durations, dag, scratch) {
            return;
        }
        self.propagate_backward(dag, durations, [from], scratch);
        self.refresh_dirty_critical(durations, scratch);
    }

    /// Incremental update after `durations[v]` changed (in either
    /// direction): earliest starts are re-propagated from `v`'s successors
    /// and latest completions from its predecessors. Same scratch-pairing
    /// contract and byte-identity guarantee as [`CpmAnalysis::apply_arc`];
    /// the cached order is always still valid here since the graph itself
    /// did not change.
    pub fn apply_duration(
        &mut self,
        dag: &Dag,
        durations: &[Time],
        v: NodeId,
        scratch: &mut CpmScratch,
    ) {
        let n = dag.len();
        if scratch.order.len() != n || self.windows.len() != n {
            self.recompute(dag, durations, None, scratch);
            return;
        }
        debug_assert!(order_is_valid(dag, &scratch.pos));
        scratch.dirty.clear();
        scratch.dirty.push(v); // own slack uses the new duration
        self.propagate_forward(dag, durations, dag.succs(v).iter().copied(), scratch);
        if self.refresh_makespan(durations, dag, scratch) {
            return;
        }
        self.propagate_backward(dag, durations, dag.preds(v).iter().copied(), scratch);
        self.refresh_dirty_critical(durations, scratch);
    }

    /// Worklist pass in ascending topological position: each popped node
    /// gets its earliest start recomputed exactly from its predecessors
    /// (all of which are already final), propagating to successors only on
    /// change.
    fn propagate_forward(
        &mut self,
        dag: &Dag,
        durations: &[Time],
        seeds: impl IntoIterator<Item = NodeId>,
        scratch: &mut CpmScratch,
    ) {
        scratch.begin_epoch(dag.len());
        for s in seeds {
            scratch.stamp[s as usize] = scratch.epoch;
            scratch.fwd.push(Reverse((scratch.pos[s as usize], s)));
        }
        while let Some(Reverse((_, x))) = scratch.fwd.pop() {
            let es = dag
                .preds(x)
                .iter()
                .map(|&p| self.windows[p as usize].min + durations[p as usize])
                .max()
                .unwrap_or(0);
            if es != self.windows[x as usize].min {
                self.windows[x as usize].min = es;
                scratch.dirty.push(x);
                for &s in dag.succs(x) {
                    if scratch.stamp[s as usize] != scratch.epoch {
                        scratch.stamp[s as usize] = scratch.epoch;
                        scratch.fwd.push(Reverse((scratch.pos[s as usize], s)));
                    }
                }
            }
        }
    }

    /// Worklist pass in descending topological position: each popped node
    /// gets its latest completion recomputed exactly from its successors,
    /// propagating to predecessors only on change. Only valid while the
    /// makespan is unchanged.
    fn propagate_backward(
        &mut self,
        dag: &Dag,
        durations: &[Time],
        seeds: impl IntoIterator<Item = NodeId>,
        scratch: &mut CpmScratch,
    ) {
        scratch.begin_epoch(dag.len());
        for s in seeds {
            scratch.stamp[s as usize] = scratch.epoch;
            scratch.bwd.push((scratch.pos[s as usize], s));
        }
        while let Some((_, x)) = scratch.bwd.pop() {
            let lc = dag
                .succs(x)
                .iter()
                .map(|&s| self.windows[s as usize].max - durations[s as usize])
                .min()
                .unwrap_or(self.makespan);
            if lc != self.windows[x as usize].max {
                self.windows[x as usize].max = lc;
                scratch.dirty.push(x);
                for &p in dag.preds(x) {
                    if scratch.stamp[p as usize] != scratch.epoch {
                        scratch.stamp[p as usize] = scratch.epoch;
                        scratch.bwd.push((scratch.pos[p as usize], p));
                    }
                }
            }
        }
    }

    /// Rescans the makespan after a forward pass. On change, the horizon
    /// every slack-free latest completion is clamped to moves, so the
    /// whole backward half is redone along the cached order (and every
    /// critical flag with it); returns `true` in that case.
    fn refresh_makespan(
        &mut self,
        durations: &[Time],
        dag: &Dag,
        scratch: &mut CpmScratch,
    ) -> bool {
        let n = dag.len();
        let makespan = (0..n)
            .map(|v| self.windows[v].min + durations[v])
            .max()
            .unwrap_or(0);
        if makespan == self.makespan {
            return false;
        }
        self.makespan = makespan;
        for &x in scratch.order.iter().rev() {
            let lc = dag
                .succs(x)
                .iter()
                .map(|&s| self.windows[s as usize].max - durations[s as usize])
                .min()
                .unwrap_or(makespan);
            self.windows[x as usize].max = lc;
        }
        for (v, w) in self.windows.iter().enumerate() {
            self.critical[v] = w.max - w.min == durations[v];
        }
        true
    }

    /// Refreshes the critical flag of every node whose window (or own
    /// duration) changed during the incremental passes.
    fn refresh_dirty_critical(&mut self, durations: &[Time], scratch: &mut CpmScratch) {
        for &x in &scratch.dirty {
            let w = self.windows[x as usize];
            self.critical[x as usize] = w.max - w.min == durations[x as usize];
        }
    }

    /// Extracts one critical path (source to sink through zero-slack nodes),
    /// deterministically preferring smaller node ids.
    pub fn critical_path(&self, dag: &Dag, durations: &[Time]) -> Vec<NodeId> {
        let n = dag.len();
        if n == 0 {
            return Vec::new();
        }
        // Start at the critical source with T_MIN == 0.
        let mut cur = match (0..n as NodeId)
            .filter(|&v| {
                self.critical[v as usize]
                    && self.windows[v as usize].min == 0
                    && dag.preds(v).iter().all(|&p| {
                        !self.critical[p as usize]
                            || self.windows[p as usize].min + durations[p as usize]
                                != self.windows[v as usize].min
                    })
            })
            .min()
        {
            Some(v) => v,
            None => return Vec::new(),
        };
        let mut path = vec![cur];
        loop {
            let end = self.windows[cur as usize].min + durations[cur as usize];
            let next = dag
                .succs(cur)
                .iter()
                .copied()
                .filter(|&s| self.critical[s as usize] && self.windows[s as usize].min == end)
                .min();
            match next {
                Some(s) => {
                    path.push(s);
                    cur = s;
                }
                None => break,
            }
        }
        path
    }
}

/// True when `pos` topologically orders every arc of `dag` (debug check
/// for the incremental updates' order-validity contract).
fn order_is_valid(dag: &Dag, pos: &[usize]) -> bool {
    (0..dag.len() as NodeId).all(|v| {
        dag.succs(v)
            .iter()
            .all(|&s| pos[v as usize] < pos[s as usize])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 -> {1, 2} -> 3, durations 2, 5, 3, 1.
    fn diamond() -> (Dag, Vec<Time>) {
        let mut d = Dag::with_nodes(4);
        d.add_edge(0, 1).unwrap();
        d.add_edge(0, 2).unwrap();
        d.add_edge(1, 3).unwrap();
        d.add_edge(2, 3).unwrap();
        (d, vec![2, 5, 3, 1])
    }

    #[test]
    fn diamond_windows() {
        let (d, dur) = diamond();
        let cpm = CpmAnalysis::run(&d, &dur);
        assert_eq!(cpm.makespan, 8); // 2 + 5 + 1
        assert_eq!(cpm.windows[0], TimeWindow::new(0, 2));
        assert_eq!(cpm.windows[1], TimeWindow::new(2, 7));
        assert_eq!(cpm.windows[2], TimeWindow::new(2, 7));
        assert_eq!(cpm.windows[3], TimeWindow::new(7, 8));
        assert_eq!(cpm.critical, vec![true, true, false, true]);
    }

    #[test]
    fn diamond_critical_path() {
        let (d, dur) = diamond();
        let cpm = CpmAnalysis::run(&d, &dur);
        assert_eq!(cpm.critical_path(&d, &dur), vec![0, 1, 3]);
    }

    #[test]
    fn release_times_shift_windows() {
        let (d, dur) = diamond();
        let release = vec![0, 10, 0, 0];
        let cpm = CpmAnalysis::run_with_release(&d, &dur, Some(&release));
        assert_eq!(cpm.makespan, 16); // node 1 starts at 10, ends 15, node 3 ends 16
        assert_eq!(cpm.windows[1].min, 10);
        assert_eq!(cpm.windows[3].min, 15);
        // Node 2's latest completion stretches with the new horizon.
        assert_eq!(cpm.windows[2].max, 15);
    }

    #[test]
    fn independent_nodes_all_critical_iff_longest() {
        let mut d = Dag::with_nodes(3);
        let _ = &mut d; // no edges
        let dur = vec![5, 9, 9];
        let cpm = CpmAnalysis::run(&d, &dur);
        assert_eq!(cpm.makespan, 9);
        assert_eq!(cpm.critical, vec![false, true, true]);
        assert_eq!(cpm.windows[0], TimeWindow::new(0, 9));
    }

    #[test]
    fn zero_duration_nodes() {
        let mut d = Dag::with_nodes(2);
        d.add_edge(0, 1).unwrap();
        let dur = vec![0, 0];
        let cpm = CpmAnalysis::run(&d, &dur);
        assert_eq!(cpm.makespan, 0);
        assert!(cpm.critical.iter().all(|&c| c));
    }

    #[test]
    fn empty_graph() {
        let d = Dag::with_nodes(0);
        let cpm = CpmAnalysis::run(&d, &[]);
        assert_eq!(cpm.makespan, 0);
        assert!(cpm.windows.is_empty());
    }

    #[test]
    fn recompute_matches_run_across_reuses() {
        // One scratch + one analysis reused across graphs of different
        // sizes and shapes must reproduce `run_with_release` exactly.
        let mut scratch = CpmScratch::default();
        let mut cpm = CpmAnalysis::default();
        let (d1, dur1) = diamond();
        let release = vec![0, 10, 0, 0];
        let cases: Vec<(Dag, Vec<Time>, Option<Vec<Time>>)> = vec![
            (d1.clone(), dur1.clone(), None),
            (d1, dur1, Some(release)),
            (Dag::with_nodes(0), vec![], None),
            (
                {
                    let mut c = Dag::with_nodes(6);
                    for i in 0..5 {
                        c.add_edge(i, i + 1).unwrap();
                    }
                    c
                },
                vec![1, 2, 3, 4, 5, 6],
                None,
            ),
        ];
        for (dag, dur, rel) in cases {
            cpm.recompute(&dag, &dur, rel.as_deref(), &mut scratch);
            assert_eq!(
                cpm,
                CpmAnalysis::run_with_release(&dag, &dur, rel.as_deref())
            );
        }
    }

    #[test]
    fn recompute_csr_matches_dag_recompute() {
        use crate::csr::CsrView;
        let (dag, dur) = diamond();
        let mut csr = CsrView::new();
        csr.build(&dag);
        let mut scratch = CpmScratch::default();
        let mut cpm = CpmAnalysis::default();
        let release = [0, 10, 0, 0];
        for rel in [None, Some(&release[..])] {
            cpm.recompute_csr(&csr, &dur, rel, &mut scratch);
            assert_eq!(cpm, CpmAnalysis::run_with_release(&dag, &dur, rel));
        }
        // The scratch is left valid for the incremental path on the Dag.
        let mut dag = dag;
        cpm.recompute_csr(&csr, &dur, None, &mut scratch);
        dag.add_edge(1, 2).unwrap();
        cpm.apply_arc(&dag, &dur, 1, 2, &mut scratch);
        assert_eq!(cpm, CpmAnalysis::run(&dag, &dur));
    }

    #[test]
    fn apply_arc_matches_full_recompute() {
        // Start from two parallel chains 0->1 and 2->3, then cross-link
        // them arc by arc; after every insertion the incremental analysis
        // must equal a from-scratch run.
        let mut dag = Dag::with_nodes(6);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(2, 3).unwrap();
        let durations = vec![4, 2, 7, 1, 3, 5];
        let mut scratch = CpmScratch::default();
        let mut cpm = CpmAnalysis::default();
        cpm.recompute(&dag, &durations, None, &mut scratch);
        for (u, v) in [(1, 3), (0, 2), (3, 4), (4, 5), (1, 5)] {
            dag.add_edge(u, v).unwrap();
            cpm.apply_arc(&dag, &durations, u, v, &mut scratch);
            assert_eq!(
                cpm,
                CpmAnalysis::run(&dag, &durations),
                "after arc {u}->{v}"
            );
        }
    }

    #[test]
    fn apply_arc_against_stale_order_falls_back() {
        // Node ids against topological direction: the cached order (by id)
        // cannot order the new arc 2 -> 0, forcing the full-recompute
        // fallback — which must still produce the exact analysis.
        let mut dag = Dag::with_nodes(3);
        dag.add_edge(1, 2).unwrap();
        let durations = vec![5, 3, 2];
        let mut scratch = CpmScratch::default();
        let mut cpm = CpmAnalysis::default();
        cpm.recompute(&dag, &durations, None, &mut scratch);
        dag.add_edge(2, 0).unwrap();
        cpm.apply_arc(&dag, &durations, 2, 0, &mut scratch);
        assert_eq!(cpm, CpmAnalysis::run(&dag, &durations));
    }

    #[test]
    fn apply_duration_matches_full_recompute() {
        // Diamond with duration changes in both directions, including ones
        // that raise and then lower the makespan.
        let (dag, mut durations) = diamond();
        let mut scratch = CpmScratch::default();
        let mut cpm = CpmAnalysis::default();
        cpm.recompute(&dag, &durations, None, &mut scratch);
        for (v, d) in [(2usize, 50), (1, 1), (2, 3), (0, 9), (3, 0)] {
            durations[v] = d;
            cpm.apply_duration(&dag, &durations, v as NodeId, &mut scratch);
            assert_eq!(
                cpm,
                CpmAnalysis::run(&dag, &durations),
                "after durations[{v}] = {d}"
            );
        }
    }

    #[test]
    fn chain_is_fully_critical() {
        let mut d = Dag::with_nodes(4);
        for i in 0..3 {
            d.add_edge(i, i + 1).unwrap();
        }
        let dur = vec![1, 2, 3, 4];
        let cpm = CpmAnalysis::run(&d, &dur);
        assert_eq!(cpm.makespan, 10);
        assert!(cpm.critical.iter().all(|&c| c));
        assert_eq!(cpm.critical_path(&d, &dur), vec![0, 1, 2, 3]);
        // Windows tile the horizon exactly.
        assert_eq!(cpm.windows[2], TimeWindow::new(3, 6));
    }
}
