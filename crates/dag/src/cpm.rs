//! Critical Path Method over a [`Dag`].
//!
//! Implements §V-B: given the DAG and the execution time selected for each
//! node, compute for every node the window `w_t = [T_MIN_t, T_MAX_t]` where
//! `T_MIN` is the earliest start and `T_MAX` the latest completion that does
//! not delay the schedule, the overall makespan (length of the critical
//! path), and the critical flag (zero slack).

use prfpga_model::{Time, TimeWindow};

use crate::graph::{Dag, NodeId};

/// Result of a CPM pass.
///
/// ```
/// use prfpga_dag::{CpmAnalysis, Dag};
///
/// // 0 -> 1 -> 2 with durations 5, 3, 2: makespan 10, all critical.
/// let mut dag = Dag::with_nodes(3);
/// dag.add_edge(0, 1).unwrap();
/// dag.add_edge(1, 2).unwrap();
/// let cpm = CpmAnalysis::run(&dag, &[5, 3, 2]);
/// assert_eq!(cpm.makespan, 10);
/// assert_eq!(cpm.windows[1].min, 5);
/// assert!(cpm.critical.iter().all(|&c| c));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpmAnalysis {
    /// Per-node execution window `[T_MIN, T_MAX]`.
    pub windows: Vec<TimeWindow>,
    /// Length of the critical path (the ideal unlimited-resource makespan).
    pub makespan: Time,
    /// `critical[v]` iff node `v` has zero slack.
    pub critical: Vec<bool>,
}

impl CpmAnalysis {
    /// Runs CPM assuming every node may start at tick 0.
    pub fn run(dag: &Dag, durations: &[Time]) -> CpmAnalysis {
        Self::run_with_release(dag, durations, None)
    }

    /// Runs CPM with optional per-node release times (lower bounds on the
    /// start tick). Schedulers use release times to model decisions already
    /// fixed: a task whose start has been committed gets its start as
    /// release, and the windows of everything downstream follow.
    pub fn run_with_release(
        dag: &Dag,
        durations: &[Time],
        release: Option<&[Time]>,
    ) -> CpmAnalysis {
        let n = dag.len();
        assert_eq!(durations.len(), n, "one duration per node required");
        if let Some(r) = release {
            assert_eq!(r.len(), n, "one release time per node required");
        }
        let order = dag.topo_order();

        // Forward pass: earliest start.
        let mut t_min = vec![0 as Time; n];
        for &v in &order {
            let mut es = release.map_or(0, |r| r[v as usize]);
            for &p in dag.preds(v) {
                es = es.max(t_min[p as usize] + durations[p as usize]);
            }
            t_min[v as usize] = es;
        }
        let makespan = (0..n).map(|v| t_min[v] + durations[v]).max().unwrap_or(0);

        // Backward pass: latest completion.
        let mut t_max = vec![makespan; n];
        for &v in order.iter().rev() {
            let mut lc = makespan;
            for &s in dag.succs(v) {
                lc = lc.min(t_max[s as usize] - durations[s as usize]);
            }
            t_max[v as usize] = lc;
        }

        let mut windows = Vec::with_capacity(n);
        let mut critical = Vec::with_capacity(n);
        for v in 0..n {
            windows.push(TimeWindow::new(t_min[v], t_max[v]));
            critical.push(t_max[v] - t_min[v] == durations[v]);
        }
        CpmAnalysis {
            windows,
            makespan,
            critical,
        }
    }

    /// Extracts one critical path (source to sink through zero-slack nodes),
    /// deterministically preferring smaller node ids.
    pub fn critical_path(&self, dag: &Dag, durations: &[Time]) -> Vec<NodeId> {
        let n = dag.len();
        if n == 0 {
            return Vec::new();
        }
        // Start at the critical source with T_MIN == 0.
        let mut cur = match (0..n as NodeId)
            .filter(|&v| {
                self.critical[v as usize]
                    && self.windows[v as usize].min == 0
                    && dag.preds(v).iter().all(|&p| {
                        !self.critical[p as usize]
                            || self.windows[p as usize].min + durations[p as usize]
                                != self.windows[v as usize].min
                    })
            })
            .min()
        {
            Some(v) => v,
            None => return Vec::new(),
        };
        let mut path = vec![cur];
        loop {
            let end = self.windows[cur as usize].min + durations[cur as usize];
            let next = dag
                .succs(cur)
                .iter()
                .copied()
                .filter(|&s| self.critical[s as usize] && self.windows[s as usize].min == end)
                .min();
            match next {
                Some(s) => {
                    path.push(s);
                    cur = s;
                }
                None => break,
            }
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 -> {1, 2} -> 3, durations 2, 5, 3, 1.
    fn diamond() -> (Dag, Vec<Time>) {
        let mut d = Dag::with_nodes(4);
        d.add_edge(0, 1).unwrap();
        d.add_edge(0, 2).unwrap();
        d.add_edge(1, 3).unwrap();
        d.add_edge(2, 3).unwrap();
        (d, vec![2, 5, 3, 1])
    }

    #[test]
    fn diamond_windows() {
        let (d, dur) = diamond();
        let cpm = CpmAnalysis::run(&d, &dur);
        assert_eq!(cpm.makespan, 8); // 2 + 5 + 1
        assert_eq!(cpm.windows[0], TimeWindow::new(0, 2));
        assert_eq!(cpm.windows[1], TimeWindow::new(2, 7));
        assert_eq!(cpm.windows[2], TimeWindow::new(2, 7));
        assert_eq!(cpm.windows[3], TimeWindow::new(7, 8));
        assert_eq!(cpm.critical, vec![true, true, false, true]);
    }

    #[test]
    fn diamond_critical_path() {
        let (d, dur) = diamond();
        let cpm = CpmAnalysis::run(&d, &dur);
        assert_eq!(cpm.critical_path(&d, &dur), vec![0, 1, 3]);
    }

    #[test]
    fn release_times_shift_windows() {
        let (d, dur) = diamond();
        let release = vec![0, 10, 0, 0];
        let cpm = CpmAnalysis::run_with_release(&d, &dur, Some(&release));
        assert_eq!(cpm.makespan, 16); // node 1 starts at 10, ends 15, node 3 ends 16
        assert_eq!(cpm.windows[1].min, 10);
        assert_eq!(cpm.windows[3].min, 15);
        // Node 2's latest completion stretches with the new horizon.
        assert_eq!(cpm.windows[2].max, 15);
    }

    #[test]
    fn independent_nodes_all_critical_iff_longest() {
        let mut d = Dag::with_nodes(3);
        let _ = &mut d; // no edges
        let dur = vec![5, 9, 9];
        let cpm = CpmAnalysis::run(&d, &dur);
        assert_eq!(cpm.makespan, 9);
        assert_eq!(cpm.critical, vec![false, true, true]);
        assert_eq!(cpm.windows[0], TimeWindow::new(0, 9));
    }

    #[test]
    fn zero_duration_nodes() {
        let mut d = Dag::with_nodes(2);
        d.add_edge(0, 1).unwrap();
        let dur = vec![0, 0];
        let cpm = CpmAnalysis::run(&d, &dur);
        assert_eq!(cpm.makespan, 0);
        assert!(cpm.critical.iter().all(|&c| c));
    }

    #[test]
    fn empty_graph() {
        let d = Dag::with_nodes(0);
        let cpm = CpmAnalysis::run(&d, &[]);
        assert_eq!(cpm.makespan, 0);
        assert!(cpm.windows.is_empty());
    }

    #[test]
    fn chain_is_fully_critical() {
        let mut d = Dag::with_nodes(4);
        for i in 0..3 {
            d.add_edge(i, i + 1).unwrap();
        }
        let dur = vec![1, 2, 3, 4];
        let cpm = CpmAnalysis::run(&d, &dur);
        assert_eq!(cpm.makespan, 10);
        assert!(cpm.critical.iter().all(|&c| c));
        assert_eq!(cpm.critical_path(&d, &dur), vec![0, 1, 2, 3]);
        // Windows tile the horizon exactly.
        assert_eq!(cpm.windows[2], TimeWindow::new(3, 6));
    }
}
