//! Frozen CSR (compressed sparse row) view of a [`Dag`].
//!
//! The schedulers' read-mostly hot paths — the initial CPM pass, level
//! computation, reachability-index construction — iterate adjacency for
//! every node of the graph. At 10k–100k tasks the `Vec<Vec<NodeId>>`
//! layout of [`Dag`] pays one pointer chase (and one potential cache miss)
//! per node; a CSR view packs all adjacency into two flat arrays per
//! direction and carries the topological order (and per-node positions)
//! computed once, so consumers stop re-running Kahn's algorithm per query.
//!
//! The view is *frozen*: it snapshots the graph at [`CsrView::build`] time
//! and records the graph's structure [version](Dag::version). The
//! journaled adjacency `Dag` remains the single mutable source of truth —
//! after any mutation the view is stale ([`CsrView::is_current`] turns
//! false) and must be rebuilt, or revalidated with
//! [`CsrView::assume_current`] when the caller knows a rollback restored
//! exactly the content the view was built from (the scheduler workspace's
//! per-run rewind).

use std::fmt;

use crate::graph::{Dag, NodeId, TopoScratch};

/// Read-only adjacency access shared by [`Dag`] and [`CsrView`], so the
/// CPM passes and level computation run unchanged over either layout.
pub trait GraphRead {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;
    /// Direct predecessors of `v`.
    fn preds_of(&self, v: NodeId) -> &[NodeId];
    /// Direct successors of `v`.
    fn succs_of(&self, v: NodeId) -> &[NodeId];
}

impl GraphRead for Dag {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.len()
    }
    #[inline]
    fn preds_of(&self, v: NodeId) -> &[NodeId] {
        self.preds(v)
    }
    #[inline]
    fn succs_of(&self, v: NodeId) -> &[NodeId] {
        self.succs(v)
    }
}

/// Struct-of-arrays snapshot of a [`Dag`]: packed predecessor/successor
/// adjacency plus the cached deterministic topological order and per-node
/// topological positions.
///
/// Building is `O(V + E)` and allocation-free once the buffers are warm;
/// the adjacency slices preserve the `Dag`'s per-node edge order, so any
/// pass iterating the view is byte-identical to the same pass over the
/// `Dag`.
#[derive(Clone, Default)]
pub struct CsrView {
    n: usize,
    pred_off: Vec<u32>,
    pred_adj: Vec<NodeId>,
    succ_off: Vec<u32>,
    succ_adj: Vec<NodeId>,
    topo: Vec<NodeId>,
    pos: Vec<u32>,
    /// [`Dag::version`] the view was built against; 0 = never built.
    version: u64,
    topo_scratch: TopoScratch,
}

impl CsrView {
    /// An empty view; sized by the first [`CsrView::build`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes in the snapshot.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the snapshot has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Structure version the view matches; 0 when never built.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// True when the view still describes `dag` (no mutation since build).
    #[inline]
    pub fn is_current(&self, dag: &Dag) -> bool {
        self.version != 0 && self.version == dag.version()
    }

    /// (Re)builds the view from `dag`, reusing all buffers.
    pub fn build(&mut self, dag: &Dag) {
        let n = dag.len();
        self.n = n;
        fill_csr(&mut self.pred_off, &mut self.pred_adj, n, |v| dag.preds(v));
        fill_csr(&mut self.succ_off, &mut self.succ_adj, n, |v| dag.succs(v));
        dag.topo_order_into(&mut self.topo_scratch, &mut self.topo);
        self.pos.clear();
        self.pos.resize(n, 0);
        for (i, &v) in self.topo.iter().enumerate() {
            self.pos[v as usize] = i as u32;
        }
        self.version = dag.version();
    }

    /// Declares the existing snapshot current for `dag` without rebuilding.
    ///
    /// Sound only when `dag`'s content equals the graph the view was built
    /// from — the scheduler workspace uses this after rolling the journaled
    /// `Dag` back to the base graph the view snapshotted, turning the
    /// per-run revalidation into a version stamp instead of an `O(V + E)`
    /// rebuild. Debug builds verify the adjacency actually matches.
    pub fn assume_current(&mut self, dag: &Dag) {
        debug_assert!(self.matches(dag), "assume_current on mismatched content");
        self.version = dag.version();
    }

    /// True when the snapshot's adjacency equals `dag`'s (content compare).
    pub fn matches(&self, dag: &Dag) -> bool {
        self.version != 0
            && self.n == dag.len()
            && (0..self.n as NodeId).all(|v| self.preds(v) == dag.preds(v))
            && (0..self.n as NodeId).all(|v| self.succs(v) == dag.succs(v))
    }

    /// Cached topological order (Kahn, smallest-id-first — identical to
    /// [`Dag::topo_order`]).
    #[inline]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Topological position of `v` in [`CsrView::topo_order`].
    #[inline]
    pub fn pos(&self, v: NodeId) -> u32 {
        self.pos[v as usize]
    }

    /// Per-node topological positions, indexed by node id.
    #[inline]
    pub fn positions(&self) -> &[u32] {
        &self.pos
    }

    /// Direct predecessors of `v` in the snapshot.
    #[inline]
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        let (a, b) = (self.pred_off[v as usize], self.pred_off[v as usize + 1]);
        &self.pred_adj[a as usize..b as usize]
    }

    /// Direct successors of `v` in the snapshot.
    #[inline]
    pub fn succs(&self, v: NodeId) -> &[NodeId] {
        let (a, b) = (self.succ_off[v as usize], self.succ_off[v as usize + 1]);
        &self.succ_adj[a as usize..b as usize]
    }
}

impl GraphRead for CsrView {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.n
    }
    #[inline]
    fn preds_of(&self, v: NodeId) -> &[NodeId] {
        self.preds(v)
    }
    #[inline]
    fn succs_of(&self, v: NodeId) -> &[NodeId] {
        self.succs(v)
    }
}

impl fmt::Debug for CsrView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsrView")
            .field("nodes", &self.n)
            .field("edges", &self.succ_adj.len())
            .field("version", &self.version)
            .finish()
    }
}

/// Packs per-node adjacency lists into (offsets, flat array), preserving
/// per-node order.
fn fill_csr<'a>(
    off: &mut Vec<u32>,
    adj: &mut Vec<NodeId>,
    n: usize,
    of: impl Fn(NodeId) -> &'a [NodeId],
) {
    off.clear();
    off.reserve(n + 1);
    adj.clear();
    off.push(0);
    for v in 0..n as NodeId {
        adj.extend_from_slice(of(v));
        off.push(adj.len() as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        let mut d = Dag::with_nodes(4);
        d.add_edge(0, 1).unwrap();
        d.add_edge(0, 2).unwrap();
        d.add_edge(1, 3).unwrap();
        d.add_edge(2, 3).unwrap();
        d
    }

    #[test]
    fn snapshot_matches_dag() {
        let d = diamond();
        let mut view = CsrView::new();
        view.build(&d);
        assert_eq!(view.len(), 4);
        assert!(view.is_current(&d));
        for v in 0..4 {
            assert_eq!(view.preds(v), d.preds(v), "preds of {v}");
            assert_eq!(view.succs(v), d.succs(v), "succs of {v}");
        }
        assert_eq!(view.topo_order(), &d.topo_order()[..]);
        for (i, &v) in view.topo_order().iter().enumerate() {
            assert_eq!(view.pos(v) as usize, i);
        }
    }

    #[test]
    fn staleness_after_mutation_and_rebuild() {
        let mut d = diamond();
        let mut view = CsrView::new();
        view.build(&d);
        d.add_edge(0, 3).unwrap();
        assert!(!view.is_current(&d), "mutation invalidates the view");
        view.build(&d);
        assert!(view.is_current(&d));
        assert_eq!(view.succs(0), d.succs(0));
    }

    #[test]
    fn assume_current_after_rollback() {
        let mut d = diamond();
        let cp = d.checkpoint();
        let mut view = CsrView::new();
        view.build(&d);
        d.add_edge(0, 3).unwrap();
        d.rollback(cp);
        // Content equals the snapshot again, but the version moved.
        assert!(!view.is_current(&d));
        assert!(view.matches(&d));
        view.assume_current(&d);
        assert!(view.is_current(&d));
    }

    #[test]
    fn reuse_across_sizes() {
        let mut view = CsrView::new();
        view.build(&diamond());
        let mut chain = Dag::with_nodes(6);
        for i in 0..5 {
            chain.add_edge(i, i + 1).unwrap();
        }
        view.build(&chain);
        assert_eq!(view.len(), 6);
        assert_eq!(view.topo_order(), &chain.topo_order()[..]);
        assert_eq!(view.succs(2), chain.succs(2));
        // Empty graph degenerates cleanly.
        view.build(&Dag::with_nodes(0));
        assert!(view.is_empty());
        assert!(view.topo_order().is_empty());
    }
}
