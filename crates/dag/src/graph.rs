//! Compact mutable DAG with cycle-safe edge insertion.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use prfpga_model::{TaskGraph, TaskId};

/// Reusable buffers for [`Dag::topo_order_into`].
#[derive(Debug, Clone, Default)]
pub struct TopoScratch {
    indeg: Vec<u32>,
    ready: BinaryHeap<Reverse<NodeId>>,
}

/// Node index; for DAGs built from a [`TaskGraph`] it equals the task index.
pub type NodeId = u32;

/// Returned when an edge insertion would create a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleError {
    /// Source of the rejected edge.
    pub from: NodeId,
    /// Destination of the rejected edge.
    pub to: NodeId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "edge {} -> {} would create a cycle", self.from, self.to)
    }
}

impl std::error::Error for CycleError {}

/// A size snapshot of a [`Dag`], taken with [`Dag::checkpoint`] and
/// restored with [`Dag::rollback`].
///
/// Node and edge insertion are append-only, so a checkpoint is just the
/// (node count, journal length) pair at snapshot time; rolling back pops
/// everything inserted afterwards in exact reverse order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagCheckpoint {
    nodes: usize,
    edges: usize,
}

/// Adjacency-list DAG supporting dynamic, cycle-checked edge insertion.
///
/// Duplicate edges are silently ignored: the schedulers freely re-insert
/// sequencing arcs that may already exist as data dependencies.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag {
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
    edge_count: usize,
    /// Insertion journal of the (deduplicated) edges, in order. Rollback
    /// unwinds its tail; duplicate insertions never journal.
    #[serde(default)]
    journal: Vec<(NodeId, NodeId)>,
}

impl Dag {
    /// DAG with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Dag {
            preds: vec![Vec::new(); n],
            succs: vec![Vec::new(); n],
            edge_count: 0,
            journal: Vec::new(),
        }
    }

    /// Builds a DAG from a task graph description, deduplicating arcs.
    ///
    /// Returns `Err` if the description contains a cycle.
    pub fn from_taskgraph(graph: &TaskGraph) -> Result<Self, CycleError> {
        let mut dag = Dag::with_nodes(graph.len());
        for &(TaskId(a), TaskId(b)) in &graph.edges {
            dag.add_edge(a, b)?;
        }
        Ok(dag)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the DAG has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Number of (deduplicated) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a fresh isolated node and returns its id. Used by schedulers
    /// that model reconfigurations as extra nodes.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.preds.len() as NodeId;
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        id
    }

    /// Direct predecessors of `v`.
    #[inline]
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        &self.preds[v as usize]
    }

    /// Direct successors of `v`.
    #[inline]
    pub fn succs(&self, v: NodeId) -> &[NodeId] {
        &self.succs[v as usize]
    }

    /// True when the arc `from -> to` is present.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.succs[from as usize].contains(&to)
    }

    /// Inserts `from -> to`, rejecting self-loops and cycles. Duplicate
    /// arcs are ignored and reported as `Ok`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), CycleError> {
        assert!(
            (from as usize) < self.len() && (to as usize) < self.len(),
            "node out of range"
        );
        if from == to {
            return Err(CycleError { from, to });
        }
        if self.has_edge(from, to) {
            return Ok(());
        }
        // `from -> to` creates a cycle iff `from` is reachable from `to`.
        if crate::reach::is_reachable(self, to, from) {
            return Err(CycleError { from, to });
        }
        self.succs[from as usize].push(to);
        self.preds[to as usize].push(from);
        self.edge_count += 1;
        self.journal.push((from, to));
        Ok(())
    }

    /// Snapshot of the current node and edge counts, for [`Dag::rollback`].
    pub fn checkpoint(&self) -> DagCheckpoint {
        DagCheckpoint {
            nodes: self.len(),
            edges: self.journal.len(),
        }
    }

    /// Rewinds the graph to a [`checkpoint`](Dag::checkpoint) taken on this
    /// graph: every edge and node inserted since is removed, in exact
    /// reverse insertion order. Buffer capacity is retained, so the
    /// schedulers' per-iteration sequencing arcs cost no allocation to
    /// undo.
    ///
    /// Panics when the checkpoint describes a larger graph than the current
    /// one (it was taken on a different graph, or `rollback` already passed
    /// it).
    pub fn rollback(&mut self, cp: DagCheckpoint) {
        assert!(
            cp.nodes <= self.len() && cp.edges <= self.journal.len(),
            "checkpoint does not describe a prefix of this graph"
        );
        while self.journal.len() > cp.edges {
            let (from, to) = self.journal.pop().expect("journal length checked");
            // Insertion appended to both adjacency lists, and we unwind in
            // reverse insertion order, so the entry sits at each tail.
            let s = self.succs[from as usize].pop();
            debug_assert_eq!(s, Some(to));
            let p = self.preds[to as usize].pop();
            debug_assert_eq!(p, Some(from));
            self.edge_count -= 1;
        }
        self.preds.truncate(cp.nodes);
        self.succs.truncate(cp.nodes);
    }

    /// Kahn topological order; deterministic (smallest-id first among
    /// ready nodes) so every scheduler run is reproducible.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut order = Vec::new();
        let mut scratch = TopoScratch::default();
        self.topo_order_into(&mut scratch, &mut order);
        order
    }

    /// [`Dag::topo_order`] into caller-owned buffers — the allocation-free
    /// variant the schedulers' CPM hot path uses.
    pub fn topo_order_into(&self, scratch: &mut TopoScratch, order: &mut Vec<NodeId>) {
        let n = self.len();
        order.clear();
        order.reserve(n);
        scratch.indeg.clear();
        scratch
            .indeg
            .extend((0..n).map(|v| self.preds[v].len() as u32));
        scratch.ready.clear();
        for (v, &d) in scratch.indeg.iter().enumerate() {
            if d == 0 {
                scratch.ready.push(Reverse(v as NodeId));
            }
        }
        while let Some(Reverse(v)) = scratch.ready.pop() {
            order.push(v);
            for &s in &self.succs[v as usize] {
                scratch.indeg[s as usize] -= 1;
                if scratch.indeg[s as usize] == 0 {
                    scratch.ready.push(Reverse(s));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "DAG invariant violated: cycle present");
    }

    /// Source nodes (no predecessors).
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.len() as NodeId)
            .filter(|&v| self.preds[v as usize].is_empty())
            .collect()
    }

    /// Sink nodes (no successors).
    pub fn sinks(&self) -> Vec<NodeId> {
        (0..self.len() as NodeId)
            .filter(|&v| self.succs[v as usize].is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut d = Dag::with_nodes(4);
        d.add_edge(0, 1).unwrap();
        d.add_edge(0, 2).unwrap();
        d.add_edge(1, 3).unwrap();
        d.add_edge(2, 3).unwrap();
        d
    }

    #[test]
    fn builds_diamond() {
        let d = diamond();
        assert_eq!(d.len(), 4);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.preds(3), &[1, 2]);
        assert_eq!(d.succs(0), &[1, 2]);
        assert_eq!(d.sources(), vec![0]);
        assert_eq!(d.sinks(), vec![3]);
    }

    #[test]
    fn rejects_cycle_and_self_loop() {
        let mut d = diamond();
        assert_eq!(d.add_edge(3, 0), Err(CycleError { from: 3, to: 0 }));
        assert_eq!(d.add_edge(1, 1), Err(CycleError { from: 1, to: 1 }));
        // Rejection leaves the graph untouched.
        assert_eq!(d.edge_count(), 4);
        assert!(!d.has_edge(3, 0));
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut d = diamond();
        d.add_edge(0, 1).unwrap();
        assert_eq!(d.edge_count(), 4);
    }

    #[test]
    fn transitive_edge_allowed() {
        let mut d = diamond();
        d.add_edge(0, 3).unwrap();
        assert_eq!(d.edge_count(), 5);
    }

    #[test]
    fn topo_order_is_valid_and_deterministic() {
        let d = diamond();
        let order = d.topo_order();
        assert_eq!(order, vec![0, 1, 2, 3]);
        let mut pos = vec![0usize; d.len()];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for v in 0..d.len() as NodeId {
            for &s in d.succs(v) {
                assert!(pos[v as usize] < pos[s as usize]);
            }
        }
    }

    #[test]
    fn from_taskgraph_dedups() {
        use prfpga_model::ImplId;
        let mut g = TaskGraph::new();
        let a = g.add_task("a", vec![ImplId(0)]);
        let b = g.add_task("b", vec![ImplId(0)]);
        g.add_edge(a, b);
        g.add_edge(a, b);
        let d = Dag::from_taskgraph(&g).unwrap();
        assert_eq!(d.edge_count(), 1);
    }

    #[test]
    fn from_taskgraph_detects_cycle() {
        use prfpga_model::ImplId;
        let mut g = TaskGraph::new();
        let a = g.add_task("a", vec![ImplId(0)]);
        let b = g.add_task("b", vec![ImplId(0)]);
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert!(Dag::from_taskgraph(&g).is_err());
    }

    #[test]
    fn add_node_extends() {
        let mut d = diamond();
        let v = d.add_node();
        assert_eq!(v, 4);
        d.add_edge(3, v).unwrap();
        assert_eq!(d.sinks(), vec![4]);
    }

    #[test]
    fn empty_dag() {
        let d = Dag::with_nodes(0);
        assert!(d.is_empty());
        assert!(d.topo_order().is_empty());
        assert!(d.sources().is_empty());
    }

    #[test]
    fn rollback_restores_exact_graph() {
        let mut d = diamond();
        let base = d.clone();
        let cp = d.checkpoint();
        d.add_edge(0, 3).unwrap();
        d.add_edge(1, 2).unwrap();
        let v = d.add_node();
        d.add_edge(3, v).unwrap();
        assert_eq!(d.edge_count(), 7);
        d.rollback(cp);
        assert_eq!(d, base, "rollback must restore the checkpointed graph");
        assert_eq!(d.len(), 4);
        assert_eq!(d.edge_count(), 4);
        // The graph stays fully usable after rollback.
        d.add_edge(0, 3).unwrap();
        assert!(d.has_edge(0, 3));
    }

    #[test]
    fn rollback_is_repeatable_and_skips_duplicates() {
        let mut d = diamond();
        let cp = d.checkpoint();
        for _ in 0..3 {
            d.add_edge(0, 1).unwrap(); // duplicate: not journaled
            d.add_edge(0, 3).unwrap();
            assert_eq!(d.edge_count(), 5);
            d.rollback(cp);
            assert_eq!(d.edge_count(), 4);
            assert!(!d.has_edge(0, 3));
            assert!(d.has_edge(0, 1), "base edges survive rollback");
        }
        // Rolling back with nothing to unwind is a no-op.
        d.rollback(cp);
        assert_eq!(d, diamond());
    }

    #[test]
    fn rollback_equals_rebuild() {
        // A rolled-back DAG is indistinguishable from a freshly built one:
        // same adjacency, same topological order, same equality.
        let mut g = TaskGraph::new();
        use prfpga_model::ImplId;
        let ids: Vec<_> = (0..6)
            .map(|i| g.add_task(format!("t{i}"), vec![ImplId(0)]))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g.add_edge(ids[0], ids[3]);
        let mut d = Dag::from_taskgraph(&g).unwrap();
        let cp = d.checkpoint();
        d.add_edge(1, 4).unwrap();
        d.add_edge(2, 5).unwrap();
        d.rollback(cp);
        let fresh = Dag::from_taskgraph(&g).unwrap();
        assert_eq!(d, fresh);
        assert_eq!(d.topo_order(), fresh.topo_order());
    }

    #[test]
    #[should_panic(expected = "prefix")]
    fn rollback_rejects_foreign_checkpoint() {
        let big = diamond();
        let cp = big.checkpoint();
        let mut small = Dag::with_nodes(2);
        small.rollback(cp);
    }

    #[test]
    fn topo_order_into_matches_allocating_variant() {
        let d = diamond();
        let mut scratch = TopoScratch::default();
        let mut order = vec![99; 10]; // stale content must be cleared
        d.topo_order_into(&mut scratch, &mut order);
        assert_eq!(order, d.topo_order());
        // Reuse across differently-sized graphs.
        let chain = {
            let mut c = Dag::with_nodes(6);
            for i in 0..5 {
                c.add_edge(i, i + 1).unwrap();
            }
            c
        };
        chain.topo_order_into(&mut scratch, &mut order);
        assert_eq!(order, chain.topo_order());
    }
}
