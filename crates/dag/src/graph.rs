//! Compact mutable DAG with cycle-safe edge insertion.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use prfpga_model::{TaskGraph, TaskId};

/// Globally-unique structure-version source. Every mutation of any [`Dag`]
/// draws a fresh value, so derived read-only structures ([`crate::CsrView`],
/// [`crate::ReachIndex`]) can detect staleness by a single integer compare —
/// soundly even across rollback/re-insert sequences that restore identical
/// node and edge counts, and across distinct `Dag` instances.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

/// In-memory structure version of one [`Dag`].
///
/// Serialization stores a placeholder `0` and deserialization always draws
/// a fresh globally-unique value: a persisted version number could collide
/// with a live graph's version in a later process, which would let a stale
/// derived structure pass its currency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StructVersion(u64);

impl StructVersion {
    fn fresh() -> Self {
        StructVersion(NEXT_VERSION.fetch_add(1, Ordering::Relaxed))
    }
}

impl Serialize for StructVersion {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Number(serde::value::Number::from_u64(0))
    }
}

impl Deserialize for StructVersion {
    fn from_value(_: &serde::value::Value) -> Result<Self, serde::de::Error> {
        Ok(StructVersion::fresh())
    }
}

/// Reusable buffers for [`Dag::topo_order_into`].
#[derive(Debug, Clone, Default)]
pub struct TopoScratch {
    indeg: Vec<u32>,
    ready: BinaryHeap<Reverse<NodeId>>,
}

/// Node index; for DAGs built from a [`TaskGraph`] it equals the task index.
pub type NodeId = u32;

/// Returned when an edge insertion would create a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleError {
    /// Source of the rejected edge.
    pub from: NodeId,
    /// Destination of the rejected edge.
    pub to: NodeId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "edge {} -> {} would create a cycle", self.from, self.to)
    }
}

impl std::error::Error for CycleError {}

/// A size snapshot of a [`Dag`], taken with [`Dag::checkpoint`] and
/// restored with [`Dag::rollback`].
///
/// Node and edge insertion are append-only, so a checkpoint is just the
/// (node count, journal length) pair at snapshot time; rolling back pops
/// everything inserted afterwards in exact reverse order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagCheckpoint {
    nodes: usize,
    edges: usize,
}

/// Adjacency-list DAG supporting dynamic, cycle-checked edge insertion.
///
/// Duplicate edges are silently ignored: the schedulers freely re-insert
/// sequencing arcs that may already exist as data dependencies.
#[derive(Debug, Clone, Eq, Serialize, Deserialize)]
pub struct Dag {
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
    edge_count: usize,
    /// Insertion journal of the (deduplicated) edges, in order. Rollback
    /// unwinds its tail; duplicate insertions never journal.
    #[serde(default)]
    journal: Vec<(NodeId, NodeId)>,
    /// Structure version: refreshed from the global counter on every
    /// mutation (including rollback). Not part of equality and
    /// round-trips as a fresh value — it identifies a momentary in-memory
    /// structure, not graph content.
    #[serde(default = "StructVersion::fresh")]
    version: StructVersion,
}

/// Equality is over graph content (adjacency, counts, journal); the
/// in-memory structure version is deliberately excluded so a rolled-back
/// graph compares equal to a freshly built one.
impl PartialEq for Dag {
    fn eq(&self, other: &Self) -> bool {
        self.preds == other.preds
            && self.succs == other.succs
            && self.edge_count == other.edge_count
            && self.journal == other.journal
    }
}

impl Default for Dag {
    fn default() -> Self {
        Dag::with_nodes(0)
    }
}

impl Dag {
    /// DAG with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Dag {
            preds: vec![Vec::new(); n],
            succs: vec![Vec::new(); n],
            edge_count: 0,
            journal: Vec::new(),
            version: StructVersion::fresh(),
        }
    }

    /// Builds a DAG from a task graph description, deduplicating arcs.
    ///
    /// Returns `Err` if the description contains a cycle.
    pub fn from_taskgraph(graph: &TaskGraph) -> Result<Self, CycleError> {
        let mut dag = Dag::with_nodes(graph.len());
        for &(TaskId(a), TaskId(b)) in &graph.edges {
            dag.add_edge(a, b)?;
        }
        Ok(dag)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the DAG has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Number of (deduplicated) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Structure version of this graph. Refreshed (to a globally unique
    /// value) by every mutation; derived read-only structures record the
    /// version they were built against and compare it to decide currency.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.0
    }

    /// Appends a fresh isolated node and returns its id. Used by schedulers
    /// that model reconfigurations as extra nodes.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.preds.len() as NodeId;
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        self.version = StructVersion::fresh();
        id
    }

    /// Direct predecessors of `v`.
    #[inline]
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        &self.preds[v as usize]
    }

    /// Direct successors of `v`.
    #[inline]
    pub fn succs(&self, v: NodeId) -> &[NodeId] {
        &self.succs[v as usize]
    }

    /// True when the arc `from -> to` is present.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.succs[from as usize].contains(&to)
    }

    /// Inserts `from -> to`, rejecting self-loops and cycles. Duplicate
    /// arcs are ignored and reported as `Ok`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), CycleError> {
        assert!(
            (from as usize) < self.len() && (to as usize) < self.len(),
            "node out of range"
        );
        if from == to {
            return Err(CycleError { from, to });
        }
        if self.has_edge(from, to) {
            return Ok(());
        }
        // `from -> to` creates a cycle iff `from` is reachable from `to`.
        if crate::reach::is_reachable(self, to, from) {
            return Err(CycleError { from, to });
        }
        self.insert_edge_acyclic(from, to);
        Ok(())
    }

    /// Journaled insertion of an edge the caller has proven acyclic and
    /// non-duplicate. Shared by [`Dag::add_edge`] (after its DFS probe) and
    /// the index-accelerated insertion of
    /// [`ReachIndex::add_edge`](crate::ReachIndex::add_edge).
    pub(crate) fn insert_edge_acyclic(&mut self, from: NodeId, to: NodeId) {
        self.succs[from as usize].push(to);
        self.preds[to as usize].push(from);
        self.edge_count += 1;
        self.journal.push((from, to));
        self.version = StructVersion::fresh();
    }

    /// Snapshot of the current node and edge counts, for [`Dag::rollback`].
    pub fn checkpoint(&self) -> DagCheckpoint {
        DagCheckpoint {
            nodes: self.len(),
            edges: self.journal.len(),
        }
    }

    /// Rewinds the graph to a [`checkpoint`](Dag::checkpoint) taken on this
    /// graph: every edge and node inserted since is removed, in exact
    /// reverse insertion order. Buffer capacity is retained, so the
    /// schedulers' per-iteration sequencing arcs cost no allocation to
    /// undo.
    ///
    /// Panics when the checkpoint describes a larger graph than the current
    /// one (it was taken on a different graph, or `rollback` already passed
    /// it).
    pub fn rollback(&mut self, cp: DagCheckpoint) {
        assert!(
            cp.nodes <= self.len() && cp.edges <= self.journal.len(),
            "checkpoint does not describe a prefix of this graph"
        );
        if cp.nodes < self.len() || cp.edges < self.journal.len() {
            self.version = StructVersion::fresh();
        }
        while self.journal.len() > cp.edges {
            let (from, to) = self.journal.pop().expect("journal length checked");
            // Insertion appended to both adjacency lists, and we unwind in
            // reverse insertion order, so the entry sits at each tail.
            let s = self.succs[from as usize].pop();
            debug_assert_eq!(s, Some(to));
            let p = self.preds[to as usize].pop();
            debug_assert_eq!(p, Some(from));
            self.edge_count -= 1;
        }
        self.preds.truncate(cp.nodes);
        self.succs.truncate(cp.nodes);
    }

    /// Retires node `v`: removes every arc incident to it (both
    /// directions), leaving the node in place as an isolated vertex so no
    /// other node is renumbered. Returns the number of arcs removed.
    ///
    /// This is the online-repair mutation: a finished task imposes no
    /// further precedence, so its arcs are dropped rather than the whole
    /// graph rebuilt. The removed arcs are also purged from the insertion
    /// journal, which means any [`DagCheckpoint`] taken *before* the
    /// retirement no longer describes a prefix of this graph —
    /// [`Dag::rollback`] will reject it. Retirement and checkpoint-based
    /// search must not be interleaved.
    pub fn retire_node(&mut self, v: NodeId) -> usize {
        let vi = v as usize;
        assert!(vi < self.len(), "node out of range");
        let preds = std::mem::take(&mut self.preds[vi]);
        let succs = std::mem::take(&mut self.succs[vi]);
        let removed = preds.len() + succs.len();
        if removed == 0 {
            return 0;
        }
        for &p in &preds {
            self.succs[p as usize].retain(|&x| x != v);
        }
        for &s in &succs {
            self.preds[s as usize].retain(|&x| x != v);
        }
        self.edge_count -= removed;
        self.journal.retain(|&(a, b)| a != v && b != v);
        self.version = StructVersion::fresh();
        removed
    }

    /// Kahn topological order; deterministic (smallest-id first among
    /// ready nodes) so every scheduler run is reproducible.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut order = Vec::new();
        let mut scratch = TopoScratch::default();
        self.topo_order_into(&mut scratch, &mut order);
        order
    }

    /// [`Dag::topo_order`] into caller-owned buffers — the allocation-free
    /// variant the schedulers' CPM hot path uses.
    pub fn topo_order_into(&self, scratch: &mut TopoScratch, order: &mut Vec<NodeId>) {
        let n = self.len();
        order.clear();
        order.reserve(n);
        scratch.indeg.clear();
        scratch
            .indeg
            .extend((0..n).map(|v| self.preds[v].len() as u32));
        scratch.ready.clear();
        for (v, &d) in scratch.indeg.iter().enumerate() {
            if d == 0 {
                scratch.ready.push(Reverse(v as NodeId));
            }
        }
        while let Some(Reverse(v)) = scratch.ready.pop() {
            order.push(v);
            for &s in &self.succs[v as usize] {
                scratch.indeg[s as usize] -= 1;
                if scratch.indeg[s as usize] == 0 {
                    scratch.ready.push(Reverse(s));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "DAG invariant violated: cycle present");
    }

    /// Source nodes (no predecessors).
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.len() as NodeId)
            .filter(|&v| self.preds[v as usize].is_empty())
            .collect()
    }

    /// Sink nodes (no successors).
    pub fn sinks(&self) -> Vec<NodeId> {
        (0..self.len() as NodeId)
            .filter(|&v| self.succs[v as usize].is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut d = Dag::with_nodes(4);
        d.add_edge(0, 1).unwrap();
        d.add_edge(0, 2).unwrap();
        d.add_edge(1, 3).unwrap();
        d.add_edge(2, 3).unwrap();
        d
    }

    #[test]
    fn builds_diamond() {
        let d = diamond();
        assert_eq!(d.len(), 4);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.preds(3), &[1, 2]);
        assert_eq!(d.succs(0), &[1, 2]);
        assert_eq!(d.sources(), vec![0]);
        assert_eq!(d.sinks(), vec![3]);
    }

    #[test]
    fn rejects_cycle_and_self_loop() {
        let mut d = diamond();
        assert_eq!(d.add_edge(3, 0), Err(CycleError { from: 3, to: 0 }));
        assert_eq!(d.add_edge(1, 1), Err(CycleError { from: 1, to: 1 }));
        // Rejection leaves the graph untouched.
        assert_eq!(d.edge_count(), 4);
        assert!(!d.has_edge(3, 0));
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut d = diamond();
        d.add_edge(0, 1).unwrap();
        assert_eq!(d.edge_count(), 4);
    }

    #[test]
    fn transitive_edge_allowed() {
        let mut d = diamond();
        d.add_edge(0, 3).unwrap();
        assert_eq!(d.edge_count(), 5);
    }

    #[test]
    fn topo_order_is_valid_and_deterministic() {
        let d = diamond();
        let order = d.topo_order();
        assert_eq!(order, vec![0, 1, 2, 3]);
        let mut pos = vec![0usize; d.len()];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for v in 0..d.len() as NodeId {
            for &s in d.succs(v) {
                assert!(pos[v as usize] < pos[s as usize]);
            }
        }
    }

    #[test]
    fn from_taskgraph_dedups() {
        use prfpga_model::ImplId;
        let mut g = TaskGraph::new();
        let a = g.add_task("a", vec![ImplId(0)]);
        let b = g.add_task("b", vec![ImplId(0)]);
        g.add_edge(a, b);
        g.add_edge(a, b);
        let d = Dag::from_taskgraph(&g).unwrap();
        assert_eq!(d.edge_count(), 1);
    }

    #[test]
    fn from_taskgraph_detects_cycle() {
        use prfpga_model::ImplId;
        let mut g = TaskGraph::new();
        let a = g.add_task("a", vec![ImplId(0)]);
        let b = g.add_task("b", vec![ImplId(0)]);
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert!(Dag::from_taskgraph(&g).is_err());
    }

    #[test]
    fn add_node_extends() {
        let mut d = diamond();
        let v = d.add_node();
        assert_eq!(v, 4);
        d.add_edge(3, v).unwrap();
        assert_eq!(d.sinks(), vec![4]);
    }

    #[test]
    fn empty_dag() {
        let d = Dag::with_nodes(0);
        assert!(d.is_empty());
        assert!(d.topo_order().is_empty());
        assert!(d.sources().is_empty());
    }

    #[test]
    fn rollback_restores_exact_graph() {
        let mut d = diamond();
        let base = d.clone();
        let cp = d.checkpoint();
        d.add_edge(0, 3).unwrap();
        d.add_edge(1, 2).unwrap();
        let v = d.add_node();
        d.add_edge(3, v).unwrap();
        assert_eq!(d.edge_count(), 7);
        d.rollback(cp);
        assert_eq!(d, base, "rollback must restore the checkpointed graph");
        assert_eq!(d.len(), 4);
        assert_eq!(d.edge_count(), 4);
        // The graph stays fully usable after rollback.
        d.add_edge(0, 3).unwrap();
        assert!(d.has_edge(0, 3));
    }

    #[test]
    fn rollback_is_repeatable_and_skips_duplicates() {
        let mut d = diamond();
        let cp = d.checkpoint();
        for _ in 0..3 {
            d.add_edge(0, 1).unwrap(); // duplicate: not journaled
            d.add_edge(0, 3).unwrap();
            assert_eq!(d.edge_count(), 5);
            d.rollback(cp);
            assert_eq!(d.edge_count(), 4);
            assert!(!d.has_edge(0, 3));
            assert!(d.has_edge(0, 1), "base edges survive rollback");
        }
        // Rolling back with nothing to unwind is a no-op.
        d.rollback(cp);
        assert_eq!(d, diamond());
    }

    #[test]
    fn rollback_equals_rebuild() {
        // A rolled-back DAG is indistinguishable from a freshly built one:
        // same adjacency, same topological order, same equality.
        let mut g = TaskGraph::new();
        use prfpga_model::ImplId;
        let ids: Vec<_> = (0..6)
            .map(|i| g.add_task(format!("t{i}"), vec![ImplId(0)]))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g.add_edge(ids[0], ids[3]);
        let mut d = Dag::from_taskgraph(&g).unwrap();
        let cp = d.checkpoint();
        d.add_edge(1, 4).unwrap();
        d.add_edge(2, 5).unwrap();
        d.rollback(cp);
        let fresh = Dag::from_taskgraph(&g).unwrap();
        assert_eq!(d, fresh);
        assert_eq!(d.topo_order(), fresh.topo_order());
    }

    #[test]
    fn version_tracks_structural_mutations_only() {
        let mut d = diamond();
        let v0 = d.version();
        d.add_edge(0, 1).unwrap(); // duplicate: structure untouched
        assert_eq!(d.version(), v0);
        assert!(d.add_edge(3, 0).is_err()); // rejected: structure untouched
        assert_eq!(d.version(), v0);
        let cp = d.checkpoint();
        d.rollback(cp); // nothing to unwind
        assert_eq!(d.version(), v0);

        d.add_edge(0, 3).unwrap();
        let v1 = d.version();
        assert_ne!(v1, v0);
        d.rollback(cp);
        assert_ne!(d.version(), v1, "rollback refreshes the version");
        assert_ne!(
            d.version(),
            v0,
            "restored content must not resurrect the old version"
        );
        assert_eq!(d, diamond(), "equality ignores the version");
        assert_ne!(
            Dag::with_nodes(2).version(),
            Dag::with_nodes(2).version(),
            "versions are globally unique across instances"
        );
    }

    #[test]
    fn retire_node_isolates_without_renumbering() {
        let mut d = diamond();
        let v0 = d.version();
        assert_eq!(d.retire_node(1), 2); // 0->1 and 1->3
        assert_ne!(d.version(), v0);
        assert_eq!(d.len(), 4, "no renumbering");
        assert_eq!(d.edge_count(), 2);
        assert!(d.preds(1).is_empty() && d.succs(1).is_empty());
        assert_eq!(d.succs(0), &[2]);
        assert_eq!(d.preds(3), &[2]);
        // The freed node is re-usable and retiring it again is a no-op.
        assert_eq!(d.retire_node(1), 0);
        d.add_edge(2, 1).unwrap();
        assert_eq!(d.preds(1), &[2]);
        // Topological order still covers every node.
        assert_eq!(d.topo_order().len(), 4);
    }

    #[test]
    #[should_panic(expected = "prefix")]
    fn retirement_invalidates_earlier_checkpoints() {
        let mut d = diamond();
        let cp = d.checkpoint();
        d.retire_node(0);
        d.rollback(cp);
    }

    #[test]
    #[should_panic(expected = "prefix")]
    fn rollback_rejects_foreign_checkpoint() {
        let big = diamond();
        let cp = big.checkpoint();
        let mut small = Dag::with_nodes(2);
        small.rollback(cp);
    }

    #[test]
    fn topo_order_into_matches_allocating_variant() {
        let d = diamond();
        let mut scratch = TopoScratch::default();
        let mut order = vec![99; 10]; // stale content must be cleared
        d.topo_order_into(&mut scratch, &mut order);
        assert_eq!(order, d.topo_order());
        // Reuse across differently-sized graphs.
        let chain = {
            let mut c = Dag::with_nodes(6);
            for i in 0..5 {
                c.add_edge(i, i + 1).unwrap();
            }
            c
        };
        chain.topo_order_into(&mut scratch, &mut order);
        assert_eq!(order, chain.topo_order());
    }
}
