//! Compact mutable DAG with cycle-safe edge insertion.

use serde::{Deserialize, Serialize};

use prfpga_model::{TaskGraph, TaskId};

/// Node index; for DAGs built from a [`TaskGraph`] it equals the task index.
pub type NodeId = u32;

/// Returned when an edge insertion would create a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleError {
    /// Source of the rejected edge.
    pub from: NodeId,
    /// Destination of the rejected edge.
    pub to: NodeId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "edge {} -> {} would create a cycle", self.from, self.to)
    }
}

impl std::error::Error for CycleError {}

/// Adjacency-list DAG supporting dynamic, cycle-checked edge insertion.
///
/// Duplicate edges are silently ignored: the schedulers freely re-insert
/// sequencing arcs that may already exist as data dependencies.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag {
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Dag {
    /// DAG with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Dag {
            preds: vec![Vec::new(); n],
            succs: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a DAG from a task graph description, deduplicating arcs.
    ///
    /// Returns `Err` if the description contains a cycle.
    pub fn from_taskgraph(graph: &TaskGraph) -> Result<Self, CycleError> {
        let mut dag = Dag::with_nodes(graph.len());
        for &(TaskId(a), TaskId(b)) in &graph.edges {
            dag.add_edge(a, b)?;
        }
        Ok(dag)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the DAG has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Number of (deduplicated) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a fresh isolated node and returns its id. Used by schedulers
    /// that model reconfigurations as extra nodes.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.preds.len() as NodeId;
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        id
    }

    /// Direct predecessors of `v`.
    #[inline]
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        &self.preds[v as usize]
    }

    /// Direct successors of `v`.
    #[inline]
    pub fn succs(&self, v: NodeId) -> &[NodeId] {
        &self.succs[v as usize]
    }

    /// True when the arc `from -> to` is present.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.succs[from as usize].contains(&to)
    }

    /// Inserts `from -> to`, rejecting self-loops and cycles. Duplicate
    /// arcs are ignored and reported as `Ok`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), CycleError> {
        assert!(
            (from as usize) < self.len() && (to as usize) < self.len(),
            "node out of range"
        );
        if from == to {
            return Err(CycleError { from, to });
        }
        if self.has_edge(from, to) {
            return Ok(());
        }
        // `from -> to` creates a cycle iff `from` is reachable from `to`.
        if crate::reach::is_reachable(self, to, from) {
            return Err(CycleError { from, to });
        }
        self.succs[from as usize].push(to);
        self.preds[to as usize].push(from);
        self.edge_count += 1;
        Ok(())
    }

    /// Kahn topological order; deterministic (smallest-id first among
    /// ready nodes) so every scheduler run is reproducible.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let n = self.len();
        let mut indeg: Vec<u32> = (0..n).map(|v| self.preds[v].len() as u32).collect();
        // Binary heap would be O(E log V); for determinism a sorted ready
        // list is enough and the graphs are small. Use a BinaryHeap on
        // Reverse ids for O(log) pops.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut ready: BinaryHeap<Reverse<NodeId>> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(v, _)| Reverse(v as NodeId))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(v)) = ready.pop() {
            order.push(v);
            for &s in &self.succs[v as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    ready.push(Reverse(s));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "DAG invariant violated: cycle present");
        order
    }

    /// Source nodes (no predecessors).
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.len() as NodeId)
            .filter(|&v| self.preds[v as usize].is_empty())
            .collect()
    }

    /// Sink nodes (no successors).
    pub fn sinks(&self) -> Vec<NodeId> {
        (0..self.len() as NodeId)
            .filter(|&v| self.succs[v as usize].is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut d = Dag::with_nodes(4);
        d.add_edge(0, 1).unwrap();
        d.add_edge(0, 2).unwrap();
        d.add_edge(1, 3).unwrap();
        d.add_edge(2, 3).unwrap();
        d
    }

    #[test]
    fn builds_diamond() {
        let d = diamond();
        assert_eq!(d.len(), 4);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.preds(3), &[1, 2]);
        assert_eq!(d.succs(0), &[1, 2]);
        assert_eq!(d.sources(), vec![0]);
        assert_eq!(d.sinks(), vec![3]);
    }

    #[test]
    fn rejects_cycle_and_self_loop() {
        let mut d = diamond();
        assert_eq!(d.add_edge(3, 0), Err(CycleError { from: 3, to: 0 }));
        assert_eq!(d.add_edge(1, 1), Err(CycleError { from: 1, to: 1 }));
        // Rejection leaves the graph untouched.
        assert_eq!(d.edge_count(), 4);
        assert!(!d.has_edge(3, 0));
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut d = diamond();
        d.add_edge(0, 1).unwrap();
        assert_eq!(d.edge_count(), 4);
    }

    #[test]
    fn transitive_edge_allowed() {
        let mut d = diamond();
        d.add_edge(0, 3).unwrap();
        assert_eq!(d.edge_count(), 5);
    }

    #[test]
    fn topo_order_is_valid_and_deterministic() {
        let d = diamond();
        let order = d.topo_order();
        assert_eq!(order, vec![0, 1, 2, 3]);
        let mut pos = vec![0usize; d.len()];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for v in 0..d.len() as NodeId {
            for &s in d.succs(v) {
                assert!(pos[v as usize] < pos[s as usize]);
            }
        }
    }

    #[test]
    fn from_taskgraph_dedups() {
        use prfpga_model::ImplId;
        let mut g = TaskGraph::new();
        let a = g.add_task("a", vec![ImplId(0)]);
        let b = g.add_task("b", vec![ImplId(0)]);
        g.add_edge(a, b);
        g.add_edge(a, b);
        let d = Dag::from_taskgraph(&g).unwrap();
        assert_eq!(d.edge_count(), 1);
    }

    #[test]
    fn from_taskgraph_detects_cycle() {
        use prfpga_model::ImplId;
        let mut g = TaskGraph::new();
        let a = g.add_task("a", vec![ImplId(0)]);
        let b = g.add_task("b", vec![ImplId(0)]);
        g.add_edge(a, b);
        g.add_edge(b, a);
        assert!(Dag::from_taskgraph(&g).is_err());
    }

    #[test]
    fn add_node_extends() {
        let mut d = diamond();
        let v = d.add_node();
        assert_eq!(v, 4);
        d.add_edge(3, v).unwrap();
        assert_eq!(d.sinks(), vec![4]);
    }

    #[test]
    fn empty_dag() {
        let d = Dag::with_nodes(0);
        assert!(d.is_empty());
        assert!(d.topo_order().is_empty());
        assert!(d.sources().is_empty());
    }
}
