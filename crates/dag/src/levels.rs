//! Structural analyses: level decomposition and parallelism profile.
//!
//! §VII-B of the paper observes that the improvement of the proposed
//! schedulers depends on how much parallelism the task graph exposes.
//! These helpers quantify that: the ASAP level of each node, the width of
//! each level, and the resulting average/maximum parallelism — used by the
//! generator's tests and by the experiment reports to characterize suites.

use crate::csr::{CsrView, GraphRead};
use crate::graph::{Dag, NodeId};

/// Level decomposition of a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelProfile {
    /// ASAP level (longest edge-count distance from any source) per node.
    pub level: Vec<u32>,
    /// Number of nodes on each level.
    pub widths: Vec<u32>,
}

impl LevelProfile {
    /// Computes the profile.
    pub fn new(dag: &Dag) -> LevelProfile {
        Self::compute(dag, &dag.topo_order())
    }

    /// Computes the profile over a current [`CsrView`], reusing its cached
    /// topological order instead of re-running Kahn's algorithm — the path
    /// the scaling studies use to characterize 10k+-task instances.
    pub fn from_csr(csr: &CsrView) -> LevelProfile {
        Self::compute(csr, csr.topo_order())
    }

    fn compute<G: GraphRead>(graph: &G, topo: &[NodeId]) -> LevelProfile {
        let mut level = vec![0u32; graph.num_nodes()];
        for &v in topo {
            for &s in graph.succs_of(v) {
                level[s as usize] = level[s as usize].max(level[v as usize] + 1);
            }
        }
        let depth = level.iter().copied().max().map_or(0, |d| d + 1);
        let mut widths = vec![0u32; depth as usize];
        for &l in &level {
            widths[l as usize] += 1;
        }
        LevelProfile { level, widths }
    }

    /// Number of levels (0 for an empty DAG).
    pub fn depth(&self) -> usize {
        self.widths.len()
    }

    /// Maximum number of structurally parallel nodes.
    pub fn max_width(&self) -> u32 {
        self.widths.iter().copied().max().unwrap_or(0)
    }

    /// Average level width in hundredths (integer, reproducible):
    /// `100 * nodes / depth`.
    pub fn avg_width_x100(&self) -> u64 {
        if self.widths.is_empty() {
            return 0;
        }
        let nodes: u64 = self.widths.iter().map(|&w| w as u64).sum();
        nodes * 100 / self.widths.len() as u64
    }

    /// Level of one node.
    pub fn level_of(&self, v: NodeId) -> u32 {
        self.level[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_width_one() {
        let mut d = Dag::with_nodes(4);
        for i in 0..3 {
            d.add_edge(i, i + 1).unwrap();
        }
        let p = LevelProfile::new(&d);
        assert_eq!(p.depth(), 4);
        assert_eq!(p.max_width(), 1);
        assert_eq!(p.avg_width_x100(), 100);
        assert_eq!(p.level, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fork_join_profile() {
        // 0 -> {1,2,3} -> 4
        let mut d = Dag::with_nodes(5);
        for i in 1..=3 {
            d.add_edge(0, i).unwrap();
            d.add_edge(i, 4).unwrap();
        }
        let p = LevelProfile::new(&d);
        assert_eq!(p.depth(), 3);
        assert_eq!(p.widths, vec![1, 3, 1]);
        assert_eq!(p.max_width(), 3);
        assert_eq!(p.avg_width_x100(), 166);
        assert_eq!(p.level_of(4), 2);
    }

    #[test]
    fn level_is_longest_path_not_shortest() {
        // 0 -> 1 -> 2 and 0 -> 2: node 2 sits at level 2.
        let mut d = Dag::with_nodes(3);
        d.add_edge(0, 1).unwrap();
        d.add_edge(1, 2).unwrap();
        d.add_edge(0, 2).unwrap();
        let p = LevelProfile::new(&d);
        assert_eq!(p.level, vec![0, 1, 2]);
    }

    #[test]
    fn from_csr_matches_dag_profile() {
        let mut d = Dag::with_nodes(6);
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (0, 5)] {
            d.add_edge(a, b).unwrap();
        }
        let mut csr = CsrView::new();
        csr.build(&d);
        assert_eq!(LevelProfile::from_csr(&csr), LevelProfile::new(&d));
    }

    #[test]
    fn empty_and_isolated() {
        assert_eq!(LevelProfile::new(&Dag::with_nodes(0)).depth(), 0);
        let p = LevelProfile::new(&Dag::with_nodes(3));
        assert_eq!(p.depth(), 1);
        assert_eq!(p.max_width(), 3);
    }
}
