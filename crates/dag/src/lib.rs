//! # prfpga-dag
//!
//! Dependency-graph substrate for the `prfpga` schedulers.
//!
//! The paper's algorithms keep mutating a task dependency graph: region
//! assignment inserts sequencing arcs between tasks sharing a reconfigurable
//! region (§V-C), software mapping inserts arcs between tasks sharing a core
//! (§V-F), and every implementation switch changes node durations and
//! requires the Critical Path Method windows to be recomputed (§V-B). This
//! crate provides exactly that machinery:
//!
//! * [`Dag`] — a compact adjacency-list DAG with cycle-safe dynamic edge
//!   insertion and cached topological order;
//! * [`CpmAnalysis`] — forward/backward CPM pass producing per-node
//!   time windows `[T_MIN, T_MAX]`, the schedule makespan and the critical
//!   set;
//! * [`reach`] — reachability queries used to avoid creating cycles when
//!   sequencing arcs are inserted: per-query DFS plus the cached bitset
//!   closure [`ReachIndex`] for the schedulers' probe-heavy loops;
//! * [`CsrView`] — a frozen struct-of-arrays snapshot of a [`Dag`] (packed
//!   adjacency + cached topological order) for the read-mostly hot paths
//!   at 10k–100k nodes.

#![warn(missing_docs)]

pub mod cpm;
pub mod csr;
pub mod graph;
pub mod levels;
pub mod reach;

pub use cpm::{CpmAnalysis, CpmScratch};
pub use csr::{CsrView, GraphRead};
pub use graph::{CycleError, Dag, DagCheckpoint, NodeId, TopoScratch};
pub use levels::LevelProfile;
pub use reach::ReachIndex;
