//! Reachability queries over a [`Dag`].

use crate::graph::{Dag, NodeId};

/// True when `to` is reachable from `from` by following arcs forward.
///
/// Iterative DFS; `O(V + E)` worst case, but sequencing-arc insertions in
/// the schedulers overwhelmingly probe short chains, so the early exit
/// dominates in practice.
pub fn is_reachable(dag: &Dag, from: NodeId, to: NodeId) -> bool {
    if from == to {
        return true;
    }
    let mut visited = vec![false; dag.len()];
    let mut stack = vec![from];
    visited[from as usize] = true;
    while let Some(v) = stack.pop() {
        for &s in dag.succs(v) {
            if s == to {
                return true;
            }
            if !visited[s as usize] {
                visited[s as usize] = true;
                stack.push(s);
            }
        }
    }
    false
}

/// All nodes reachable from `from` (excluding `from` itself unless it lies
/// on a cycle, which a [`Dag`] cannot contain).
pub fn descendants(dag: &Dag, from: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; dag.len()];
    let mut stack = vec![from];
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        for &s in dag.succs(v) {
            if !visited[s as usize] {
                visited[s as usize] = true;
                out.push(s);
                stack.push(s);
            }
        }
    }
    out.sort_unstable();
    out
}

/// All nodes that can reach `to`.
pub fn ancestors(dag: &Dag, to: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; dag.len()];
    let mut stack = vec![to];
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        for &p in dag.preds(v) {
            if !visited[p as usize] {
                visited[p as usize] = true;
                out.push(p);
                stack.push(p);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain5() -> Dag {
        let mut d = Dag::with_nodes(5);
        for i in 0..4 {
            d.add_edge(i, i + 1).unwrap();
        }
        d
    }

    #[test]
    fn reachability_on_chain() {
        let d = chain5();
        assert!(is_reachable(&d, 0, 4));
        assert!(is_reachable(&d, 2, 2));
        assert!(!is_reachable(&d, 4, 0));
        assert!(!is_reachable(&d, 3, 1));
    }

    #[test]
    fn descendants_and_ancestors() {
        let d = chain5();
        assert_eq!(descendants(&d, 2), vec![3, 4]);
        assert_eq!(ancestors(&d, 2), vec![0, 1]);
        assert_eq!(descendants(&d, 4), Vec::<NodeId>::new());
        assert_eq!(ancestors(&d, 0), Vec::<NodeId>::new());
    }

    #[test]
    fn disconnected_nodes() {
        let mut d = Dag::with_nodes(3);
        d.add_edge(0, 1).unwrap();
        assert!(!is_reachable(&d, 0, 2));
        assert!(!is_reachable(&d, 2, 0));
        assert_eq!(descendants(&d, 2), Vec::<NodeId>::new());
    }
}
