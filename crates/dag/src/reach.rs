//! Reachability queries over a [`Dag`].

use std::cell::RefCell;

use crate::graph::{Dag, NodeId};

/// Thread-local DFS buffers for [`is_reachable`]. The schedulers probe
/// reachability once per candidate (region, task) pair — by far the most
/// frequent DAG query — so the visited set uses epoch marks instead of a
/// fresh allocation (or an `O(V)` clear) per call.
#[derive(Default)]
struct ReachScratch {
    mark: Vec<u32>,
    epoch: u32,
    stack: Vec<NodeId>,
}

impl ReachScratch {
    /// Starts a query over `n` nodes: bumps the epoch (an unmarked node is
    /// one whose mark differs from the current epoch) and sizes the
    /// buffers.
    fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: old marks could alias the new epoch.
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        }
        self.stack.clear();
    }
}

thread_local! {
    static REACH_SCRATCH: RefCell<ReachScratch> = RefCell::new(ReachScratch::default());
}

/// True when `to` is reachable from `from` by following arcs forward.
///
/// Iterative DFS; `O(V + E)` worst case, but sequencing-arc insertions in
/// the schedulers overwhelmingly probe short chains, so the early exit
/// dominates in practice. Allocation-free once the thread's scratch is
/// warm.
pub fn is_reachable(dag: &Dag, from: NodeId, to: NodeId) -> bool {
    if from == to {
        return true;
    }
    REACH_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        scratch.begin(dag.len());
        scratch.stack.push(from);
        scratch.mark[from as usize] = scratch.epoch;
        while let Some(v) = scratch.stack.pop() {
            for &s in dag.succs(v) {
                if s == to {
                    return true;
                }
                if scratch.mark[s as usize] != scratch.epoch {
                    scratch.mark[s as usize] = scratch.epoch;
                    scratch.stack.push(s);
                }
            }
        }
        false
    })
}

/// All nodes reachable from `from` (excluding `from` itself unless it lies
/// on a cycle, which a [`Dag`] cannot contain).
pub fn descendants(dag: &Dag, from: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; dag.len()];
    let mut stack = vec![from];
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        for &s in dag.succs(v) {
            if !visited[s as usize] {
                visited[s as usize] = true;
                out.push(s);
                stack.push(s);
            }
        }
    }
    out.sort_unstable();
    out
}

/// All nodes that can reach `to`.
pub fn ancestors(dag: &Dag, to: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; dag.len()];
    let mut stack = vec![to];
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        for &p in dag.preds(v) {
            if !visited[p as usize] {
                visited[p as usize] = true;
                out.push(p);
                stack.push(p);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain5() -> Dag {
        let mut d = Dag::with_nodes(5);
        for i in 0..4 {
            d.add_edge(i, i + 1).unwrap();
        }
        d
    }

    #[test]
    fn reachability_on_chain() {
        let d = chain5();
        assert!(is_reachable(&d, 0, 4));
        assert!(is_reachable(&d, 2, 2));
        assert!(!is_reachable(&d, 4, 0));
        assert!(!is_reachable(&d, 3, 1));
    }

    #[test]
    fn descendants_and_ancestors() {
        let d = chain5();
        assert_eq!(descendants(&d, 2), vec![3, 4]);
        assert_eq!(ancestors(&d, 2), vec![0, 1]);
        assert_eq!(descendants(&d, 4), Vec::<NodeId>::new());
        assert_eq!(ancestors(&d, 0), Vec::<NodeId>::new());
    }

    #[test]
    fn disconnected_nodes() {
        let mut d = Dag::with_nodes(3);
        d.add_edge(0, 1).unwrap();
        assert!(!is_reachable(&d, 0, 2));
        assert!(!is_reachable(&d, 2, 0));
        assert_eq!(descendants(&d, 2), Vec::<NodeId>::new());
    }
}
