//! Reachability queries over a [`Dag`]: per-query DFS and a cached bitset
//! transitive closure ([`ReachIndex`]) for the schedulers' hot probe loop.

use std::cell::RefCell;
use std::fmt;

use crate::graph::{CycleError, Dag, NodeId};

/// Thread-local DFS buffers for [`is_reachable`]. The schedulers probe
/// reachability once per candidate (region, task) pair — by far the most
/// frequent DAG query — so the visited set uses epoch marks instead of a
/// fresh allocation (or an `O(V)` clear) per call.
#[derive(Default)]
struct ReachScratch {
    mark: Vec<u32>,
    epoch: u32,
    stack: Vec<NodeId>,
}

impl ReachScratch {
    /// Starts a query over `n` nodes: bumps the epoch (an unmarked node is
    /// one whose mark differs from the current epoch) and sizes the
    /// buffers.
    fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: old marks could alias the new epoch.
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        }
        self.stack.clear();
    }
}

thread_local! {
    static REACH_SCRATCH: RefCell<ReachScratch> = RefCell::new(ReachScratch::default());
}

/// True when `to` is reachable from `from` by following arcs forward.
///
/// Iterative DFS; `O(V + E)` worst case, but sequencing-arc insertions in
/// the schedulers overwhelmingly probe short chains, so the early exit
/// dominates in practice. Allocation-free once the thread's scratch is
/// warm.
pub fn is_reachable(dag: &Dag, from: NodeId, to: NodeId) -> bool {
    if from == to {
        return true;
    }
    REACH_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        scratch.begin(dag.len());
        scratch.stack.push(from);
        scratch.mark[from as usize] = scratch.epoch;
        while let Some(v) = scratch.stack.pop() {
            for &s in dag.succs(v) {
                if s == to {
                    return true;
                }
                if scratch.mark[s as usize] != scratch.epoch {
                    scratch.mark[s as usize] = scratch.epoch;
                    scratch.stack.push(s);
                }
            }
        }
        false
    })
}

/// Shrinks the calling thread's DFS scratch to at most `n` nodes.
///
/// The scratch only ever grows with the largest graph a thread has queried;
/// after a 100k-task run a worker thread would otherwise pin hundreds of
/// kilobytes forever. The scheduler workspace calls this when it is
/// re-targeted at a different instance, bounding the retained capacity by
/// the *current* graph size instead of the historical maximum.
pub fn shrink_scratch_to(n: usize) {
    REACH_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        scratch.mark.truncate(n);
        scratch.mark.shrink_to(n);
        scratch.stack.clear();
        scratch.stack.shrink_to(n);
    });
}

/// Peak buffer capacity (in nodes) currently held by the calling thread's
/// DFS scratch — observable so tests can assert the bound
/// [`shrink_scratch_to`] enforces.
pub fn scratch_capacity() -> usize {
    REACH_SCRATCH.with(|cell| {
        let scratch = cell.borrow();
        scratch.mark.capacity().max(scratch.stack.capacity())
    })
}

/// All nodes reachable from `from` (excluding `from` itself unless it lies
/// on a cycle, which a [`Dag`] cannot contain).
pub fn descendants(dag: &Dag, from: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; dag.len()];
    let mut stack = vec![from];
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        for &s in dag.succs(v) {
            if !visited[s as usize] {
                visited[s as usize] = true;
                out.push(s);
                stack.push(s);
            }
        }
    }
    out.sort_unstable();
    out
}

/// All nodes that can reach `to`.
pub fn ancestors(dag: &Dag, to: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; dag.len()];
    let mut stack = vec![to];
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        for &p in dag.preds(v) {
            if !visited[p as usize] {
                visited[p as usize] = true;
                out.push(p);
                stack.push(p);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Cached bitset transitive closure over a [`Dag`].
///
/// One row of `n` bits per node, packed into 64-bit words: bit `u` of row
/// `v` is set iff `u` is a proper descendant of `v`. Built in one reverse
/// topological sweep (`row(v) = ⋃_{s ∈ succs(v)} row(s) ∪ {s}`), after
/// which every reachability probe is a single word load — the schedulers
/// probe once per (region, task) candidate pair, by far their most
/// frequent DAG query.
///
/// Staleness is tracked through [`Dag::version`]: the index records the
/// version it matches and [`ReachIndex::add_edge`] keeps it synchronized
/// through dynamic arc insertion (an ancestor-propagation worklist with
/// containment pruning). Any other mutation — rollback included — bumps
/// the graph's version and the index answers [`ReachIndex::is_current`]
/// `false` until [`ReachIndex::sync`] rebuilds it; the DFS
/// [`is_reachable`] stays the always-correct fallback and oracle.
#[derive(Clone, Default)]
pub struct ReachIndex {
    n: usize,
    /// 64-bit words per row.
    words: usize,
    /// `n * words` words, row-major by source node.
    bits: Vec<u64>,
    /// [`Dag::version`] the closure matches; 0 = never built.
    version: u64,
    /// Scratch row for [`ReachIndex::add_edge`]'s propagated delta.
    delta: Vec<u64>,
    stack: Vec<NodeId>,
    mark: Vec<u32>,
    epoch: u32,
}

impl ReachIndex {
    /// Memory ceiling for the closure bitset. `n` nodes cost `n²` bits
    /// (12.5 MB at 10k); above the ceiling ([`ReachIndex::fits`] false,
    /// around 46k nodes) callers fall back to DFS queries.
    pub const MAX_CLOSURE_BYTES: usize = 256 << 20;

    /// An empty index; sized by the first [`ReachIndex::sync`].
    pub fn new() -> Self {
        Self::default()
    }

    /// True when a closure over `n` nodes stays within
    /// [`ReachIndex::MAX_CLOSURE_BYTES`].
    pub fn fits(n: usize) -> bool {
        (n as u128) * (n.div_ceil(64) as u128) * 8 <= Self::MAX_CLOSURE_BYTES as u128
    }

    /// True when the closure still describes `dag`.
    #[inline]
    pub fn is_current(&self, dag: &Dag) -> bool {
        self.version != 0 && self.version == dag.version()
    }

    /// Rebuilds the closure from `dag` unless already current. `topo` must
    /// be a topological order of `dag` (typically the cached
    /// [`CsrView::topo_order`](crate::CsrView::topo_order)).
    pub fn sync(&mut self, dag: &Dag, topo: &[NodeId]) {
        if self.is_current(dag) {
            return;
        }
        let n = dag.len();
        debug_assert_eq!(topo.len(), n, "topo order must cover the graph");
        self.n = n;
        self.words = n.div_ceil(64);
        self.bits.clear();
        self.bits.resize(n * self.words, 0);
        for &v in topo.iter().rev() {
            for &s in dag.succs(v) {
                or_row(&mut self.bits, self.words, s as usize, v as usize);
                set_bit(&mut self.bits, self.words, v as usize, s as usize);
            }
        }
        self.version = dag.version();
    }

    /// True when `to` is reachable from `from` — `O(1)`, equivalent to
    /// [`is_reachable`] on the graph the closure matches.
    #[inline]
    pub fn query(&self, from: NodeId, to: NodeId) -> bool {
        from == to
            || self.bits[from as usize * self.words + (to as usize >> 6)] >> (to as usize & 63) & 1
                == 1
    }

    /// [`Dag::add_edge`] accelerated by the closure: the cycle probe is an
    /// `O(1)` bit test instead of a DFS, and on success the closure is
    /// patched incrementally so it stays current. Accept/reject behaviour
    /// is exactly [`Dag::add_edge`]'s.
    ///
    /// The patch seeds a worklist at `from` with the delta row
    /// `row(to) ∪ {to}` and propagates it to predecessors, pruning at any
    /// ancestor whose row already contains the delta (consistency makes
    /// ancestor rows supersets, so nothing above can change either).
    ///
    /// Panics when the index is not current for `dag`.
    pub fn add_edge(&mut self, dag: &mut Dag, from: NodeId, to: NodeId) -> Result<(), CycleError> {
        assert!(self.is_current(dag), "index stale for this graph");
        assert!(
            (from as usize) < dag.len() && (to as usize) < dag.len(),
            "node out of range"
        );
        if from == to {
            return Err(CycleError { from, to });
        }
        if dag.has_edge(from, to) {
            return Ok(());
        }
        if self.query(to, from) {
            return Err(CycleError { from, to });
        }
        dag.insert_edge_acyclic(from, to);

        let ReachIndex {
            words,
            bits,
            delta,
            stack,
            mark,
            epoch,
            n,
            ..
        } = self;
        let w = *words;
        delta.clear();
        delta.extend_from_slice(&bits[to as usize * w..(to as usize + 1) * w]);
        delta[to as usize >> 6] |= 1u64 << (to as usize & 63);

        if mark.len() < *n {
            mark.resize(*n, 0);
        }
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            mark.iter_mut().for_each(|m| *m = 0);
            *epoch = 1;
        }
        stack.clear();
        stack.push(from);
        mark[from as usize] = *epoch;
        while let Some(a) = stack.pop() {
            let row = &mut bits[a as usize * w..(a as usize + 1) * w];
            let mut changed = false;
            for (r, &d) in row.iter_mut().zip(delta.iter()) {
                changed |= (*r | d) != *r;
                *r |= d;
            }
            if changed {
                for &p in dag.preds(a) {
                    if mark[p as usize] != *epoch {
                        mark[p as usize] = *epoch;
                        stack.push(p);
                    }
                }
            }
        }
        self.version = dag.version();
        Ok(())
    }

    /// [`Dag::retire_node`] mirrored through the closure: performs the
    /// retirement on `dag` and patches the index in `O(n / 64)` — no full
    /// re-sync — so a stream of `Finish` events costs one row clear each
    /// instead of an `O(n·E)` closure rebuild.
    ///
    /// Requires `v` to have **no ancestors** (every predecessor already
    /// retired), which is exactly the order tasks finish in: then no
    /// surviving path routes *through* `v`, so the closure update is
    /// precisely "clear row `v`" — every other row already omits `v` (bit
    /// columns for `v` are clear because nothing reaches it) and loses no
    /// other descendant. Panics when the index is stale or `v` still has
    /// predecessors.
    pub fn retire_node(&mut self, dag: &mut Dag, v: NodeId) -> usize {
        assert!(self.is_current(dag), "index stale for this graph");
        assert!((v as usize) < dag.len(), "node out of range");
        assert!(
            dag.preds(v).is_empty(),
            "retire_node requires a source node (all predecessors retired first)"
        );
        debug_assert!(
            (0..self.n as NodeId).all(|a| a == v || !self.query(a, v)),
            "closure says a live ancestor reaches the retiring node"
        );
        let removed = dag.retire_node(v);
        let row = v as usize * self.words;
        self.bits[row..row + self.words].fill(0);
        self.version = dag.version();
        removed
    }
}

impl fmt::Debug for ReachIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReachIndex")
            .field("nodes", &self.n)
            .field("version", &self.version)
            .finish()
    }
}

/// `row(dst) |= row(src)` over packed rows of `words` words each.
fn or_row(bits: &mut [u64], words: usize, src: usize, dst: usize) {
    debug_assert_ne!(src, dst);
    let (s0, d0) = (src * words, dst * words);
    if s0 < d0 {
        let (a, b) = bits.split_at_mut(d0);
        let (src_row, dst_row) = (&a[s0..s0 + words], &mut b[..words]);
        for (d, &s) in dst_row.iter_mut().zip(src_row) {
            *d |= s;
        }
    } else {
        let (a, b) = bits.split_at_mut(s0);
        let (dst_row, src_row) = (&mut a[d0..d0 + words], &b[..words]);
        for (d, &s) in dst_row.iter_mut().zip(src_row) {
            *d |= s;
        }
    }
}

#[inline]
fn set_bit(bits: &mut [u64], words: usize, row: usize, bit: usize) {
    bits[row * words + (bit >> 6)] |= 1u64 << (bit & 63);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain5() -> Dag {
        let mut d = Dag::with_nodes(5);
        for i in 0..4 {
            d.add_edge(i, i + 1).unwrap();
        }
        d
    }

    #[test]
    fn reachability_on_chain() {
        let d = chain5();
        assert!(is_reachable(&d, 0, 4));
        assert!(is_reachable(&d, 2, 2));
        assert!(!is_reachable(&d, 4, 0));
        assert!(!is_reachable(&d, 3, 1));
    }

    #[test]
    fn descendants_and_ancestors() {
        let d = chain5();
        assert_eq!(descendants(&d, 2), vec![3, 4]);
        assert_eq!(ancestors(&d, 2), vec![0, 1]);
        assert_eq!(descendants(&d, 4), Vec::<NodeId>::new());
        assert_eq!(ancestors(&d, 0), Vec::<NodeId>::new());
    }

    #[test]
    fn disconnected_nodes() {
        let mut d = Dag::with_nodes(3);
        d.add_edge(0, 1).unwrap();
        assert!(!is_reachable(&d, 0, 2));
        assert!(!is_reachable(&d, 2, 0));
        assert_eq!(descendants(&d, 2), Vec::<NodeId>::new());
    }

    /// All-pairs agreement between the closure and the DFS oracle.
    fn assert_index_matches_dfs(index: &ReachIndex, dag: &Dag) {
        for a in 0..dag.len() as NodeId {
            for b in 0..dag.len() as NodeId {
                assert_eq!(
                    index.query(a, b),
                    is_reachable(dag, a, b),
                    "query({a}, {b}) disagrees with DFS"
                );
            }
        }
    }

    #[test]
    fn index_matches_dfs_after_build() {
        let mut d = Dag::with_nodes(6);
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 5)] {
            d.add_edge(a, b).unwrap();
        }
        let mut index = ReachIndex::new();
        index.sync(&d, &d.topo_order());
        assert!(index.is_current(&d));
        assert_index_matches_dfs(&index, &d);
    }

    #[test]
    fn index_add_edge_mirrors_dag_semantics() {
        let mut d = Dag::with_nodes(5);
        d.add_edge(0, 1).unwrap();
        d.add_edge(2, 3).unwrap();
        let mut index = ReachIndex::new();
        index.sync(&d, &d.topo_order());

        // Accepted arc: closure patched incrementally, stays current.
        index.add_edge(&mut d, 1, 2).unwrap();
        assert!(index.is_current(&d));
        assert_index_matches_dfs(&index, &d);

        // Duplicate: Ok, no structural change.
        let v = d.version();
        index.add_edge(&mut d, 1, 2).unwrap();
        assert_eq!(d.version(), v);

        // Self-loop and cycle: rejected exactly like `Dag::add_edge`.
        assert_eq!(
            index.add_edge(&mut d, 2, 2),
            Err(CycleError { from: 2, to: 2 })
        );
        assert_eq!(
            index.add_edge(&mut d, 3, 0),
            Err(CycleError { from: 3, to: 0 })
        );
        assert!(index.is_current(&d), "rejections leave both in sync");
        assert_index_matches_dfs(&index, &d);

        // Long-range arc into a hub: every ancestor row must pick it up.
        index.add_edge(&mut d, 0, 4).unwrap();
        index.add_edge(&mut d, 4, 3).unwrap();
        assert_index_matches_dfs(&index, &d);
    }

    #[test]
    fn index_goes_stale_on_rollback_and_resyncs() {
        let mut d = chain5();
        let cp = d.checkpoint();
        let mut index = ReachIndex::new();
        index.sync(&d, &d.topo_order());
        index.add_edge(&mut d, 0, 4).unwrap();
        d.rollback(cp);
        assert!(!index.is_current(&d), "rollback invalidates the closure");
        index.sync(&d, &d.topo_order());
        assert!(index.is_current(&d));
        assert_index_matches_dfs(&index, &d);
    }

    #[test]
    fn index_retire_node_stays_current_without_resync() {
        let mut d = Dag::with_nodes(6);
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)] {
            d.add_edge(a, b).unwrap();
        }
        let mut index = ReachIndex::new();
        index.sync(&d, &d.topo_order());

        // Retire in a finish order (sources first); after each step the
        // closure must still agree with the DFS oracle on the mutated
        // graph *without* any re-sync — the staleness fix under test.
        for v in [0, 1, 2, 3] {
            let removed = index.retire_node(&mut d, v);
            assert!(removed > 0, "node {v} had live out-arcs");
            assert!(
                index.is_current(&d),
                "retire_node({v}) must leave the closure current"
            );
            assert_index_matches_dfs(&index, &d);
        }
        // Retired nodes answer like isolated vertices.
        assert!(!index.query(0, 4));
        assert!(index.query(0, 0));
        // The graph stays usable through the index afterwards.
        index.add_edge(&mut d, 4, 5).unwrap();
        assert_index_matches_dfs(&index, &d);
    }

    #[test]
    #[should_panic(expected = "source node")]
    fn index_retire_node_rejects_live_ancestors() {
        let mut d = chain5();
        let mut index = ReachIndex::new();
        index.sync(&d, &d.topo_order());
        index.retire_node(&mut d, 2); // 1 -> 2 still live
    }

    #[test]
    fn fits_gates_on_quadratic_memory() {
        assert!(ReachIndex::fits(0));
        assert!(ReachIndex::fits(10_000));
        assert!(!ReachIndex::fits(100_000));
        assert!(!ReachIndex::fits(usize::MAX >> 8), "no overflow");
    }

    #[test]
    fn scratch_shrinks_to_requested_bound() {
        // Grow the thread scratch with a large-graph query...
        let mut big = Dag::with_nodes(4096);
        for i in 0..4095 {
            big.add_edge(i, i + 1).unwrap();
        }
        assert!(is_reachable(&big, 0, 4095));
        assert!(scratch_capacity() >= 4096);
        // ...then shrink to a small instance's size: the retained capacity
        // is bounded by the request, not the historical maximum.
        shrink_scratch_to(64);
        assert!(scratch_capacity() <= 4096 / 2, "capacity must shrink");
        // The scratch stays fully usable and regrows on demand.
        assert!(is_reachable(&big, 1, 4095));
        assert!(!is_reachable(&big, 4095, 0));
    }
}
