//! Property-based tests for the DAG substrate.

use proptest::prelude::*;

use prfpga_dag::{reach, CpmAnalysis, CpmScratch, CsrView, Dag, ReachIndex};
use prfpga_model::Time;

/// Strategy: a random DAG on `n` nodes where edges only go from lower to
/// higher index (guaranteeing acyclicity), plus random durations.
fn random_dag() -> impl Strategy<Value = (Dag, Vec<Time>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 2));
        let durs = proptest::collection::vec(0u64..1000, n);
        (Just(n), edges, durs).prop_map(|(n, edges, durs)| {
            let mut dag = Dag::with_nodes(n);
            for (a, b) in edges {
                let (lo, hi) = (a.min(b), a.max(b));
                if lo != hi {
                    dag.add_edge(lo as u32, hi as u32).unwrap();
                }
            }
            (dag, durs)
        })
    })
}

proptest! {
    /// Topological order contains every node exactly once and respects arcs.
    #[test]
    fn topo_order_is_permutation_respecting_edges((dag, _durs) in random_dag()) {
        let order = dag.topo_order();
        prop_assert_eq!(order.len(), dag.len());
        let mut pos = vec![usize::MAX; dag.len()];
        for (i, &v) in order.iter().enumerate() {
            prop_assert_eq!(pos[v as usize], usize::MAX, "duplicate node in order");
            pos[v as usize] = i;
        }
        for v in 0..dag.len() as u32 {
            for &s in dag.succs(v) {
                prop_assert!(pos[v as usize] < pos[s as usize]);
            }
        }
    }

    /// CPM window coherence: windows fit durations, sources start at their
    /// release, every arc is respected, and the makespan is achieved by at
    /// least one critical sink.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn cpm_windows_are_coherent((dag, durs) in random_dag()) {
        let cpm = CpmAnalysis::run(&dag, &durs);
        for v in 0..dag.len() {
            let w = cpm.windows[v];
            prop_assert!(w.fits(durs[v]), "window must fit the duration");
            prop_assert!(w.max <= cpm.makespan);
            // Arc feasibility at earliest times.
            for &s in dag.succs(v as u32) {
                prop_assert!(w.min + durs[v] <= cpm.windows[s as usize].min);
            }
            // Critical <=> zero slack.
            prop_assert_eq!(cpm.critical[v], w.span() == durs[v]);
        }
        let achieved = (0..dag.len())
            .map(|v| cpm.windows[v].min + durs[v])
            .max()
            .unwrap_or(0);
        prop_assert_eq!(achieved, cpm.makespan);
    }

    /// The critical path is a real path whose durations sum to the makespan.
    #[test]
    fn critical_path_sums_to_makespan((dag, durs) in random_dag()) {
        let cpm = CpmAnalysis::run(&dag, &durs);
        let path = cpm.critical_path(&dag, &durs);
        prop_assert!(!path.is_empty());
        for pair in path.windows(2) {
            prop_assert!(dag.has_edge(pair[0], pair[1]));
        }
        let sum: Time = path.iter().map(|&v| durs[v as usize]).sum();
        prop_assert_eq!(sum, cpm.makespan);
    }

    /// Edge insertion never silently corrupts the DAG: after a rejected
    /// insertion the graph still topo-sorts completely.
    #[test]
    fn rejected_edges_leave_dag_intact((mut dag, _durs) in random_dag(), a in 0u32..40, b in 0u32..40) {
        let n = dag.len() as u32;
        let (a, b) = (a % n, b % n);
        let _ = dag.add_edge(a, b); // may fail if it would close a cycle
        let order = dag.topo_order();
        prop_assert_eq!(order.len(), dag.len());
    }

    /// Incremental CPM maintenance equals a from-scratch run after every
    /// mutation of a random interleaved sequence of arc insertions and
    /// duration changes — the contract the schedulers' workspace-reuse
    /// fast path rests on.
    #[test]
    fn incremental_cpm_equals_full_recompute(
        (mut dag, mut durs) in random_dag(),
        muts in proptest::collection::vec((0usize..40, 0usize..40, 0u64..1000), 1..25),
    ) {
        let n = dag.len();
        let mut scratch = CpmScratch::default();
        let mut cpm = CpmAnalysis::default();
        cpm.recompute(&dag, &durs, None, &mut scratch);
        for (step, (a, b, d)) in muts.into_iter().enumerate() {
            let (a, b) = (a % n, b % n);
            if a != b && d % 2 == 0 {
                // Arc insertion (skipped when it would close a cycle —
                // matching how the schedulers probe before inserting).
                let (lo, hi) = ((a.min(b)) as u32, (a.max(b)) as u32);
                dag.add_edge(lo, hi).unwrap();
                cpm.apply_arc(&dag, &durs, lo, hi, &mut scratch);
            } else {
                durs[a] = d;
                cpm.apply_duration(&dag, &durs, a as u32, &mut scratch);
            }
            prop_assert_eq!(&cpm, &CpmAnalysis::run(&dag, &durs), "step {}", step);
        }
    }

    /// The CSR + bitset-closure fast paths agree with the journaled
    /// adjacency + DFS oracle under a random interleaving of edge
    /// insertions, checkpoint marks, rollbacks, and re-syncs — the exact
    /// life cycle the schedulers put the fast-graph structures through
    /// (insert sequencing arcs, roll back a rejected placement, re-sync on
    /// the next `from_workspace`).
    #[test]
    fn csr_and_closure_match_adjacency_dfs_through_rollback(
        (dag0, _durs) in random_dag(),
        ops in proptest::collection::vec((0usize..40, 0usize..40, 0u8..8), 1..30),
    ) {
        let mut dag = dag0.clone();   // driven through ReachIndex::add_edge
        let mut mirror = dag0;        // plain adjacency + DFS oracle
        let n = dag.len();
        let mut csr = CsrView::new();
        csr.build(&dag);
        let mut index = ReachIndex::new();
        index.sync(&dag, csr.topo_order());
        let mut marks = Vec::new();
        for (a, b, kind) in ops {
            let (a, b) = ((a % n) as u32, (b % n) as u32);
            match kind {
                // Edge insertion: through the maintained closure when it is
                // current (the schedulers' fast path), plain otherwise.
                0..=3 => {
                    let fast = if index.is_current(&dag) {
                        index.add_edge(&mut dag, a, b)
                    } else {
                        dag.add_edge(a, b)
                    };
                    let oracle = mirror.add_edge(a, b);
                    prop_assert_eq!(fast.is_ok(), oracle.is_ok());
                }
                // Journal mark / rollback (LIFO, as the schedulers nest them).
                4 => marks.push((dag.checkpoint(), mirror.checkpoint())),
                5 => {
                    if let Some((cd, cm)) = marks.pop() {
                        dag.rollback(cd);
                        mirror.rollback(cm);
                    }
                }
                // Re-sync, as `SchedState::from_workspace` does per run.
                _ => {
                    csr.build(&dag);
                    index.sync(&dag, csr.topo_order());
                }
            }
            // Both graphs evolved identically regardless of insertion path.
            prop_assert_eq!(&dag, &mirror);
            // A current closure answers exactly like the DFS for the mutated
            // pair and a strided sample; a stale one must say so.
            if index.is_current(&dag) {
                for i in 0..16u32 {
                    let (u, v) = ((a + i) % n as u32, (b + i * 7) % n as u32);
                    prop_assert_eq!(index.query(u, v), reach::is_reachable(&dag, u, v));
                }
            }
        }
        // Final all-pairs sweep against a freshly synced closure and CSR.
        csr.build(&dag);
        index.sync(&dag, csr.topo_order());
        for v in 0..n as u32 {
            prop_assert_eq!(csr.succs(v), mirror.succs(v));
            prop_assert_eq!(csr.preds(v), mirror.preds(v));
            for u in 0..n as u32 {
                prop_assert_eq!(index.query(v, u), reach::is_reachable(&mirror, v, u));
            }
        }
        for w in csr.topo_order().windows(2) {
            prop_assert!(csr.pos(w[0]) < csr.pos(w[1]));
        }
    }

    /// Release times only ever push windows later, never earlier.
    #[test]
    fn release_is_monotone((dag, durs) in random_dag(), bump_idx in 0usize..40, bump in 1u64..500) {
        let base = CpmAnalysis::run(&dag, &durs);
        let mut release = vec![0u64; dag.len()];
        let idx = bump_idx % dag.len();
        release[idx] = base.windows[idx].min + bump;
        let shifted = CpmAnalysis::run_with_release(&dag, &durs, Some(&release));
        prop_assert!(shifted.makespan >= base.makespan);
        for v in 0..dag.len() {
            prop_assert!(shifted.windows[v].min >= base.windows[v].min);
        }
    }
}
