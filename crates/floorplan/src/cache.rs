//! Memoized floorplan-feasibility answers.
//!
//! The schedulers ask the floorplanner the same question over and over:
//! *does this multiset of region demands fit this device?* Under PA's
//! capacity-shrinking restart loop and especially under PA-R's
//! virtual-capacity ratchet, the same demand multiset recurs across
//! iterations (candidate schedules built on a shrunken virtual device
//! keep producing the same few region sizings in different orders).
//! [`FeasibilityCache`] memoizes the exact verdict behind a canonical key:
//! the demand list *sorted*, plus a fingerprint of the device geometry.
//!
//! Cached entries store only exact, time-independent answers —
//! [`FloorplanOutcome::Feasible`] witnesses and
//! [`FloorplanOutcome::Infeasible`] proofs. [`FloorplanOutcome::Timeout`]
//! depends on wall-clock and is never cached.
//!
//! A hit for a *permuted* demand list remaps the stored witness rectangles
//! back to the caller's demand order (sound because sorted-equal demands
//! are identical), so a cached `Feasible` answer always carries one valid
//! rectangle per region, in region order, exactly like a cold solve.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;

use prfpga_model::{CancelToken, Device, ResourceVec};

use crate::rect::Rect;
use crate::solver::{FloorplanOutcome, Floorplanner};

/// Default entry bound for caches created by [`FeasibilityCache::new`]
/// via the schedulers; generous for any realistic restart/ratchet loop.
pub const DEFAULT_CACHE_CAPACITY: usize = 512;

/// Hit/miss counters of a [`FeasibilityCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that fell through to a cold solve.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no query was made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
        }
    }
}

/// Canonical cache key: geometry fingerprint + sorted demand multiset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    geometry: u64,
    demands: Box<[ResourceVec]>,
}

/// A cached exact verdict, demand-aligned to the *sorted* order of its key.
#[derive(Debug, Clone)]
enum CachedVerdict {
    Feasible(Box<[Rect]>),
    Infeasible,
}

/// Shared map + counters behind both cache front-ends.
#[derive(Debug, Default)]
struct CacheCore {
    map: HashMap<CacheKey, CachedVerdict>,
    capacity: usize,
    stats: CacheStats,
}

impl CacheCore {
    fn with_capacity(capacity: usize) -> Self {
        CacheCore {
            map: HashMap::new(),
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Looks `key` up, counting a hit or a miss; a `Feasible` verdict is
    /// remapped to the caller's demand order through `perm` (the stable
    /// argsort of the caller's demands).
    fn lookup(&mut self, key: &CacheKey, perm: &[usize]) -> Option<FloorplanOutcome> {
        match self.map.get(key) {
            Some(verdict) => {
                self.stats.hits += 1;
                Some(match verdict {
                    CachedVerdict::Infeasible => FloorplanOutcome::Infeasible,
                    CachedVerdict::Feasible(sorted_rects) => {
                        let mut out: Vec<Option<Rect>> = vec![None; perm.len()];
                        for (k, &i) in perm.iter().enumerate() {
                            out[i] = Some(sorted_rects[k]);
                        }
                        FloorplanOutcome::Feasible(
                            out.into_iter()
                                .map(|r| r.expect("argsort is a permutation"))
                                .collect(),
                        )
                    }
                })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores an exact outcome for `key`. `Feasible` witnesses arrive in
    /// the caller's demand order and are stored sorted-aligned via `perm`.
    /// `Timeout` is ignored — it is a statement about the clock, not the
    /// instance. At capacity the whole map is cleared (deterministic
    /// generational eviction) before inserting.
    fn insert(&mut self, key: CacheKey, outcome: &FloorplanOutcome, perm: &[usize]) {
        let verdict = match outcome {
            FloorplanOutcome::Feasible(rects) => {
                CachedVerdict::Feasible(perm.iter().map(|&i| rects[i]).collect())
            }
            FloorplanOutcome::Infeasible => CachedVerdict::Infeasible,
            FloorplanOutcome::Timeout => return,
        };
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            self.map.clear();
        }
        self.map.insert(key, verdict);
    }
}

/// Builds the canonical key for `(device, demands)` plus the stable
/// argsort `perm` with `sorted[k] == demands[perm[k]]`. `None` when the
/// device has no geometry (the planner answers trivially without solving).
fn canonical_key(device: &Device, demands: &[ResourceVec]) -> Option<(CacheKey, Vec<usize>)> {
    let geom = device.geometry.as_ref()?;
    let mut hasher = DefaultHasher::new();
    geom.columns.hash(&mut hasher);
    geom.rows.hash(&mut hasher);
    let geometry = hasher.finish();

    let mut perm: Vec<usize> = (0..demands.len()).collect();
    perm.sort_by_key(|&i| demands[i].0);
    let sorted: Box<[ResourceVec]> = perm.iter().map(|&i| demands[i]).collect();
    Some((
        CacheKey {
            geometry,
            demands: sorted,
        },
        perm,
    ))
}

/// A bounded memoization layer over a [`Floorplanner`].
///
/// Answers [`Floorplanner::check_device`] queries, remembering exact
/// verdicts per canonical demand signature. Single-owner variant; see
/// [`SharedFeasibilityCache`] for the lock-guarded one parallel PA-R
/// workers share.
#[derive(Debug)]
pub struct FeasibilityCache {
    planner: Floorplanner,
    core: CacheCore,
}

impl FeasibilityCache {
    /// Wraps `planner` with a cache bounded to `capacity` entries.
    pub fn new(planner: Floorplanner, capacity: usize) -> Self {
        FeasibilityCache {
            planner,
            core: CacheCore::with_capacity(capacity),
        }
    }

    /// [`Floorplanner::check_device`] through the cache: a memoized exact
    /// verdict when the canonical signature is known, a cold solve (whose
    /// exact outcome is then remembered) otherwise.
    pub fn check_device(&mut self, device: &Device, demands: &[ResourceVec]) -> FloorplanOutcome {
        self.check_device_cancel(device, demands, &CancelToken::never())
    }

    /// [`Floorplanner::check_device_cancel`] through the cache. A `Timeout`
    /// — including one induced by `cancel` firing mid-solve — is never
    /// cached, so a cancelled query leaves the cache exactly as warm (and as
    /// correct) as before the call.
    pub fn check_device_cancel(
        &mut self,
        device: &Device,
        demands: &[ResourceVec],
        cancel: &CancelToken,
    ) -> FloorplanOutcome {
        let Some((key, perm)) = canonical_key(device, demands) else {
            return self.planner.check_device_cancel(device, demands, cancel);
        };
        if let Some(outcome) = self.core.lookup(&key, &perm) {
            return outcome;
        }
        let outcome = self.planner.check_device_cancel(device, demands, cancel);
        self.core.insert(key, &outcome, &perm);
        outcome
    }

    /// [`Floorplanner::check_platform_cancel`] through the cache: one
    /// memoized per-fabric query per occupied fabric. The canonical key
    /// already fingerprints the fabric geometry, so identical demand sets
    /// on different fabrics never collide.
    pub fn check_platform_cancel(
        &mut self,
        platform: &prfpga_model::Platform,
        demands: &[ResourceVec],
        fabric_of: &[u32],
        cancel: &CancelToken,
    ) -> FloorplanOutcome {
        crate::solver::check_platform_with(platform, demands, fabric_of, |device, sub| {
            self.check_device_cancel(device, sub, cancel)
        })
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        self.core.stats
    }

    /// Number of cached signatures.
    pub fn len(&self) -> usize {
        self.core.map.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.core.map.is_empty()
    }
}

/// A [`FeasibilityCache`] shareable across PA-R workers.
///
/// The map lives behind a [`parking_lot::Mutex`]; solves happen *outside*
/// the lock, so workers never serialize on the backtracking search — two
/// workers racing on the same cold signature both solve and the second
/// insert is a no-op overwrite of an identical verdict.
#[derive(Debug, Clone)]
pub struct SharedFeasibilityCache {
    planner: Floorplanner,
    core: Arc<Mutex<CacheCore>>,
}

impl SharedFeasibilityCache {
    /// Wraps `planner` with a shared cache bounded to `capacity` entries.
    pub fn new(planner: Floorplanner, capacity: usize) -> Self {
        SharedFeasibilityCache {
            planner,
            core: Arc::new(Mutex::new(CacheCore::with_capacity(capacity))),
        }
    }

    /// See [`FeasibilityCache::check_device`].
    pub fn check_device(&self, device: &Device, demands: &[ResourceVec]) -> FloorplanOutcome {
        self.check_device_cancel(device, demands, &CancelToken::never())
    }

    /// See [`FeasibilityCache::check_device_cancel`].
    pub fn check_device_cancel(
        &self,
        device: &Device,
        demands: &[ResourceVec],
        cancel: &CancelToken,
    ) -> FloorplanOutcome {
        let Some((key, perm)) = canonical_key(device, demands) else {
            return self.planner.check_device_cancel(device, demands, cancel);
        };
        if let Some(outcome) = self.core.lock().lookup(&key, &perm) {
            return outcome;
        }
        let outcome = self.planner.check_device_cancel(device, demands, cancel);
        self.core.lock().insert(key, &outcome, &perm);
        outcome
    }

    /// See [`FeasibilityCache::check_platform_cancel`].
    pub fn check_platform_cancel(
        &self,
        platform: &prfpga_model::Platform,
        demands: &[ResourceVec],
        fabric_of: &[u32],
        cancel: &CancelToken,
    ) -> FloorplanOutcome {
        crate::solver::check_platform_with(platform, demands, fabric_of, |device, sub| {
            self.check_device_cancel(device, sub, cancel)
        })
    }

    /// Hit/miss counters so far, across all sharers.
    pub fn stats(&self) -> CacheStats {
        self.core.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::{FabricColumn, FabricGeometry};

    fn geo_device() -> Device {
        Device::xc7z020()
    }

    fn flat_device() -> Device {
        // No geometry: every query is answered trivially, nothing cached.
        Device::tiny_test(ResourceVec::new(1000, 100, 100), 10)
    }

    #[test]
    fn repeat_query_hits_and_matches_cold_solve() {
        let planner = Floorplanner::default();
        let mut cache = FeasibilityCache::new(planner.clone(), 16);
        let device = geo_device();
        let demands = vec![ResourceVec::new(600, 10, 20), ResourceVec::new(400, 0, 0)];
        let cold = planner.check_device(&device, &demands);
        let first = cache.check_device(&device, &demands);
        let second = cache.check_device(&device, &demands);
        assert_eq!(first, cold, "first query is the cold solve itself");
        assert_eq!(second, cold, "identical repeat returns the same witness");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn permuted_demands_hit_with_remapped_witness() {
        let planner = Floorplanner::default();
        let mut cache = FeasibilityCache::new(planner, 16);
        let device = geo_device();
        let a = ResourceVec::new(600, 10, 20);
        let b = ResourceVec::new(400, 0, 0);
        let FloorplanOutcome::Feasible(_) = cache.check_device(&device, &[a, b]) else {
            panic!("small demand set must place");
        };
        let FloorplanOutcome::Feasible(rects) = cache.check_device(&device, &[b, a]) else {
            panic!("permutation of a feasible set is feasible");
        };
        assert_eq!(cache.stats().hits, 1);
        // Witness is remapped to the caller's order: rect 0 covers b, 1
        // covers a, and the two are disjoint.
        let geom = device.geometry.as_ref().unwrap();
        assert!(b.fits_in(&rects[0].resources(geom)));
        assert!(a.fits_in(&rects[1].resources(geom)));
        assert!(!rects[0].overlaps(&rects[1]));
    }

    #[test]
    fn infeasible_is_cached() {
        let planner = Floorplanner::default();
        let mut cache = FeasibilityCache::new(planner.clone(), 16);
        // A 1-column, 1-row grid cannot host two 1-CLB regions in disjoint
        // rectangles.
        let device = Device {
            geometry: Some(FabricGeometry {
                columns: vec![FabricColumn::Clb],
                rows: 1,
            }),
            ..flat_device()
        };
        let demands = vec![ResourceVec::new(1, 0, 0), ResourceVec::new(1, 0, 0)];
        assert_eq!(
            planner.check_device(&device, &demands),
            FloorplanOutcome::Infeasible
        );
        assert_eq!(
            cache.check_device(&device, &demands),
            FloorplanOutcome::Infeasible
        );
        assert_eq!(
            cache.check_device(&device, &demands),
            FloorplanOutcome::Infeasible
        );
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn no_geometry_bypasses_the_cache() {
        let mut cache = FeasibilityCache::new(Floorplanner::default(), 16);
        let device = flat_device();
        let demands = vec![ResourceVec::new(5, 0, 0)];
        for _ in 0..3 {
            assert!(cache.check_device(&device, &demands).is_feasible());
        }
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_bound_evicts_generationally() {
        let mut cache = FeasibilityCache::new(Floorplanner::default(), 2);
        let device = geo_device();
        for clb in 1..=5u64 {
            cache.check_device(&device, &[ResourceVec::new(clb * 50, 0, 0)]);
        }
        assert!(cache.len() <= 2, "bounded: {} entries", cache.len());
        assert_eq!(cache.stats().misses, 5);
    }

    #[test]
    fn shared_cache_agrees_with_unshared() {
        let planner = Floorplanner::default();
        let shared = SharedFeasibilityCache::new(planner.clone(), 16);
        let device = geo_device();
        let demands = vec![ResourceVec::new(600, 10, 20), ResourceVec::new(400, 0, 0)];
        let cold = planner.check_device(&device, &demands);
        assert_eq!(shared.check_device(&device, &demands), cold);
        assert_eq!(shared.check_device(&device, &demands), cold);
        assert_eq!(shared.stats(), CacheStats { hits: 1, misses: 1 });
        // Clones share the same map.
        let clone = shared.clone();
        assert_eq!(clone.check_device(&device, &demands), cold);
        assert_eq!(shared.stats().hits, 2);
    }

    #[test]
    fn different_geometries_do_not_alias() {
        let mut cache = FeasibilityCache::new(Floorplanner::default(), 16);
        let one_row = Device {
            geometry: Some(FabricGeometry {
                columns: vec![FabricColumn::Clb],
                rows: 1,
            }),
            ..flat_device()
        };
        let two_rows = Device {
            geometry: Some(FabricGeometry {
                columns: vec![FabricColumn::Clb],
                rows: 2,
            }),
            ..flat_device()
        };
        let demands = vec![ResourceVec::new(1, 0, 0), ResourceVec::new(1, 0, 0)];
        assert_eq!(
            cache.check_device(&one_row, &demands),
            FloorplanOutcome::Infeasible
        );
        assert!(
            cache.check_device(&two_rows, &demands).is_feasible(),
            "two rows host two 1-CLB regions"
        );
    }
}
