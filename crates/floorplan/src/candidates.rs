//! Feasible-placement enumeration.
//!
//! For one region demand, enumerate the *minimal feasible rectangles*: for
//! every row span `[row_start, row_end)` and every starting column, the
//! shortest column run whose resources cover the demand. Any feasible
//! placement contains one of these minimal rectangles, so searching over
//! minimal rectangles only is complete for the feasibility question — the
//! key idea behind the "feasible placements detection" of the paper's
//! ref. \[3\].

use prfpga_model::{FabricGeometry, ResourceVec, NUM_RESOURCE_KINDS};

use crate::rect::Rect;

/// Enumerates the minimal feasible rectangles for `demand` on `geometry`,
/// sorted by ascending area then position (deterministic).
///
/// Uses a two-pointer sweep per row span: as `col_start` advances, the
/// minimal `col_end` can only advance too, so each span costs `O(columns)`.
// The two-pointer sweep mutates `window` under explicit indices; iterator
// forms obscure the sliding-window invariant.
#[allow(clippy::needless_range_loop)]
pub fn minimal_rects(geometry: &FabricGeometry, demand: &ResourceVec) -> Vec<Rect> {
    let cols = geometry.columns.len() as u32;
    let rows = geometry.rows;
    let mut out = Vec::new();
    if cols == 0 || rows == 0 {
        return out;
    }
    if demand.is_zero() {
        // A zero-demand region still occupies one cell.
        out.push(Rect::new(0, 1, 0, 1));
        return out;
    }

    // Per-column per-row resource contribution (row count scales linearly).
    let per_col: Vec<ResourceVec> = geometry
        .columns
        .iter()
        .map(|c| {
            let mut v = ResourceVec::ZERO;
            v[c.kind()] = c.units_per_row();
            v
        })
        .collect();

    for height in 1..=rows {
        for row_start in 0..=(rows - height) {
            // Demand per *column* at this height is demand; a window of
            // columns [a, b) provides sum(per_col[a..b]) * height.
            let mut window = [0u64; NUM_RESOURCE_KINDS];
            let mut b = 0u32;
            for a in 0..cols {
                // Grow b until the window covers the demand or runs out.
                while b < cols && !covers(&window, demand, height) {
                    for k in 0..NUM_RESOURCE_KINDS {
                        window[k] += per_col[b as usize].0[k];
                    }
                    b += 1;
                }
                if covers(&window, demand, height) {
                    out.push(Rect::new(a, b, row_start, row_start + height));
                } else {
                    break; // no further a can succeed at this height
                }
                // Slide: remove column a.
                for k in 0..NUM_RESOURCE_KINDS {
                    window[k] -= per_col[a as usize].0[k];
                }
            }
        }
    }

    out.sort_by_key(|r| (r.area(), r.col_start, r.row_start, r.col_end, r.row_end));
    out
}

#[inline]
fn covers(window_per_row: &[u64; NUM_RESOURCE_KINDS], demand: &ResourceVec, height: u32) -> bool {
    (0..NUM_RESOURCE_KINDS).all(|k| window_per_row[k] * height as u64 >= demand.0[k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::FabricColumn;

    fn geom() -> FabricGeometry {
        // C C B C C D repeated twice, 2 rows.
        FabricGeometry::from_pattern(
            &[
                FabricColumn::Clb,
                FabricColumn::Clb,
                FabricColumn::Bram,
                FabricColumn::Clb,
                FabricColumn::Clb,
                FabricColumn::Dsp,
            ],
            2,
            2,
        )
    }

    #[test]
    fn every_candidate_covers_demand() {
        let g = geom();
        let demand = ResourceVec::new(120, 10, 0);
        let rects = minimal_rects(&g, &demand);
        assert!(!rects.is_empty());
        for r in &rects {
            assert!(
                demand.fits_in(&r.resources(&g)),
                "rect {r:?} must cover demand"
            );
        }
    }

    #[test]
    fn candidates_are_width_minimal() {
        let g = geom();
        let demand = ResourceVec::new(120, 10, 0);
        for r in minimal_rects(&g, &demand) {
            // Dropping the last column must break coverage.
            if r.width() > 1 {
                let narrower = Rect::new(r.col_start, r.col_end - 1, r.row_start, r.row_end);
                assert!(
                    !demand.fits_in(&narrower.resources(&g)),
                    "rect {r:?} is not minimal"
                );
            }
        }
    }

    #[test]
    fn impossible_demand_yields_nothing() {
        let g = geom();
        // More BRAM than the whole fabric offers (4 columns x 10 x 2 rows = 80).
        let demand = ResourceVec::new(0, 1000, 0);
        assert!(minimal_rects(&g, &demand).is_empty());
    }

    #[test]
    fn zero_demand_gets_unit_cell() {
        let g = geom();
        let rects = minimal_rects(&g, &ResourceVec::ZERO);
        assert_eq!(rects, vec![Rect::new(0, 1, 0, 1)]);
    }

    #[test]
    fn single_kind_demand_prefers_single_column() {
        let g = geom();
        // 50 CLBs fit in one CLB column x 1 row.
        let rects = minimal_rects(&g, &ResourceVec::new(50, 0, 0));
        let best = rects.first().unwrap();
        assert_eq!(best.area(), 1);
        assert_eq!(g.columns[best.col_start as usize], FabricColumn::Clb);
    }

    #[test]
    fn taller_spans_allow_narrower_rects() {
        let g = geom();
        // 100 CLBs: 1 column x 2 rows, or 2 columns x 1 row.
        let rects = minimal_rects(&g, &ResourceVec::new(100, 0, 0));
        assert!(rects.iter().any(|r| r.width() == 1 && r.height() == 2));
        assert!(rects.iter().any(|r| r.width() == 2 && r.height() == 1));
    }

    #[test]
    fn empty_geometry() {
        let g = FabricGeometry {
            columns: vec![],
            rows: 0,
        };
        assert!(minimal_rects(&g, &ResourceVec::new(1, 0, 0)).is_empty());
    }
}
