//! # prfpga-floorplan
//!
//! Floorplanning substrate: decides whether a set of reconfigurable regions
//! admits a feasible placement on a column-based FPGA fabric.
//!
//! The paper delegates this question to the MILP floorplanner of its
//! ref. \[3\] (Rabozzi et al., FCCM 2015) solved with Gurobi, *with no
//! objective function* — the scheduler only needs a yes/no answer within a
//! small time budget (§V-H). This crate reproduces that contract with an
//! exact combinatorial search:
//!
//! 1. [`candidates`] enumerates, per region, the *minimal feasible
//!    rectangles* on the fabric grid — every rectangle that satisfies the
//!    region's CLB/BRAM/DSP demand and is minimal in width for its column
//!    origin and row span (the "feasible placements detection" idea of
//!    ref. \[3\]);
//! 2. [`solver`] runs a most-constrained-first backtracking search over
//!    those candidates for a pairwise-disjoint selection, with a wall-clock
//!    budget.
//!
//! The search is exact: [`FloorplanOutcome::Infeasible`] is a proof, while
//! [`FloorplanOutcome::Timeout`] is returned when the budget expires first
//! (callers treat it as "not feasible now", exactly as the paper treats a
//! floorplanner failure).

#![warn(missing_docs)]

pub mod cache;
pub mod candidates;
pub mod rect;
pub mod render;
pub mod solver;

pub use cache::{CacheStats, FeasibilityCache, SharedFeasibilityCache, DEFAULT_CACHE_CAPACITY};
pub use rect::Rect;
pub use render::render_fabric;
pub use solver::{FloorplanOutcome, Floorplanner, FloorplannerConfig};
