//! Rectangles on the fabric grid.

use serde::{Deserialize, Serialize};

use prfpga_model::{FabricGeometry, ResourceVec};

/// A rectangle of fabric: columns `[col_start, col_end)` by clock-region
/// rows `[row_start, row_end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// First column (inclusive).
    pub col_start: u32,
    /// One past the last column.
    pub col_end: u32,
    /// First clock-region row (inclusive).
    pub row_start: u32,
    /// One past the last row.
    pub row_end: u32,
}

impl Rect {
    /// Builds a rectangle; panics in debug builds on inverted bounds.
    pub fn new(col_start: u32, col_end: u32, row_start: u32, row_end: u32) -> Self {
        debug_assert!(
            col_start < col_end && row_start < row_end,
            "degenerate rect"
        );
        Rect {
            col_start,
            col_end,
            row_start,
            row_end,
        }
    }

    /// Number of grid cells covered.
    #[inline]
    pub fn area(&self) -> u64 {
        (self.col_end - self.col_start) as u64 * (self.row_end - self.row_start) as u64
    }

    /// Width in columns.
    #[inline]
    pub fn width(&self) -> u32 {
        self.col_end - self.col_start
    }

    /// Height in rows.
    #[inline]
    pub fn height(&self) -> u32 {
        self.row_end - self.row_start
    }

    /// True when the two rectangles share at least one grid cell.
    #[inline]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.col_start < other.col_end
            && other.col_start < self.col_end
            && self.row_start < other.row_end
            && other.row_start < self.row_end
    }

    /// Resources provided by this rectangle on `geometry`.
    pub fn resources(&self, geometry: &FabricGeometry) -> ResourceVec {
        geometry.rect_resources(
            self.col_start as usize,
            self.col_end as usize,
            self.height(),
        )
    }

    /// Bitmask of the rows covered (rows fit in a `u64` for every real
    /// 7-series part).
    #[inline]
    pub fn row_mask(&self) -> u64 {
        debug_assert!(self.row_end <= 64);
        let ones = self.row_end - self.row_start;
        (((1u128 << ones) - 1) as u64) << self.row_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::FabricColumn;

    #[test]
    fn geometry_queries() {
        let geom = FabricGeometry::from_pattern(
            &[FabricColumn::Clb, FabricColumn::Bram, FabricColumn::Dsp],
            2,
            4,
        );
        let r = Rect::new(0, 3, 1, 3);
        assert_eq!(r.area(), 6);
        assert_eq!(r.width(), 3);
        assert_eq!(r.height(), 2);
        assert_eq!(r.resources(&geom), ResourceVec::new(100, 20, 40));
    }

    #[test]
    fn overlap_semantics() {
        let a = Rect::new(0, 2, 0, 2);
        let b = Rect::new(2, 4, 0, 2); // touching columns
        let c = Rect::new(1, 3, 1, 3); // genuine overlap
        let d = Rect::new(0, 2, 2, 4); // touching rows
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(!a.overlaps(&d));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn row_masks() {
        assert_eq!(Rect::new(0, 1, 0, 1).row_mask(), 0b1);
        assert_eq!(Rect::new(0, 1, 1, 3).row_mask(), 0b110);
        assert_eq!(Rect::new(0, 1, 0, 64).row_mask(), u64::MAX);
    }
}
