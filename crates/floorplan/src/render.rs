//! ASCII rendering of fabric grids and placements.
//!
//! Draws the column map of a [`FabricGeometry`] (`.` CLB, `B` BRAM,
//! `D` DSP) with placed regions overlaid as digits/letters — the quickest
//! way to eyeball a floorplanning witness.

use std::fmt::Write as _;

use prfpga_model::{FabricColumn, FabricGeometry};

use crate::rect::Rect;

/// Renders the geometry with `placements` overlaid; placement `i` is drawn
/// with the `i`-th symbol of `0-9a-z`, cells not covered by any region show
/// the column kind.
pub fn render_fabric(geometry: &FabricGeometry, placements: &[Rect]) -> String {
    let cols = geometry.columns.len();
    let rows = geometry.rows as usize;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fabric: {cols} columns x {rows} rows, {} regions placed",
        placements.len()
    );
    // Header: column kinds.
    out.push_str("      ");
    for c in &geometry.columns {
        out.push(match c {
            FabricColumn::Clb => '.',
            FabricColumn::Bram => 'B',
            FabricColumn::Dsp => 'D',
        });
    }
    out.push('\n');

    const SYMBOLS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    for row in 0..rows {
        let _ = write!(out, "row {row:>2}|");
        for col in 0..cols {
            let owner = placements.iter().position(|r| {
                (r.col_start as usize) <= col
                    && col < r.col_end as usize
                    && (r.row_start as usize) <= row
                    && row < r.row_end as usize
            });
            out.push(match owner {
                Some(i) => SYMBOLS[i % SYMBOLS.len()] as char,
                None => match geometry.columns[col] {
                    FabricColumn::Clb => '.',
                    FabricColumn::Bram => 'B',
                    FabricColumn::Dsp => 'D',
                },
            });
        }
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_grid_and_regions() {
        let geom = FabricGeometry::from_pattern(
            &[FabricColumn::Clb, FabricColumn::Clb, FabricColumn::Bram],
            2,
            2,
        );
        let placements = vec![Rect::new(0, 2, 0, 1), Rect::new(2, 4, 1, 2)];
        let s = render_fabric(&geom, &placements);
        assert!(s.contains("6 columns x 2 rows"));
        // Row 0: region 0 covers cols 0-1; col 2 shows its BRAM kind.
        assert!(s.contains("row  0|00B..B|"));
        // Row 1: region 1 covers cols 2-3.
        assert!(s.contains("row  1|..11.B|"));
    }

    #[test]
    fn empty_placement_shows_kinds_only() {
        let geom = FabricGeometry::from_pattern(&[FabricColumn::Dsp], 3, 1);
        let s = render_fabric(&geom, &[]);
        assert!(s.contains("row  0|DDD|"));
    }
}
