//! Exact backtracking search for a disjoint placement of all regions.

use std::time::Duration;

use prfpga_model::{CancelToken, Device, FabricGeometry, Platform, ResourceVec};

use crate::candidates::minimal_rects;
use crate::rect::Rect;

/// Configuration of the [`Floorplanner`].
#[derive(Debug, Clone)]
pub struct FloorplannerConfig {
    /// Wall-clock budget for one `solve` call. The paper runs its MILP
    /// floorplanner "to verify the existence of a solution in a small
    /// amount of time"; the same contract applies here. Enforced as an
    /// internal [`CancelToken`] deadline; callers with their own deadline
    /// layer it on top via [`Floorplanner::solve_cancel`], and whichever
    /// fires first yields [`FloorplanOutcome::Timeout`].
    pub time_limit: Duration,
    /// Cap on candidate rectangles kept per region (smallest first). The
    /// enumeration is complete; the cap trades completeness for speed on
    /// pathological instances and is high enough to be irrelevant for every
    /// suite in this repository.
    pub max_candidates_per_region: usize,
}

impl Default for FloorplannerConfig {
    fn default() -> Self {
        FloorplannerConfig {
            time_limit: Duration::from_millis(250),
            max_candidates_per_region: 4096,
        }
    }
}

/// Outcome of a floorplanning query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FloorplanOutcome {
    /// A disjoint placement exists; one witness rectangle per region, in
    /// region order.
    Feasible(Vec<Rect>),
    /// No disjoint placement exists (exact proof).
    Infeasible,
    /// The time budget expired before the search concluded.
    Timeout,
}

impl FloorplanOutcome {
    /// True for [`FloorplanOutcome::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, FloorplanOutcome::Feasible(_))
    }
}

/// Exact feasibility floorplanner over a column-based fabric.
///
/// ```
/// use prfpga_floorplan::{FloorplanOutcome, Floorplanner};
/// use prfpga_model::{Device, ResourceVec};
///
/// let planner = Floorplanner::default();
/// let device = Device::xc7z020();
/// let regions = vec![ResourceVec::new(600, 10, 20), ResourceVec::new(400, 0, 0)];
/// match planner.check_device(&device, &regions) {
///     FloorplanOutcome::Feasible(rects) => {
///         assert_eq!(rects.len(), 2);
///         assert!(!rects[0].overlaps(&rects[1]));
///     }
///     other => panic!("small region sets place trivially, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Floorplanner {
    config: FloorplannerConfig,
}

impl Floorplanner {
    /// Builds a floorplanner with the given configuration.
    pub fn new(config: FloorplannerConfig) -> Self {
        Floorplanner { config }
    }

    /// Answers the scheduler's question: do `demands` (one [`ResourceVec`]
    /// per reconfigurable region) admit a disjoint placement on `device`?
    ///
    /// A device without geometry information never constrains placement
    /// beyond the capacity checks the scheduler already performs, so it
    /// reports `Feasible` with no witness rectangles.
    pub fn check_device(&self, device: &Device, demands: &[ResourceVec]) -> FloorplanOutcome {
        self.check_device_cancel(device, demands, &CancelToken::never())
    }

    /// [`check_device`](Self::check_device) honouring a caller-supplied
    /// [`CancelToken`] in addition to the configured `time_limit`.
    pub fn check_device_cancel(
        &self,
        device: &Device,
        demands: &[ResourceVec],
        cancel: &CancelToken,
    ) -> FloorplanOutcome {
        match &device.geometry {
            Some(geom) => self.solve_cancel(geom, demands, cancel),
            None => FloorplanOutcome::Feasible(vec![]),
        }
    }

    /// Per-fabric floorplanning of a platform: demand `i` must place on
    /// fabric `fabric_of[i]`, each fabric solved independently on its own
    /// geometry. Any infeasible fabric makes the platform infeasible, any
    /// timeout propagates, and witnesses are stitched back into one
    /// rectangle per region (dropped when an occupied fabric has no
    /// geometry). On a 1-fabric platform this is verdict- and
    /// witness-identical to [`Floorplanner::check_device`] on that fabric.
    pub fn check_platform(
        &self,
        platform: &Platform,
        demands: &[ResourceVec],
        fabric_of: &[u32],
    ) -> FloorplanOutcome {
        self.check_platform_cancel(platform, demands, fabric_of, &CancelToken::never())
    }

    /// [`check_platform`](Self::check_platform) honouring a caller-supplied
    /// [`CancelToken`].
    pub fn check_platform_cancel(
        &self,
        platform: &Platform,
        demands: &[ResourceVec],
        fabric_of: &[u32],
        cancel: &CancelToken,
    ) -> FloorplanOutcome {
        check_platform_with(platform, demands, fabric_of, |device, sub| {
            self.check_device_cancel(device, sub, cancel)
        })
    }

    /// Exact search for a disjoint placement of `demands` on `geometry`.
    pub fn solve(&self, geometry: &FabricGeometry, demands: &[ResourceVec]) -> FloorplanOutcome {
        self.solve_cancel(geometry, demands, &CancelToken::never())
    }

    /// [`solve`](Self::solve) honouring a caller-supplied [`CancelToken`].
    ///
    /// The configured `time_limit` and the caller's token are unified on the
    /// same mechanism: each search node polls `cancel` (counting a poll on
    /// the caller's token) and peeks the internal per-call budget; whichever
    /// fires first terminates the search with [`FloorplanOutcome::Timeout`].
    /// The caller observes the distinction through its own token state.
    pub fn solve_cancel(
        &self,
        geometry: &FabricGeometry,
        demands: &[ResourceVec],
        cancel: &CancelToken,
    ) -> FloorplanOutcome {
        if demands.is_empty() {
            return FloorplanOutcome::Feasible(vec![]);
        }
        // Quick capacity cut: total demand must fit the grid.
        let total: ResourceVec = demands.iter().copied().sum();
        if !total.fits_in(&geometry.total_resources()) {
            return FloorplanOutcome::Infeasible;
        }

        // Segment-counting cut: a region demanding `d` units of a scarce
        // kind (BRAM/DSP) must cover at least ceil(d / units_per_segment)
        // whole column-segments of that kind, and segments are exclusive.
        // This necessary condition catches most over-subscribed region
        // sets instantly, long before the rectangle search would.
        for kind in [
            prfpga_model::ResourceKind::Bram,
            prfpga_model::ResourceKind::Dsp,
        ] {
            let per_segment = match kind {
                prfpga_model::ResourceKind::Bram => 10u64,
                prfpga_model::ResourceKind::Dsp => 20,
                prfpga_model::ResourceKind::Clb => 50,
            };
            let segments: u64 = geometry.columns.iter().filter(|c| c.kind() == kind).count() as u64
                * geometry.rows as u64;
            let needed: u64 = demands.iter().map(|d| d[kind].div_ceil(per_segment)).sum();
            if needed > segments {
                return FloorplanOutcome::Infeasible;
            }
        }

        // Internal per-call budget, peeked (non-counting) alongside the
        // caller's token at every checkpoint below.
        let budget = CancelToken::after(self.config.time_limit);
        // Checkpoint before the candidate enumeration + greedy passes, the
        // first non-trivial work in this call.
        if cancel.is_cancelled() || budget.fired() {
            return FloorplanOutcome::Timeout;
        }

        // Candidate sets. Ordering matters a lot: BRAM/DSP columns are the
        // scarce commodity on a column fabric, so a candidate that covers
        // *more special columns than its demand warrants* wastes them for
        // every later region. Prefer candidates covering the fewest
        // unneeded special columns, then pack bottom-left by area.
        let special_cols: Vec<u32> = geometry
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| !matches!(c, prfpga_model::FabricColumn::Clb))
            .map(|(i, _)| i as u32)
            .collect();
        let specials_covered = |r: &Rect| -> u64 {
            special_cols
                .iter()
                .filter(|&&c| r.col_start <= c && c < r.col_end)
                .count() as u64
                * r.height() as u64
        };
        let mut regions: Vec<(usize, Vec<Rect>)> = demands
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let mut cands = minimal_rects(geometry, d);
                cands.sort_by_key(|r| (specials_covered(r), r.area(), r.col_start, r.row_start));
                cands.truncate(self.config.max_candidates_per_region);
                (i, cands)
            })
            .collect();
        if regions.iter().any(|(_, c)| c.is_empty()) {
            return FloorplanOutcome::Infeasible;
        }
        // Most-constrained-first: fewest candidates, then largest minimal
        // footprint — classic first-fit-decreasing order.
        regions.sort_by_key(|(i, c)| {
            (
                c.len(),
                std::cmp::Reverse(c.first().map_or(0, Rect::area)),
                *i,
            )
        });

        // Symmetry breaking: regions with identical candidate lists are
        // interchangeable; force them to take candidates in increasing
        // index order. `sym_prev[k] = Some(j)` means slot k must pick a
        // candidate index strictly greater than slot j's.
        let mut sym_prev: Vec<Option<usize>> = vec![None; regions.len()];
        for k in 1..regions.len() {
            if regions[k].1 == regions[k - 1].1 {
                sym_prev[k] = Some(k - 1);
            }
        }

        // Area bound: minimal cells each region must still claim.
        let min_area: Vec<u64> = regions
            .iter()
            .map(|(_, c)| c.iter().map(Rect::area).min().unwrap_or(0))
            .collect();
        let mut rem_min_area: Vec<u64> = vec![0; regions.len() + 1];
        for k in (0..regions.len()).rev() {
            rem_min_area[k] = rem_min_area[k + 1] + min_area[k];
        }
        let total_cells = geometry.columns.len() as u64 * geometry.rows as u64;

        // Greedy bottom-left pre-passes over a few placement orders:
        // each costs O(regions x candidates) and succeeds on most loose
        // instances, so the exact search only sees the hard cases.
        #[allow(clippy::type_complexity)]
        let greedy_orders: [&dyn Fn(&(usize, Vec<Rect>)) -> (u64, u64, usize); 3] = [
            // Most-constrained first (the DFS order).
            &|(i, c)| {
                (
                    c.len() as u64,
                    u64::MAX - c.first().map_or(0, Rect::area),
                    *i,
                )
            },
            // Largest minimal footprint first (first-fit decreasing).
            &|(i, c)| {
                (
                    u64::MAX - c.first().map_or(0, Rect::area),
                    c.len() as u64,
                    *i,
                )
            },
            // Scarce-resource regions first (fewest candidates), then by
            // leftmost candidate position to sweep the fabric.
            &|(i, c)| {
                (
                    c.len() as u64,
                    c.first().map_or(0, |r| r.col_start as u64),
                    *i,
                )
            },
        ];
        for key in greedy_orders {
            let mut order: Vec<&(usize, Vec<Rect>)> = regions.iter().collect();
            order.sort_by_key(|r| key(r));
            let mut chosen: Vec<(usize, Rect)> = Vec::with_capacity(regions.len());
            let mut ok = true;
            for (region_idx, cands) in &order {
                match cands
                    .iter()
                    .find(|c| chosen.iter().all(|(_, p)| !p.overlaps(c)))
                {
                    Some(c) => chosen.push((*region_idx, *c)),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                let mut out = vec![Rect::new(0, 1, 0, 1); demands.len()];
                for (region_idx, rect) in chosen {
                    out[region_idx] = rect;
                }
                return FloorplanOutcome::Feasible(out);
            }
        }

        let mut search = Search {
            regions: &regions,
            sym_prev: &sym_prev,
            rem_min_area: &rem_min_area,
            total_cells,
            cancel,
            budget: &budget,
            timed_out: false,
            nodes: 0,
            chosen_idx: Vec::with_capacity(regions.len()),
            chosen: Vec::with_capacity(regions.len()),
            used_cells: 0,
        };
        if search.place(0) {
            let chosen = search.chosen;
            FloorplanOutcome::Feasible(Self::unpermute(&regions, &chosen, demands.len()))
        } else if search.timed_out {
            FloorplanOutcome::Timeout
        } else {
            FloorplanOutcome::Infeasible
        }
    }

    fn unpermute(regions: &[(usize, Vec<Rect>)], chosen: &[Rect], n: usize) -> Vec<Rect> {
        let mut out = vec![Rect::new(0, 1, 0, 1); n];
        for (slot, (region_idx, _)) in regions.iter().enumerate() {
            out[*region_idx] = chosen[slot];
        }
        out
    }
}

/// Per-fabric combination driver shared by [`Floorplanner`] and the
/// feasibility caches: runs `check` once per fabric over that fabric's
/// demands (kept in region order) and stitches the witness rectangles back
/// into one rectangle per region. Any `Infeasible` fabric makes the
/// platform infeasible; any `Timeout` propagates; witnesses are dropped
/// (empty vector, matching the geometry-free device contract) as soon as
/// one occupied fabric has no geometry.
pub(crate) fn check_platform_with(
    platform: &Platform,
    demands: &[ResourceVec],
    fabric_of: &[u32],
    mut check: impl FnMut(&Device, &[ResourceVec]) -> FloorplanOutcome,
) -> FloorplanOutcome {
    assert_eq!(demands.len(), fabric_of.len(), "one fabric per demand");
    let nf = platform.num_fabrics() as u32;
    assert!(
        fabric_of.iter().all(|&f| f < nf),
        "demand assigned to a fabric outside the platform"
    );
    let mut out = vec![Rect::new(0, 1, 0, 1); demands.len()];
    let mut witnesses = true;
    for f in 0..nf {
        let idx: Vec<usize> = fabric_of
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g == f)
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let sub: Vec<ResourceVec> = idx.iter().map(|&i| demands[i]).collect();
        match check(&platform.fabrics[f as usize], &sub) {
            FloorplanOutcome::Feasible(rects) if rects.len() == idx.len() => {
                for (&i, r) in idx.iter().zip(rects) {
                    out[i] = r;
                }
            }
            // A geometry-free fabric reports feasible with no witnesses.
            FloorplanOutcome::Feasible(_) => witnesses = false,
            FloorplanOutcome::Infeasible => return FloorplanOutcome::Infeasible,
            FloorplanOutcome::Timeout => return FloorplanOutcome::Timeout,
        }
    }
    if witnesses {
        FloorplanOutcome::Feasible(out)
    } else {
        FloorplanOutcome::Feasible(vec![])
    }
}

/// Caller-token poll stride inside the DFS: one counted poll every this
/// many nodes. Bounds both the polling overhead on hot searches and the
/// size of exhaustive fire-on-every-poll sweeps in the cancellation tests,
/// while keeping worst-case cancellation latency at a few microseconds.
const CANCEL_POLL_STRIDE: u64 = 64;

/// DFS state for the exact search.
struct Search<'a> {
    regions: &'a [(usize, Vec<Rect>)],
    sym_prev: &'a [Option<usize>],
    rem_min_area: &'a [u64],
    total_cells: u64,
    cancel: &'a CancelToken,
    budget: &'a CancelToken,
    timed_out: bool,
    nodes: u64,
    chosen_idx: Vec<usize>,
    chosen: Vec<Rect>,
    used_cells: u64,
}

impl Search<'_> {
    // `idx` feeds `chosen_idx` (symmetry breaking), so the index loop is
    // the honest form.
    #[allow(clippy::needless_range_loop)]
    fn place(&mut self, depth: usize) -> bool {
        if depth == self.regions.len() {
            return true;
        }
        // Cancellation checkpoint: the internal time limit is peeked every
        // node, the caller's token polled (counted) once per
        // [`CANCEL_POLL_STRIDE`] nodes.
        self.nodes += 1;
        if (self.nodes.is_multiple_of(CANCEL_POLL_STRIDE) && self.cancel.is_cancelled())
            || self.budget.fired()
        {
            self.timed_out = true;
            return false;
        }
        // Area cut: the untouched cells must cover the remaining minimal
        // footprints.
        if self.total_cells - self.used_cells < self.rem_min_area[depth] {
            return false;
        }
        let start_idx = match self.sym_prev[depth] {
            Some(prev_slot) => self.chosen_idx[prev_slot] + 1,
            None => 0,
        };
        let cands = &self.regions[depth].1;
        for idx in start_idx..cands.len() {
            let cand = cands[idx];
            if self.chosen.iter().any(|c| c.overlaps(&cand)) {
                continue;
            }
            self.chosen.push(cand);
            self.chosen_idx.push(idx);
            self.used_cells += cand.area();
            if self.place(depth + 1) {
                return true;
            }
            self.used_cells -= cand.area();
            self.chosen_idx.pop();
            self.chosen.pop();
            if self.timed_out {
                return false;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::FabricColumn;

    fn geom() -> FabricGeometry {
        FabricGeometry::from_pattern(
            &[
                FabricColumn::Clb,
                FabricColumn::Clb,
                FabricColumn::Bram,
                FabricColumn::Clb,
                FabricColumn::Dsp,
            ],
            2,
            2,
        )
    }

    fn planner() -> Floorplanner {
        Floorplanner::new(FloorplannerConfig {
            time_limit: Duration::from_secs(5),
            ..Default::default()
        })
    }

    #[test]
    fn empty_demand_is_feasible() {
        assert_eq!(
            planner().solve(&geom(), &[]),
            FloorplanOutcome::Feasible(vec![])
        );
    }

    #[test]
    fn single_region_fits() {
        let out = planner().solve(&geom(), &[ResourceVec::new(100, 10, 0)]);
        let FloorplanOutcome::Feasible(rects) = out else {
            panic!("expected feasible, got {out:?}");
        };
        assert_eq!(rects.len(), 1);
        let g = geom();
        assert!(ResourceVec::new(100, 10, 0).fits_in(&rects[0].resources(&g)));
    }

    #[test]
    fn disjointness_is_enforced() {
        // Two regions each needing all the BRAM of one column over both
        // rows: they must land on the two different BRAM columns.
        let demand = ResourceVec::new(0, 20, 0);
        let out = planner().solve(&geom(), &[demand, demand]);
        let FloorplanOutcome::Feasible(rects) = out else {
            panic!("expected feasible, got {out:?}");
        };
        assert!(!rects[0].overlaps(&rects[1]));
        let g = geom();
        for r in &rects {
            assert!(demand.fits_in(&r.resources(&g)));
        }
    }

    #[test]
    fn over_capacity_is_infeasible() {
        // Grid total BRAM = 2 columns x 10 x 2 rows = 40.
        let out = planner().solve(&geom(), &[ResourceVec::new(0, 41, 0)]);
        assert_eq!(out, FloorplanOutcome::Infeasible);
    }

    #[test]
    fn fragmentation_can_make_fitting_sets_infeasible() {
        // Three regions each demanding 20 BRAM (a full BRAM column, both
        // rows): capacity check passes for two but the third has nowhere
        // to go. Total demand 60 > 40 -> capacity cut. Use 2x20 + try to
        // squeeze a third demanding the remaining... instead: two full-
        // column BRAM regions are fine; three 10-BRAM regions need three
        // half-columns - feasible (4 half-column slots exist). Make it
        // truly infeasible: four regions each demanding 11 BRAM: each needs
        // a full column (11 > 10 per row => height 2), only 2 columns.
        let demand = ResourceVec::new(0, 11, 0);
        let out = planner().solve(&geom(), &[demand, demand, demand]);
        assert_eq!(out, FloorplanOutcome::Infeasible);
    }

    #[test]
    fn check_device_without_geometry_is_feasible() {
        let dev = Device::tiny_test(ResourceVec::new(10, 10, 10), 1);
        let out = planner().check_device(&dev, &[ResourceVec::new(5, 5, 5)]);
        assert_eq!(out, FloorplanOutcome::Feasible(vec![]));
    }

    #[test]
    fn xc7z020_hosts_typical_region_sets() {
        let dev = Device::xc7z020();
        let demands = vec![
            ResourceVec::new(600, 10, 20),
            ResourceVec::new(400, 4, 10),
            ResourceVec::new(900, 16, 0),
            ResourceVec::new(200, 0, 40),
        ];
        let out = planner().check_device(&dev, &demands);
        assert!(out.is_feasible(), "got {out:?}");
        if let FloorplanOutcome::Feasible(rects) = out {
            for i in 0..rects.len() {
                for j in (i + 1)..rects.len() {
                    assert!(!rects[i].overlaps(&rects[j]));
                }
            }
        }
    }

    #[test]
    fn caller_token_cancels_solve() {
        // A token that fires on its very first poll aborts the search as a
        // Timeout even though the internal time limit is generous.
        let cancel = CancelToken::fire_on_poll(1);
        let out = planner().solve_cancel(&geom(), &[ResourceVec::new(100, 10, 0)], &cancel);
        assert_eq!(out, FloorplanOutcome::Timeout);
        assert_eq!(cancel.deadline_hits(), 1);
    }

    #[test]
    fn never_token_matches_plain_solve() {
        let demands = vec![ResourceVec::new(100, 10, 0), ResourceVec::new(50, 0, 20)];
        let plain = planner().solve(&geom(), &demands);
        let token = planner().solve_cancel(&geom(), &demands, &CancelToken::never());
        assert_eq!(plain, token);
    }

    #[test]
    fn timeout_is_reported() {
        // Zero budget forces a timeout on any non-trivial search.
        let p = Floorplanner::new(FloorplannerConfig {
            time_limit: Duration::from_nanos(0),
            ..Default::default()
        });
        let demand = ResourceVec::new(0, 11, 0);
        let out = p.solve(&geom(), &[demand, demand, demand]);
        // Either it proves infeasibility before the first clock check or it
        // times out; both are acceptable terminations, never Feasible.
        assert!(!out.is_feasible());
    }
}
