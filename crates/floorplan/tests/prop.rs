//! Property-based tests for the floorplanner: soundness of every witness
//! placement and exactness of the infeasibility answer on brute-forceable
//! grids.

use std::time::Duration;

use proptest::prelude::*;

use prfpga_floorplan::{
    FeasibilityCache, FloorplanOutcome, Floorplanner, FloorplannerConfig, DEFAULT_CACHE_CAPACITY,
};
use prfpga_model::{Device, FabricColumn, FabricGeometry, Platform, ResourceVec};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn planner() -> Floorplanner {
    Floorplanner::new(FloorplannerConfig {
        time_limit: Duration::from_secs(10),
        ..Default::default()
    })
}

/// Strategy: a small random column-based fabric.
fn arb_geometry() -> impl Strategy<Value = FabricGeometry> {
    (proptest::collection::vec(0u8..3, 1..10), 1u32..4).prop_map(|(cols, rows)| FabricGeometry {
        columns: cols
            .into_iter()
            .map(|c| match c {
                0 => FabricColumn::Clb,
                1 => FabricColumn::Bram,
                _ => FabricColumn::Dsp,
            })
            .collect(),
        rows,
    })
}

/// Strategy: a handful of region demands scaled to have a chance of
/// fitting the small grids above.
fn arb_demands() -> impl Strategy<Value = Vec<ResourceVec>> {
    proptest::collection::vec(
        (0u64..120, 0u64..25, 0u64..45).prop_map(|(c, b, d)| ResourceVec::new(c, b, d)),
        0..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: every Feasible witness is pairwise disjoint and every
    /// rectangle covers its region's demand.
    #[test]
    fn witnesses_are_sound(geom in arb_geometry(), demands in arb_demands()) {
        if let FloorplanOutcome::Feasible(rects) = planner().solve(&geom, &demands) {
            prop_assert_eq!(rects.len(), demands.len());
            for (i, r) in rects.iter().enumerate() {
                prop_assert!(demands[i].fits_in(&r.resources(&geom)),
                    "rect {r:?} does not cover {:?}", demands[i]);
                prop_assert!(r.col_end as usize <= geom.columns.len());
                prop_assert!(r.row_end <= geom.rows);
                for r2 in rects.iter().skip(i + 1) {
                    prop_assert!(!r.overlaps(r2), "{r:?} overlaps {r2:?}");
                }
            }
        }
    }

    /// Capacity is necessary: a total demand exceeding the grid is always
    /// Infeasible (never Feasible, never a false Timeout on these sizes).
    #[test]
    fn over_capacity_is_always_infeasible(geom in arb_geometry(), demands in arb_demands()) {
        let total: ResourceVec = demands.iter().copied().sum();
        prop_assume!(!total.fits_in(&geom.total_resources()));
        prop_assert_eq!(planner().solve(&geom, &demands), FloorplanOutcome::Infeasible);
    }

    /// Monotonicity: adding a region to an infeasible set keeps it
    /// infeasible; removing a region from a feasible set keeps it feasible.
    #[test]
    fn feasibility_is_monotone(geom in arb_geometry(), demands in arb_demands()) {
        prop_assume!(!demands.is_empty());
        let full = planner().solve(&geom, &demands);
        let fewer = planner().solve(&geom, &demands[..demands.len() - 1]);
        match (full, fewer) {
            (FloorplanOutcome::Feasible(_), f) => prop_assert!(f.is_feasible()),
            (FloorplanOutcome::Infeasible, FloorplanOutcome::Infeasible) => {}
            (FloorplanOutcome::Infeasible, FloorplanOutcome::Feasible(_)) => {}
            // Timeouts do not occur within a 10 s budget at these sizes,
            // but tolerate them to keep the property about logic only.
            _ => {}
        }
    }

    /// The feasibility cache is transparent: its answer always carries the
    /// same verdict as a cold planner solve — on the first (miss) query,
    /// on a repeat (hit) query, and on any permutation of the demands —
    /// including Infeasible verdicts, and every Feasible witness it hands
    /// back is sound for the demand order actually asked.
    #[test]
    fn cache_verdicts_match_cold_solve(geom in arb_geometry(),
        demands in arb_demands(), seed in 0u64..u64::MAX) {
        let device = Device {
            name: "prop".into(),
            max_res: geom.total_resources(),
            bits_per_unit: [1, 1, 1],
            rec_freq: 1,
            geometry: Some(geom.clone()),
        };
        let cold = planner().check_device(&device, &demands);
        // Timeouts never cache and do not occur at these sizes anyway.
        prop_assume!(!matches!(cold, FloorplanOutcome::Timeout));

        let sound = |rects: &[prfpga_floorplan::Rect], asked: &[ResourceVec]| {
            rects.len() == asked.len()
                && rects.iter().enumerate().all(|(i, r)| {
                    asked[i].fits_in(&r.resources(&geom))
                        && rects.iter().skip(i + 1).all(|r2| !r.overlaps(r2))
                })
        };

        let mut cache = FeasibilityCache::new(planner(), DEFAULT_CACHE_CAPACITY);
        for round in 0..2 {
            let got = cache.check_device(&device, &demands);
            prop_assert_eq!(got.is_feasible(), cold.is_feasible(), "round {round}");
            if let FloorplanOutcome::Feasible(rects) = &got {
                prop_assert!(sound(rects, &demands), "round {round}: {rects:?}");
            }
        }
        prop_assert_eq!(cache.stats().hits, 1);
        prop_assert_eq!(cache.stats().misses, 1);

        let mut shuffled = demands.clone();
        shuffled.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
        let cold_shuffled = planner().check_device(&device, &shuffled);
        let got = cache.check_device(&device, &shuffled);
        prop_assert_eq!(got.is_feasible(), cold_shuffled.is_feasible());
        if let FloorplanOutcome::Feasible(rects) = &got {
            prop_assert!(sound(rects, &shuffled), "shuffled witness unsound: {rects:?}");
        }
        // Any permutation canonicalizes to the already-cached key.
        prop_assert_eq!(cache.stats().misses, 1);
    }

    /// Degeneracy: per-fabric platform solving on a 1-fabric platform is
    /// verdict- and witness-identical to the plain device solver on that
    /// fabric — the platform path's grouping, sub-solving and witness
    /// stitching must all collapse to the identity.
    #[test]
    fn one_fabric_platform_matches_device_solver(geom in arb_geometry(),
        demands in arb_demands()) {
        let device = Device {
            name: "prop".into(),
            max_res: geom.total_resources(),
            bits_per_unit: [1, 1, 1],
            rec_freq: 1,
            geometry: Some(geom.clone()),
        };
        let via_device = planner().check_device(&device, &demands);
        prop_assume!(!matches!(via_device, FloorplanOutcome::Timeout));

        let platform = Platform::single(device);
        let fabric_of = vec![0u32; demands.len()];
        let via_platform = planner().check_platform(&platform, &demands, &fabric_of);
        prop_assert_eq!(via_platform, via_device);
    }

    /// Single-region queries agree with the candidate enumeration: a lone
    /// demand is feasible iff it has at least one minimal rectangle.
    #[test]
    fn single_region_matches_candidates(geom in arb_geometry(),
        c in 0u64..200, b in 0u64..40, d in 0u64..60) {
        let demand = ResourceVec::new(c, b, d);
        let outcome = planner().solve(&geom, &[demand]);
        let has_candidates =
            !prfpga_floorplan::candidates::minimal_rects(&geom, &demand).is_empty();
        prop_assert_eq!(outcome.is_feasible(), has_candidates);
    }
}
