//! Seeded runtime event-trace synthesis.
//!
//! The repair engine (`prfpga-sched`) consumes [`ScheduleEvent`] streams;
//! this module manufactures them from a committed baseline schedule the
//! same way the instance generator manufactures task graphs: `ChaCha8Rng`
//! from a fixed seed, so a trace is a pure function of
//! `(seed, instance, schedule, config)`.
//!
//! The walk mirrors how a deployed system would observe its schedule:
//! tasks *finish* in committed-start order (so a task's predecessors are
//! always retired before it completes), with actual completion jittered
//! around the plan; *cancellations* and *duration revisions* strike only
//! tasks the walk has not yet finished; *arrivals* introduce fresh
//! software tasks depending on already-known work.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use prfpga_model::{EventTrace, ProblemInstance, Schedule, ScheduleEvent, TaskId, Time};

/// Mix and magnitude of the synthesized perturbations.
///
/// The three `*_pct` category weights are percentages of the event budget;
/// whatever they leave (at least `100 - cancel - revise - arrive`) becomes
/// on-schedule task finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventConfig {
    /// Number of events to synthesize (the trace may come up short only if
    /// the walk runs out of live tasks to perturb).
    pub events: usize,
    /// Finish-time jitter: actual execution time is drawn uniformly from
    /// `duration * (100 ± jitter_pct) / 100`. `0` replays the plan exactly.
    pub jitter_pct: u32,
    /// Percentage of events that cancel a not-yet-finished task.
    pub cancel_pct: u32,
    /// Percentage of events that revise a not-yet-finished task's estimate
    /// (re-drawn with the same jitter law, but at least `1` tick).
    pub revise_pct: u32,
    /// Percentage of events that are runtime arrivals of new software
    /// tasks.
    pub arrive_pct: u32,
}

impl EventConfig {
    /// A trace of nothing but exactly-on-schedule finishes: replaying it
    /// must leave the committed schedule byte-identical.
    pub fn on_time(events: usize) -> Self {
        EventConfig {
            events,
            jitter_pct: 0,
            cancel_pct: 0,
            revise_pct: 0,
            arrive_pct: 0,
        }
    }

    /// The default perturbation mix used by the benches and the CLI's
    /// synthesized replays: 70% finishes with ±30% jitter, 10% each of
    /// cancels, revisions and arrivals.
    pub fn standard(events: usize) -> Self {
        EventConfig {
            events,
            jitter_pct: 30,
            cancel_pct: 10,
            revise_pct: 10,
            arrive_pct: 10,
        }
    }
}

/// Deterministic event-trace generator.
///
/// ```
/// use prfpga_gen::{EventConfig, EventTraceGenerator, GraphConfig, TaskGraphGenerator};
/// use prfpga_model::Architecture;
///
/// let inst = TaskGraphGenerator::new(7).generate(
///     "demo",
///     &GraphConfig::standard(20),
///     Architecture::zedboard_pr(),
/// );
/// // Any committed schedule works; here every task runs back-to-back in
/// // software on core 0 purely for the doctest.
/// # let schedule = {
/// #     use prfpga_model::{Placement, Schedule, TaskAssignment};
/// #     let mut assignments = vec![None; inst.graph.len()];
/// #     let mut t = 0;
/// #     // Generated DAGs arc low id -> high id, so id order is topological.
/// #     for id in inst.graph.task_ids() {
/// #         let impl_id = inst.graph.task(id).impls[0];
/// #         let d = inst.impls.get(impl_id).time;
/// #         t += d;
/// #         assignments[id.index()] = Some(TaskAssignment {
/// #             impl_id,
/// #             placement: Placement::Core(0),
/// #             start: t - d,
/// #             end: t,
/// #         });
/// #     }
/// #     Schedule {
/// #         regions: vec![],
/// #         assignments: assignments.into_iter().map(Option::unwrap).collect(),
/// #         reconfigurations: vec![],
/// #     }
/// # };
/// let traces = EventTraceGenerator::new(42);
/// let t1 = traces.generate(&inst, &schedule, &EventConfig::standard(12));
/// let t2 = traces.generate(&inst, &schedule, &EventConfig::standard(12));
/// assert_eq!(t1, t2, "same seed, same trace");
/// assert_eq!(t1.events.len(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct EventTraceGenerator {
    seed: u64,
}

impl EventTraceGenerator {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        EventTraceGenerator { seed }
    }

    /// Synthesizes an event trace against `schedule` for `inst`.
    ///
    /// Invariants the produced trace honours (so any conforming replayer
    /// can apply it without bookkeeping):
    ///
    /// * no task is targeted twice by `Finish`/`Cancel`, and never after
    ///   either of those;
    /// * finishes occur in committed-start order, so by the time a task
    ///   finishes, its predecessors already have;
    /// * revisions only touch tasks the trace has not finished;
    /// * arrival dependencies reference tasks already known at that point
    ///   (committed tasks or earlier arrivals).
    pub fn generate(
        &self,
        inst: &ProblemInstance,
        schedule: &Schedule,
        config: &EventConfig,
    ) -> EventTrace {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut by_start: Vec<TaskId> =
            (0..schedule.assignments.len() as u32).map(TaskId).collect();
        by_start.sort_by_key(|t| (schedule.assignment(*t).start, t.index()));

        let n = by_start.len();
        // `done[t]`: the trace already finished or cancelled task t.
        let mut done = vec![false; n];
        let mut next_finish = 0usize; // cursor into `by_start`
        let mut known = n as u32; // committed tasks + arrivals so far
        let mut events = Vec::with_capacity(config.events);

        let jitter = |rng: &mut ChaCha8Rng, dur: Time, pct: u32| -> Time {
            if pct == 0 || dur == 0 {
                return dur;
            }
            let lo = dur * u64::from(100 - pct.min(100)) / 100;
            let hi = dur * u64::from(100 + pct) / 100;
            rng.random_range(lo..=hi)
        };

        let mean_dur = {
            let total: Time = schedule
                .assignments
                .iter()
                .map(|a| a.end - a.start)
                .sum::<Time>();
            (total / n.max(1) as Time).max(1)
        };

        while events.len() < config.events {
            let roll = rng.random_range(0u32..100);
            let unfinished: Vec<TaskId> = by_start[next_finish..]
                .iter()
                .copied()
                .filter(|t| !done[t.index()])
                .collect();

            if roll < config.cancel_pct {
                if let Some(&t) = unfinished.last() {
                    // Cancel from the tail of the walk: the task is least
                    // likely to gate work the trace still wants to finish.
                    done[t.index()] = true;
                    events.push(ScheduleEvent::Cancel { task: t });
                    continue;
                }
            } else if roll < config.cancel_pct + config.revise_pct {
                if let Some(&t) = unfinished.get(unfinished.len() / 2) {
                    let dur = schedule.assignment(t).duration();
                    events.push(ScheduleEvent::DurationRevised {
                        task: t,
                        duration: jitter(&mut rng, dur, config.jitter_pct).max(1),
                    });
                    continue;
                }
            } else if roll < config.cancel_pct + config.revise_pct + config.arrive_pct {
                let n_deps = rng.random_range(1..=3u32).min(known);
                let mut deps = Vec::with_capacity(n_deps as usize);
                while deps.len() < n_deps as usize {
                    let d = TaskId(rng.random_range(0..known));
                    if !deps.contains(&d) {
                        deps.push(d);
                    }
                }
                events.push(ScheduleEvent::Arrive {
                    name: format!("arrival-{}", known - n as u32),
                    sw_time: rng.random_range(mean_dur..=2 * mean_dur),
                    deps,
                });
                known += 1;
                continue;
            }

            // Default (and fallback when a category found no target):
            // finish the next live task of the walk.
            while next_finish < n && done[by_start[next_finish].index()] {
                next_finish += 1;
            }
            let Some(&t) = by_start.get(next_finish) else {
                break; // every committed task finished or cancelled
            };
            done[t.index()] = true;
            next_finish += 1;
            let a = schedule.assignment(t);
            let actual = a.start + jitter(&mut rng, a.duration(), config.jitter_pct);
            events.push(ScheduleEvent::Finish { task: t, actual });
        }

        EventTrace {
            instance: inst.name.clone(),
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphConfig, TaskGraphGenerator};
    use prfpga_model::{Architecture, Placement, TaskAssignment};

    fn fixture() -> (ProblemInstance, Schedule) {
        let inst = TaskGraphGenerator::new(3).generate(
            "events",
            &GraphConfig::standard(30),
            Architecture::zedboard_pr(),
        );
        // Sequential software schedule in topological order: valid and
        // cheap to build without pulling the scheduler crate in.
        let mut assignments = vec![None; inst.graph.len()];
        let mut t = 0;
        // Generated DAGs arc low id -> high id, so id order is topological.
        for id in inst.graph.task_ids() {
            let impl_id = inst.graph.task(id).impls[0];
            let d = inst.impls.get(impl_id).time;
            t += d;
            assignments[id.index()] = Some(TaskAssignment {
                impl_id,
                placement: Placement::Core(0),
                start: t - d,
                end: t,
            });
        }
        let schedule = Schedule {
            regions: vec![],
            assignments: assignments.into_iter().map(Option::unwrap).collect(),
            reconfigurations: vec![],
        };
        (inst, schedule)
    }

    #[test]
    fn same_seed_same_trace() {
        let (inst, schedule) = fixture();
        let g = EventTraceGenerator::new(11);
        let a = g.generate(&inst, &schedule, &EventConfig::standard(40));
        let b = g.generate(&inst, &schedule, &EventConfig::standard(40));
        assert_eq!(a, b);
        assert_ne!(
            a,
            EventTraceGenerator::new(12).generate(&inst, &schedule, &EventConfig::standard(40))
        );
    }

    #[test]
    fn on_time_trace_finishes_in_start_order_at_committed_ends() {
        let (inst, schedule) = fixture();
        let trace =
            EventTraceGenerator::new(5).generate(&inst, &schedule, &EventConfig::on_time(30));
        assert_eq!(trace.events.len(), 30);
        let mut last_start = 0;
        for ev in &trace.events {
            let ScheduleEvent::Finish { task, actual } = ev else {
                panic!("on-time traces contain only finishes, got {ev:?}");
            };
            let a = schedule.assignment(*task);
            assert_eq!(*actual, a.end, "on-time finish replays the plan");
            assert!(a.start >= last_start, "finishes walk in start order");
            last_start = a.start;
        }
    }

    #[test]
    fn perturbations_never_touch_finished_tasks() {
        let (inst, schedule) = fixture();
        let trace =
            EventTraceGenerator::new(9).generate(&inst, &schedule, &EventConfig::standard(60));
        let n = schedule.assignments.len() as u32;
        let mut done = vec![false; n as usize];
        let mut known = n;
        for ev in &trace.events {
            match ev {
                ScheduleEvent::Finish { task, .. } | ScheduleEvent::Cancel { task } => {
                    assert!(!done[task.index()], "{task:?} targeted after completion");
                    done[task.index()] = true;
                }
                ScheduleEvent::DurationRevised { task, duration } => {
                    assert!(!done[task.index()], "{task:?} revised after completion");
                    assert!(*duration >= 1);
                }
                ScheduleEvent::Arrive { deps, .. } => {
                    assert!(!deps.is_empty());
                    for d in deps {
                        assert!(d.0 < known, "arrival depends on unknown {d:?}");
                    }
                    known += 1;
                }
            }
        }
    }

    #[test]
    fn trace_survives_json_round_trip() {
        let (inst, schedule) = fixture();
        let trace =
            EventTraceGenerator::new(2).generate(&inst, &schedule, &EventConfig::standard(25));
        let back = EventTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(trace, back);
    }
}
