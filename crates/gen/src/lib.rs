//! # prfpga-gen
//!
//! Seeded synthetic benchmark generator reproducing the evaluation workload
//! of the paper (§VII-A):
//!
//! * pseudo-random layered task DAGs;
//! * one software implementation plus three hardware implementations per
//!   task, with heterogeneous CLB/BRAM/DSP requirements along a
//!   time-vs-area trade-off curve (as HLS loop-unrolling would produce);
//! * implementation sharing across tasks so that module reuse is possible
//!   for baselines that exploit it;
//! * the standard suite: 10 groups x 10 graphs with 10..100 tasks per
//!   graph, targeting the ZedBoard architecture.
//!
//! Everything is driven by `ChaCha8Rng` from fixed seeds, so every build of
//! the experiment harness sees the byte-identical suite.

#![warn(missing_docs)]

pub mod events;
pub mod profile;
pub mod stats;
pub mod suite;
pub mod topology;

pub use events::{EventConfig, EventTraceGenerator};
pub use profile::{ImplProfile, TaskKind};
pub use stats::{instance_stats, InstanceStats};
pub use suite::{service_instance, standard_suite, SuiteConfig};
pub use topology::{GraphConfig, TaskGraphGenerator, Topology};
