//! Implementation-set generation: the time-vs-area trade-off curve.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use prfpga_model::{ImplId, ImplPool, Implementation, ResourceVec, Time};

/// The dominant resource flavour of a task's hardware implementations.
///
/// Real kernels lean on different fabric resources: filters and linear
/// algebra burn DSP slices, buffering-heavy kernels burn BRAM, control and
/// bit-twiddling kernels burn logic. A flavour skews the generated
/// requirement vector accordingly, producing the "heterogeneous resource
/// requirements" of §VII-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// CLB-dominated kernel.
    LogicHeavy,
    /// BRAM-dominated kernel.
    MemoryHeavy,
    /// DSP-dominated kernel.
    ArithmeticHeavy,
    /// Balanced kernel.
    Balanced,
}

impl TaskKind {
    /// All flavours.
    pub const ALL: [TaskKind; 4] = [
        TaskKind::LogicHeavy,
        TaskKind::MemoryHeavy,
        TaskKind::ArithmeticHeavy,
        TaskKind::Balanced,
    ];

    /// Samples a kind with realistic frequencies: most HLS kernels are
    /// logic-dominated; BRAM- and DSP-hungry ones are the minority (and a
    /// column-based fabric can only host so many of them concurrently).
    pub fn sample<R: rand::Rng + rand::RngExt>(rng: &mut R) -> TaskKind {
        match rng.random_range(0..100u32) {
            0..55 => TaskKind::LogicHeavy,
            55..75 => TaskKind::MemoryHeavy,
            75..90 => TaskKind::ArithmeticHeavy,
            _ => TaskKind::Balanced,
        }
    }

    /// Multipliers (percent) applied to the baseline BRAM/DSP usage.
    fn skew(self) -> (u64, u64) {
        match self {
            // Pure-logic kernels use no block RAM or DSP at all: this is
            // common in practice and keeps their regions placeable in any
            // CLB-only stretch of fabric.
            TaskKind::LogicHeavy => (0, 0),
            TaskKind::MemoryHeavy => (250, 0),
            TaskKind::ArithmeticHeavy => (0, 250),
            TaskKind::Balanced => (60, 60),
        }
    }
}

/// Parameters of the implementation generator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImplProfile {
    /// Baseline hardware work per task in ticks, sampled uniformly from
    /// this inclusive range. The default (500..=5000 with ticks read as
    /// microseconds) makes task execution comparable to region
    /// reconfiguration on a Zynq, as in the paper's setting.
    pub hw_time_range: (Time, Time),
    /// Software slowdown over the *fastest* hardware implementation,
    /// sampled from this inclusive range (x100, i.e. 300 means 3x).
    pub sw_slowdown_pct: (u64, u64),
    /// Number of hardware implementations per task (the paper uses 3).
    pub hw_impls_per_task: usize,
    /// CLB requirement of the mid-point implementation, sampled uniformly
    /// from this inclusive range.
    pub clb_range: (u64, u64),
    /// Probability (percent) that a task reuses the implementation set of
    /// an earlier task of the same kind, enabling module reuse.
    pub share_impl_pct: u64,
}

impl Default for ImplProfile {
    fn default() -> Self {
        ImplProfile {
            hw_time_range: (500, 5000),
            sw_slowdown_pct: (300, 600),
            hw_impls_per_task: 3,
            clb_range: (300, 1000),
            share_impl_pct: 15,
        }
    }
}

impl ImplProfile {
    /// Generates the implementation set for one task: one software
    /// implementation and `hw_impls_per_task` hardware variants spanning a
    /// fast/large to slow/small trade-off.
    ///
    /// Returns the implementation ids (software first).
    pub fn generate_task_impls<R: Rng>(
        &self,
        rng: &mut R,
        pool: &mut ImplPool,
        task_name: &str,
        kind: TaskKind,
        device_cap: &ResourceVec,
    ) -> Vec<ImplId> {
        let base_time = rng.random_range(self.hw_time_range.0..=self.hw_time_range.1);
        let slowdown = rng.random_range(self.sw_slowdown_pct.0..=self.sw_slowdown_pct.1);
        let base_clb = rng.random_range(self.clb_range.0..=self.clb_range.1);
        let (bram_skew, dsp_skew) = kind.skew();

        let mut ids = Vec::with_capacity(1 + self.hw_impls_per_task);

        // Fastest hardware time: variants scale up from this.
        let sw_time = (base_time * slowdown / 100).max(1);
        ids.push(pool.add(Implementation::software(format!("{task_name}_sw"), sw_time)));

        // Hardware variants: index v in 0..k maps to a point on the
        // trade-off curve. v = 0 is the fastest and largest (think full
        // unroll), the last v is the slowest and smallest (no unroll).
        // time multiplier grows ~linearly, area shrinks ~inversely — the
        // classic HLS unrolling shape, with +-15% jitter so the curve is
        // not exactly degenerate.
        let k = self.hw_impls_per_task.max(1);
        for v in 0..k {
            // time factor in percent: 100, 160, 220, ...
            let time_pct = 100 + (v as u64) * 60;
            // area factor in percent of base: 220, 130, 77, ... (geometric)
            let mut area_pct = 220u64;
            for _ in 0..v {
                area_pct = area_pct * 10 / 17; // divide by 1.7
            }
            let jitter = |rng: &mut R, x: u64| -> u64 {
                let j = rng.random_range(85u64..=115);
                if x == 0 {
                    0
                } else {
                    (x * j / 100).max(1)
                }
            };
            let time = jitter(rng, base_time * time_pct / 100);
            let clb = jitter(rng, (base_clb * area_pct / 100).max(20));
            let bram = jitter(rng, (clb * bram_skew / 100).div_ceil(120)).min(device_cap.0[1] / 2);
            let dsp = jitter(rng, (clb * dsp_skew / 100).div_ceil(60)).min(device_cap.0[2] / 2);
            let res = ResourceVec::new(clb.min(device_cap.0[0] / 2), bram, dsp);
            ids.push(pool.add(Implementation::hardware(
                format!("{task_name}_hw{v}"),
                time.min(sw_time.saturating_sub(1).max(1)),
                res,
            )));
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cap() -> ResourceVec {
        ResourceVec::new(13_300, 140, 220)
    }

    #[test]
    fn generates_one_sw_and_k_hw() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut pool = ImplPool::new();
        let profile = ImplProfile::default();
        let ids =
            profile.generate_task_impls(&mut rng, &mut pool, "t0", TaskKind::Balanced, &cap());
        assert_eq!(ids.len(), 4);
        assert!(pool.get(ids[0]).is_software());
        for &id in &ids[1..] {
            assert!(pool.get(id).is_hardware());
        }
    }

    #[test]
    fn tradeoff_curve_shape() {
        // Later variants must (on average) be slower and smaller. With
        // jitter the ordering can locally flip; check the extremes over
        // many samples.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let profile = ImplProfile::default();
        let mut faster_first = 0;
        let mut smaller_last = 0;
        const N: usize = 100;
        for i in 0..N {
            let mut pool = ImplPool::new();
            let ids = profile.generate_task_impls(
                &mut rng,
                &mut pool,
                &format!("t{i}"),
                TaskKind::Balanced,
                &cap(),
            );
            let first = pool.get(ids[1]).clone();
            let last = pool.get(*ids.last().unwrap()).clone();
            if first.time <= last.time {
                faster_first += 1;
            }
            if last.resources().get(prfpga_model::ResourceKind::Clb)
                <= first.resources().get(prfpga_model::ResourceKind::Clb)
            {
                smaller_last += 1;
            }
        }
        assert!(
            faster_first > N * 9 / 10,
            "fast variant usually fastest: {faster_first}"
        );
        assert!(
            smaller_last > N * 9 / 10,
            "small variant usually smallest: {smaller_last}"
        );
    }

    #[test]
    fn software_is_slowest() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let profile = ImplProfile::default();
        for i in 0..50 {
            let mut pool = ImplPool::new();
            let ids = profile.generate_task_impls(
                &mut rng,
                &mut pool,
                &format!("t{i}"),
                TaskKind::Balanced,
                &cap(),
            );
            let sw = pool.get(ids[0]).time;
            for &id in &ids[1..] {
                assert!(pool.get(id).time < sw, "hardware beats software");
            }
        }
    }

    #[test]
    fn kinds_skew_resources() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let profile = ImplProfile::default();
        let mut dsp_total_arith = 0u64;
        let mut dsp_total_logic = 0u64;
        for i in 0..50 {
            let mut pool = ImplPool::new();
            let a = profile.generate_task_impls(
                &mut rng,
                &mut pool,
                &format!("a{i}"),
                TaskKind::ArithmeticHeavy,
                &cap(),
            );
            let l = profile.generate_task_impls(
                &mut rng,
                &mut pool,
                &format!("l{i}"),
                TaskKind::LogicHeavy,
                &cap(),
            );
            dsp_total_arith += pool
                .get(a[1])
                .resources()
                .get(prfpga_model::ResourceKind::Dsp);
            dsp_total_logic += pool
                .get(l[1])
                .resources()
                .get(prfpga_model::ResourceKind::Dsp);
        }
        assert!(
            dsp_total_arith > dsp_total_logic * 2,
            "arithmetic kernels must use far more DSP ({dsp_total_arith} vs {dsp_total_logic})"
        );
    }

    #[test]
    fn requirements_stay_placeable() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let profile = ImplProfile::default();
        let cap = cap();
        for i in 0..100 {
            let mut pool = ImplPool::new();
            for kind in TaskKind::ALL {
                let ids =
                    profile.generate_task_impls(&mut rng, &mut pool, &format!("t{i}"), kind, &cap);
                for &id in &ids[1..] {
                    assert!(pool.get(id).resources().fits_in(&cap));
                }
            }
        }
    }

    #[test]
    fn determinism() {
        let gen_once = || {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            let mut pool = ImplPool::new();
            let profile = ImplProfile::default();
            profile.generate_task_impls(&mut rng, &mut pool, "t", TaskKind::MemoryHeavy, &cap());
            pool
        };
        assert_eq!(gen_once(), gen_once());
    }
}
