//! Instance and suite statistics.
//!
//! §VII-B of the paper attributes the variance of its improvements to
//! graph parallelism and implementation trade-offs. These helpers compute
//! the corresponding descriptive statistics for any instance or suite so
//! reports can characterize what the schedulers actually faced.

use prfpga_dag::{CsrView, Dag, LevelProfile};
use prfpga_model::{ProblemInstance, Time};
use serde::{Deserialize, Serialize};

/// Descriptive statistics of one instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of dependency arcs.
    pub edges: usize,
    /// DAG depth (levels).
    pub depth: usize,
    /// Maximum structural parallelism (widest level).
    pub max_parallelism: u32,
    /// Average level width x100.
    pub avg_parallelism_x100: u64,
    /// Mean software execution time.
    pub mean_sw_time: Time,
    /// Mean fastest-hardware execution time (tasks with hardware only).
    pub mean_hw_time: Time,
    /// Software-over-hardware slowdown x100 (0 when no hardware exists).
    pub sw_slowdown_x100: u64,
    /// Sum of the chosen-at-minimum CLB demands over all tasks' smallest
    /// hardware variants, as a per-mille fraction of device CLBs — how
    /// over-subscribed the fabric is if every task wanted hardware at once.
    pub min_hw_clb_pressure_pm: u64,
    /// Tasks that share an implementation set with some other task.
    pub shared_impl_tasks: usize,
}

/// Computes [`InstanceStats`].
pub fn instance_stats(inst: &ProblemInstance) -> InstanceStats {
    let dag = Dag::from_taskgraph(&inst.graph).expect("validated instance is acyclic");
    // One CSR snapshot serves the level profile (and caches the topological
    // order); at 10k+ tasks this keeps characterization O(V + E) with a
    // single Kahn pass instead of one per consumer.
    let mut csr = CsrView::new();
    csr.build(&dag);
    let profile = LevelProfile::from_csr(&csr);

    let mut sw_sum: u128 = 0;
    let mut sw_n = 0u64;
    let mut hw_sum: u128 = 0;
    let mut hw_n = 0u64;
    let mut min_clb_sum: u64 = 0;
    for t in inst.graph.task_ids() {
        let sw = inst.impls.get(inst.fastest_sw_impl(t)).time;
        sw_sum += sw as u128;
        sw_n += 1;
        if let Some(best_hw) = inst.hw_impls(t).map(|i| inst.impls.get(i).time).min() {
            hw_sum += best_hw as u128;
            hw_n += 1;
        }
        if let Some(min_clb) = inst
            .hw_impls(t)
            .map(|i| inst.impls.get(i).resources().0[0])
            .min()
        {
            min_clb_sum += min_clb;
        }
    }
    let mean_sw_time = if sw_n == 0 {
        0
    } else {
        (sw_sum / sw_n as u128) as Time
    };
    let mean_hw_time = if hw_n == 0 {
        0
    } else {
        (hw_sum / hw_n as u128) as Time
    };
    let sw_slowdown_x100 = if mean_hw_time == 0 {
        0
    } else {
        (mean_sw_time as u128 * 100 / mean_hw_time as u128) as u64
    };
    let device_clb = inst.architecture.device.max_res.0[0].max(1);
    let min_hw_clb_pressure_pm = min_clb_sum * 1000 / device_clb;

    // Shared implementation sets.
    let mut counts = std::collections::HashMap::new();
    for t in &inst.graph.tasks {
        *counts.entry(t.impls.clone()).or_insert(0usize) += 1;
    }
    let shared_impl_tasks = inst
        .graph
        .tasks
        .iter()
        .filter(|t| counts[&t.impls] > 1)
        .count();

    InstanceStats {
        tasks: inst.graph.len(),
        edges: inst.graph.edges.len(),
        depth: profile.depth(),
        max_parallelism: profile.max_width(),
        avg_parallelism_x100: profile.avg_width_x100(),
        mean_sw_time,
        mean_hw_time,
        sw_slowdown_x100,
        min_hw_clb_pressure_pm,
        shared_impl_tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{GraphConfig, TaskGraphGenerator, Topology};
    use prfpga_model::Architecture;

    #[test]
    fn stats_of_generated_instance_are_plausible() {
        let inst = TaskGraphGenerator::new(5).generate(
            "stats",
            &GraphConfig::standard(40),
            Architecture::zedboard_pr(),
        );
        let st = instance_stats(&inst);
        assert_eq!(st.tasks, 40);
        assert!(st.edges >= 39, "layered graphs connect every non-source");
        assert!(st.depth > 1 && st.depth < 40);
        assert!(st.max_parallelism >= 2);
        assert!(st.mean_hw_time > 0);
        assert!(
            st.sw_slowdown_x100 >= 300 && st.sw_slowdown_x100 <= 700,
            "software slowdown within the generator's envelope, got {}",
            st.sw_slowdown_x100
        );
        assert!(st.min_hw_clb_pressure_pm > 0);
    }

    #[test]
    fn chain_stats() {
        let cfg = GraphConfig {
            topology: Topology::Chain,
            ..GraphConfig::standard(10)
        };
        let inst = TaskGraphGenerator::new(1).generate("c", &cfg, Architecture::zedboard_pr());
        let st = instance_stats(&inst);
        assert_eq!(st.depth, 10);
        assert_eq!(st.max_parallelism, 1);
        assert_eq!(st.avg_parallelism_x100, 100);
    }

    #[test]
    fn sharing_is_counted() {
        let inst = TaskGraphGenerator::new(3).generate(
            "share",
            &GraphConfig::standard(100),
            Architecture::zedboard_pr(),
        );
        let st = instance_stats(&inst);
        assert!(st.shared_impl_tasks >= 2, "15% share rate over 100 tasks");
    }
}
