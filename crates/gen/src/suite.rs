//! The standard benchmark suite of the paper's evaluation.

use serde::{Deserialize, Serialize};

use prfpga_model::{Architecture, Platform, ProblemInstance};

use crate::topology::{GraphConfig, TaskGraphGenerator};

/// Resolves a named generated profile `(tasks, seed, platform, cores)` to
/// its instance — the *canonical* resolution shared by the scheduling
/// server and its load generator, so a client that regenerates the
/// profile locally (e.g. to sweep-validate a response) is guaranteed the
/// byte-identical instance the server scheduled.
///
/// `platform` is a platform-catalog name (`None` = `xc7z020`); 1-fabric
/// resolutions build the classic single-device architecture with the
/// CLI's default sustained configuration throughput of 400 bits/tick.
pub fn service_instance(
    tasks: usize,
    seed: u64,
    platform: Option<&str>,
    cores: usize,
) -> Result<ProblemInstance, String> {
    let name = platform.unwrap_or("xc7z020");
    let mut platform =
        Platform::by_name(name).ok_or_else(|| format!("unknown platform `{name}`"))?;
    let architecture = if platform.num_fabrics() == 1 {
        let mut device = platform.fabrics.pop().expect("one fabric");
        device.rec_freq = 400;
        Architecture::new(cores, device)
    } else {
        Architecture::on_platform(cores, platform)
    };
    Ok(TaskGraphGenerator::new(seed).generate(
        &format!("svc_t{tasks}_s{seed}"),
        &GraphConfig::standard(tasks),
        architecture,
    ))
}

/// Configuration of a benchmark suite: `groups` gives the task count of
/// each group, `graphs_per_group` the number of instances per group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// Task count per group (the paper: `[10, 20, ..., 100]`).
    pub groups: Vec<usize>,
    /// Instances per group (the paper: 10).
    pub graphs_per_group: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            groups: (1..=10).map(|g| g * 10).collect(),
            graphs_per_group: 10,
            seed: 0x5EED_2016,
        }
    }
}

impl SuiteConfig {
    /// A reduced suite for fast CI runs: 4 groups x 3 graphs.
    pub fn smoke() -> Self {
        SuiteConfig {
            groups: vec![10, 20, 40, 60],
            graphs_per_group: 3,
            seed: 0x5EED_2016,
        }
    }

    /// Generates the suite against `architecture`: one `Vec` of instances
    /// per group, in group order. Fully deterministic.
    pub fn generate(&self, architecture: &Architecture) -> Vec<Vec<ProblemInstance>> {
        self.groups
            .iter()
            .map(|&n| {
                (0..self.graphs_per_group)
                    .map(|i| {
                        let seed = self
                            .seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((n as u64) << 16)
                            .wrapping_add(i as u64);
                        TaskGraphGenerator::new(seed).generate(
                            &format!("g{n}_i{i}"),
                            &GraphConfig::standard(n),
                            architecture.clone(),
                        )
                    })
                    .collect()
            })
            .collect()
    }
}

/// The paper's full evaluation suite on the ZedBoard (at the effective
/// 50 MB/s configuration throughput): 10 groups x 10 pseudo-random graphs
/// with 10..100 tasks.
pub fn standard_suite() -> Vec<Vec<ProblemInstance>> {
    SuiteConfig::default().generate(&Architecture::zedboard_pr())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_shape() {
        let suite = SuiteConfig::smoke().generate(&Architecture::zedboard());
        assert_eq!(suite.len(), 4);
        for (gi, group) in suite.iter().enumerate() {
            assert_eq!(group.len(), 3);
            for inst in group {
                assert_eq!(inst.graph.len(), SuiteConfig::smoke().groups[gi]);
            }
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = SuiteConfig::smoke().generate(&Architecture::zedboard());
        let b = SuiteConfig::smoke().generate(&Architecture::zedboard());
        assert_eq!(a, b);
    }

    #[test]
    fn groups_differ_and_instances_differ() {
        let suite = SuiteConfig::smoke().generate(&Architecture::zedboard());
        assert_ne!(suite[0][0], suite[0][1]);
        assert_ne!(suite[0][0].graph, suite[1][0].graph);
    }

    #[test]
    fn standard_suite_is_paper_shaped() {
        // Only build the config (generating all 100 graphs here would slow
        // the unit-test run; the integration tests and harness do that).
        let cfg = SuiteConfig::default();
        assert_eq!(cfg.groups, vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(cfg.graphs_per_group, 10);
    }
}
