//! Random DAG topologies and full-instance generation.

use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use prfpga_model::{Architecture, ImplPool, ProblemInstance, TaskGraph, TaskId};

use crate::profile::{ImplProfile, TaskKind};

/// Shape of the generated DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Layered pseudo-random DAG (TGFF-like): tasks are distributed over
    /// layers, arcs go from earlier to later layers. This is the default
    /// and matches the paper's "pseudo-random taskgraphs".
    Layered,
    /// A single chain (worst case for parallelism, exercised in §VII-B's
    /// "reduced level of parallelism" remark).
    Chain,
    /// One source fanning out to independent tasks joined by one sink
    /// (maximal parallelism).
    ForkJoin,
    /// Nested series-parallel composition.
    SeriesParallel,
}

/// Parameters for one generated instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Number of application tasks.
    pub num_tasks: usize,
    /// DAG shape.
    pub topology: Topology,
    /// Average out-degree for [`Topology::Layered`] (x100, 150 = 1.5 arcs).
    pub avg_out_degree_x100: u64,
    /// Average tasks per layer for [`Topology::Layered`] (x100).
    pub layer_width_x100: u64,
    /// Implementation generation profile.
    pub impl_profile: ImplProfile,
    /// Per-edge communication cost range in ticks, sampled uniformly;
    /// `(0, 0)` (the default) reproduces the paper's base model where
    /// communication is folded into execution times.
    pub comm_cost_range: (u64, u64),
}

impl GraphConfig {
    /// The paper-suite configuration for `num_tasks` tasks.
    pub fn standard(num_tasks: usize) -> Self {
        GraphConfig {
            num_tasks,
            topology: Topology::Layered,
            avg_out_degree_x100: 150,
            layer_width_x100: 300,
            impl_profile: ImplProfile::default(),
            comm_cost_range: (0, 0),
        }
    }
}

/// Deterministic task-graph generator.
///
/// ```
/// use prfpga_gen::{GraphConfig, TaskGraphGenerator};
/// use prfpga_model::Architecture;
///
/// let gen = TaskGraphGenerator::new(42);
/// let inst = gen.generate("demo", &GraphConfig::standard(25), Architecture::zedboard_pr());
/// assert_eq!(inst.graph.len(), 25);
/// // Same seed, same everything.
/// let again = gen.generate("demo", &GraphConfig::standard(25), Architecture::zedboard_pr());
/// assert_eq!(inst, again);
/// ```
#[derive(Debug, Clone)]
pub struct TaskGraphGenerator {
    seed: u64,
}

impl TaskGraphGenerator {
    /// Creates a generator; all output is a pure function of `(seed,
    /// config, name)`.
    pub fn new(seed: u64) -> Self {
        TaskGraphGenerator { seed }
    }

    /// Generates a full validated instance for `architecture`.
    pub fn generate(
        &self,
        name: &str,
        config: &GraphConfig,
        architecture: Architecture,
    ) -> ProblemInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ hash_name(name));
        let n = config.num_tasks;
        // Cap implementations at what the target accepts: the device
        // capacity for a single fabric, the componentwise minimum over
        // fabric capacities for a platform — so every generated module fits
        // every fabric and the partition phase is never cornered.
        let device_cap = architecture.impl_capacity();

        // --- implementations -------------------------------------------------
        let mut pool = ImplPool::new();
        let mut graph = TaskGraph::new();
        // Remember earlier implementation sets per kind for sharing.
        let mut by_kind: Vec<Vec<Vec<prfpga_model::ImplId>>> =
            vec![Vec::new(); TaskKind::ALL.len()];
        for i in 0..n {
            let kind = TaskKind::sample(&mut rng);
            let kind_idx = TaskKind::ALL.iter().position(|&k| k == kind).unwrap();
            let reuse = !by_kind[kind_idx].is_empty()
                && rng.random_range(0u64..100) < config.impl_profile.share_impl_pct;
            let impls = if reuse {
                let pick = rng.random_range(0..by_kind[kind_idx].len());
                by_kind[kind_idx][pick].clone()
            } else {
                let ids = config.impl_profile.generate_task_impls(
                    &mut rng,
                    &mut pool,
                    &format!("t{i}"),
                    kind,
                    &device_cap,
                );
                by_kind[kind_idx].push(ids.clone());
                ids
            };
            graph.add_task(format!("t{i}"), impls);
        }

        // --- topology ---------------------------------------------------------
        match config.topology {
            Topology::Layered => self.layered_edges(&mut rng, &mut graph, config),
            Topology::Chain => {
                for i in 1..n {
                    graph.add_edge(TaskId(i as u32 - 1), TaskId(i as u32));
                }
            }
            Topology::ForkJoin => {
                if n >= 2 {
                    for i in 1..n - 1 {
                        graph.add_edge(TaskId(0), TaskId(i as u32));
                        graph.add_edge(TaskId(i as u32), TaskId(n as u32 - 1));
                    }
                    if n == 2 {
                        graph.add_edge(TaskId(0), TaskId(1));
                    }
                }
            }
            Topology::SeriesParallel => self.series_parallel_edges(&mut rng, &mut graph, n),
        }

        // Optional communication costs (the §VIII extension).
        if config.comm_cost_range.1 > 0 {
            let (lo, hi) = config.comm_cost_range;
            graph.edge_costs = (0..graph.edges.len())
                .map(|_| rng.random_range(lo..=hi))
                .collect();
        }

        ProblemInstance::new(name, architecture, graph, pool)
            .expect("generated instance must validate")
    }

    /// Layered DAG: partition 0..n into layers of random width, then draw
    /// arcs from each task to tasks in strictly later layers.
    fn layered_edges(&self, rng: &mut ChaCha8Rng, graph: &mut TaskGraph, config: &GraphConfig) {
        let n = config.num_tasks;
        if n < 2 {
            return;
        }
        // Random layer widths around layer_width.
        let mut layers: Vec<Vec<u32>> = Vec::new();
        let mut next = 0u32;
        while (next as usize) < n {
            let w_target = (config.layer_width_x100 / 100).max(1) as u32;
            let w = rng.random_range(1..=(2 * w_target)).min(n as u32 - next);
            layers.push((next..next + w).collect());
            next += w;
        }
        if layers.len() == 1 {
            // Degenerate: split in two so at least some arcs exist.
            let l = layers.pop().unwrap();
            let (a, b) = l.split_at(l.len().div_ceil(2));
            layers.push(a.to_vec());
            layers.push(b.to_vec());
        }
        // Arcs: every non-first layer task gets >= 1 parent from an earlier
        // layer (connectedness); extra arcs up to the target out-degree.
        for li in 1..layers.len() {
            for &t in &layers[li] {
                let pl = rng.random_range(0..li);
                let parent = *layers[pl].choose(rng).unwrap();
                graph.add_edge(TaskId(parent), TaskId(t));
            }
        }
        let extra_target = (n as u64 * config.avg_out_degree_x100 / 100).saturating_sub(n as u64);
        for _ in 0..extra_target {
            let li = rng.random_range(0..layers.len() - 1);
            let lj = rng.random_range(li + 1..layers.len());
            let a = *layers[li].choose(rng).unwrap();
            let b = *layers[lj].choose(rng).unwrap();
            graph.add_edge(TaskId(a), TaskId(b));
        }
    }

    /// Series-parallel: recursively compose chains and parallel bundles
    /// over the index range, wiring ranges in series.
    fn series_parallel_edges(&self, rng: &mut ChaCha8Rng, graph: &mut TaskGraph, n: usize) {
        // Simple recursive construction over contiguous id ranges; returns
        // (entries, exits) of the range.
        fn build(
            rng: &mut ChaCha8Rng,
            graph: &mut TaskGraph,
            lo: u32,
            hi: u32, // exclusive
        ) -> (Vec<u32>, Vec<u32>) {
            let len = hi - lo;
            if len <= 1 {
                return (vec![lo], vec![lo]);
            }
            if len == 2 || rng.random_bool(0.5) {
                // Series: split range, connect exits of left to entries of right.
                let mid = lo + rng.random_range(1..len);
                let (le, lx) = build(rng, graph, lo, mid);
                let (re, rx) = build(rng, graph, mid, hi);
                for &x in &lx {
                    for &e in &re {
                        graph.add_edge(TaskId(x), TaskId(e));
                    }
                }
                (le, rx)
            } else {
                // Parallel: split range into two independent bundles.
                let mid = lo + rng.random_range(1..len);
                let (mut le, mut lx) = build(rng, graph, lo, mid);
                let (re, rx) = build(rng, graph, mid, hi);
                le.extend(re);
                lx.extend(rx);
                (le, lx)
            }
        }
        if n >= 2 {
            build(rng, graph, 0, n as u32);
        }
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a; stable across platforms and Rust versions.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_dag::Dag;

    fn arch() -> Architecture {
        Architecture::zedboard()
    }

    #[test]
    fn generates_validated_instances() {
        let g = TaskGraphGenerator::new(1);
        for n in [1usize, 2, 10, 50] {
            let inst = g.generate(&format!("n{n}"), &GraphConfig::standard(n), arch());
            assert_eq!(inst.graph.len(), n);
            assert!(inst.validate().is_ok());
            // Acyclic.
            assert!(Dag::from_taskgraph(&inst.graph).is_ok());
        }
    }

    #[test]
    fn layered_graphs_are_weakly_connected_from_sources() {
        let g = TaskGraphGenerator::new(2);
        let inst = g.generate("conn", &GraphConfig::standard(40), arch());
        let dag = Dag::from_taskgraph(&inst.graph).unwrap();
        // Every non-source has at least one predecessor by construction.
        let sources = dag.sources();
        assert!(!sources.is_empty());
        for v in 0..dag.len() as u32 {
            if !sources.contains(&v) {
                assert!(!dag.preds(v).is_empty());
            }
        }
    }

    #[test]
    fn determinism_across_calls() {
        let a = TaskGraphGenerator::new(7).generate("x", &GraphConfig::standard(30), arch());
        let b = TaskGraphGenerator::new(7).generate("x", &GraphConfig::standard(30), arch());
        assert_eq!(a, b);
        let c = TaskGraphGenerator::new(8).generate("x", &GraphConfig::standard(30), arch());
        assert_ne!(a, c, "different seeds give different instances");
    }

    #[test]
    fn chain_topology() {
        let cfg = GraphConfig {
            topology: Topology::Chain,
            ..GraphConfig::standard(10)
        };
        let inst = TaskGraphGenerator::new(1).generate("chain", &cfg, arch());
        assert_eq!(inst.graph.edges.len(), 9);
        let dag = Dag::from_taskgraph(&inst.graph).unwrap();
        assert_eq!(dag.sources(), vec![0]);
        assert_eq!(dag.sinks(), vec![9]);
    }

    #[test]
    fn fork_join_topology() {
        let cfg = GraphConfig {
            topology: Topology::ForkJoin,
            ..GraphConfig::standard(12)
        };
        let inst = TaskGraphGenerator::new(1).generate("fj", &cfg, arch());
        let dag = Dag::from_taskgraph(&inst.graph).unwrap();
        assert_eq!(dag.sources(), vec![0]);
        assert_eq!(dag.sinks(), vec![11]);
        assert_eq!(dag.succs(0).len(), 10);
    }

    #[test]
    fn series_parallel_topology_is_acyclic_single_source_sink_free() {
        let cfg = GraphConfig {
            topology: Topology::SeriesParallel,
            ..GraphConfig::standard(25)
        };
        let inst = TaskGraphGenerator::new(5).generate("sp", &cfg, arch());
        assert!(Dag::from_taskgraph(&inst.graph).is_ok());
    }

    #[test]
    fn multi_fabric_instances_fit_every_fabric() {
        use prfpga_model::{ImplKind, Platform};
        let platform = Platform::dual_zedboard();
        let min_cap = platform.min_fabric_capacity();
        let inst = TaskGraphGenerator::new(9).generate(
            "mf",
            &GraphConfig::standard(40),
            Architecture::on_platform(2, platform),
        );
        assert!(inst.validate().is_ok());
        for (_, im) in inst.impls.iter() {
            if let ImplKind::Hardware(res) = &im.kind {
                assert!(
                    res.fits_in(&min_cap),
                    "implementation exceeds the smallest fabric"
                );
            }
        }
    }

    #[test]
    fn module_sharing_occurs() {
        // With 100 tasks at 15% share probability, some tasks must share
        // implementation sets.
        let inst =
            TaskGraphGenerator::new(3).generate("share", &GraphConfig::standard(100), arch());
        let mut seen = std::collections::HashSet::new();
        let mut shared = false;
        for t in &inst.graph.tasks {
            if !seen.insert(t.impls.clone()) {
                shared = true;
                break;
            }
        }
        assert!(shared, "expected at least one shared implementation set");
    }
}
