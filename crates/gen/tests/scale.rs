//! Large-instance generator coverage: the scaling studies
//! (`crates/bench/src/scale.rs`) lean on the generator staying
//! deterministic and structurally sane three orders of magnitude above the
//! paper's 100-task ceiling. These tests pin the 10k-task corpus shape and
//! the JSON round-trip the study fixtures depend on.

use prfpga_gen::{instance_stats, GraphConfig, TaskGraphGenerator};
use prfpga_model::{Architecture, ProblemInstance};

/// Seed shared with the scaling study corpus (`bench::scale::SCALING_SEED`).
const SCALING_SEED: u64 = 0x5CA_1E06;

#[test]
fn seeded_10k_generation_is_pinned_and_plausible() {
    let inst = TaskGraphGenerator::new(SCALING_SEED).generate(
        "scale_10000_0",
        &GraphConfig::standard(10_000),
        Architecture::zedboard_pr(),
    );
    let st = instance_stats(&inst);
    // Exact corpus shape: a drifting generator would silently invalidate
    // every cross-PR BENCH_scaling.json comparison.
    assert_eq!(st.tasks, 10_000);
    assert_eq!(
        st.edges, 14_996,
        "edge count drifted for seed {SCALING_SEED:#x}"
    );
    // Topology invariants at scale: layered graphs connect every
    // non-source, stay strictly between a chain and a single antichain,
    // and keep the implementation envelope the schedulers assume.
    assert!(st.edges >= st.tasks - 1);
    assert!(st.depth > 1 && st.depth < st.tasks);
    assert!(st.max_parallelism >= 2);
    assert!((st.max_parallelism as usize) < st.tasks);
    assert!(st.avg_parallelism_x100 > 100);
    assert!(st.mean_sw_time > 0 && st.mean_hw_time > 0);
    assert!(
        st.sw_slowdown_x100 >= 300 && st.sw_slowdown_x100 <= 700,
        "software slowdown within the generator's envelope, got {}",
        st.sw_slowdown_x100
    );
    assert!(st.shared_impl_tasks >= 2, "15% share rate over 10k tasks");
}

#[test]
fn large_instance_round_trips_through_json() {
    // The study corpus is saved/loaded as multi-MB JSON fixtures; the
    // round-trip must be lossless and fast enough to be practical (the
    // parser is linear — see shims/serde_json).
    let inst = TaskGraphGenerator::new(SCALING_SEED).generate(
        "scale_roundtrip",
        &GraphConfig::standard(10_000),
        Architecture::zedboard_pr(),
    );
    let json = inst.to_json();
    assert!(json.len() > 1 << 20, "10k-task instances serialize to MBs");
    let back = ProblemInstance::from_json(&json).expect("fixture parses and validates");
    assert_eq!(inst, back);
    // Determinism across generator invocations (fixture regeneration).
    let again = TaskGraphGenerator::new(SCALING_SEED).generate(
        "scale_roundtrip",
        &GraphConfig::standard(10_000),
        Architecture::zedboard_pr(),
    );
    assert_eq!(inst, again);
}
