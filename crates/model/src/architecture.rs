//! Target architecture: processor cores plus a reconfigurable device.

use serde::{Deserialize, Serialize};

use crate::device::Device;

/// The SoC the application is scheduled onto: `|P|` homogeneous processor
/// cores tightly coupled with a partially-reconfigurable FPGA, served by a
/// single reconfiguration controller (so reconfigurations are serialized).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    /// Number of homogeneous processor cores (`|P|`); the paper's target
    /// (Zynq-7000) has two ARM Cortex-A9 cores.
    pub num_processors: usize,
    /// The reconfigurable device.
    pub device: Device,
    /// Number of reconfiguration controllers. The paper (and every real
    /// Zynq) has exactly one; its ref. \[8\] generalizes to several, and the
    /// schedulers and validator here support that generalization. Values
    /// above 1 let that many reconfigurations proceed concurrently.
    #[serde(default = "default_controllers")]
    pub num_reconfig_controllers: usize,
}

fn default_controllers() -> usize {
    1
}

impl Architecture {
    /// Builds an architecture with a single reconfiguration controller
    /// (the paper's model).
    pub fn new(num_processors: usize, device: Device) -> Self {
        Architecture {
            num_processors,
            device,
            num_reconfig_controllers: 1,
        }
    }

    /// Overrides the number of reconfiguration controllers (>= 1).
    pub fn with_reconfig_controllers(mut self, k: usize) -> Self {
        self.num_reconfig_controllers = k.max(1);
        self
    }

    /// The paper's evaluation platform: ZedBoard (dual Cortex-A9 + XC7Z020)
    /// with the raw 400 MB/s ICAP throughput from the datasheet.
    pub fn zedboard() -> Self {
        Architecture::new(2, Device::xc7z020())
    }

    /// The ZedBoard at the *effective* configuration throughput of a real
    /// partial-reconfiguration runtime: 50 MB/s (400 bits per µs-tick).
    /// Raw ICAP bandwidth is 400 MB/s, but practical PR managers move
    /// bitstreams through DMA/driver paths that sustain tens of MB/s; this
    /// is the operating point where reconfiguration overhead genuinely
    /// competes with task execution (the paper's §I premise) and the one
    /// the benchmark suite uses.
    pub fn zedboard_pr() -> Self {
        let mut device = Device::xc7z020();
        device.rec_freq = 400;
        Architecture::new(2, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zedboard_shape() {
        let a = Architecture::zedboard();
        assert_eq!(a.num_processors, 2);
        assert_eq!(a.device.name, "xc7z020");
    }
}
