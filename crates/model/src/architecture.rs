//! Target architecture: processor cores plus one or more reconfigurable
//! fabrics.

use serde::{Deserialize, Serialize};

use crate::device::Device;
use crate::platform::Platform;
use crate::resources::ResourceVec;
use crate::time::Time;

/// The SoC the application is scheduled onto: `|P|` homogeneous processor
/// cores tightly coupled with a partially-reconfigurable FPGA, served by a
/// single reconfiguration controller (so reconfigurations are serialized).
///
/// The optional [`platform`](Architecture::platform) field generalizes the
/// target to several fabrics (SLRs or separate FPGAs, see [`Platform`]);
/// when present, `device` is the platform's single-fabric relaxation (for a
/// 1-fabric platform, exactly that fabric) and the per-fabric accessors
/// below expose the real capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    /// Number of homogeneous processor cores (`|P|`); the paper's target
    /// (Zynq-7000) has two ARM Cortex-A9 cores. Cores form one shared host
    /// pool regardless of fabric count — software tasks never pay the
    /// inter-fabric crossing latency.
    pub num_processors: usize,
    /// The reconfigurable device. With a multi-fabric `platform` this is
    /// the sum-capacity relaxation used for coarse bounds; per-fabric code
    /// paths go through [`Architecture::fabrics`].
    pub device: Device,
    /// Number of reconfiguration controllers *per fabric*. The paper (and
    /// every real Zynq) has exactly one; its ref. \[8\] generalizes to
    /// several, and the schedulers and validator here support that
    /// generalization. Values above 1 let that many reconfigurations
    /// proceed concurrently on each fabric.
    #[serde(default = "default_controllers")]
    pub num_reconfig_controllers: usize,
    /// Multi-fabric platform; `None` is the classic single-device path
    /// (instances serialized before this field existed deserialize to
    /// `None`).
    pub platform: Option<Platform>,
}

fn default_controllers() -> usize {
    1
}

impl Architecture {
    /// Builds an architecture with a single reconfiguration controller
    /// (the paper's model).
    pub fn new(num_processors: usize, device: Device) -> Self {
        Architecture {
            num_processors,
            device,
            num_reconfig_controllers: 1,
            platform: None,
        }
    }

    /// Builds an architecture targeting a [`Platform`]; `device` becomes
    /// the platform's relaxation (for 1 fabric, the fabric itself, so the
    /// schedulers behave byte-identically to [`Architecture::new`] on that
    /// device).
    pub fn on_platform(num_processors: usize, platform: Platform) -> Self {
        Architecture {
            num_processors,
            device: platform.relaxation_device(),
            num_reconfig_controllers: 1,
            platform: Some(platform),
        }
    }

    /// Overrides the number of reconfiguration controllers (>= 1).
    pub fn with_reconfig_controllers(mut self, k: usize) -> Self {
        self.num_reconfig_controllers = k.max(1);
        self
    }

    /// Number of fabrics (1 when no platform is attached).
    #[inline]
    pub fn num_fabrics(&self) -> usize {
        match &self.platform {
            Some(p) => p.num_fabrics(),
            None => 1,
        }
    }

    /// The fabrics, as a slice of devices: the platform's fabrics, or the
    /// lone `device` when no platform is attached.
    #[inline]
    pub fn fabrics(&self) -> &[Device] {
        match &self.platform {
            Some(p) => &p.fabrics,
            None => std::slice::from_ref(&self.device),
        }
    }

    /// The device describing fabric `f`.
    #[inline]
    pub fn fabric(&self, f: usize) -> &Device {
        &self.fabrics()[f]
    }

    /// Latency added to data edges crossing fabrics (0 without a platform —
    /// and with a single fabric no edge can cross).
    #[inline]
    pub fn crossing_latency(&self) -> Time {
        match &self.platform {
            Some(p) => p.crossing_latency,
            None => 0,
        }
    }

    /// The largest hardware implementation the target accepts: on a
    /// platform, the componentwise minimum over fabric capacities (so every
    /// implementation fits on every fabric and partitioning is never
    /// cornered); otherwise the device capacity.
    pub fn impl_capacity(&self) -> ResourceVec {
        match &self.platform {
            Some(p) => p.min_fabric_capacity(),
            None => self.device.max_res,
        }
    }

    /// The paper's evaluation platform: ZedBoard (dual Cortex-A9 + XC7Z020)
    /// with the raw 400 MB/s ICAP throughput from the datasheet.
    pub fn zedboard() -> Self {
        Architecture::new(2, Device::xc7z020())
    }

    /// The ZedBoard at the *effective* configuration throughput of a real
    /// partial-reconfiguration runtime: 50 MB/s (400 bits per µs-tick).
    /// Raw ICAP bandwidth is 400 MB/s, but practical PR managers move
    /// bitstreams through DMA/driver paths that sustain tens of MB/s; this
    /// is the operating point where reconfiguration overhead genuinely
    /// competes with task execution (the paper's §I premise) and the one
    /// the benchmark suite uses.
    pub fn zedboard_pr() -> Self {
        let mut device = Device::xc7z020();
        device.rec_freq = 400;
        Architecture::new(2, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zedboard_shape() {
        let a = Architecture::zedboard();
        assert_eq!(a.num_processors, 2);
        assert_eq!(a.device.name, "xc7z020");
        assert_eq!(a.num_fabrics(), 1);
        assert_eq!(a.crossing_latency(), 0);
        assert_eq!(a.fabric(0), &a.device);
        assert_eq!(a.impl_capacity(), a.device.max_res);
    }

    #[test]
    fn single_fabric_platform_matches_bare_device() {
        let bare = Architecture::zedboard();
        let wrapped = Architecture::on_platform(2, Platform::single(Device::xc7z020()));
        // The relaxation of a 1-fabric platform is the fabric itself.
        assert_eq!(wrapped.device, bare.device);
        assert_eq!(wrapped.num_fabrics(), 1);
        assert_eq!(wrapped.fabric(0), &bare.device);
        assert_eq!(wrapped.crossing_latency(), 0);
        assert_eq!(wrapped.impl_capacity(), bare.device.max_res);
    }

    #[test]
    fn multi_fabric_accessors() {
        let a = Architecture::on_platform(2, Platform::dual_zedboard());
        assert_eq!(a.num_fabrics(), 2);
        assert_eq!(a.crossing_latency(), 50);
        assert_eq!(
            a.device.max_res,
            Platform::dual_zedboard().total_resources()
        );
        assert_eq!(a.impl_capacity(), a.fabric(0).max_res);
    }

    #[test]
    fn missing_platform_field_deserializes_to_none() {
        // An instance serialized before the platform field existed: strip
        // the trailing `"platform":null` from a compact serialization.
        let json = serde_json::to_string(&Architecture::zedboard()).unwrap();
        let legacy = json.replace(",\"platform\":null", "");
        assert_ne!(json, legacy, "expected to strip the platform field");
        let a: Architecture = serde_json::from_str(&legacy).unwrap();
        assert!(a.platform.is_none());
        assert_eq!(a, Architecture::zedboard());
    }
}
