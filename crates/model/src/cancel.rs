//! Cooperative cancellation and deadline budgets.
//!
//! Every long-running search in the workspace (the PA restart loop, PA-R
//! iteration loops, the exact floorplanner, the IS-k branch-and-bound) polls a
//! [`CancelToken`] at its checkpoints. A token fires when one of four things
//! happens:
//!
//! * somebody called [`CancelToken::cancel`] (e.g. a portfolio race locking a
//!   winner),
//! * its monotonic deadline passed,
//! * its injectable [`FakeClock`] passed the fake deadline (tests),
//! * the Nth poll was reached ([`CancelToken::fire_on_poll`], the test double
//!   used by the cancellation-sweep harness),
//!
//! or when the token's *parent* fired — child tokens created with
//! [`CancelToken::child`] / [`CancelToken::with_budget`] let an inner search
//! carry its own (shorter) budget while still honouring the caller's
//! deadline. Polls are counted per token (parent checks do not count against
//! the parent), so traces can report exactly how many cancellation points a
//! run crossed and how many of them observed the fired state.
//!
//! The token lives in `prfpga-model` so that leaf crates (the floorplanner,
//! the baselines) can accept one without depending on the scheduler crate;
//! `prfpga-sched` re-exports it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A manually-advanced monotonic clock for deterministic deadline tests.
///
/// Cloning shares the underlying clock: advancing any clone advances all of
/// them, exactly like wall time does for real deadlines.
#[derive(Clone, Debug, Default)]
pub struct FakeClock(Arc<AtomicU64>);

impl FakeClock {
    /// A new clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current fake time since the clock's epoch.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.0.load(Ordering::Acquire))
    }

    /// Advance the clock by `delta`. Monotonic: time never goes backwards.
    pub fn advance(&self, delta: Duration) {
        let nanos = u64::try_from(delta.as_nanos()).unwrap_or(u64::MAX);
        self.0.fetch_add(nanos, Ordering::AcqRel);
    }
}

/// How a token's deadline is measured.
#[derive(Clone, Debug)]
enum DeadlineSpec {
    /// Fires once `Instant::now()` reaches the instant.
    Real(Instant),
    /// Fires once the injected [`FakeClock`] reaches `at`.
    Fake { clock: FakeClock, at: Duration },
}

impl DeadlineSpec {
    fn passed(&self) -> bool {
        match self {
            DeadlineSpec::Real(at) => Instant::now() >= *at,
            DeadlineSpec::Fake { clock, at } => clock.now() >= *at,
        }
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    polls: AtomicU64,
    hits: AtomicU64,
    /// 1-based poll index at which the token fires on its own; 0 disables.
    fire_at_poll: u64,
    deadline: Option<DeadlineSpec>,
    parent: Option<CancelToken>,
}

/// Cooperative cancellation token: atomic flag + optional monotonic deadline.
///
/// Cheap to clone (an `Arc`); every clone shares the same flag and counters.
/// Searches call [`is_cancelled`](Self::is_cancelled) at their checkpoints and
/// unwind cleanly — rewinding their workspace — when it returns `true`.
#[derive(Clone, Debug)]
pub struct CancelToken(Arc<Inner>);

impl Default for CancelToken {
    fn default() -> Self {
        Self::never()
    }
}

impl CancelToken {
    fn build(
        fire_at_poll: u64,
        deadline: Option<DeadlineSpec>,
        parent: Option<CancelToken>,
    ) -> Self {
        CancelToken(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            polls: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            fire_at_poll,
            deadline,
            parent,
        }))
    }

    /// A token that never fires on its own (it can still be
    /// [`cancel`](Self::cancel)led explicitly).
    pub fn never() -> Self {
        Self::build(0, None, None)
    }

    /// A token whose deadline is `budget` from now (wall clock).
    pub fn after(budget: Duration) -> Self {
        Self::build(0, Some(DeadlineSpec::Real(Instant::now() + budget)), None)
    }

    /// A token firing at the given wall-clock instant.
    pub fn at(deadline: Instant) -> Self {
        Self::build(0, Some(DeadlineSpec::Real(deadline)), None)
    }

    /// A token firing once `clock` reaches `at` — deterministic deadline
    /// behaviour for tests.
    pub fn fake(clock: &FakeClock, at: Duration) -> Self {
        Self::build(
            0,
            Some(DeadlineSpec::Fake {
                clock: clock.clone(),
                at,
            }),
            None,
        )
    }

    /// Test double: fires on the `n`-th call to
    /// [`is_cancelled`](Self::is_cancelled) (1-based) and stays fired.
    ///
    /// `n = 0` is clamped to 1 (fires on the first poll).
    pub fn fire_on_poll(n: u64) -> Self {
        Self::build(n.max(1), None, None)
    }

    /// A child token with no budget of its own: it fires exactly when `self`
    /// fires, but keeps separate poll counters. Parent checks do not count as
    /// parent polls.
    pub fn child(&self) -> Self {
        Self::build(0, None, Some(self.clone()))
    }

    /// A child token that additionally carries its own wall-clock budget of
    /// `budget` from now — whichever of the two deadlines comes first wins.
    ///
    /// This is how the floorplanner's per-call `time_limit` is layered under
    /// a scheduler-level deadline.
    pub fn with_budget(&self, budget: Duration) -> Self {
        Self::build(
            0,
            Some(DeadlineSpec::Real(Instant::now() + budget)),
            Some(self.clone()),
        )
    }

    /// Latch the token into the fired state.
    pub fn cancel(&self) {
        self.0.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has fired, *without* counting a poll. Used for
    /// parent checks and cheap peeks outside the counted checkpoints.
    pub fn fired(&self) -> bool {
        self.fired_at(self.0.polls.load(Ordering::Acquire))
    }

    fn fired_at(&self, poll_index: u64) -> bool {
        if self.0.cancelled.load(Ordering::Acquire) {
            return true;
        }
        let fired = (self.0.fire_at_poll != 0 && poll_index >= self.0.fire_at_poll)
            || self.0.deadline.as_ref().is_some_and(|d| d.passed())
            || self.0.parent.as_ref().is_some_and(|p| p.fired());
        if fired {
            // Latch: deadlines are monotonic and poll counts only grow, so
            // once fired the token stays fired; the flag makes later checks
            // cheap and makes `fired()` stable even for poll-based doubles.
            self.0.cancelled.store(true, Ordering::Release);
        }
        fired
    }

    /// The cancellation checkpoint. Increments the poll counter, then reports
    /// whether the token has fired; a `true` result is also counted as a
    /// deadline *hit*. Callers must unwind cleanly on `true`.
    pub fn is_cancelled(&self) -> bool {
        let poll_index = self.0.polls.fetch_add(1, Ordering::AcqRel) + 1;
        let fired = self.fired_at(poll_index);
        if fired {
            self.0.hits.fetch_add(1, Ordering::AcqRel);
        }
        fired
    }

    /// Number of [`is_cancelled`](Self::is_cancelled) checkpoints crossed.
    pub fn polls(&self) -> u64 {
        self.0.polls.load(Ordering::Acquire)
    }

    /// Number of checkpoints that observed the fired state.
    pub fn deadline_hits(&self) -> u64 {
        self.0.hits.load(Ordering::Acquire)
    }
}

/// Declarative latency budget for a scheduling call.
///
/// `Budget` is the configuration-level view ("this call may take 50 ms");
/// [`Budget::token`] mints the runtime [`CancelToken`] that enforces it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock budget for the call; `None` means unbounded.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// No deadline: the minted token never fires on its own.
    pub fn unbounded() -> Self {
        Self { deadline: None }
    }

    /// A wall-clock budget of `deadline` from the moment the token is minted.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            deadline: Some(deadline),
        }
    }

    /// Convenience constructor mirroring the CLI `--deadline-ms` flag.
    pub fn deadline_ms(ms: u64) -> Self {
        Self::with_deadline(Duration::from_millis(ms))
    }

    /// Mint the enforcing token, starting the clock now.
    pub fn token(&self) -> CancelToken {
        match self.deadline {
            Some(d) => CancelToken::after(d),
            None => CancelToken::never(),
        }
    }

    /// Mint a token measured against an injected [`FakeClock`] instead of
    /// wall time (tests).
    pub fn token_on(&self, clock: &FakeClock) -> CancelToken {
        match self.deadline {
            Some(d) => CancelToken::fake(clock, clock.now() + d),
            None => CancelToken::never(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_fires_but_counts_polls() {
        let t = CancelToken::never();
        for _ in 0..5 {
            assert!(!t.is_cancelled());
        }
        assert_eq!(t.polls(), 5);
        assert_eq!(t.deadline_hits(), 0);
        assert!(!t.fired());
    }

    #[test]
    fn explicit_cancel_latches() {
        let t = CancelToken::never();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        assert!(t.fired());
        assert!(t.is_cancelled());
        assert!(t.is_cancelled());
        assert_eq!(t.polls(), 3);
        assert_eq!(t.deadline_hits(), 2);
    }

    #[test]
    fn fire_on_nth_poll() {
        let t = CancelToken::fire_on_poll(3);
        assert!(!t.is_cancelled());
        assert!(!t.is_cancelled());
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "stays fired after the Nth poll");
        assert_eq!(t.polls(), 4);
        assert_eq!(t.deadline_hits(), 2);
    }

    #[test]
    fn fire_on_poll_zero_clamps_to_first() {
        let t = CancelToken::fire_on_poll(0);
        assert!(t.is_cancelled());
    }

    #[test]
    fn fake_clock_deadline_is_deterministic() {
        let clock = FakeClock::new();
        let t = CancelToken::fake(&clock, Duration::from_millis(10));
        assert!(!t.is_cancelled());
        clock.advance(Duration::from_millis(9));
        assert!(!t.is_cancelled());
        clock.advance(Duration::from_millis(1));
        assert!(t.is_cancelled());
        // Fired state latches even though fake clocks could not rewind anyway.
        assert!(t.fired());
    }

    #[test]
    fn child_fires_with_parent_without_counting_parent_polls() {
        let parent = CancelToken::never();
        let child = parent.child();
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert_eq!(child.polls(), 2);
        assert_eq!(child.deadline_hits(), 1);
        assert_eq!(parent.polls(), 0, "parent checks use fired(), not polls");
    }

    #[test]
    fn with_budget_layers_inner_deadline_under_parent() {
        let clock = FakeClock::new();
        let parent = CancelToken::fake(&clock, Duration::from_millis(5));
        // Inner budget is effectively infinite; the parent fires first.
        let inner = parent.with_budget(Duration::from_secs(3600));
        assert!(!inner.is_cancelled());
        clock.advance(Duration::from_millis(5));
        assert!(inner.is_cancelled());
    }

    #[test]
    fn budget_minting() {
        assert!(!Budget::unbounded().token().fired());
        assert_eq!(
            Budget::deadline_ms(50),
            Budget::with_deadline(Duration::from_millis(50))
        );
        let clock = FakeClock::new();
        let t = Budget::deadline_ms(1).token_on(&clock);
        assert!(!t.fired());
        clock.advance(Duration::from_millis(1));
        assert!(t.fired());
    }
}
