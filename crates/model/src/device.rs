//! Partially-reconfigurable FPGA device descriptions.
//!
//! A [`Device`] carries everything the schedulers and the floorplanner need
//! to know about the target fabric:
//!
//! * per-kind resource capacities (`maxRes_r`),
//! * the bitstream cost model: average bits needed to configure one unit of
//!   each resource kind (`bit_r`, paper eq. 1) and the reconfiguration port
//!   throughput (`recFreq`, paper eq. 2),
//! * a column-based [`FabricGeometry`] used by the floorplanner to decide
//!   whether a set of reconfigurable regions admits a feasible placement.
//!
//! The catalog constructors ([`Device::xc7z020`] etc.) approximate real
//! single-die Xilinx 7-series parts; multi-fabric targets (SLR-style parts,
//! multi-FPGA boards) live in the platform catalog —
//! [`Platform::alveo_u250`](crate::platform::Platform::alveo_u250) and
//! [`Platform::dual_zedboard`](crate::platform::Platform::dual_zedboard) —
//! where a `Device` describes one fabric. Bit costs are derived from the
//! 7-series frame structure (101 words x 32 bits per frame) and the frame
//! counts per column reported by Vipin & Fahmy (ARC 2012, paper ref.
//! \[14\]); they are estimates, which is all eq. 1 requires.

use serde::{Deserialize, Serialize};

use crate::resources::{ResourceKind, ResourceVec};
use crate::time::Time;

/// Bits in one 7-series configuration frame: 101 words x 32 bits.
pub const FRAME_BITS: u64 = 101 * 32;

/// The kind of resource column in a column-based fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FabricColumn {
    /// A column of CLBs (50 per clock-region row in 7-series).
    Clb,
    /// A column of BRAM36 blocks (10 per clock-region row).
    Bram,
    /// A column of DSP48 slices (20 per clock-region row).
    Dsp,
}

impl FabricColumn {
    /// Resource kind provided by this column.
    pub const fn kind(self) -> ResourceKind {
        match self {
            FabricColumn::Clb => ResourceKind::Clb,
            FabricColumn::Bram => ResourceKind::Bram,
            FabricColumn::Dsp => ResourceKind::Dsp,
        }
    }

    /// Resource units in one clock-region-high segment of this column
    /// (7-series figures: 50 CLBs, 10 BRAM36, 20 DSP48).
    pub const fn units_per_row(self) -> u64 {
        match self {
            FabricColumn::Clb => 50,
            FabricColumn::Bram => 10,
            FabricColumn::Dsp => 20,
        }
    }
}

/// Column-based fabric geometry: the device is a grid of `rows` clock-region
/// rows by `columns.len()` resource columns. Reconfigurable regions are
/// rectangles of whole column segments, as required by 7-series partial
/// reconfiguration rules (regions snap to clock-region rows).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricGeometry {
    /// Left-to-right column kinds.
    pub columns: Vec<FabricColumn>,
    /// Number of clock-region rows.
    pub rows: u32,
}

impl FabricGeometry {
    /// Builds a geometry from a repeating column pattern.
    pub fn from_pattern(pattern: &[FabricColumn], repeats: usize, rows: u32) -> Self {
        let mut columns = Vec::with_capacity(pattern.len() * repeats);
        for _ in 0..repeats {
            columns.extend_from_slice(pattern);
        }
        FabricGeometry { columns, rows }
    }

    /// Total resources provided by the whole grid.
    pub fn total_resources(&self) -> ResourceVec {
        let mut total = ResourceVec::ZERO;
        for col in &self.columns {
            total[col.kind()] += col.units_per_row() * self.rows as u64;
        }
        total
    }

    /// Resources provided by the rectangle spanning columns
    /// `[col_start, col_end)` on `height` rows.
    pub fn rect_resources(&self, col_start: usize, col_end: usize, height: u32) -> ResourceVec {
        let mut total = ResourceVec::ZERO;
        for col in &self.columns[col_start..col_end] {
            total[col.kind()] += col.units_per_row() * height as u64;
        }
        total
    }
}

/// A partially-reconfigurable FPGA device.
///
/// ```
/// use prfpga_model::{Device, ResourceVec};
///
/// let zynq = Device::xc7z020();
/// // Reconfiguring a 600-CLB region moves a ~1.4 Mb bitstream (eq. 1-2).
/// let region = ResourceVec::new(600, 0, 0);
/// let bits = zynq.bitstream_bits(&region);
/// assert_eq!(zynq.reconf_time(&region), bits.div_ceil(zynq.rec_freq));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Human-readable part name.
    pub name: String,
    /// Per-kind resource capacity (`maxRes_r`).
    pub max_res: ResourceVec,
    /// Average bits to configure one unit of each resource kind (`bit_r`).
    pub bits_per_unit: [u64; crate::resources::NUM_RESOURCE_KINDS],
    /// Reconfiguration throughput in bits per tick (`recFreq`). With ticks
    /// read as microseconds, the 7-series ICAP at 100 MHz x 32 bit moves
    /// 3200 bits per tick.
    pub rec_freq: u64,
    /// Fabric geometry for floorplanning; `None` disables floorplanning
    /// (every region set is considered placeable), which is useful for unit
    /// tests that target the scheduler in isolation.
    pub geometry: Option<FabricGeometry>,
}

impl Device {
    /// Bitstream size in bits of a region requiring `res` resources
    /// (paper eq. 1: `bit_s = sum_r res_{s,r} * bit_r`).
    #[inline]
    pub fn bitstream_bits(&self, res: &ResourceVec) -> u64 {
        res.0
            .iter()
            .zip(self.bits_per_unit.iter())
            .map(|(&n, &b)| n * b)
            .sum()
    }

    /// Reconfiguration time in ticks of a region requiring `res` resources
    /// (paper eq. 2: `reconf_s = bit_s / recFreq`), rounded up; a non-empty
    /// region always costs at least one tick.
    #[inline]
    pub fn reconf_time(&self, res: &ResourceVec) -> Time {
        let bits = self.bitstream_bits(res);
        if bits == 0 {
            0
        } else {
            bits.div_ceil(self.rec_freq).max(1)
        }
    }

    /// Returns a copy of this device with capacities scaled by `num/den`
    /// (used by the feasibility-check restart loop, paper §V-H).
    pub fn with_scaled_capacity(&self, num: u64, den: u64) -> Device {
        let mut d = self.clone();
        d.scale_capacity_in_place(num, den);
        d
    }

    /// [`Device::with_scaled_capacity`] without the clone: scales `maxRes`
    /// in place, leaving name/geometry untouched. The scheduler restart
    /// loops ratchet one owned device down with this instead of cloning a
    /// fresh device (and its geometry) per attempt.
    #[inline]
    pub fn scale_capacity_in_place(&mut self, num: u64, den: u64) {
        self.max_res = self.max_res.scale_frac_floor(num, den);
    }

    /// 7-series per-unit bit costs derived from frame counts per column:
    /// a CLB column (50 CLBs) takes 36 frames, a BRAM column (10 BRAM36)
    /// takes 28 interconnect frames, a DSP column (20 DSP48) takes 28 frames.
    pub const fn series7_bits_per_unit() -> [u64; 3] {
        [
            36 * FRAME_BITS / 50, // ~2327 bits per CLB
            28 * FRAME_BITS / 10, // ~9049 bits per BRAM36
            28 * FRAME_BITS / 20, // ~4524 bits per DSP48
        ]
    }

    /// Builds a device whose schedulable capacity (`maxRes_r`) equals
    /// exactly what its grid provides, so "fits the capacity" and "can be
    /// floorplanned at 100% fill" talk about the same budget.
    fn from_geometry(name: &str, geometry: FabricGeometry) -> Device {
        let max_res = geometry.total_resources();
        Device {
            name: name.to_string(),
            max_res,
            bits_per_unit: Self::series7_bits_per_unit(),
            rec_freq: 3200,
            geometry: Some(geometry),
        }
    }

    /// Zynq XC7Z020 (ZedBoard), the paper's evaluation target. The grid
    /// approximates the official part (13 300 CLB slice-pairs, 140 BRAM36,
    /// 220 DSP48E1) at column granularity over 3 clock-region rows:
    /// 88 CLB + 5 BRAM + 4 DSP columns → 13 200 CLB, 150 BRAM, 240 DSP.
    /// BRAM and DSP columns sit adjacent in pairs, as on real 7-series
    /// dies, so mixed-resource regions stay narrow. ICAP at 400 MB/s
    /// (3 200 bits per µs-tick).
    pub fn xc7z020() -> Device {
        // 5 special groups spread through 88 CLB columns: 4 adjacent
        // (BRAM, DSP) pairs plus one lone BRAM column.
        let mut columns = Vec::with_capacity(97);
        let clb_runs = [18usize, 18, 17, 18, 17];
        let special: [&[FabricColumn]; 5] = [
            &[FabricColumn::Bram, FabricColumn::Dsp],
            &[FabricColumn::Bram, FabricColumn::Dsp],
            &[FabricColumn::Bram],
            &[FabricColumn::Bram, FabricColumn::Dsp],
            &[FabricColumn::Bram, FabricColumn::Dsp],
        ];
        for (run, sp) in clb_runs.iter().zip(special.iter()) {
            columns.extend(std::iter::repeat_n(FabricColumn::Clb, *run));
            columns.extend(sp.iter().copied());
        }
        Device::from_geometry("xc7z020", FabricGeometry { columns, rows: 3 })
    }

    /// Zynq XC7Z045: a larger part (official: 54 650 CLBs, 545 BRAM36,
    /// 900 DSP48; grid approximation 54 600 / 560 / 840 over 7 rows).
    pub fn xc7z045() -> Device {
        // 6 adjacent (BRAM, DSP) pairs plus 2 lone BRAM columns spread
        // through 156 CLB columns, 7 rows.
        let mut columns = Vec::new();
        for i in 0..6 {
            columns.extend(std::iter::repeat_n(FabricColumn::Clb, 20));
            columns.push(FabricColumn::Bram);
            columns.push(FabricColumn::Dsp);
            if i % 3 == 1 {
                columns.push(FabricColumn::Bram);
            }
        }
        columns.extend(std::iter::repeat_n(FabricColumn::Clb, 36));
        Device::from_geometry("xc7z045", FabricGeometry { columns, rows: 7 })
    }

    /// Zynq XC7Z010: the smallest Zynq (official: 4 400 CLBs, 60 BRAM36,
    /// 80 DSP48; grid approximation 4 400 / 60 / 80 over 2 rows).
    pub fn xc7z010() -> Device {
        let mut columns = Vec::new();
        let clb_runs = [15usize, 15, 14];
        let special: [&[FabricColumn]; 3] = [
            &[FabricColumn::Bram, FabricColumn::Dsp],
            &[FabricColumn::Bram, FabricColumn::Dsp],
            &[FabricColumn::Bram],
        ];
        for (run, sp) in clb_runs.iter().zip(special.iter()) {
            columns.extend(std::iter::repeat_n(FabricColumn::Clb, *run));
            columns.extend(sp.iter().copied());
        }
        Device::from_geometry("xc7z010", FabricGeometry { columns, rows: 2 })
    }

    /// A tiny synthetic device for unit tests: trivially small capacities,
    /// unit bit costs, no geometry (floorplanning always succeeds).
    pub fn tiny_test(max_res: ResourceVec, rec_freq: u64) -> Device {
        Device {
            name: "tiny-test".to_string(),
            max_res,
            bits_per_unit: [1, 1, 1],
            rec_freq,
            geometry: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitstream_and_reconf_time() {
        let d = Device::tiny_test(ResourceVec::new(100, 10, 10), 10);
        let res = ResourceVec::new(25, 0, 0);
        assert_eq!(d.bitstream_bits(&res), 25);
        assert_eq!(d.reconf_time(&res), 3, "ceil(25/10) = 3");
        assert_eq!(d.reconf_time(&ResourceVec::ZERO), 0);
        // Sub-tick bitstreams still cost a tick.
        assert_eq!(d.reconf_time(&ResourceVec::new(1, 0, 0)), 1);
    }

    #[test]
    fn series7_bit_costs_are_sane() {
        let [clb, bram, dsp] = Device::series7_bits_per_unit();
        assert!(clb > 2000 && clb < 2700, "CLB ~2327 bits, got {clb}");
        assert!(bram > 8500 && bram < 9500, "BRAM ~9049 bits, got {bram}");
        assert!(dsp > 4200 && dsp < 4800, "DSP ~4524 bits, got {dsp}");
    }

    #[test]
    fn catalog_capacity_equals_grid() {
        for d in [Device::xc7z010(), Device::xc7z020(), Device::xc7z045()] {
            let geom = d.geometry.as_ref().unwrap();
            assert_eq!(
                d.max_res,
                geom.total_resources(),
                "{}: capacity must equal the grid total",
                d.name
            );
        }
        // Grid approximations stay within ~10% of the official numbers.
        let d20 = Device::xc7z020();
        assert_eq!(d20.max_res, ResourceVec::new(13_200, 150, 240));
        assert_eq!(Device::xc7z010().max_res, ResourceVec::new(4_400, 60, 80));
        assert_eq!(
            Device::xc7z045().max_res,
            ResourceVec::new(54_600, 560, 840)
        );
    }

    #[test]
    fn geometry_rect_resources() {
        let geom = FabricGeometry::from_pattern(
            &[FabricColumn::Clb, FabricColumn::Bram, FabricColumn::Dsp],
            2,
            3,
        );
        assert_eq!(geom.columns.len(), 6);
        let all = geom.total_resources();
        assert_eq!(all, ResourceVec::new(2 * 50 * 3, 2 * 10 * 3, 2 * 20 * 3));
        let rect = geom.rect_resources(0, 2, 1);
        assert_eq!(rect, ResourceVec::new(50, 10, 0));
        let empty = geom.rect_resources(3, 3, 3);
        assert_eq!(empty, ResourceVec::ZERO);
    }

    #[test]
    fn scaled_capacity() {
        let d = Device::xc7z020();
        let s = d.with_scaled_capacity(9, 10);
        assert_eq!(s.max_res, ResourceVec::new(11_880, 135, 216));
        assert_eq!(s.name, d.name);
    }

    #[test]
    fn reconf_time_of_real_region() {
        let d = Device::xc7z020();
        // A region of 600 CLBs, 10 BRAMs, 20 DSPs: ~1.58 Mb -> ~494 us.
        let res = ResourceVec::new(600, 10, 20);
        let t = d.reconf_time(&res);
        assert!(t > 400 && t < 600, "expected ~494 ticks, got {t}");
    }
}
