//! Model-level error types.

use std::fmt;

/// Errors raised while building or loading problem descriptions.
#[derive(Debug)]
pub enum ModelError {
    /// An edge references a task index outside the graph.
    DanglingEdge {
        /// Source task index of the offending edge.
        from: u32,
        /// Destination task index of the offending edge.
        to: u32,
    },
    /// The dependency arcs form a cycle.
    Cycle,
    /// A task depends on itself.
    SelfLoop {
        /// The offending task index.
        task: u32,
    },
    /// A task has an empty implementation set (§III requires at least one
    /// software implementation per task).
    NoImplementations {
        /// The offending task index.
        task: u32,
    },
    /// A task references an implementation id missing from the pool.
    UnknownImplementation {
        /// The offending task index.
        task: u32,
        /// The unresolved implementation id.
        impl_id: u32,
    },
    /// A task has no software implementation, violating §III's standing
    /// assumption that every task can fall back to software.
    NoSoftwareImplementation {
        /// The offending task index.
        task: u32,
    },
    /// A hardware implementation exceeds the device capacity on some axis
    /// and could therefore never be placed.
    ImplementationTooLarge {
        /// The offending task index.
        task: u32,
        /// The unplaceable implementation id.
        impl_id: u32,
    },
    /// The architecture has no processor cores, so software tasks cannot run.
    NoProcessors,
    /// Instance deserialization failed.
    Parse(String),
    /// Instance I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DanglingEdge { from, to } => {
                write!(f, "edge ({from} -> {to}) references a missing task")
            }
            ModelError::Cycle => write!(f, "dependency arcs form a cycle"),
            ModelError::SelfLoop { task } => write!(f, "task {task} depends on itself"),
            ModelError::NoImplementations { task } => {
                write!(f, "task {task} has no implementations")
            }
            ModelError::UnknownImplementation { task, impl_id } => {
                write!(f, "task {task} references unknown implementation {impl_id}")
            }
            ModelError::NoSoftwareImplementation { task } => {
                write!(f, "task {task} has no software implementation")
            }
            ModelError::ImplementationTooLarge { task, impl_id } => write!(
                f,
                "hardware implementation {impl_id} of task {task} exceeds device capacity"
            ),
            ModelError::NoProcessors => write!(f, "architecture has no processor cores"),
            ModelError::Parse(msg) => write!(f, "instance parse error: {msg}"),
            ModelError::Io(e) => write!(f, "instance I/O error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::DanglingEdge { from: 1, to: 9 };
        assert!(e.to_string().contains("1 -> 9"));
        let e = ModelError::NoProcessors;
        assert!(e.to_string().contains("no processor"));
        let e = ModelError::Parse("bad json".into());
        assert!(e.to_string().contains("bad json"));
    }
}
