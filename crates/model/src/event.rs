//! Runtime schedule events — the vocabulary of online rescheduling.
//!
//! The paper schedules a fixed task graph once, offline. A deployed
//! PR-FPGA system then watches that schedule meet reality: tasks finish
//! earlier or later than planned, get cancelled, have their estimates
//! revised, or arrive after the fact. [`ScheduleEvent`] is the shared
//! description of those perturbations; `prfpga-gen` synthesizes seeded
//! [`EventTrace`]s from a baseline schedule and `prfpga-sched`'s repair
//! engine consumes them one by one.
//!
//! The type lives here (not in the scheduler crate) so the generator, the
//! CLI's `replay` subcommand and the benches can all speak it without
//! depending on scheduler internals.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::taskgraph::TaskId;
use crate::time::Time;

/// One runtime perturbation of a committed schedule, in the order the
/// system observes them.
///
/// Serialized with the workspace's externally-tagged convention —
/// `{"Finish": {"task": 3, "actual": 120}}` — via hand-written impls (the
/// vendored serde derive does not cover struct variants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleEvent {
    /// Task `task` completed at tick `actual` (its committed start stands;
    /// the actual execution took `actual - start` ticks, which may be
    /// shorter or longer than planned).
    Finish {
        /// The finishing task.
        task: TaskId,
        /// Observed completion tick.
        actual: Time,
    },
    /// The execution-time estimate of a not-yet-started task changed
    /// (profiling feedback, input-dependent workload).
    DurationRevised {
        /// The revised task.
        task: TaskId,
        /// New execution time in ticks for the chosen implementation.
        duration: Time,
    },
    /// A not-yet-started task was cancelled: it consumes no further time,
    /// but its dependents still wait for its (now trivial) completion.
    Cancel {
        /// The cancelled task.
        task: TaskId,
    },
    /// A new task arrived at runtime with one software implementation and
    /// data dependencies on already-known tasks.
    Arrive {
        /// Debug/report label for the new task.
        name: String,
        /// Software execution time of the new task in ticks.
        sw_time: Time,
        /// Tasks whose output the new task consumes.
        deps: Vec<TaskId>,
    },
}

impl Serialize for ScheduleEvent {
    fn to_value(&self) -> serde::value::Value {
        use serde::value::{Map, Value};
        let mut inner = Map::new();
        let tag = match self {
            ScheduleEvent::Finish { task, actual } => {
                inner.insert("task", task.to_value());
                inner.insert("actual", actual.to_value());
                "Finish"
            }
            ScheduleEvent::DurationRevised { task, duration } => {
                inner.insert("task", task.to_value());
                inner.insert("duration", duration.to_value());
                "DurationRevised"
            }
            ScheduleEvent::Cancel { task } => {
                inner.insert("task", task.to_value());
                "Cancel"
            }
            ScheduleEvent::Arrive {
                name,
                sw_time,
                deps,
            } => {
                inner.insert("name", name.to_value());
                inner.insert("sw_time", sw_time.to_value());
                inner.insert("deps", deps.to_value());
                "Arrive"
            }
        };
        let mut map = Map::new();
        map.insert(tag, Value::Object(inner));
        Value::Object(map)
    }
}

impl Deserialize for ScheduleEvent {
    fn from_value(value: &serde::value::Value) -> Result<Self, serde::de::Error> {
        use serde::de::Error;
        use serde::value::Value;
        let Value::Object(map) = value else {
            return Err(Error::expected("object", "ScheduleEvent", value));
        };
        let mut tags = map.iter();
        let (Some((tag, payload)), None) = (tags.next(), tags.next()) else {
            return Err(Error::new("expected a single-variant `ScheduleEvent` tag"));
        };
        let field = |name: &str| -> Result<&Value, Error> {
            let Value::Object(inner) = payload else {
                return Err(Error::expected("object payload", "ScheduleEvent", payload));
            };
            inner
                .get(name)
                .ok_or_else(|| Error::missing_field(name, "ScheduleEvent"))
        };
        match tag.as_str() {
            "Finish" => Ok(ScheduleEvent::Finish {
                task: TaskId::from_value(field("task")?)?,
                actual: Time::from_value(field("actual")?)?,
            }),
            "DurationRevised" => Ok(ScheduleEvent::DurationRevised {
                task: TaskId::from_value(field("task")?)?,
                duration: Time::from_value(field("duration")?)?,
            }),
            "Cancel" => Ok(ScheduleEvent::Cancel {
                task: TaskId::from_value(field("task")?)?,
            }),
            "Arrive" => Ok(ScheduleEvent::Arrive {
                name: String::from_value(field("name")?)?,
                sw_time: Time::from_value(field("sw_time")?)?,
                deps: Vec::<TaskId>::from_value(field("deps")?)?,
            }),
            other => Err(Error::unknown_variant(other, "ScheduleEvent")),
        }
    }
}

impl ScheduleEvent {
    /// The existing task this event perturbs (`None` for arrivals, which
    /// create their task).
    pub fn task(&self) -> Option<TaskId> {
        match *self {
            ScheduleEvent::Finish { task, .. }
            | ScheduleEvent::DurationRevised { task, .. }
            | ScheduleEvent::Cancel { task } => Some(task),
            ScheduleEvent::Arrive { .. } => None,
        }
    }
}

/// An ordered stream of [`ScheduleEvent`]s against one named instance —
/// the on-disk artifact the CLI's `replay` subcommand consumes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventTrace {
    /// Name of the instance the trace was generated against.
    pub instance: String,
    /// Events in observation order.
    pub events: Vec<ScheduleEvent>,
}

impl EventTrace {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization cannot fail")
    }

    /// Deserializes from JSON.
    pub fn from_json(json: &str) -> Result<Self, ModelError> {
        serde_json::from_str(json).map_err(|e| ModelError::Parse(e.to_string()))
    }

    /// Writes the trace as JSON to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Loads a trace from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let json = fs::read_to_string(path)?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips_through_json() {
        let trace = EventTrace {
            instance: "demo".into(),
            events: vec![
                ScheduleEvent::Finish {
                    task: TaskId(3),
                    actual: 120,
                },
                ScheduleEvent::DurationRevised {
                    task: TaskId(5),
                    duration: 40,
                },
                ScheduleEvent::Cancel { task: TaskId(7) },
                ScheduleEvent::Arrive {
                    name: "late".into(),
                    sw_time: 90,
                    deps: vec![TaskId(1), TaskId(2)],
                },
            ],
        };
        let back = EventTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn event_task_accessor() {
        assert_eq!(
            ScheduleEvent::Cancel { task: TaskId(9) }.task(),
            Some(TaskId(9))
        );
        assert_eq!(
            ScheduleEvent::Arrive {
                name: "x".into(),
                sw_time: 1,
                deps: vec![],
            }
            .task(),
            None
        );
    }
}
