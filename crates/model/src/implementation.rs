//! Task implementations: hardware accelerators and software routines.
//!
//! Every task of the application owns a non-empty set of implementations
//! (`I_t = I_t^H ∪ I_t^S`). Implementations live in a shared [`ImplPool`]
//! and are referenced by [`ImplId`]; two tasks that point at the same
//! [`ImplId`] *share* the implementation, which is what enables module reuse
//! in baselines that support it (paper §VII-A).

use serde::{Deserialize, Serialize};

use crate::resources::ResourceVec;
use crate::time::Time;

/// Index of an implementation inside the instance-wide [`ImplPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ImplId(pub u32);

impl ImplId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether an implementation runs on the fabric or on a processor core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImplKind {
    /// Hardware accelerator requiring `res_{i,r}` fabric resources.
    Hardware(ResourceVec),
    /// Software routine on one of the (homogeneous) processor cores.
    Software,
}

/// One realization of a task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Implementation {
    /// Debug/report label (e.g. `"fft_u4"` for an unroll-4 HLS variant).
    pub name: String,
    /// Hardware or software, with resource needs for hardware.
    pub kind: ImplKind,
    /// Execution time in ticks (`time_i`), inclusive of I/O as per §III.
    pub time: Time,
}

impl Implementation {
    /// Convenience constructor for a hardware implementation.
    pub fn hardware(name: impl Into<String>, time: Time, res: ResourceVec) -> Self {
        Implementation {
            name: name.into(),
            kind: ImplKind::Hardware(res),
            time,
        }
    }

    /// Convenience constructor for a software implementation.
    pub fn software(name: impl Into<String>, time: Time) -> Self {
        Implementation {
            name: name.into(),
            kind: ImplKind::Software,
            time,
        }
    }

    /// True for hardware implementations.
    #[inline]
    pub fn is_hardware(&self) -> bool {
        matches!(self.kind, ImplKind::Hardware(_))
    }

    /// True for software implementations.
    #[inline]
    pub fn is_software(&self) -> bool {
        matches!(self.kind, ImplKind::Software)
    }

    /// Fabric resources required, zero for software.
    #[inline]
    pub fn resources(&self) -> ResourceVec {
        match self.kind {
            ImplKind::Hardware(res) => res,
            ImplKind::Software => ResourceVec::ZERO,
        }
    }
}

/// Instance-wide pool of implementations.
///
/// The pool is append-only; [`ImplId`]s are stable for the lifetime of the
/// instance.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImplPool {
    impls: Vec<Implementation>,
}

impl ImplPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an implementation, returning its id.
    pub fn add(&mut self, imp: Implementation) -> ImplId {
        let id = ImplId(u32::try_from(self.impls.len()).expect("too many implementations"));
        self.impls.push(imp);
        id
    }

    /// Looks up an implementation.
    #[inline]
    pub fn get(&self, id: ImplId) -> &Implementation {
        &self.impls[id.index()]
    }

    /// Mutable lookup (e.g. rescaling execution times when deriving a
    /// sibling instance).
    #[inline]
    pub fn get_mut(&mut self, id: ImplId) -> &mut Implementation {
        &mut self.impls[id.index()]
    }

    /// Checked lookup.
    pub fn try_get(&self, id: ImplId) -> Option<&Implementation> {
        self.impls.get(id.index())
    }

    /// Number of pooled implementations.
    pub fn len(&self) -> usize {
        self.impls.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.impls.is_empty()
    }

    /// Iterates `(id, implementation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ImplId, &Implementation)> {
        self.impls
            .iter()
            .enumerate()
            .map(|(i, imp)| (ImplId(i as u32), imp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_ids_are_stable() {
        let mut pool = ImplPool::new();
        let a = pool.add(Implementation::software("sw", 100));
        let b = pool.add(Implementation::hardware(
            "hw",
            10,
            ResourceVec::new(5, 1, 0),
        ));
        assert_eq!(a, ImplId(0));
        assert_eq!(b, ImplId(1));
        assert_eq!(pool.len(), 2);
        assert!(pool.get(a).is_software());
        assert!(pool.get(b).is_hardware());
        assert_eq!(pool.get(b).resources(), ResourceVec::new(5, 1, 0));
        assert_eq!(pool.get(a).resources(), ResourceVec::ZERO);
        assert!(pool.try_get(ImplId(2)).is_none());
    }

    #[test]
    fn iter_matches_ids() {
        let mut pool = ImplPool::new();
        for i in 0..5u64 {
            pool.add(Implementation::software(format!("s{i}"), i + 1));
        }
        for (id, imp) in pool.iter() {
            assert_eq!(imp.time, id.0 as u64 + 1);
        }
    }
}
