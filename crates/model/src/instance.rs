//! Complete problem instances and their (de)serialization.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::architecture::Architecture;
use crate::error::ModelError;
use crate::implementation::{ImplId, ImplPool};
use crate::taskgraph::{TaskGraph, TaskId};

/// A full scheduling problem: architecture + application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemInstance {
    /// Instance label (used in reports).
    pub name: String,
    /// Target SoC.
    pub architecture: Architecture,
    /// Application DAG.
    pub graph: TaskGraph,
    /// Shared implementation pool referenced by the graph's tasks.
    pub impls: ImplPool,
}

impl ProblemInstance {
    /// Builds and validates an instance.
    pub fn new(
        name: impl Into<String>,
        architecture: Architecture,
        graph: TaskGraph,
        impls: ImplPool,
    ) -> Result<Self, ModelError> {
        let inst = ProblemInstance {
            name: name.into(),
            architecture,
            graph,
            impls,
        };
        inst.validate()?;
        Ok(inst)
    }

    /// Full semantic validation:
    /// * structural graph sanity (edge ranges, no self-loops, non-empty
    ///   implementation sets);
    /// * every referenced implementation exists;
    /// * every task has a software fallback (§III);
    /// * no hardware implementation exceeds every fabric's capacity (it
    ///   must fit on at least one fabric; on a single-device target that is
    ///   the device capacity);
    /// * at least one processor core exists.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.architecture.num_processors == 0 {
            return Err(ModelError::NoProcessors);
        }
        self.graph.validate_structure()?;
        let fabrics = self.architecture.fabrics();
        for (ti, task) in self.graph.tasks.iter().enumerate() {
            let mut has_sw = false;
            for &iid in &task.impls {
                let imp = self
                    .impls
                    .try_get(iid)
                    .ok_or(ModelError::UnknownImplementation {
                        task: ti as u32,
                        impl_id: iid.0,
                    })?;
                if imp.is_software() {
                    has_sw = true;
                } else if !fabrics.iter().any(|d| imp.resources().fits_in(&d.max_res)) {
                    return Err(ModelError::ImplementationTooLarge {
                        task: ti as u32,
                        impl_id: iid.0,
                    });
                }
            }
            if !has_sw {
                return Err(ModelError::NoSoftwareImplementation { task: ti as u32 });
            }
        }
        Ok(())
    }

    /// Hardware implementations of a task (`I_t^H`).
    pub fn hw_impls(&self, t: TaskId) -> impl Iterator<Item = ImplId> + '_ {
        self.graph
            .task(t)
            .impls
            .iter()
            .copied()
            .filter(|&i| self.impls.get(i).is_hardware())
    }

    /// Software implementations of a task (`I_t^S`).
    pub fn sw_impls(&self, t: TaskId) -> impl Iterator<Item = ImplId> + '_ {
        self.graph
            .task(t)
            .impls
            .iter()
            .copied()
            .filter(|&i| self.impls.get(i).is_software())
    }

    /// The fastest software implementation of a task; always present in a
    /// validated instance.
    pub fn fastest_sw_impl(&self, t: TaskId) -> ImplId {
        self.sw_impls(t)
            .min_by_key(|&i| (self.impls.get(i).time, i))
            .expect("validated instance has a software implementation per task")
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("instance serialization cannot fail")
    }

    /// Deserializes from JSON, then validates.
    pub fn from_json(json: &str) -> Result<Self, ModelError> {
        let inst: ProblemInstance =
            serde_json::from_str(json).map_err(|e| ModelError::Parse(e.to_string()))?;
        inst.validate()?;
        Ok(inst)
    }

    /// Writes the instance as JSON to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Loads and validates an instance from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let json = fs::read_to_string(path)?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::implementation::Implementation;
    use crate::resources::ResourceVec;

    fn tiny_instance() -> ProblemInstance {
        let mut impls = ImplPool::new();
        let sw_a = impls.add(Implementation::software("a_sw", 100));
        let hw_a = impls.add(Implementation::hardware(
            "a_hw",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let sw_b = impls.add(Implementation::software("b_sw", 80));
        let mut g = TaskGraph::new();
        let a = g.add_task("a", vec![sw_a, hw_a]);
        let b = g.add_task("b", vec![sw_b]);
        g.add_edge(a, b);
        ProblemInstance::new(
            "tiny",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(10, 10, 10), 10)),
            g,
            impls,
        )
        .unwrap()
    }

    #[test]
    fn validates_and_queries() {
        let inst = tiny_instance();
        let a = TaskId(0);
        assert_eq!(inst.hw_impls(a).count(), 1);
        assert_eq!(inst.sw_impls(a).count(), 1);
        assert_eq!(inst.fastest_sw_impl(a), ImplId(0));
    }

    #[test]
    fn json_roundtrip() {
        let inst = tiny_instance();
        let json = inst.to_json();
        let back = ProblemInstance::from_json(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn rejects_missing_sw_impl() {
        let mut impls = ImplPool::new();
        let hw = impls.add(Implementation::hardware(
            "hw",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let mut g = TaskGraph::new();
        g.add_task("a", vec![hw]);
        let err = ProblemInstance::new(
            "bad",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(10, 10, 10), 10)),
            g,
            impls,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ModelError::NoSoftwareImplementation { task: 0 }
        ));
    }

    #[test]
    fn rejects_oversized_hw_impl() {
        let mut impls = ImplPool::new();
        let sw = impls.add(Implementation::software("sw", 10));
        let hw = impls.add(Implementation::hardware(
            "hw",
            1,
            ResourceVec::new(999, 0, 0),
        ));
        let mut g = TaskGraph::new();
        g.add_task("a", vec![sw, hw]);
        let err = ProblemInstance::new(
            "bad",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(10, 10, 10), 10)),
            g,
            impls,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::ImplementationTooLarge { .. }));
    }

    #[test]
    fn rejects_unknown_impl_reference() {
        let mut impls = ImplPool::new();
        impls.add(Implementation::software("sw", 10));
        let mut g = TaskGraph::new();
        g.add_task("a", vec![ImplId(5)]);
        let err = ProblemInstance::new(
            "bad",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(10, 10, 10), 10)),
            g,
            impls,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ModelError::UnknownImplementation { impl_id: 5, .. }
        ));
    }

    #[test]
    fn rejects_zero_processors() {
        let mut impls = ImplPool::new();
        let sw = impls.add(Implementation::software("sw", 10));
        let mut g = TaskGraph::new();
        g.add_task("a", vec![sw]);
        let err = ProblemInstance::new(
            "bad",
            Architecture::new(0, Device::tiny_test(ResourceVec::new(10, 10, 10), 10)),
            g,
            impls,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::NoProcessors));
    }
}
