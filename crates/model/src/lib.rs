//! # prfpga-model
//!
//! Problem model shared by every crate in the `prfpga` workspace.
//!
//! This crate defines the vocabulary of the scheduling problem introduced in
//! *"Resource-Efficient Scheduling for Partially-Reconfigurable FPGA-based
//! Systems"* (Purgato et al., IPDPS-W 2016):
//!
//! * [`ResourceKind`] / [`ResourceVec`] — the heterogeneous reconfigurable
//!   resources of the FPGA fabric (CLB, BRAM, DSP);
//! * [`Device`] — a partially-reconfigurable FPGA device with per-resource
//!   capacities, bitstream cost model and fabric geometry;
//! * [`Platform`] — one or more fabrics (SLRs or separate FPGAs) with an
//!   inter-fabric link cost model; a 1-fabric platform is exactly a
//!   [`Device`];
//! * [`Implementation`] — a hardware or software realization of a task with
//!   an execution time and (for hardware) a resource requirement;
//! * [`TaskGraph`] — the application DAG;
//! * [`Architecture`] / [`ProblemInstance`] — the full scheduling problem;
//! * [`Schedule`] — the output artifact: reconfigurable regions, task
//!   placements, time slots and reconfiguration tasks.
//!
//! All quantities are integral: time is measured in *ticks* (interpreted as
//! microseconds throughout the workspace) and bitstream sizes in bits, so the
//! schedulers are exactly reproducible across platforms.

#![warn(missing_docs)]

pub mod architecture;
pub mod cancel;
pub mod device;
pub mod error;
pub mod event;
pub mod implementation;
pub mod instance;
pub mod platform;
pub mod resources;
pub mod schedule;
pub mod service;
pub mod taskgraph;
pub mod time;

pub use architecture::Architecture;
pub use cancel::{Budget, CancelToken, FakeClock};
pub use device::{Device, FabricColumn, FabricGeometry};
pub use error::ModelError;
pub use event::{EventTrace, ScheduleEvent};
pub use implementation::{ImplId, ImplKind, ImplPool, Implementation};
pub use instance::ProblemInstance;
pub use platform::{FabricId, Platform};
pub use resources::{ResourceKind, ResourceVec, NUM_RESOURCE_KINDS};
pub use schedule::{Placement, Reconfiguration, Region, RegionId, Schedule, TaskAssignment};
pub use service::{
    AlgoChoice, ErrorCode, InstanceSpec, PhaseRow, ScheduleReply, ScheduleRequest, ServiceError,
    ServiceRequest, ServiceResponse, ServiceStats,
};
pub use taskgraph::{EdgeId, TaskGraph, TaskId, TaskNode};
pub use time::{Time, TimeWindow};
