//! Multi-fabric platforms: SLRs of a multi-die part or separate FPGAs.
//!
//! A [`Platform`] generalizes the single-[`Device`] target of the paper to
//! one or more *fabrics*, each a full [`Device`] with its own geometry,
//! per-kind capacities, bitstream cost model and reconfiguration controller.
//! Two deployment styles motivate it (ROADMAP item 4):
//!
//! * **multi-die parts** (e.g. an Alveo U250 with 4 super-logic regions):
//!   each SLR is floorplanned independently and crossings ride the limited
//!   SLL wires, so a region never straddles an SLR boundary;
//! * **multi-FPGA systems** (e.g. two ZedBoards on one backplane): each
//!   board has its own ICAP, and inter-board data movement is far slower
//!   than on-chip wires.
//!
//! Both collapse to the same abstraction: per-fabric capacity and
//! floorplanning, one reconfiguration-controller group per fabric, and a
//! flat latency added to every data edge whose endpoints execute in regions
//! on *different* fabrics ([`Platform::crossing_latency`]). Tasks on
//! processor cores live in a shared host pool and never pay the crossing.
//!
//! A 1-fabric platform is exactly the classic single-device model: every
//! scheduler code path degenerates to the same arithmetic, which
//! `tests/differential.rs` pins byte-for-byte.

use serde::{Deserialize, Serialize};

use crate::device::{Device, FabricColumn, FabricGeometry};
use crate::resources::ResourceVec;
use crate::time::Time;

/// Index of a fabric within a [`Platform`] (dense, `0..num_fabrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FabricId(pub u32);

impl FabricId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A scheduling target made of one or more reconfigurable fabrics plus an
/// inter-fabric link cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Human-readable platform name.
    pub name: String,
    /// The fabrics, indexed by [`FabricId`]. Each carries its own capacity,
    /// geometry, bit costs and reconfiguration throughput; fabric `f` owns
    /// its own group of reconfiguration controllers.
    pub fabrics: Vec<Device>,
    /// Latency in ticks added to a data edge whose endpoints execute in
    /// regions on different fabrics (SLL / board-link crossing). Edges with
    /// a software endpoint never pay it: cores are a shared host pool.
    pub crossing_latency: Time,
}

impl Platform {
    /// Wraps a single device as a 1-fabric platform (zero crossing latency;
    /// with one fabric no edge can ever cross).
    pub fn single(device: Device) -> Self {
        Platform {
            name: device.name.clone(),
            fabrics: vec![device],
            crossing_latency: 0,
        }
    }

    /// Number of fabrics (>= 1 for any usable platform).
    #[inline]
    pub fn num_fabrics(&self) -> usize {
        self.fabrics.len()
    }

    /// The device describing fabric `f`.
    #[inline]
    pub fn fabric(&self, f: FabricId) -> &Device {
        &self.fabrics[f.index()]
    }

    /// Sum of all per-fabric capacities.
    pub fn total_resources(&self) -> ResourceVec {
        self.fabrics.iter().map(|d| d.max_res).sum()
    }

    /// Componentwise minimum over per-fabric capacities: the largest
    /// hardware implementation that fits on *every* fabric. The generator
    /// caps synthetic implementations at this so the partition phase is
    /// never forced into a corner by a module that only fits one fabric.
    pub fn min_fabric_capacity(&self) -> ResourceVec {
        let mut out = self.fabrics.first().map(|d| d.max_res).unwrap_or_default();
        for d in &self.fabrics[1..] {
            for i in 0..crate::resources::NUM_RESOURCE_KINDS {
                out.0[i] = out.0[i].min(d.max_res.0[i]);
            }
        }
        out
    }

    /// The single-fabric relaxation of this platform: for one fabric, that
    /// fabric itself (geometry included, so the relaxed device floorplans
    /// identically); for several, a geometry-free device with the summed
    /// capacity and the first fabric's bitstream cost model. The relaxation
    /// ignores partitioning and crossing latency entirely, so its makespan
    /// lower-bounds what any partitioned schedule can reach — the benchmark
    /// suite uses it as the partition-quality yardstick.
    pub fn relaxation_device(&self) -> Device {
        if self.fabrics.len() == 1 {
            return self.fabrics[0].clone();
        }
        let first = &self.fabrics[0];
        Device {
            name: format!("{}-relaxed", self.name),
            max_res: self.total_resources(),
            bits_per_unit: first.bits_per_unit,
            rec_freq: first.rec_freq,
            geometry: None,
        }
    }

    /// Scales every fabric's capacity by `num/den` in place (the restart
    /// ratchet of paper §V-H, applied fabric-wise in lockstep with the
    /// relaxation device).
    pub fn scale_capacity_in_place(&mut self, num: u64, den: u64) {
        for d in &mut self.fabrics {
            d.scale_capacity_in_place(num, den);
        }
    }

    /// Zeroes every fabric's capacity (the all-software fallback).
    pub fn zero_capacity_in_place(&mut self) {
        for d in &mut self.fabrics {
            d.max_res = ResourceVec::ZERO;
        }
    }

    /// An Alveo-U250-style part: 4 identical SLR-like fabrics, each its own
    /// column grid, with a small crossing latency for the SLL hop. Capacities
    /// are scaled to the workload sizes of the paper's evaluation (each SLR
    /// approximates a mid-range 7-series die, not the full UltraScale+ SLR),
    /// and each SLR is modeled with its own configuration engine so
    /// reconfigurations on different SLRs proceed concurrently.
    pub fn alveo_u250() -> Self {
        let fabrics = (0..4)
            .map(|i| Self::u250_slr(&format!("u250-slr{i}")))
            .collect();
        Platform {
            name: "alveo-u250".to_string(),
            fabrics,
            crossing_latency: 5,
        }
    }

    /// One SLR-like fabric of [`Platform::alveo_u250`]: 6 groups of
    /// 16 CLB columns followed by a (BRAM, DSP) pair, plus 2 lone BRAM
    /// columns, over 4 clock-region rows — 19 200 CLB / 320 BRAM / 480 DSP.
    fn u250_slr(name: &str) -> Device {
        let mut columns = Vec::new();
        for i in 0..6 {
            columns.extend(std::iter::repeat_n(FabricColumn::Clb, 16));
            columns.push(FabricColumn::Bram);
            columns.push(FabricColumn::Dsp);
            if i % 3 == 1 {
                columns.push(FabricColumn::Bram);
            }
        }
        let geometry = FabricGeometry { columns, rows: 4 };
        let max_res = geometry.total_resources();
        Device {
            name: name.to_string(),
            max_res,
            bits_per_unit: Device::series7_bits_per_unit(),
            rec_freq: 3200,
            geometry: Some(geometry),
        }
    }

    /// Two ZedBoards on one backplane, each at the effective 50 MB/s
    /// partial-reconfiguration throughput (see
    /// [`crate::Architecture::zedboard_pr`]), with a board-to-board link
    /// latency dominating the on-chip wires.
    pub fn dual_zedboard() -> Self {
        let fabrics = (0..2)
            .map(|i| {
                let mut d = Device::xc7z020();
                d.name = format!("zedboard-{i}");
                d.rec_freq = 400;
                d
            })
            .collect();
        Platform {
            name: "dual-zedboard".to_string(),
            fabrics,
            crossing_latency: 50,
        }
    }

    /// The multi-fabric platform catalog.
    pub fn catalog() -> Vec<Platform> {
        vec![Platform::alveo_u250(), Platform::dual_zedboard()]
    }

    /// Looks up a platform by name. Multi-fabric catalog names
    /// (`alveo-u250`, `dual-zedboard`, `_` and `-` interchangeable) resolve
    /// to the catalog entries; single-device catalog names (`xc7z010`,
    /// `xc7z020`, `xc7z045`) resolve to 1-fabric wraps.
    pub fn by_name(name: &str) -> Option<Platform> {
        let canon = name.to_ascii_lowercase().replace('_', "-");
        match canon.as_str() {
            "alveo-u250" | "u250" => Some(Platform::alveo_u250()),
            "dual-zedboard" => Some(Platform::dual_zedboard()),
            "xc7z010" => Some(Platform::single(Device::xc7z010())),
            "xc7z020" | "zedboard" => Some(Platform::single(Device::xc7z020())),
            "xc7z045" => Some(Platform::single(Device::xc7z045())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wrap_is_the_device() {
        let p = Platform::single(Device::xc7z020());
        assert_eq!(p.num_fabrics(), 1);
        assert_eq!(p.crossing_latency, 0);
        // The relaxation of a 1-fabric platform is the fabric itself,
        // geometry included — this is what byte-identity rests on.
        assert_eq!(p.relaxation_device(), Device::xc7z020());
        assert_eq!(p.min_fabric_capacity(), Device::xc7z020().max_res);
    }

    #[test]
    fn alveo_u250_shape() {
        let p = Platform::alveo_u250();
        assert_eq!(p.num_fabrics(), 4);
        for d in &p.fabrics {
            assert_eq!(d.max_res, ResourceVec::new(19_200, 320, 480));
            let geom = d.geometry.as_ref().unwrap();
            assert_eq!(d.max_res, geom.total_resources());
        }
        assert_eq!(p.total_resources(), ResourceVec::new(76_800, 1280, 1920));
        assert!(p.crossing_latency > 0);
        // Identical fabrics: the min capacity equals any one fabric.
        assert_eq!(p.min_fabric_capacity(), p.fabrics[0].max_res);
    }

    #[test]
    fn dual_zedboard_shape() {
        let p = Platform::dual_zedboard();
        assert_eq!(p.num_fabrics(), 2);
        assert_eq!(p.fabrics[0].max_res, Device::xc7z020().max_res);
        assert_eq!(p.fabrics[0].rec_freq, 400);
        assert!(p.crossing_latency > Platform::alveo_u250().crossing_latency);
    }

    #[test]
    fn relaxation_of_multi_fabric_sums_capacity() {
        let p = Platform::dual_zedboard();
        let d = p.relaxation_device();
        assert_eq!(d.max_res, p.total_resources());
        assert_eq!(d.rec_freq, 400);
        assert!(d.geometry.is_none());
    }

    #[test]
    fn scaling_tracks_every_fabric() {
        let mut p = Platform::dual_zedboard();
        let before = p.fabrics[0].max_res;
        p.scale_capacity_in_place(85, 100);
        assert_eq!(p.fabrics[0].max_res, before.scale_frac_floor(85, 100));
        assert_eq!(p.fabrics[0].max_res, p.fabrics[1].max_res);
        p.zero_capacity_in_place();
        assert!(p.total_resources().is_zero());
    }

    #[test]
    fn by_name_resolves_catalog_and_devices() {
        assert_eq!(Platform::by_name("alveo_u250").unwrap().num_fabrics(), 4);
        assert_eq!(Platform::by_name("dual-zedboard").unwrap().num_fabrics(), 2);
        let single = Platform::by_name("xc7z020").unwrap();
        assert_eq!(single.num_fabrics(), 1);
        assert_eq!(single.fabrics[0].name, "xc7z020");
        assert!(Platform::by_name("nonesuch").is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let p = Platform::alveo_u250();
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
