//! Heterogeneous reconfigurable resource kinds and resource vectors.
//!
//! The paper's resource set `R` is instantiated, as in its evaluation, with
//! the three kinds of reconfigurable tiles of a Xilinx 7-series fabric:
//! CLBs, BRAM blocks and DSP slices. [`ResourceVec`] is a small fixed-size
//! vector indexed by [`ResourceKind`] used for capacities (`maxRes_r`),
//! requirements (`res_{i,r}`) and region sizes (`res_{s,r}`).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Index, IndexMut, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of distinct reconfigurable resource kinds.
pub const NUM_RESOURCE_KINDS: usize = 3;

/// A kind of reconfigurable resource on the FPGA fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Configurable Logic Block (slice pair).
    Clb,
    /// 36 Kb Block RAM.
    Bram,
    /// DSP48 slice.
    Dsp,
}

impl ResourceKind {
    /// All resource kinds, in index order.
    pub const ALL: [ResourceKind; NUM_RESOURCE_KINDS] =
        [ResourceKind::Clb, ResourceKind::Bram, ResourceKind::Dsp];

    /// Dense index of this kind (`0..NUM_RESOURCE_KINDS`).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Clb => 0,
            ResourceKind::Bram => 1,
            ResourceKind::Dsp => 2,
        }
    }

    /// Inverse of [`ResourceKind::index`].
    #[inline]
    pub fn from_index(i: usize) -> Option<ResourceKind> {
        ResourceKind::ALL.get(i).copied()
    }

    /// Short uppercase name used in reports and Gantt charts.
    pub const fn name(self) -> &'static str {
        match self {
            ResourceKind::Clb => "CLB",
            ResourceKind::Bram => "BRAM",
            ResourceKind::Dsp => "DSP",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A vector of per-kind resource amounts.
///
/// Supports saturating arithmetic so that transient over-subtraction during
/// search never wraps; component-wise comparisons answer the "fits?"
/// questions the schedulers and the floorplanner ask constantly.
///
/// ```
/// use prfpga_model::ResourceVec;
///
/// let demand = ResourceVec::new(300, 4, 8);
/// let capacity = ResourceVec::new(13_200, 150, 240);
/// assert!(demand.fits_in(&capacity));
/// assert_eq!((capacity - demand).get(prfpga_model::ResourceKind::Bram), 146);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceVec(pub [u64; NUM_RESOURCE_KINDS]);

impl ResourceVec {
    /// The all-zero vector.
    pub const ZERO: ResourceVec = ResourceVec([0; NUM_RESOURCE_KINDS]);

    /// Builds a vector from explicit CLB / BRAM / DSP amounts.
    #[inline]
    pub const fn new(clb: u64, bram: u64, dsp: u64) -> Self {
        ResourceVec([clb, bram, dsp])
    }

    /// Amount of resource `r`.
    #[inline]
    pub fn get(&self, r: ResourceKind) -> u64 {
        self.0[r.index()]
    }

    /// Sets the amount of resource `r`.
    #[inline]
    pub fn set(&mut self, r: ResourceKind, v: u64) {
        self.0[r.index()] = v;
    }

    /// Sum over all kinds (unweighted).
    #[inline]
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// True when every component is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }

    /// Component-wise `self[r] <= other[r]` for all kinds: "does a demand
    /// of `self` fit in a capacity of `other`?".
    #[inline]
    pub fn fits_in(&self, other: &ResourceVec) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = *self;
        for i in 0..NUM_RESOURCE_KINDS {
            out.0[i] = out.0[i].max(other.0[i]);
        }
        out
    }

    /// Component-wise saturating subtraction.
    #[inline]
    pub fn saturating_sub(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = *self;
        for i in 0..NUM_RESOURCE_KINDS {
            out.0[i] = out.0[i].saturating_sub(other.0[i]);
        }
        out
    }

    /// Scales every component by an integer factor.
    #[inline]
    pub fn scale(&self, k: u64) -> ResourceVec {
        let mut out = *self;
        for v in &mut out.0 {
            *v *= k;
        }
        out
    }

    /// Scales every component by `num/den`, rounding down, keeping at least
    /// one unit for non-zero components. Used by the feasibility-check
    /// restart loop that "virtually reduces the available FPGA resources by
    /// a constant factor" (paper §V-H).
    pub fn scale_frac_floor(&self, num: u64, den: u64) -> ResourceVec {
        assert!(den > 0, "zero denominator");
        let mut out = *self;
        for v in &mut out.0 {
            if *v > 0 {
                *v = ((*v * num) / den).max(1);
            }
        }
        out
    }

    /// Iterates `(kind, amount)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, u64)> + '_ {
        ResourceKind::ALL.iter().map(move |&r| (r, self.get(r)))
    }

    /// Weighted dot product against per-kind weights in parts-per-million.
    ///
    /// The paper's cost and efficiency metrics (eq. 3 and 5) weight each
    /// resource kind by a real-valued scarcity factor; to stay integral and
    /// reproducible we carry weights as ppm (`weight * 1_000_000`).
    #[inline]
    pub fn weighted_ppm(&self, weights_ppm: &[u64; NUM_RESOURCE_KINDS]) -> u128 {
        self.0
            .iter()
            .zip(weights_ppm.iter())
            .map(|(&v, &w)| v as u128 * w as u128)
            .sum()
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    #[inline]
    fn add(mut self, rhs: ResourceVec) -> ResourceVec {
        self += rhs;
        self
    }
}

impl AddAssign for ResourceVec {
    #[inline]
    fn add_assign(&mut self, rhs: ResourceVec) {
        for i in 0..NUM_RESOURCE_KINDS {
            self.0[i] += rhs.0[i];
        }
    }
}

impl Sub for ResourceVec {
    type Output = ResourceVec;
    #[inline]
    fn sub(mut self, rhs: ResourceVec) -> ResourceVec {
        self -= rhs;
        self
    }
}

impl SubAssign for ResourceVec {
    #[inline]
    fn sub_assign(&mut self, rhs: ResourceVec) {
        for i in 0..NUM_RESOURCE_KINDS {
            debug_assert!(self.0[i] >= rhs.0[i], "resource underflow");
            self.0[i] = self.0[i].saturating_sub(rhs.0[i]);
        }
    }
}

impl Sum for ResourceVec {
    fn sum<I: Iterator<Item = ResourceVec>>(iter: I) -> ResourceVec {
        iter.fold(ResourceVec::ZERO, |acc, v| acc + v)
    }
}

impl Index<ResourceKind> for ResourceVec {
    type Output = u64;
    #[inline]
    fn index(&self, r: ResourceKind) -> &u64 {
        &self.0[r.index()]
    }
}

impl IndexMut<ResourceKind> for ResourceVec {
    #[inline]
    fn index_mut(&mut self, r: ResourceKind) -> &mut u64 {
        &mut self.0[r.index()]
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{CLB: {}, BRAM: {}, DSP: {}}}",
            self.0[0], self.0[1], self.0[2]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_index_roundtrip() {
        for r in ResourceKind::ALL {
            assert_eq!(ResourceKind::from_index(r.index()), Some(r));
        }
        assert_eq!(ResourceKind::from_index(NUM_RESOURCE_KINDS), None);
    }

    #[test]
    fn fits_in_is_componentwise() {
        let small = ResourceVec::new(10, 2, 1);
        let big = ResourceVec::new(100, 2, 4);
        assert!(small.fits_in(&big));
        assert!(!big.fits_in(&small));
        // Equal on one axis still fits.
        assert!(small.fits_in(&small));
        // Exceeding a single axis fails.
        let spiky = ResourceVec::new(1, 3, 0);
        assert!(!spiky.fits_in(&big));
        assert!(!ResourceVec::new(101, 0, 0).fits_in(&big));
    }

    #[test]
    fn arithmetic() {
        let a = ResourceVec::new(5, 3, 1);
        let b = ResourceVec::new(2, 3, 0);
        assert_eq!(a + b, ResourceVec::new(7, 6, 1));
        assert_eq!(a - b, ResourceVec::new(3, 0, 1));
        assert_eq!(
            a.saturating_sub(&ResourceVec::new(10, 10, 10)),
            ResourceVec::ZERO
        );
        assert_eq!(a.scale(3), ResourceVec::new(15, 9, 3));
        assert_eq!(a.max(&b), ResourceVec::new(5, 3, 1));
        let s: ResourceVec = [a, b].into_iter().sum();
        assert_eq!(s, a + b);
    }

    #[test]
    fn scale_frac_floor_keeps_nonzero() {
        let v = ResourceVec::new(100, 1, 0);
        let s = v.scale_frac_floor(9, 10);
        assert_eq!(
            s,
            ResourceVec::new(90, 1, 0),
            "non-zero axes stay >= 1, zero stays 0"
        );
        let tiny = ResourceVec::new(1, 1, 1).scale_frac_floor(1, 100);
        assert_eq!(tiny, ResourceVec::new(1, 1, 1));
    }

    #[test]
    fn weighted_dot() {
        let v = ResourceVec::new(2, 3, 4);
        let w = [1_000_000u64, 0, 500_000];
        assert_eq!(v.weighted_ppm(&w), 2_000_000 + 2_000_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            ResourceVec::new(1, 2, 3).to_string(),
            "{CLB: 1, BRAM: 2, DSP: 3}"
        );
        assert_eq!(ResourceKind::Bram.to_string(), "BRAM");
    }
}
