//! Schedule output artifacts.
//!
//! Per §III the scheduler emits (1) the set of reconfigurable regions with
//! their resource requirements, (2) a mapping of every task to an
//! implementation and a core / region, (3) a time slot per task, and (4) the
//! reconfiguration tasks with their time slots. [`Schedule`] bundles all
//! four; `prfpga-sim` provides the independent validator.

use serde::{Deserialize, Serialize};

use crate::implementation::ImplId;
use crate::resources::ResourceVec;
use crate::taskgraph::TaskId;
use crate::time::Time;

/// Index of a reconfigurable region within a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reconfigurable region: a slot of fabric large enough for every
/// implementation ever loaded into it (`res_{s,r}`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Per-kind resource budget of the region.
    pub res: ResourceVec,
    /// Fabric hosting the region (index into the platform's fabrics; always
    /// 0 on a single-device target — schedules serialized before platforms
    /// existed deserialize to 0).
    #[serde(default)]
    pub fabric: u32,
}

/// Where a task executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// On processor core `p` (index into `0..num_processors`).
    Core(usize),
    /// In a reconfigurable region as a hardware accelerator.
    Region(RegionId),
}

impl Placement {
    /// True when two placements share an executor (same core or same
    /// region), in which case communication between them is free under the
    /// communication-cost extension.
    #[inline]
    pub fn colocated(self, other: Placement) -> bool {
        self == other
    }
}

/// The scheduling decision for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskAssignment {
    /// Chosen implementation.
    pub impl_id: ImplId,
    /// Chosen core or region.
    pub placement: Placement,
    /// Start tick.
    pub start: Time,
    /// End tick (`start + time_i`).
    pub end: Time,
}

impl TaskAssignment {
    /// Duration of the slot.
    #[inline]
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

/// A reconfiguration task on the (single) reconfiguration controller: loads
/// the partial bitstream of `loads_impl` into `region` so that
/// `outgoing_task` can run there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reconfiguration {
    /// Target region.
    pub region: RegionId,
    /// Implementation whose bitstream is loaded.
    pub loads_impl: ImplId,
    /// The task that will execute after this reconfiguration (the paper's
    /// *outgoing* task).
    pub outgoing_task: TaskId,
    /// Start tick on the reconfiguration controller.
    pub start: Time,
    /// End tick (`start + reconf_s`).
    pub end: Time,
}

impl Reconfiguration {
    /// Duration of the reconfiguration.
    #[inline]
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

/// A complete schedule for a [`ProblemInstance`](crate::ProblemInstance).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Reconfigurable regions, indexed by [`RegionId`].
    pub regions: Vec<Region>,
    /// Per-task decisions, indexed by [`TaskId`]. Must have exactly one
    /// entry per task of the instance.
    pub assignments: Vec<TaskAssignment>,
    /// Reconfiguration tasks, in no particular order.
    pub reconfigurations: Vec<Reconfiguration>,
}

impl Schedule {
    /// Overall application execution time: the latest end tick over tasks
    /// and reconfigurations (a trailing reconfiguration cannot exist in a
    /// valid schedule, but we take the max defensively).
    pub fn makespan(&self) -> Time {
        let t = self.assignments.iter().map(|a| a.end).max().unwrap_or(0);
        let r = self
            .reconfigurations
            .iter()
            .map(|r| r.end)
            .max()
            .unwrap_or(0);
        t.max(r)
    }

    /// Assignment of one task.
    #[inline]
    pub fn assignment(&self, t: TaskId) -> &TaskAssignment {
        &self.assignments[t.index()]
    }

    /// Tasks placed in region `s`, sorted by start tick.
    pub fn tasks_in_region(&self, s: RegionId) -> Vec<TaskId> {
        let mut out: Vec<TaskId> = self
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| a.placement == Placement::Region(s))
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        out.sort_by_key(|t| self.assignments[t.index()].start);
        out
    }

    /// Tasks placed on core `p`, sorted by start tick.
    pub fn tasks_on_core(&self, p: usize) -> Vec<TaskId> {
        let mut out: Vec<TaskId> = self
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| a.placement == Placement::Core(p))
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        out.sort_by_key(|t| self.assignments[t.index()].start);
        out
    }

    /// Total fabric resources claimed by all regions together. Only
    /// meaningful as a capacity bound on single-fabric targets (where it is
    /// exactly [`Schedule::region_resources_on`] fabric 0); multi-fabric
    /// capacity checks go per fabric.
    pub fn total_region_resources(&self) -> ResourceVec {
        self.regions.iter().map(|r| r.res).sum()
    }

    /// Resources claimed by the regions hosted on fabric `f`; must fit in
    /// that fabric's capacity.
    pub fn region_resources_on(&self, f: u32) -> ResourceVec {
        self.regions
            .iter()
            .filter(|r| r.fabric == f)
            .map(|r| r.res)
            .sum()
    }

    /// One past the highest fabric index any region uses (1 for a schedule
    /// with no regions, matching the single-fabric default).
    pub fn fabric_span(&self) -> u32 {
        self.regions.iter().map(|r| r.fabric + 1).max().unwrap_or(1)
    }

    /// Number of hardware tasks (tasks placed in a region).
    pub fn hardware_task_count(&self) -> usize {
        self.assignments
            .iter()
            .filter(|a| matches!(a.placement, Placement::Region(_)))
            .count()
    }

    /// Total time the reconfiguration controller is busy.
    pub fn total_reconfiguration_time(&self) -> Time {
        self.reconfigurations.iter().map(|r| r.duration()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Schedule {
        Schedule {
            regions: vec![
                Region {
                    res: ResourceVec::new(10, 1, 0),
                    fabric: 0,
                },
                Region {
                    res: ResourceVec::new(4, 0, 2),
                    fabric: 1,
                },
            ],
            assignments: vec![
                TaskAssignment {
                    impl_id: ImplId(0),
                    placement: Placement::Region(RegionId(0)),
                    start: 0,
                    end: 10,
                },
                TaskAssignment {
                    impl_id: ImplId(1),
                    placement: Placement::Core(0),
                    start: 5,
                    end: 25,
                },
                TaskAssignment {
                    impl_id: ImplId(2),
                    placement: Placement::Region(RegionId(0)),
                    start: 30,
                    end: 42,
                },
            ],
            reconfigurations: vec![Reconfiguration {
                region: RegionId(0),
                loads_impl: ImplId(2),
                outgoing_task: TaskId(2),
                start: 12,
                end: 29,
            }],
        }
    }

    #[test]
    fn makespan_covers_tasks_and_reconfigs() {
        let s = sched();
        assert_eq!(s.makespan(), 42);
        assert_eq!(Schedule::default().makespan(), 0);
    }

    #[test]
    fn region_and_core_queries_sorted() {
        let s = sched();
        assert_eq!(s.tasks_in_region(RegionId(0)), vec![TaskId(0), TaskId(2)]);
        assert_eq!(s.tasks_in_region(RegionId(1)), Vec::<TaskId>::new());
        assert_eq!(s.tasks_on_core(0), vec![TaskId(1)]);
        assert_eq!(s.hardware_task_count(), 2);
    }

    #[test]
    fn totals() {
        let s = sched();
        assert_eq!(s.total_region_resources(), ResourceVec::new(14, 1, 2));
        assert_eq!(s.total_reconfiguration_time(), 17);
        assert_eq!(s.assignment(TaskId(1)).duration(), 20);
    }

    #[test]
    fn per_fabric_resources() {
        let s = sched();
        assert_eq!(s.region_resources_on(0), ResourceVec::new(10, 1, 0));
        assert_eq!(s.region_resources_on(1), ResourceVec::new(4, 0, 2));
        assert_eq!(s.region_resources_on(2), ResourceVec::ZERO);
        assert_eq!(s.fabric_span(), 2);
        assert_eq!(Schedule::default().fabric_span(), 1);
        // Per-fabric sums partition the global total.
        assert_eq!(
            s.region_resources_on(0) + s.region_resources_on(1),
            s.total_region_resources()
        );
    }
}
