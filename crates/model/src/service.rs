//! Service protocol — the request/response vocabulary of the scheduling
//! daemon (`prfpga-server`).
//!
//! The daemon speaks newline-delimited JSON: one request object per line
//! in, one response object per line out. The types live here (not in the
//! server crate) so the load generator, the CLI and the test harnesses
//! can speak the protocol without depending on server internals — the
//! same layering as [`crate::event`].
//!
//! Requests are *strict*: unknown fields, unknown `op`/`algo` tags, wrong
//! types and out-of-range values are all typed [`ServiceError`]s, never
//! panics — the protocol-robustness corpus in `crates/server/tests`
//! pins this. Enum serialization is hand-written in the workspace's shim
//! convention (the vendored serde derive does not cover struct variants);
//! plain field structs derive.
//!
//! ```text
//! {"op":"schedule","id":1,"algo":"portfolio","deadline_ms":50,
//!  "instance":{"gen":{"tasks":60,"seed":7}}}
//! {"op":"schedule","id":2,"algo":"pa","instance":{"inline":{...}}}
//! {"op":"repair","id":3,"instance":{"gen":{"tasks":40,"seed":9}},
//!  "events":[{"Finish":{"task":3,"actual":120}}]}
//! {"op":"stats","id":4}
//! {"op":"ping","id":5}
//! ```

use std::fmt;

use serde::value::{Map, Value};
use serde::{Deserialize, Serialize};

use crate::event::ScheduleEvent;
use crate::instance::ProblemInstance;
use crate::schedule::Schedule;
use crate::time::Time;

/// Largest generated-profile task count a request may ask for: a service
/// accepting arbitrary sizes from the wire is one request away from an
/// out-of-memory kill.
pub const MAX_GENERATED_TASKS: usize = 100_000;

/// Rejects keys outside `allowed` — the strictness every request object
/// is parsed under.
fn check_fields(map: &Map, allowed: &[&str], ty: &str) -> Result<(), serde::de::Error> {
    for (key, _) in map.iter() {
        if !allowed.contains(&key.as_str()) {
            return Err(serde::de::Error::new(format!(
                "unknown field `{key}` in `{ty}`"
            )));
        }
    }
    Ok(())
}

fn as_object<'v>(value: &'v Value, ty: &str) -> Result<&'v Map, serde::de::Error> {
    match value {
        Value::Object(map) => Ok(map),
        other => Err(serde::de::Error::expected("object", ty, other)),
    }
}

fn req_field<'v>(map: &'v Map, name: &str, ty: &str) -> Result<&'v Value, serde::de::Error> {
    map.get(name)
        .ok_or_else(|| serde::de::Error::missing_field(name, ty))
}

fn u64_field(map: &Map, name: &str, ty: &str) -> Result<u64, serde::de::Error> {
    u64::from_value(req_field(map, name, ty)?).map_err(|e| e.contextualize(&format!("{ty}.{name}")))
}

fn opt_u64_field(map: &Map, name: &str, ty: &str) -> Result<Option<u64>, serde::de::Error> {
    match map.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => u64::from_value(v)
            .map(Some)
            .map_err(|e| e.contextualize(&format!("{ty}.{name}"))),
    }
}

/// Which scheduler a request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoChoice {
    /// The deterministic PA pipeline.
    Pa,
    /// The randomized PA-R search.
    Par,
    /// The IS-k window branch-and-bound with the given window size.
    IsK(usize),
    /// The PA / PA-R / IS-1 portfolio race (always answers, any deadline).
    Portfolio,
    /// Commit a PA baseline, then apply the request's event list through
    /// the delta-repair engine and return the repaired schedule.
    Repair,
}

impl AlgoChoice {
    /// Parses the wire tag: `pa`, `par`, `portfolio`, `repair`, or
    /// `is-<k>` with `k` in 1..=16.
    pub fn parse(tag: &str) -> Option<AlgoChoice> {
        match tag {
            "pa" => Some(AlgoChoice::Pa),
            "par" => Some(AlgoChoice::Par),
            "portfolio" => Some(AlgoChoice::Portfolio),
            "repair" => Some(AlgoChoice::Repair),
            _ => {
                let k: usize = tag.strip_prefix("is-")?.parse().ok()?;
                (1..=16).contains(&k).then_some(AlgoChoice::IsK(k))
            }
        }
    }
}

impl fmt::Display for AlgoChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoChoice::Pa => write!(f, "pa"),
            AlgoChoice::Par => write!(f, "par"),
            AlgoChoice::IsK(k) => write!(f, "is-{k}"),
            AlgoChoice::Portfolio => write!(f, "portfolio"),
            AlgoChoice::Repair => write!(f, "repair"),
        }
    }
}

impl Serialize for AlgoChoice {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for AlgoChoice {
    fn from_value(value: &Value) -> Result<Self, serde::de::Error> {
        let Value::String(tag) = value else {
            return Err(serde::de::Error::expected("string", "AlgoChoice", value));
        };
        AlgoChoice::parse(tag).ok_or_else(|| serde::de::Error::unknown_variant(tag, "AlgoChoice"))
    }
}

/// The problem a schedule request runs on: shipped inline, or named as a
/// deterministic generator profile the server synthesizes itself (far
/// cheaper on the wire for load generation).
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceSpec {
    /// A full [`ProblemInstance`] shipped in the request body.
    Inline(Box<ProblemInstance>),
    /// A named generated profile: the server runs the seeded generator,
    /// so the same `(tasks, seed, platform)` always denotes the
    /// byte-identical instance.
    Generated {
        /// Task count (1..=[`MAX_GENERATED_TASKS`]).
        tasks: usize,
        /// Generator seed.
        seed: u64,
        /// Platform catalog name (`None` = the default ZedBoard target).
        platform: Option<String>,
        /// Processor cores of the generated architecture.
        cores: usize,
    },
}

impl Serialize for InstanceSpec {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        match self {
            InstanceSpec::Inline(inst) => {
                map.insert("inline", inst.to_value());
            }
            InstanceSpec::Generated {
                tasks,
                seed,
                platform,
                cores,
            } => {
                let mut inner = Map::new();
                inner.insert("tasks", tasks.to_value());
                inner.insert("seed", seed.to_value());
                if let Some(p) = platform {
                    inner.insert("platform", p.to_value());
                }
                inner.insert("cores", cores.to_value());
                map.insert("gen", Value::Object(inner));
            }
        }
        Value::Object(map)
    }
}

impl Deserialize for InstanceSpec {
    fn from_value(value: &Value) -> Result<Self, serde::de::Error> {
        let map = as_object(value, "InstanceSpec")?;
        check_fields(map, &["inline", "gen"], "InstanceSpec")?;
        match (map.get("inline"), map.get("gen")) {
            (Some(inst), None) => Ok(InstanceSpec::Inline(Box::new(
                ProblemInstance::from_value(inst).map_err(|e| e.contextualize("inline"))?,
            ))),
            (None, Some(profile)) => {
                let inner = as_object(profile, "InstanceSpec.gen")?;
                check_fields(inner, &["tasks", "seed", "platform", "cores"], "gen")?;
                let tasks = u64_field(inner, "tasks", "gen")? as usize;
                if tasks == 0 || tasks > MAX_GENERATED_TASKS {
                    return Err(serde::de::Error::new(format!(
                        "gen.tasks must be 1..={MAX_GENERATED_TASKS}, got {tasks}"
                    )));
                }
                let platform = match inner.get("platform") {
                    None | Some(Value::Null) => None,
                    Some(v) => {
                        Some(String::from_value(v).map_err(|e| e.contextualize("gen.platform"))?)
                    }
                };
                let cores = opt_u64_field(inner, "cores", "gen")?.unwrap_or(2) as usize;
                if cores == 0 || cores > 64 {
                    return Err(serde::de::Error::new("gen.cores must be 1..=64"));
                }
                Ok(InstanceSpec::Generated {
                    tasks,
                    seed: u64_field(inner, "seed", "gen")?,
                    platform,
                    cores,
                })
            }
            _ => Err(serde::de::Error::new(
                "instance must carry exactly one of `inline` or `gen`",
            )),
        }
    }
}

/// One scheduling job: instance, algorithm, and latency envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRequest {
    /// Client-chosen correlation id, echoed on the response (responses
    /// may be reordered by the worker pool when a connection pipelines).
    pub id: u64,
    /// Which scheduler runs.
    pub algo: AlgoChoice,
    /// The problem to schedule.
    pub instance: InstanceSpec,
    /// Wall-clock deadline for the whole request; admission rejects it
    /// outright when the queue estimate already exceeds this. Must be
    /// positive when present.
    pub deadline_ms: Option<u64>,
    /// Inner search budget (PA-R time budget / portfolio member budget).
    /// Defaults to 60% of the deadline, or 1000 ms without one.
    pub budget_ms: Option<u64>,
    /// Events to replay through the repair engine ([`AlgoChoice::Repair`]
    /// only; rejected on other algorithms).
    pub events: Vec<ScheduleEvent>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceRequest {
    /// Run a scheduler (ops `schedule` and `repair`).
    Schedule(Box<ScheduleRequest>),
    /// Return a [`ServiceStats`] snapshot.
    Stats {
        /// Correlation id echoed on the response.
        id: u64,
    },
    /// Liveness probe; answered with `pong` without touching the queue.
    Ping {
        /// Correlation id echoed on the response.
        id: u64,
    },
}

impl ServiceRequest {
    /// The request's correlation id.
    pub fn id(&self) -> u64 {
        match self {
            ServiceRequest::Schedule(r) => r.id,
            ServiceRequest::Stats { id } | ServiceRequest::Ping { id } => *id,
        }
    }
}

impl Serialize for ServiceRequest {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        match self {
            ServiceRequest::Schedule(r) => {
                let op = if r.algo == AlgoChoice::Repair {
                    "repair"
                } else {
                    "schedule"
                };
                map.insert("op", Value::String(op.into()));
                map.insert("id", r.id.to_value());
                map.insert("algo", r.algo.to_value());
                map.insert("instance", r.instance.to_value());
                if let Some(d) = r.deadline_ms {
                    map.insert("deadline_ms", d.to_value());
                }
                if let Some(b) = r.budget_ms {
                    map.insert("budget_ms", b.to_value());
                }
                if !r.events.is_empty() {
                    map.insert("events", r.events.to_value());
                }
            }
            ServiceRequest::Stats { id } => {
                map.insert("op", Value::String("stats".into()));
                map.insert("id", id.to_value());
            }
            ServiceRequest::Ping { id } => {
                map.insert("op", Value::String("ping".into()));
                map.insert("id", id.to_value());
            }
        }
        Value::Object(map)
    }
}

impl Deserialize for ServiceRequest {
    fn from_value(value: &Value) -> Result<Self, serde::de::Error> {
        let map = as_object(value, "ServiceRequest")?;
        let op = String::from_value(req_field(map, "op", "ServiceRequest")?)
            .map_err(|e| e.contextualize("op"))?;
        match op.as_str() {
            "schedule" | "repair" => {
                check_fields(
                    map,
                    &[
                        "op",
                        "id",
                        "algo",
                        "instance",
                        "deadline_ms",
                        "budget_ms",
                        "events",
                    ],
                    "ServiceRequest",
                )?;
                let algo = match map.get("algo") {
                    // `repair` needs no explicit algo; `schedule` defaults
                    // to the always-answering portfolio.
                    None | Some(Value::Null) => {
                        if op == "repair" {
                            AlgoChoice::Repair
                        } else {
                            AlgoChoice::Portfolio
                        }
                    }
                    Some(v) => AlgoChoice::from_value(v)?,
                };
                if (op == "repair") != (algo == AlgoChoice::Repair) {
                    return Err(serde::de::Error::new(format!(
                        "op `{op}` does not match algo `{algo}`"
                    )));
                }
                let deadline_ms = opt_u64_field(map, "deadline_ms", "ServiceRequest")?;
                if deadline_ms == Some(0) {
                    return Err(serde::de::Error::new("deadline_ms must be positive"));
                }
                let budget_ms = opt_u64_field(map, "budget_ms", "ServiceRequest")?;
                if budget_ms == Some(0) {
                    return Err(serde::de::Error::new("budget_ms must be positive"));
                }
                let events = match map.get("events") {
                    None | Some(Value::Null) => Vec::new(),
                    Some(v) => Vec::<ScheduleEvent>::from_value(v)
                        .map_err(|e| e.contextualize("events"))?,
                };
                if !events.is_empty() && algo != AlgoChoice::Repair {
                    return Err(serde::de::Error::new(
                        "events are only valid on `repair` requests",
                    ));
                }
                Ok(ServiceRequest::Schedule(Box::new(ScheduleRequest {
                    id: u64_field(map, "id", "ServiceRequest")?,
                    algo,
                    instance: InstanceSpec::from_value(req_field(
                        map,
                        "instance",
                        "ServiceRequest",
                    )?)
                    .map_err(|e| e.contextualize("instance"))?,
                    deadline_ms,
                    budget_ms,
                    events,
                })))
            }
            "stats" => {
                check_fields(map, &["op", "id"], "ServiceRequest")?;
                Ok(ServiceRequest::Stats {
                    id: u64_field(map, "id", "ServiceRequest")?,
                })
            }
            "ping" => {
                check_fields(map, &["op", "id"], "ServiceRequest")?;
                Ok(ServiceRequest::Ping {
                    id: u64_field(map, "id", "ServiceRequest")?,
                })
            }
            other => Err(serde::de::Error::unknown_variant(other, "ServiceRequest")),
        }
    }
}

/// Machine-readable failure class of a rejected or failed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not a well-formed request (bad JSON, wrong types,
    /// unknown/missing fields, out-of-range values).
    Malformed,
    /// The frame exceeded the server's size bound before a newline.
    Oversized,
    /// Admission control: the bounded request queue is full.
    QueueFull,
    /// Admission control: the declared deadline is already unmeetable
    /// given the current queue estimate.
    DeadlineUnmeetable,
    /// The instance failed validation (or an unknown platform was named).
    InvalidInstance,
    /// The scheduler itself failed (e.g. a cyclic task graph).
    SchedulingFailed,
    /// A bug: the server produced a schedule its own validator rejects,
    /// or an internal channel broke.
    Internal,
}

impl ErrorCode {
    /// The wire tag.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::DeadlineUnmeetable => "deadline_unmeetable",
            ErrorCode::InvalidInstance => "invalid_instance",
            ErrorCode::SchedulingFailed => "scheduling_failed",
            ErrorCode::Internal => "internal",
        }
    }

    /// Inverse of [`ErrorCode::as_str`].
    pub fn parse(tag: &str) -> Option<ErrorCode> {
        [
            ErrorCode::Malformed,
            ErrorCode::Oversized,
            ErrorCode::QueueFull,
            ErrorCode::DeadlineUnmeetable,
            ErrorCode::InvalidInstance,
            ErrorCode::SchedulingFailed,
            ErrorCode::Internal,
        ]
        .into_iter()
        .find(|c| c.as_str() == tag)
    }
}

impl Serialize for ErrorCode {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().into())
    }
}

impl Deserialize for ErrorCode {
    fn from_value(value: &Value) -> Result<Self, serde::de::Error> {
        let Value::String(tag) = value else {
            return Err(serde::de::Error::expected("string", "ErrorCode", value));
        };
        ErrorCode::parse(tag).ok_or_else(|| serde::de::Error::unknown_variant(tag, "ErrorCode"))
    }
}

/// A typed error response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceError {
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Wall-clock and run-count of one pipeline phase, for the per-request
/// trace carried on schedule replies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseRow {
    /// Phase name (the [`crate`]-external mirror of the scheduler's
    /// `Phase::name`).
    pub phase: String,
    /// Wall-clock spent in the phase, microseconds.
    pub micros: u64,
    /// Times the phase ran (restarts included).
    pub runs: u32,
}

/// A successful scheduling response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReply {
    /// Echo of the request id.
    pub id: u64,
    /// The algorithm that produced the schedule (the portfolio reports
    /// its winning member, e.g. `portfolio/pa`).
    pub algo: String,
    /// Makespan of the returned schedule.
    pub makespan: Time,
    /// The search was cut short and this is an anytime result.
    pub degraded: bool,
    /// The request's cancellation token observed its fired deadline.
    pub deadline_hit: bool,
    /// The response left the server within the declared deadline (always
    /// true when the request declared none). Counted into the server's
    /// deadline-hit-rate metric with exactly this value.
    pub deadline_met: bool,
    /// Admission-to-response service time, microseconds (queue wait
    /// included, connection read excluded).
    pub service_us: u64,
    /// Per-phase trace of the winning run.
    pub phases: Vec<PhaseRow>,
    /// The sweep-validated schedule.
    pub schedule: Schedule,
}

/// Metrics snapshot answered to a `stats` request and printed by the
/// periodic log line.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Well-formed requests read off connections.
    pub received: u64,
    /// Lines rejected before admission (bad JSON / types / fields).
    pub malformed: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Admission rejections: queue full.
    pub rejected_queue_full: u64,
    /// Admission rejections: declared deadline already unmeetable.
    pub rejected_unmeetable: u64,
    /// Requests fully served (response written).
    pub completed: u64,
    /// Requests abandoned because the client disconnected (work was
    /// cancelled or the finished response had nowhere to go).
    pub cancelled: u64,
    /// Completed requests served within their declared deadline.
    pub deadline_met: u64,
    /// Completed requests that overran their declared deadline.
    pub deadline_missed: u64,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// High-water mark of the queue depth.
    pub queue_peak: u64,
    /// The queue bound admission enforces.
    pub queue_bound: u64,
    /// Median service time over the retained latency window, microseconds.
    pub p50_us: u64,
    /// 99th-percentile service time, microseconds.
    pub p99_us: u64,
    /// Worker-pool workspace rewinds (pipeline runs that reused warm
    /// buffers) summed over workers.
    pub workspace_reuses: u64,
    /// Worker-pool workspace rebuilds (instance switches) summed over
    /// workers.
    pub workspace_rebuilds: u64,
}

impl ServiceStats {
    /// Fraction of deadline-carrying completions that met their deadline,
    /// in percent (100 when none carried a deadline).
    pub fn deadline_hit_rate_pct(&self) -> f64 {
        let carried = self.deadline_met + self.deadline_missed;
        if carried == 0 {
            100.0
        } else {
            self.deadline_met as f64 * 100.0 / carried as f64
        }
    }

    /// The one-line summary the server logs periodically.
    pub fn log_line(&self) -> String {
        format!(
            "served {} (p50 {:.1} ms, p99 {:.1} ms) | deadline hit {:.1}% | \
             queue {}/{} (peak {}) | rejected {} full / {} unmeetable | \
             {} malformed, {} cancelled | workspace {} reuses / {} rebuilds",
            self.completed,
            self.p50_us as f64 / 1e3,
            self.p99_us as f64 / 1e3,
            self.deadline_hit_rate_pct(),
            self.queue_depth,
            self.queue_bound,
            self.queue_peak,
            self.rejected_queue_full,
            self.rejected_unmeetable,
            self.malformed,
            self.cancelled,
            self.workspace_reuses,
            self.workspace_rebuilds,
        )
    }
}

/// A response line.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceResponse {
    /// A schedule (op `schedule` / `repair` succeeded).
    Ok(Box<ScheduleReply>),
    /// A metrics snapshot (op `stats`).
    Stats {
        /// Echo of the request id.
        id: u64,
        /// The snapshot.
        stats: ServiceStats,
    },
    /// Liveness answer (op `ping`).
    Pong {
        /// Echo of the request id.
        id: u64,
    },
    /// A typed failure; `id` is absent when the line never parsed far
    /// enough to recover one.
    Err {
        /// Echo of the request id, when known.
        id: Option<u64>,
        /// What went wrong.
        error: ServiceError,
    },
}

impl ServiceResponse {
    /// Convenience constructor for a typed error.
    pub fn error(id: Option<u64>, code: ErrorCode, message: impl Into<String>) -> Self {
        ServiceResponse::Err {
            id,
            error: ServiceError {
                code,
                message: message.into(),
            },
        }
    }

    /// The echoed request id, when the response carries one.
    pub fn id(&self) -> Option<u64> {
        match self {
            ServiceResponse::Ok(r) => Some(r.id),
            ServiceResponse::Stats { id, .. } | ServiceResponse::Pong { id } => Some(*id),
            ServiceResponse::Err { id, .. } => *id,
        }
    }
}

impl Serialize for ServiceResponse {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        match self {
            ServiceResponse::Ok(reply) => {
                map.insert("ok", reply.to_value());
            }
            ServiceResponse::Stats { id, stats } => {
                let mut inner = Map::new();
                inner.insert("id", id.to_value());
                inner.insert("stats", stats.to_value());
                map.insert("stats", Value::Object(inner));
            }
            ServiceResponse::Pong { id } => {
                let mut inner = Map::new();
                inner.insert("id", id.to_value());
                map.insert("pong", Value::Object(inner));
            }
            ServiceResponse::Err { id, error } => {
                let mut inner = Map::new();
                if let Some(id) = id {
                    inner.insert("id", id.to_value());
                }
                inner.insert("error", error.to_value());
                map.insert("err", Value::Object(inner));
            }
        }
        Value::Object(map)
    }
}

impl Deserialize for ServiceResponse {
    fn from_value(value: &Value) -> Result<Self, serde::de::Error> {
        let map = as_object(value, "ServiceResponse")?;
        let mut tags = map.iter();
        let (Some((tag, payload)), None) = (tags.next(), tags.next()) else {
            return Err(serde::de::Error::new(
                "expected a single-variant `ServiceResponse` tag",
            ));
        };
        match tag.as_str() {
            "ok" => Ok(ServiceResponse::Ok(Box::new(ScheduleReply::from_value(
                payload,
            )?))),
            "stats" => {
                let inner = as_object(payload, "ServiceResponse.stats")?;
                Ok(ServiceResponse::Stats {
                    id: u64_field(inner, "id", "stats")?,
                    stats: ServiceStats::from_value(req_field(inner, "stats", "stats")?)?,
                })
            }
            "pong" => {
                let inner = as_object(payload, "ServiceResponse.pong")?;
                Ok(ServiceResponse::Pong {
                    id: u64_field(inner, "id", "pong")?,
                })
            }
            "err" => {
                let inner = as_object(payload, "ServiceResponse.err")?;
                Ok(ServiceResponse::Err {
                    id: opt_u64_field(inner, "id", "err")?,
                    error: ServiceError::from_value(req_field(inner, "error", "err")?)?,
                })
            }
            other => Err(serde::de::Error::unknown_variant(other, "ServiceResponse")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgraph::TaskId;

    fn parse_req(json: &str) -> Result<ServiceRequest, serde_json::Error> {
        serde_json::from_str(json)
    }

    #[test]
    fn schedule_request_round_trips() {
        let req = ServiceRequest::Schedule(Box::new(ScheduleRequest {
            id: 7,
            algo: AlgoChoice::Portfolio,
            instance: InstanceSpec::Generated {
                tasks: 60,
                seed: 9,
                platform: None,
                cores: 2,
            },
            deadline_ms: Some(50),
            budget_ms: None,
            events: Vec::new(),
        }));
        let json = serde_json::to_string(&req).unwrap();
        assert_eq!(parse_req(&json).unwrap(), req);
    }

    #[test]
    fn repair_request_round_trips_with_events() {
        let req = ServiceRequest::Schedule(Box::new(ScheduleRequest {
            id: 3,
            algo: AlgoChoice::Repair,
            instance: InstanceSpec::Generated {
                tasks: 20,
                seed: 1,
                platform: Some("xc7z020".into()),
                cores: 2,
            },
            deadline_ms: None,
            budget_ms: None,
            events: vec![ScheduleEvent::Cancel { task: TaskId(4) }],
        }));
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"op\":\"repair\""), "{json}");
        assert_eq!(parse_req(&json).unwrap(), req);
    }

    #[test]
    fn stats_and_ping_round_trip() {
        for req in [
            ServiceRequest::Stats { id: 1 },
            ServiceRequest::Ping { id: 2 },
        ] {
            let json = serde_json::to_string(&req).unwrap();
            assert_eq!(parse_req(&json).unwrap(), req);
        }
    }

    #[test]
    fn strict_parsing_rejects_bad_requests() {
        let cases = [
            (r#"{"id":1}"#, "missing field `op`"),
            (r#"{"op":"frobnicate","id":1}"#, "unknown variant"),
            (
                r#"{"op":"schedule","id":1,"algo":"pa","instance":{"gen":{"tasks":5,"seed":1}},"bogus":3}"#,
                "unknown field `bogus`",
            ),
            (
                r#"{"op":"schedule","id":1,"algo":"pa","instance":{"gen":{"tasks":0,"seed":1}}}"#,
                "gen.tasks",
            ),
            (
                r#"{"op":"schedule","id":1,"algo":"pa","instance":{"gen":{"tasks":5,"seed":1}},"deadline_ms":0}"#,
                "deadline_ms must be positive",
            ),
            (
                r#"{"op":"schedule","id":1,"algo":"pa","instance":{"gen":{"tasks":5,"seed":1}},"deadline_ms":-4}"#,
                "deadline_ms",
            ),
            (
                r#"{"op":"schedule","id":1,"algo":"nope","instance":{"gen":{"tasks":5,"seed":1}}}"#,
                "unknown variant `nope`",
            ),
            (
                r#"{"op":"schedule","id":1,"algo":"pa","instance":{}}"#,
                "exactly one of",
            ),
            (
                r#"{"op":"schedule","id":1,"algo":"pa","instance":{"gen":{"tasks":5,"seed":1}},"events":[{"Cancel":{"task":1}}]}"#,
                "only valid on `repair`",
            ),
            (
                r#"{"op":"repair","id":1,"algo":"pa","instance":{"gen":{"tasks":5,"seed":1}}}"#,
                "does not match algo",
            ),
            (r#"{"op":"stats"}"#, "missing field `id`"),
            (r#"{"op":"stats","id":"seven"}"#, "id"),
        ];
        for (json, needle) in cases {
            let err = parse_req(json).expect_err(json).to_string();
            assert!(err.contains(needle), "{json}: {err}");
        }
    }

    #[test]
    fn algo_tags() {
        for (tag, algo) in [
            ("pa", AlgoChoice::Pa),
            ("par", AlgoChoice::Par),
            ("is-1", AlgoChoice::IsK(1)),
            ("is-5", AlgoChoice::IsK(5)),
            ("portfolio", AlgoChoice::Portfolio),
            ("repair", AlgoChoice::Repair),
        ] {
            assert_eq!(AlgoChoice::parse(tag), Some(algo));
            assert_eq!(algo.to_string(), tag);
        }
        for bad in ["", "IS-1", "is-0", "is-17", "is-", "heft2"] {
            assert_eq!(AlgoChoice::parse(bad), None, "{bad}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            ServiceResponse::Pong { id: 9 },
            ServiceResponse::Stats {
                id: 4,
                stats: ServiceStats {
                    received: 10,
                    completed: 8,
                    deadline_met: 7,
                    deadline_missed: 1,
                    ..Default::default()
                },
            },
            ServiceResponse::error(Some(2), ErrorCode::QueueFull, "queue is full"),
            ServiceResponse::error(None, ErrorCode::Malformed, "bad json"),
            ServiceResponse::Ok(Box::new(ScheduleReply {
                id: 1,
                algo: "portfolio/pa".into(),
                makespan: 1234,
                degraded: false,
                deadline_hit: false,
                deadline_met: true,
                service_us: 777,
                phases: vec![PhaseRow {
                    phase: "regions".into(),
                    micros: 42,
                    runs: 1,
                }],
                schedule: Schedule::default(),
            })),
        ];
        for resp in cases {
            let json = serde_json::to_string(&resp).unwrap();
            let back: ServiceResponse = serde_json::from_str(&json).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn stats_hit_rate_and_log_line() {
        let mut stats = ServiceStats::default();
        assert_eq!(stats.deadline_hit_rate_pct(), 100.0);
        stats.deadline_met = 19;
        stats.deadline_missed = 1;
        assert_eq!(stats.deadline_hit_rate_pct(), 95.0);
        let line = stats.log_line();
        assert!(line.contains("deadline hit 95.0%"), "{line}");
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::Oversized,
            ErrorCode::QueueFull,
            ErrorCode::DeadlineUnmeetable,
            ErrorCode::InvalidInstance,
            ErrorCode::SchedulingFailed,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }
}
