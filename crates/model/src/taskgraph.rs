//! Application task graphs.
//!
//! A [`TaskGraph`] is the DAG `G = (T, E)` of §III: nodes are application
//! tasks, arcs are data dependencies. Each task references its available
//! implementations in the instance's [`ImplPool`](crate::ImplPool).
//!
//! The struct here is a plain serializable description; algorithmic
//! machinery (topological order, CPM, delay propagation) lives in
//! `prfpga-dag`, which builds its indexed representation from this one.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::implementation::ImplId;

/// Index of a task inside its [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of an edge inside its [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// One application task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskNode {
    /// Debug/report label.
    pub name: String,
    /// Available implementations (`I_t`); must contain at least one
    /// software implementation per §III's standing assumption.
    pub impls: Vec<ImplId>,
}

/// The application DAG.
///
/// ```
/// use prfpga_model::{ImplId, TaskGraph};
///
/// let mut g = TaskGraph::new();
/// let producer = g.add_task("producer", vec![ImplId(0)]);
/// let consumer = g.add_task("consumer", vec![ImplId(1)]);
/// g.add_edge_with_cost(producer, consumer, 250); // 250-tick transfer
/// assert!(g.validate_structure().is_ok());
/// assert_eq!(g.edge_cost(0), 250);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskGraph {
    /// Tasks, indexed by [`TaskId`].
    pub tasks: Vec<TaskNode>,
    /// Dependency arcs `(from, to)`: `to` consumes data produced by `from`.
    pub edges: Vec<(TaskId, TaskId)>,
    /// Optional per-edge communication cost in ticks, aligned with
    /// `edges`; missing entries mean zero. The cost is charged when the
    /// producer and consumer are *not* co-located on the same core or
    /// region (the §VIII future-work extension — the paper's base model
    /// folds communication into execution times, i.e. all zeros).
    #[serde(default)]
    pub edge_costs: Vec<crate::time::Time>,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task and returns its id.
    pub fn add_task(&mut self, name: impl Into<String>, impls: Vec<ImplId>) -> TaskId {
        let id = TaskId(u32::try_from(self.tasks.len()).expect("too many tasks"));
        self.tasks.push(TaskNode {
            name: name.into(),
            impls,
        });
        id
    }

    /// Adds a dependency arc (zero communication cost); duplicates are
    /// allowed in the description and deduplicated by the DAG substrate.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> EdgeId {
        self.add_edge_with_cost(from, to, 0)
    }

    /// Adds a dependency arc carrying `cost` ticks of communication when
    /// its endpoints are not co-located.
    pub fn add_edge_with_cost(
        &mut self,
        from: TaskId,
        to: TaskId,
        cost: crate::time::Time,
    ) -> EdgeId {
        let id = EdgeId(u32::try_from(self.edges.len()).expect("too many edges"));
        // Keep edge_costs aligned even if earlier edges were added through
        // deserialized descriptions that omitted the field.
        while self.edge_costs.len() < self.edges.len() {
            self.edge_costs.push(0);
        }
        self.edges.push((from, to));
        self.edge_costs.push(cost);
        id
    }

    /// Communication cost of edge `i` (zero when unspecified).
    #[inline]
    pub fn edge_cost(&self, i: usize) -> crate::time::Time {
        self.edge_costs.get(i).copied().unwrap_or(0)
    }

    /// Iterates `(from, to, cost)` triples.
    pub fn edges_with_costs(
        &self,
    ) -> impl Iterator<Item = (TaskId, TaskId, crate::time::Time)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (a, b, self.edge_cost(i)))
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates task ids in index order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Looks up a task.
    #[inline]
    pub fn task(&self, id: TaskId) -> &TaskNode {
        &self.tasks[id.index()]
    }

    /// Structural sanity: edge endpoints in range, no self-loops, no
    /// dependency cycles, and every task has at least one implementation.
    pub fn validate_structure(&self) -> Result<(), ModelError> {
        let n = self.tasks.len() as u32;
        for &(a, b) in &self.edges {
            if a.0 >= n || b.0 >= n {
                return Err(ModelError::DanglingEdge { from: a.0, to: b.0 });
            }
            if a == b {
                return Err(ModelError::SelfLoop { task: a.0 });
            }
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if t.impls.is_empty() {
                return Err(ModelError::NoImplementations { task: i as u32 });
            }
        }
        // Kahn's algorithm: if not every task drains, the arcs carry a cycle.
        let mut indeg = vec![0u32; n as usize];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        for &(a, b) in &self.edges {
            // Duplicates inflate in-degrees symmetrically, which is fine.
            indeg[b.index()] += 1;
            succs[a.index()].push(b.0);
        }
        let mut ready: Vec<u32> = (0..n).filter(|&v| indeg[v as usize] == 0).collect();
        let mut drained = 0u32;
        while let Some(v) = ready.pop() {
            drained += 1;
            for &s in &succs[v as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    ready.push(s);
                }
            }
        }
        if drained != n {
            return Err(ModelError::Cycle);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imp(i: u32) -> Vec<ImplId> {
        vec![ImplId(i)]
    }

    #[test]
    fn build_and_validate() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", imp(0));
        let b = g.add_task("b", imp(1));
        g.add_edge(a, b);
        assert_eq!(g.len(), 2);
        assert!(g.validate_structure().is_ok());
        assert_eq!(g.task(a).name, "a");
        assert_eq!(g.task_ids().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", imp(0));
        g.add_edge(a, a);
        assert!(matches!(
            g.validate_structure(),
            Err(ModelError::SelfLoop { task: 0 })
        ));
    }

    #[test]
    fn rejects_dangling_edge() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", imp(0));
        g.add_edge(a, TaskId(7));
        assert!(matches!(
            g.validate_structure(),
            Err(ModelError::DanglingEdge { from: 0, to: 7 })
        ));
    }

    #[test]
    fn rejects_cycle() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", imp(0));
        let b = g.add_task("b", imp(1));
        let c = g.add_task("c", imp(2));
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, a);
        assert!(matches!(g.validate_structure(), Err(ModelError::Cycle)));
    }

    #[test]
    fn rejects_implementation_free_task() {
        let mut g = TaskGraph::new();
        g.add_task("bare", vec![]);
        assert!(matches!(
            g.validate_structure(),
            Err(ModelError::NoImplementations { task: 0 })
        ));
    }
}
