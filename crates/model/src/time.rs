//! Integral time representation.
//!
//! The whole workspace measures time in *ticks*; one tick is interpreted as
//! one microsecond when instances are derived from real devices, but nothing
//! in the algorithms depends on the physical interpretation. Integral ticks
//! make every scheduler bit-for-bit reproducible.

use serde::{Deserialize, Serialize};

/// A point in (or duration of) schedule time, in ticks.
pub type Time = u64;

/// An inclusive-start, exclusive-end execution window `[min, max)` produced
/// by the Critical Path Method.
///
/// `min` is the earliest tick at which the activity may start; `max` is the
/// latest tick by which it must have *completed* to avoid delaying the
/// schedule (the paper's `[T_MIN, T_MAX]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Earliest start tick (`T_MIN`).
    pub min: Time,
    /// Latest completion tick (`T_MAX`).
    pub max: Time,
}

impl TimeWindow {
    /// Creates a window; panics in debug builds if `min > max`.
    #[inline]
    pub fn new(min: Time, max: Time) -> Self {
        debug_assert!(min <= max, "inverted time window [{min}, {max}]");
        Self { min, max }
    }

    /// Window length (`max - min`), saturating at zero for inverted windows
    /// that can transiently appear while delays propagate.
    #[inline]
    pub fn span(&self) -> Time {
        self.max.saturating_sub(self.min)
    }

    /// Slack available to an activity of duration `exe` inside this window.
    #[inline]
    pub fn slack(&self, exe: Time) -> Time {
        self.span().saturating_sub(exe)
    }

    /// True when an activity of duration `exe` fits in the window.
    #[inline]
    pub fn fits(&self, exe: Time) -> bool {
        self.span() >= exe
    }

    /// True when two windows share at least one tick.
    ///
    /// Windows are treated as half-open intervals `[min, max)`, so windows
    /// that merely touch (`a.max == b.min`) do **not** overlap: a task may
    /// start exactly when its predecessor in the same region finishes being
    /// reconfigured.
    #[inline]
    pub fn overlaps(&self, other: &TimeWindow) -> bool {
        self.min < other.max && other.min < self.max
    }

    /// True when `t` lies inside the half-open window.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.min <= t && t < self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_and_slack() {
        let w = TimeWindow::new(10, 30);
        assert_eq!(w.span(), 20);
        assert_eq!(w.slack(15), 5);
        assert_eq!(w.slack(25), 0);
        assert!(w.fits(20));
        assert!(!w.fits(21));
    }

    #[test]
    fn overlap_is_half_open() {
        let a = TimeWindow::new(0, 10);
        let b = TimeWindow::new(10, 20);
        let c = TimeWindow::new(9, 11);
        assert!(!a.overlaps(&b), "touching windows must not overlap");
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn contains_is_half_open() {
        let w = TimeWindow::new(5, 8);
        assert!(!w.contains(4));
        assert!(w.contains(5));
        assert!(w.contains(7));
        assert!(!w.contains(8));
    }

    #[test]
    fn zero_length_window() {
        let w = TimeWindow::new(7, 7);
        assert_eq!(w.span(), 0);
        assert!(w.fits(0));
        assert!(!w.fits(1));
    }
}
