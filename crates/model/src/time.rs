//! Integral time representation.
//!
//! The whole workspace measures time in *ticks*; one tick is interpreted as
//! one microsecond when instances are derived from real devices, but nothing
//! in the algorithms depends on the physical interpretation. Integral ticks
//! make every scheduler bit-for-bit reproducible.

use serde::{Deserialize, Serialize};

/// A point in (or duration of) schedule time, in ticks.
pub type Time = u64;

/// An inclusive-start, exclusive-end execution window `[min, max)` produced
/// by the Critical Path Method.
///
/// `min` is the earliest tick at which the activity may start; `max` is the
/// latest tick by which it must have *completed* to avoid delaying the
/// schedule (the paper's `[T_MIN, T_MAX]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Earliest start tick (`T_MIN`).
    pub min: Time,
    /// Latest completion tick (`T_MAX`).
    pub max: Time,
}

impl TimeWindow {
    /// Creates a window; panics in debug builds if `min > max`.
    #[inline]
    pub fn new(min: Time, max: Time) -> Self {
        debug_assert!(min <= max, "inverted time window [{min}, {max}]");
        Self { min, max }
    }

    /// Window length (`max - min`), saturating at zero for inverted windows
    /// that can transiently appear while delays propagate.
    #[inline]
    pub fn span(&self) -> Time {
        self.max.saturating_sub(self.min)
    }

    /// Slack available to an activity of duration `exe` inside this window.
    #[inline]
    pub fn slack(&self, exe: Time) -> Time {
        self.span().saturating_sub(exe)
    }

    /// True when an activity of duration `exe` fits in the window.
    #[inline]
    pub fn fits(&self, exe: Time) -> bool {
        self.span() >= exe
    }

    /// Window covering an activity that starts at `start` and runs for
    /// `duration` ticks: `[start, start + duration)`.
    #[inline]
    pub fn from_start(start: Time, duration: Time) -> Self {
        Self::new(start, start + duration)
    }

    /// True when the window covers no tick at all (`min == max`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min >= self.max
    }

    /// True when two windows share at least one tick.
    ///
    /// Windows are treated as half-open intervals `[min, max)`, so windows
    /// that merely touch (`a.max == b.min`) do **not** overlap: a task may
    /// start exactly when its predecessor in the same region finishes being
    /// reconfigured.
    ///
    /// Note the CPM-specific convention for degenerate windows: a
    /// zero-length window strictly inside another is reported as
    /// overlapping (a zero-slack anchor still pins a point in time). For
    /// the set-theoretic predicate where empty windows intersect nothing,
    /// use [`TimeWindow::intersects`].
    #[inline]
    pub fn overlaps(&self, other: &TimeWindow) -> bool {
        self.min < other.max && other.min < self.max
    }

    /// Set intersection test for half-open intervals: true when
    /// `[min, max) ∩ [other.min, other.max)` is non-empty. Unlike
    /// [`TimeWindow::overlaps`], an empty window intersects nothing.
    #[inline]
    pub fn intersects(&self, other: &TimeWindow) -> bool {
        self.min.max(other.min) < self.max.min(other.max)
    }

    /// True when `t` lies inside the half-open window.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.min <= t && t < self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_and_slack() {
        let w = TimeWindow::new(10, 30);
        assert_eq!(w.span(), 20);
        assert_eq!(w.slack(15), 5);
        assert_eq!(w.slack(25), 0);
        assert!(w.fits(20));
        assert!(!w.fits(21));
    }

    #[test]
    fn overlap_is_half_open() {
        let a = TimeWindow::new(0, 10);
        let b = TimeWindow::new(10, 20);
        let c = TimeWindow::new(9, 11);
        assert!(!a.overlaps(&b), "touching windows must not overlap");
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn contains_is_half_open() {
        let w = TimeWindow::new(5, 8);
        assert!(!w.contains(4));
        assert!(w.contains(5));
        assert!(w.contains(7));
        assert!(!w.contains(8));
    }

    #[test]
    fn zero_length_window() {
        let w = TimeWindow::new(7, 7);
        assert_eq!(w.span(), 0);
        assert!(w.fits(0));
        assert!(!w.fits(1));
        assert!(w.is_empty());
        assert!(!TimeWindow::new(7, 8).is_empty());
    }

    #[test]
    fn from_start_builds_half_open_window() {
        assert_eq!(TimeWindow::from_start(5, 10), TimeWindow::new(5, 15));
        assert!(TimeWindow::from_start(5, 0).is_empty());
    }

    #[test]
    fn intersects_ignores_empty_windows() {
        let big = TimeWindow::new(3, 7);
        let empty_inside = TimeWindow::new(5, 5);
        // The CPM convention reports the pinned point as overlapping...
        assert!(empty_inside.overlaps(&big));
        // ...but set intersection is empty.
        assert!(!empty_inside.intersects(&big));
        assert!(!big.intersects(&empty_inside));
        assert!(big.intersects(&TimeWindow::new(6, 9)));
        assert!(
            !big.intersects(&TimeWindow::new(7, 9)),
            "touching is disjoint"
        );
    }
}
