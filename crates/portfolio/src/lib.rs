//! # prfpga-portfolio
//!
//! A deadline-aware portfolio driver: race several schedulers (PA, PA-R,
//! IS-k) on the same instance under one latency budget and keep the best
//! answer available when the budget expires.
//!
//! Related work (Chen et al., Ding et al.) runs multiple partitioning/
//! scheduling/floorplanning strategies and keeps the best result; this
//! crate reproduces that pattern on top of the workspace's cooperative
//! cancellation layer:
//!
//! * every member runs on its own thread (the bench crate's
//!   [`parallel_map`] fan-out) with a *child* [`CancelToken`] of one shared
//!   race token, so a single deadline — or a winner lock — cuts every
//!   member off at its next checkpoint;
//! * PA and PA-R are anytime: cut short, they contribute their best
//!   feasible schedule flagged degraded. IS-k reports a clean
//!   [`SchedError::DeadlineExceeded`] instead;
//! * if no member produced anything (pathologically tight deadlines), the
//!   HEFT list scheduler — a fast, search-free single pass — is the last
//!   resort, so the portfolio returns a valid schedule for every deadline.
//!
//! Two racing modes:
//!
//! * **best-makespan-by-deadline** (default): wait for every member (each
//!   bounded by the deadline) and return the best feasible schedule,
//!   preferring non-degraded results on makespan ties. Deterministic for a
//!   fixed member list and seeds when no deadline fires.
//! * **first-feasible-wins**: the first member to complete with a
//!   non-degraded feasible schedule cancels the rest. Lower latency,
//!   timing-dependent winner.

#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use prfpga_baseline::{HeftScheduler, IsKConfig, IsKScheduler};
use prfpga_model::{CancelToken, ProblemInstance, Schedule, Time};
use prfpga_sched::{parallel_map, ExecPolicy};
use prfpga_sched::{PaRScheduler, PaScheduler, SchedError, SchedWorkspace, SchedulerConfig};

/// One scheduler in the race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Member {
    /// The deterministic PA pipeline with capacity-shrinking restarts.
    Pa,
    /// The randomized PA-R search (serial; seeds come from the shared
    /// [`SchedulerConfig`]).
    PaR,
    /// The IS-k window branch-and-bound with the given window size.
    IsK(usize),
    /// The HEFT-style list scheduler (also the implicit last resort).
    Heft,
}

impl fmt::Display for Member {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Member::Pa => write!(f, "PA"),
            Member::PaR => write!(f, "PA-R"),
            Member::IsK(k) => write!(f, "IS-{k}"),
            Member::Heft => write!(f, "HEFT"),
        }
    }
}

/// Default member set: the paper's three main algorithms, cheapest
/// baseline variant for IS-k.
pub fn default_members() -> Vec<Member> {
    vec![Member::Pa, Member::PaR, Member::IsK(1)]
}

/// Configuration of a [`Portfolio`] run.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// The racing members; empty means [`default_members`].
    pub members: Vec<Member>,
    /// Wall-clock budget for the whole race (`None` = unbounded). Minted
    /// into the shared race token when [`Portfolio::run`] starts.
    pub deadline: Option<Duration>,
    /// Scheduler configuration shared by every member (seeds, iteration
    /// caps, floorplanner settings, …).
    pub sched: SchedulerConfig,
    /// First-feasible-wins mode: the first member finishing with a
    /// non-degraded feasible schedule cancels the rest. Off by default
    /// (best-makespan-by-deadline).
    pub first_feasible_wins: bool,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            members: default_members(),
            deadline: None,
            sched: SchedulerConfig::default(),
            first_feasible_wins: false,
        }
    }
}

/// Per-member diagnostics of one race.
#[derive(Debug, Clone)]
pub struct MemberReport {
    /// Which scheduler ran.
    pub member: Member,
    /// Makespan of the member's schedule (`None` when it produced none).
    pub makespan: Option<Time>,
    /// The member was cut short and returned its anytime result.
    pub degraded: bool,
    /// The member aborted with [`SchedError::DeadlineExceeded`].
    pub deadline_exceeded: bool,
    /// Cancellation checkpoints the member polled on its child token.
    pub cancel_polls: u64,
    /// Checkpoints that observed the fired deadline.
    pub deadline_hits: u64,
    /// Member wall-clock.
    pub elapsed: Duration,
}

/// Result of a portfolio race.
#[derive(Debug, Clone)]
pub struct PortfolioResult {
    /// The winning schedule.
    pub schedule: Schedule,
    /// The member that produced it.
    pub winner: Member,
    /// The winning schedule is an anytime (cut-short) result, or the
    /// HEFT last resort had to step in.
    pub degraded: bool,
    /// At least one member observed the fired deadline.
    pub deadline_hit: bool,
    /// Cancellation polls summed over all member tokens.
    pub cancel_polls: u64,
    /// Deadline hits summed over all member tokens.
    pub deadline_hits: u64,
    /// Wall-clock of the whole race.
    pub elapsed: Duration,
    /// Per-member diagnostics, in member order.
    pub reports: Vec<MemberReport>,
}

impl PortfolioResult {
    /// Renders the race as an aligned plain-text report (used by the CLI's
    /// `--trace`).
    pub fn render_report(&self) -> String {
        let mut out = format!(
            "portfolio: winner {} | makespan {} | degraded {} | deadline {}\n",
            self.winner,
            self.schedule.makespan(),
            if self.degraded { "yes" } else { "no" },
            if self.deadline_hit { "hit" } else { "not hit" },
        );
        out.push_str(&format!(
            "cancellation {} polls / {} deadline hits across members\n",
            self.cancel_polls, self.deadline_hits,
        ));
        out.push_str("member   makespan   degraded   deadline   polls    hits   time [ms]\n");
        for r in &self.reports {
            out.push_str(&format!(
                "{:<8} {:>8} {:>10} {:>10} {:>7} {:>7} {:>11.3}\n",
                r.member.to_string(),
                r.makespan.map_or_else(|| "-".into(), |m| m.to_string()),
                if r.degraded { "yes" } else { "no" },
                if r.deadline_exceeded { "yes" } else { "no" },
                r.cancel_polls,
                r.deadline_hits,
                r.elapsed.as_secs_f64() * 1e3,
            ));
        }
        out
    }
}

/// Pre-warmed per-member scheduler workspaces, so a pooled caller (one
/// race after another on a server worker thread) runs the whole race
/// allocation-free in the steady state. Slot `i` always serves member
/// slot `i`, so PA and PA-R re-hit their own cached base graphs.
#[derive(Debug, Default)]
pub struct PortfolioWorkspaces {
    slots: Vec<SchedWorkspace>,
}

impl PortfolioWorkspaces {
    /// Empty pool; slots are created on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        while self.slots.len() < n {
            self.slots.push(SchedWorkspace::new());
        }
    }

    /// Base-graph reuses summed over member workspaces.
    pub fn reuses(&self) -> u64 {
        self.slots.iter().map(SchedWorkspace::reuses).sum()
    }

    /// Base-graph rebuilds summed over member workspaces.
    pub fn rebuilds(&self) -> u64 {
        self.slots.iter().map(SchedWorkspace::rebuilds).sum()
    }
}

/// The portfolio driver.
#[derive(Debug, Clone, Default)]
pub struct Portfolio {
    config: PortfolioConfig,
}

impl Portfolio {
    /// Creates a portfolio driver.
    pub fn new(config: PortfolioConfig) -> Self {
        Portfolio { config }
    }

    /// Races the configured members on `inst`.
    ///
    /// Always returns a schedule when the instance is valid and acyclic:
    /// anytime members degrade instead of failing, and the HEFT last
    /// resort covers the case where every member was cut off before
    /// producing anything. The returned schedule is sweep-validated in
    /// debug builds.
    pub fn run(&self, inst: &ProblemInstance) -> Result<PortfolioResult, SchedError> {
        self.run_with_cancel_in(inst, &CancelToken::never(), &mut PortfolioWorkspaces::new())
    }

    /// [`Portfolio::run`] with the race token layered under a caller-owned
    /// `parent` and member workspaces drawn from a caller-owned `pool` —
    /// the server entry point: the parent is the per-request token (itself
    /// a child of a per-connection token, so a client disconnect reaches
    /// every member at its next checkpoint), and a worker thread reuses
    /// one pool across requests so the steady state allocates nothing.
    ///
    /// Behaviour is identical to [`Portfolio::run`]: the configured
    /// deadline is minted as a budget *under* `parent` (whichever fires
    /// first wins), and a winner lock in first-feasible mode cancels only
    /// this race, never the parent.
    pub fn run_with_cancel_in(
        &self,
        inst: &ProblemInstance,
        parent: &CancelToken,
        pool: &mut PortfolioWorkspaces,
    ) -> Result<PortfolioResult, SchedError> {
        inst.validate()
            .map_err(|e| SchedError::InvalidInstance(e.to_string()))?;
        let start = Instant::now();
        let members = if self.config.members.is_empty() {
            default_members()
        } else {
            self.config.members.clone()
        };
        let race = match self.config.deadline {
            Some(d) => parent.with_budget(d),
            None => parent.child(),
        };

        // One thread per member; each polls a child of the race token, so
        // the shared deadline — or a winner lock — reaches all of them
        // while per-member poll counters stay separate. Each member slot
        // owns its pooled workspace for the duration of the race (the
        // mutex is uncontended — one lock per item).
        pool.ensure(members.len());
        let items: Vec<(Member, Mutex<&mut SchedWorkspace>)> = members
            .iter()
            .copied()
            .zip(pool.slots.iter_mut().map(Mutex::new))
            .collect();
        let runs: Vec<(MemberReport, Option<Schedule>, Option<SchedError>)> = parallel_map(
            &items,
            ExecPolicy::Threads(items.len()),
            |_, (member, slot)| {
                let token = race.child();
                let t0 = Instant::now();
                let ws = &mut **slot.lock().expect("workspace slot lock");
                let outcome = run_member(*member, inst, &self.config.sched, &token, ws);
                let elapsed = t0.elapsed();
                let (schedule, degraded, deadline_exceeded, error) = match outcome {
                    Ok((s, degraded)) => {
                        if self.config.first_feasible_wins && !degraded {
                            // Winner locked: everyone else is cancelled at
                            // their next checkpoint.
                            race.cancel();
                        }
                        (Some(s), degraded, false, None)
                    }
                    Err(SchedError::DeadlineExceeded) => (None, false, true, None),
                    Err(e) => (None, false, false, Some(e)),
                };
                let report = MemberReport {
                    member: *member,
                    makespan: schedule.as_ref().map(Schedule::makespan),
                    degraded,
                    deadline_exceeded,
                    cancel_polls: token.polls(),
                    deadline_hits: token.deadline_hits(),
                    elapsed,
                };
                (report, schedule, error)
            },
        );

        let mut reports = Vec::with_capacity(runs.len());
        let mut schedules: Vec<Option<Schedule>> = Vec::with_capacity(runs.len());
        let mut first_error = None;
        for (report, schedule, error) in runs {
            reports.push(report);
            schedules.push(schedule);
            if first_error.is_none() {
                first_error = error;
            }
        }

        // Best-makespan winner; on ties prefer non-degraded results, then
        // member order — deterministic for a fixed member list.
        let winner_idx = schedules
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (i, s.makespan())))
            .min_by_key(|&(i, makespan)| (makespan, reports[i].degraded, i))
            .map(|(i, _)| i);

        let (schedule, winner, degraded) = match winner_idx {
            Some(i) => (
                schedules[i].take().expect("winner filter kept Some"),
                members[i],
                reports[i].degraded,
            ),
            // Nothing survived the deadline: the search-free HEFT pass is
            // the guaranteed-terminating last resort. A non-deadline member
            // error (e.g. a cyclic graph) would make HEFT fail identically,
            // so surface the original error in that case.
            None => match HeftScheduler::new().schedule(inst) {
                Ok(s) => (s, Member::Heft, true),
                Err(e) => return Err(first_error.unwrap_or(e)),
            },
        };

        debug_assert!(
            prfpga_sim::validate_schedule_sweep(inst, &schedule).is_ok(),
            "portfolio winner must be a valid schedule"
        );
        let deadline_hit = reports
            .iter()
            .any(|r| r.deadline_hits > 0 || r.deadline_exceeded || r.degraded);
        Ok(PortfolioResult {
            schedule,
            winner,
            degraded,
            deadline_hit,
            cancel_polls: reports.iter().map(|r| r.cancel_polls).sum(),
            deadline_hits: reports.iter().map(|r| r.deadline_hits).sum(),
            elapsed: start.elapsed(),
            reports,
        })
    }
}

/// Runs one member under its child token in the pooled workspace,
/// returning `(schedule, degraded)`. IS-k and HEFT have no workspace
/// variant; their slot stays untouched.
fn run_member(
    member: Member,
    inst: &ProblemInstance,
    cfg: &SchedulerConfig,
    token: &CancelToken,
    ws: &mut SchedWorkspace,
) -> Result<(Schedule, bool), SchedError> {
    match member {
        Member::Pa => PaScheduler::new(cfg.clone())
            .schedule_with_cancel_in(inst, token, ws)
            .map(|r| (r.schedule, r.degraded)),
        Member::PaR => PaRScheduler::new(cfg.clone())
            .schedule_with_cancel_in(inst, token, ws)
            .map(|r| (r.schedule, r.degraded)),
        Member::IsK(k) => IsKScheduler::new(IsKConfig {
            k: k.max(1),
            floorplan: cfg.floorplan.clone(),
            shrink_factor: cfg.shrink_factor,
            max_attempts: cfg.max_attempts,
            ..IsKConfig::is5()
        })
        .schedule_with_cancel(inst, token)
        .map(|r| (r.schedule, false)),
        Member::Heft => HeftScheduler::new().schedule(inst).map(|s| (s, false)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_gen::{GraphConfig, TaskGraphGenerator};
    use prfpga_model::Architecture;
    use prfpga_sim::validate_schedule_sweep;

    fn instance(n: usize, seed: u64) -> ProblemInstance {
        TaskGraphGenerator::new(seed).generate(
            &format!("pf{n}"),
            &GraphConfig::standard(n),
            Architecture::zedboard_pr(),
        )
    }

    fn iter_capped_config() -> SchedulerConfig {
        // Iteration-capped PA-R so runs are deterministic and fast.
        SchedulerConfig {
            max_iterations: 4,
            time_budget: Duration::from_secs(120),
            ..Default::default()
        }
    }

    #[test]
    fn no_deadline_race_returns_best_member() {
        let inst = instance(20, 5);
        let cfg = PortfolioConfig {
            sched: iter_capped_config(),
            ..Default::default()
        };
        let r = Portfolio::new(cfg).run(&inst).unwrap();
        validate_schedule_sweep(&inst, &r.schedule).expect("valid");
        assert!(!r.degraded);
        assert!(!r.deadline_hit);
        assert_eq!(r.deadline_hits, 0);
        assert!(r.cancel_polls > 0, "members polled their tokens");
        // The winner's makespan is the minimum over the member reports.
        let best = r
            .reports
            .iter()
            .filter_map(|m| m.makespan)
            .min()
            .expect("all members complete without a deadline");
        assert_eq!(r.schedule.makespan(), best);
    }

    #[test]
    fn zero_deadline_still_returns_valid_schedule() {
        let inst = instance(25, 7);
        let cfg = PortfolioConfig {
            deadline: Some(Duration::ZERO),
            sched: iter_capped_config(),
            ..Default::default()
        };
        let r = Portfolio::new(cfg).run(&inst).unwrap();
        validate_schedule_sweep(&inst, &r.schedule).expect("valid");
        assert!(r.deadline_hit, "a zero deadline fires on the first poll");
        assert!(r.deadline_hits > 0);
    }

    #[test]
    fn first_feasible_wins_returns_valid_schedule() {
        let inst = instance(15, 9);
        let cfg = PortfolioConfig {
            first_feasible_wins: true,
            sched: iter_capped_config(),
            ..Default::default()
        };
        let r = Portfolio::new(cfg).run(&inst).unwrap();
        validate_schedule_sweep(&inst, &r.schedule).expect("valid");
        assert!(!r.degraded, "some member finished cleanly");
    }

    #[test]
    fn single_member_portfolio_matches_standalone_pa() {
        let inst = instance(20, 11);
        let cfg = PortfolioConfig {
            members: vec![Member::Pa],
            sched: iter_capped_config(),
            ..Default::default()
        };
        let r = Portfolio::new(cfg).run(&inst).unwrap();
        let standalone = PaScheduler::new(iter_capped_config())
            .schedule(&inst)
            .unwrap();
        assert_eq!(r.schedule, standalone);
        assert_eq!(r.winner, Member::Pa);
    }

    #[test]
    fn pooled_races_match_fresh_workspaces() {
        let inst = instance(20, 5);
        let pf = Portfolio::new(PortfolioConfig {
            sched: iter_capped_config(),
            ..Default::default()
        });
        let base = pf.run(&inst).unwrap();

        // One pool, repeated races: byte-identical winners, and the PA /
        // PA-R slots start rewinding instead of rebuilding.
        let mut pool = PortfolioWorkspaces::new();
        for round in 0..3 {
            let r = pf
                .run_with_cancel_in(&inst, &CancelToken::never(), &mut pool)
                .unwrap();
            assert_eq!(r.schedule, base.schedule, "round {round}");
            assert_eq!(r.winner, base.winner, "round {round}");
        }
        assert!(pool.rebuilds() > 0);
        assert!(pool.reuses() > 0, "pooled races must rewind, not rebuild");
    }

    #[test]
    fn cancelled_parent_token_reaches_the_race() {
        let inst = instance(20, 5);
        let pf = Portfolio::new(PortfolioConfig {
            sched: iter_capped_config(),
            ..Default::default()
        });
        let parent = CancelToken::never();
        parent.cancel();
        let mut pool = PortfolioWorkspaces::new();
        let r = pf.run_with_cancel_in(&inst, &parent, &mut pool).unwrap();
        validate_schedule_sweep(&inst, &r.schedule).expect("valid");
        assert!(
            r.degraded,
            "with the parent already fired every member is cut short"
        );
        // The pool survives the cancellation and serves a clean race next.
        let clean = pf
            .run_with_cancel_in(&inst, &CancelToken::never(), &mut pool)
            .unwrap();
        assert_eq!(clean.schedule, pf.run(&inst).unwrap().schedule);
    }

    #[test]
    fn member_labels_render() {
        assert_eq!(Member::Pa.to_string(), "PA");
        assert_eq!(Member::PaR.to_string(), "PA-R");
        assert_eq!(Member::IsK(5).to_string(), "IS-5");
        assert_eq!(Member::Heft.to_string(), "HEFT");
        let inst = instance(10, 13);
        let r = Portfolio::new(PortfolioConfig {
            sched: iter_capped_config(),
            ..Default::default()
        })
        .run(&inst)
        .unwrap();
        let report = r.render_report();
        assert!(report.contains("winner"));
        assert!(report.contains("deadline hits across members"));
    }
}
