//! The commit layer of the solve/commit seam.
//!
//! Phases A–F are a pure decision core: they mutate a [`SchedState`]
//! (implementation choices, regions, sequencing arcs, core mappings) but
//! commit nothing to the controller timeline. Phase G is where decisions
//! become reservations. This module wraps that realization in a *named
//! journal checkpoint* on the controller [`Timeline`], so the batch path
//! is literally "one big commit": every reservation phase G makes lands in
//! the journal between `checkpoint(BATCH)` and `commit(BATCH)`, and a
//! caller that wanted to abandon the realization could `rollback_to` the
//! checkpoint instead.
//!
//! The batch schedulers gain nothing functionally from the journal — they
//! never roll a realization back — which is exactly why the gate
//! ([`SchedulerConfig::solve_commit`]) can guarantee byte-identical
//! schedules: the journal records reservations, it never re-times them.
//! The seam exists for the online repair engine
//! ([`crate::repair::RepairEngine`]), which re-places only an invalidation
//! frontier and uses the same checkpoint/commit discipline per event.
//!
//! [`SchedulerConfig::solve_commit`]: crate::SchedulerConfig::solve_commit

use prfpga_model::Schedule;
use prfpga_timeline::Timeline;

use crate::phases::reconf;
use crate::state::SchedState;

/// Name of the batch pipeline's single commit window.
pub const BATCH_CHECKPOINT: &str = "batch";

/// Applies the decision core's output as one journaled commit: resets the
/// controller lanes, opens the [`BATCH_CHECKPOINT`], runs phase G's timing
/// realization, then commits — reporting the number of journal edits the
/// commit covered to the state's observer. Byte-identical to
/// [`reconf::realize_schedule_in`] by construction.
pub(crate) fn commit_batch(
    state: &SchedState<'_>,
    module_reuse: bool,
    icap: &mut Timeline,
) -> Schedule {
    icap.reset(0, 0, state.controller_lanes());
    icap.checkpoint(BATCH_CHECKPOINT);
    let schedule = reconf::realize_schedule_prepared(state, module_reuse, icap);
    let edits = icap
        .commit(BATCH_CHECKPOINT)
        .expect("the batch checkpoint was opened above");
    state.observer.batch_committed(edits as u64);
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricWeights;
    use crate::phases::impl_select::max_t;
    use prfpga_model::{
        Architecture, Device, ImplPool, Implementation, ProblemInstance, ResourceVec, TaskGraph,
        TaskId,
    };

    /// Chain a -> b sharing one region: one reconfiguration, so the batch
    /// commit covers exactly one journal edit.
    fn chain_state() -> (ProblemInstance, Vec<prfpga_model::ImplId>) {
        let mut pool = ImplPool::new();
        let mut g = TaskGraph::new();
        let sa = pool.add(Implementation::software("sa", 1000));
        let ha = pool.add(Implementation::hardware(
            "ha",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let ta = g.add_task("a", vec![sa, ha]);
        let sb = pool.add(Implementation::software("sb", 1000));
        let hb = pool.add(Implementation::hardware(
            "hb",
            12,
            ResourceVec::new(4, 0, 0),
        ));
        let tb = g.add_task("b", vec![sb, hb]);
        g.add_edge(ta, tb);
        let inst = ProblemInstance::new(
            "commit",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(5, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap();
        (inst, vec![ha, hb])
    }

    #[test]
    fn batch_commit_matches_direct_realization() {
        let (inst, choice) = chain_state();
        let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(&inst));
        let mut st =
            SchedState::new(&inst, &inst.architecture.device, w.clone(), choice.clone()).unwrap();
        st.open_region(TaskId(0), choice[0]);
        st.assign_to_region(TaskId(1), choice[1], 0);

        let mut icap = Timeline::new();
        let committed = commit_batch(&st, false, &mut icap);
        let direct = reconf::realize_schedule_in(&st, false, &mut icap);
        assert_eq!(committed, direct, "journaling must not re-time anything");
        // The commit consumed the checkpoint: the journal survives (the
        // reservations are kept) but the name is gone.
        assert!(icap.edits_since(BATCH_CHECKPOINT).is_none());
    }
}
