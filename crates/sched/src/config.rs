//! Scheduler configuration and ablation switches.

use std::time::Duration;

use prfpga_floorplan::FloorplannerConfig;

/// How hardware tasks are ordered during regions definition (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingPolicy {
    /// The paper's PA ordering: critical tasks first, then by descending
    /// efficiency index (eq. 5) within each class.
    EfficiencyIndex,
    /// PA-R: critical tasks first by efficiency; *non-critical* tasks in a
    /// random order drawn from the given seed (§VI).
    RandomizedNonCritical(u64),
    /// Ablation: inverse efficiency ordering (worst-first) — demonstrates
    /// that the efficiency index carries signal.
    InverseEfficiency,
    /// Ablation: plain task-id order (no intelligence).
    TaskId,
}

/// Which terms of the implementation cost metric (eq. 3) are active.
/// Ablation switch; the paper always uses both terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostPolicy {
    /// Resource term + time term (the paper's metric).
    #[default]
    Full,
    /// Resource term only.
    ResourceOnly,
    /// Time term only (degenerates towards fastest-implementation-first,
    /// the behaviour the paper's Figure 1 warns about).
    TimeOnly,
}

/// Full configuration of the PA / PA-R schedulers.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Ordering of hardware tasks in regions definition.
    pub ordering: OrderingPolicy,
    /// Cost metric variant for implementation selection.
    pub cost_policy: CostPolicy,
    /// Whether phase D (software task balancing) runs.
    pub sw_balancing: bool,
    /// Floorplanner settings for the feasibility check.
    pub floorplan: FloorplannerConfig,
    /// Capacity shrink factor applied when the floorplanner rejects a
    /// solution, as `(numerator, denominator)`; the paper shrinks "by a
    /// constant factor".
    pub shrink_factor: (u64, u64),
    /// Maximum shrink-and-restart attempts before falling back to the
    /// all-software schedule.
    pub max_attempts: usize,
    /// Time budget for PA-R (ignored by the deterministic PA).
    pub time_budget: Duration,
    /// Maximum PA-R iterations regardless of budget (0 = unbounded). This
    /// keeps experiments reproducible: the harness fixes iterations, not
    /// wall-clock.
    pub max_iterations: usize,
    /// Seed for PA-R's ordering randomization.
    pub seed: u64,
    /// Module reuse (the paper's future-work extension): consecutive tasks
    /// in a region that share the same hardware implementation skip the
    /// intervening reconfiguration, and regions whose in-place module
    /// already matches are preferred during regions definition. Off by
    /// default — the paper's PA does not exploit reuse (§VII-A).
    pub module_reuse: bool,
    /// Reuse one [`SchedWorkspace`] across restarts/iterations and memoize
    /// floorplan-feasibility verdicts. Results are byte-identical either
    /// way; the switch exists so the fresh-allocation path stays testable
    /// as the differential baseline.
    ///
    /// [`SchedWorkspace`]: crate::SchedWorkspace
    pub workspace_reuse: bool,
    /// Route graph queries through the frozen CSR view and the bitset
    /// reachability closure — the 10k–100k-task fast paths (initial CPM
    /// over packed adjacency, `O(1)` reachability probes and cycle checks).
    /// Schedules are byte-identical either way; the switch keeps the
    /// adjacency+DFS path testable as the differential baseline.
    pub csr_paths: bool,
    /// Run the pipeline through the solve/commit seam: phases A–F stay a
    /// pure decision core and phase G's timing realization is applied as
    /// one named-checkpoint commit on the controller timeline's journal —
    /// the seam the online repair engine builds on. Schedules are
    /// byte-identical either way (the journal records, it never re-times);
    /// the switch keeps the direct-realization path testable as the
    /// differential baseline.
    pub solve_commit: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            ordering: OrderingPolicy::EfficiencyIndex,
            cost_policy: CostPolicy::Full,
            sw_balancing: true,
            floorplan: FloorplannerConfig::default(),
            shrink_factor: (85, 100),
            max_attempts: 8,
            time_budget: Duration::from_secs(2),
            max_iterations: 0,
            seed: 0xAC0_FFEE,
            module_reuse: false,
            workspace_reuse: true,
            csr_paths: true,
            solve_commit: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_configuration() {
        let c = SchedulerConfig::default();
        assert_eq!(c.ordering, OrderingPolicy::EfficiencyIndex);
        assert_eq!(c.cost_policy, CostPolicy::Full);
        assert!(c.sw_balancing);
        assert!(c.shrink_factor.0 < c.shrink_factor.1);
        assert!(c.max_attempts > 0);
    }
}
