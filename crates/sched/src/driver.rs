//! The deterministic PA scheduler driver: pipeline + feasibility loop
//! (§V, §V-H).

use std::sync::Arc;
use std::time::{Duration, Instant};

use prfpga_floorplan::{
    FeasibilityCache, FloorplanOutcome, Floorplanner, Rect, DEFAULT_CACHE_CAPACITY,
};
use prfpga_model::{CancelToken, Device, Platform, ProblemInstance, ResourceVec, Schedule};

use prfpga_model::ImplId;

use crate::commit;
use crate::config::{OrderingPolicy, SchedulerConfig};
use crate::error::SchedError;
use crate::metrics::MetricWeights;
use crate::phases::{impl_select, partition, reconf, regions, sw_balance, sw_map};
use crate::state::{SchedState, SchedWorkspace};
use crate::trace::{ObserverHandle, Phase, PhaseTrace, TraceRecorder};

/// Memoized phase-A output for one `(instance, virtual capacity)` pair.
///
/// Implementation selection depends only on the instance and the virtual
/// device capacity, so a loop that re-runs the pipeline at an unchanged
/// capacity (PA-R between ratchet shrinks) can replay the previous choice
/// instead of re-scoring every implementation. The memo is owned by the
/// scheduling loop — never by the workspace — because a workspace may
/// legally be re-targeted at a different instance with the same capacity,
/// which would silently serve a stale selection.
#[derive(Debug, Default)]
pub(crate) struct ImplSelectMemo {
    /// Capacity the entry was computed against, plus the derived weights.
    cached: Option<(ResourceVec, MetricWeights)>,
    choice: Vec<ImplId>,
}

/// Result of a PA run, with the timing split reported in the paper's
/// Table I (scheduling time vs floorplanning time).
#[derive(Debug, Clone)]
pub struct PaResult {
    /// The floorplan-feasible schedule.
    pub schedule: Schedule,
    /// Wall-clock spent in the scheduling pipeline (phases A–G), summed
    /// over restarts.
    pub scheduling_time: Duration,
    /// Wall-clock spent in the floorplanner (phase H), summed over
    /// restarts.
    pub floorplanning_time: Duration,
    /// Number of pipeline runs (1 = no capacity shrink was needed).
    pub attempts: usize,
    /// Witness placement for the final region set (empty when the device
    /// carries no geometry).
    pub floorplan: Vec<Rect>,
    /// Per-phase wall-clock and structural counters, summed over restarts
    /// (phase H's time equals `floorplanning_time`; the scheduling phases
    /// account for `scheduling_time` minus loop scaffolding).
    pub trace: PhaseTrace,
    /// True when the run's [`CancelToken`] fired mid-search and the
    /// returned schedule is an *anytime* result — the best feasible answer
    /// available at cancellation time — rather than the full search's
    /// output. Always `false` when no deadline was set.
    pub degraded: bool,
}

/// The deterministic scheduler (*PA*).
#[derive(Debug, Clone, Default)]
pub struct PaScheduler {
    config: SchedulerConfig,
    /// Built once from `config.floorplan` so the restart loop does not
    /// re-clone the floorplanner configuration per call.
    planner: Floorplanner,
}

impl PaScheduler {
    /// Creates a PA scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        let planner = Floorplanner::new(config.floorplan.clone());
        PaScheduler { config, planner }
    }

    /// Schedules `inst`, returning only the schedule.
    pub fn schedule(&self, inst: &ProblemInstance) -> Result<Schedule, SchedError> {
        self.schedule_detailed(inst).map(|r| r.schedule)
    }

    /// Schedules `inst` with full diagnostics.
    ///
    /// Runs the eight-phase pipeline; if the floorplanner rejects the
    /// resulting region set, the pipeline restarts with the virtual device
    /// capacity shrunk by the configured factor (§V-H). After
    /// `max_attempts` the all-software schedule (zero virtual capacity,
    /// trivially floorplannable) is returned.
    pub fn schedule_detailed(&self, inst: &ProblemInstance) -> Result<PaResult, SchedError> {
        self.schedule_with_cancel(inst, &CancelToken::never())
    }

    /// [`schedule_detailed`](Self::schedule_detailed) honouring a
    /// cooperative [`CancelToken`].
    ///
    /// The restart loop polls `cancel` before each pipeline run, between the
    /// pipeline and the floorplanner, and after a non-feasible verdict; the
    /// floorplanner's exact search additionally polls it once per node. When
    /// the token fires, PA is *anytime*: it runs the (bounded, floorplan-
    /// free) all-software fallback pipeline once and returns that trivially
    /// feasible schedule flagged [`PaResult::degraded`] instead of erroring.
    /// With a never-firing token the result is byte-identical to
    /// [`schedule_detailed`](Self::schedule_detailed).
    pub fn schedule_with_cancel(
        &self,
        inst: &ProblemInstance,
        cancel: &CancelToken,
    ) -> Result<PaResult, SchedError> {
        let mut ws = SchedWorkspace::new();
        self.schedule_with_cancel_in(inst, cancel, &mut ws)
    }

    /// [`schedule_with_cancel`](Self::schedule_with_cancel) against a
    /// caller-owned [`SchedWorkspace`].
    ///
    /// Every exit — feasible, degraded, or cancelled — leaves `ws` rewound
    /// and reusable: a subsequent un-cancelled run through the same
    /// workspace produces a byte-identical schedule (the cancellation-sweep
    /// harness asserts exactly this).
    pub fn schedule_with_cancel_in(
        &self,
        inst: &ProblemInstance,
        cancel: &CancelToken,
        ws: &mut SchedWorkspace,
    ) -> Result<PaResult, SchedError> {
        inst.validate()
            .map_err(|e| SchedError::InvalidInstance(e.to_string()))?;

        let real_device = &inst.architecture.device;
        let real_platform = inst.architecture.platform.as_ref();
        // One owned device, ratcheted down in place — the restart loop no
        // longer clones name/geometry per attempt. On platform instances a
        // virtual platform shadows it in lockstep, so the per-fabric
        // capacity checks shrink together with the relaxation device.
        let mut virtual_device = real_device.clone();
        let mut virtual_platform = inst.architecture.platform.clone();
        let mut scheduling_time = Duration::ZERO;
        let mut floorplanning_time = Duration::ZERO;
        let recorder = Arc::new(TraceRecorder::new());
        let observer = ObserverHandle::new(recorder.clone());
        // Deltas, not absolutes: the caller may reuse one token across
        // several runs (the portfolio does), so the trace reports only this
        // call's share of the counters.
        let polls0 = cancel.polls();
        let hits0 = cancel.deadline_hits();
        // Per-call reuse machinery, both gated on `workspace_reuse` so the
        // fresh-allocation path stays available as a differential baseline.
        let mut cache = self
            .config
            .workspace_reuse
            .then(|| FeasibilityCache::new(self.planner.clone(), DEFAULT_CACHE_CAPACITY));

        let run_pipeline =
            |ws: &mut SchedWorkspace, device: &Device, platform: Option<&Platform>| {
                if self.config.workspace_reuse {
                    // No memo here: the restart loop shrinks the capacity on
                    // every retry, so no two attempts share a phase-A input.
                    do_schedule_in(
                        ws,
                        inst,
                        device,
                        platform,
                        &self.config,
                        self.config.ordering,
                        &observer,
                        None,
                    )
                } else {
                    do_schedule_traced(
                        inst,
                        device,
                        platform,
                        &self.config,
                        self.config.ordering,
                        &observer,
                    )
                }
            };
        let report_stats = |ws: &SchedWorkspace, cache: &Option<FeasibilityCache>| {
            let stats = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
            observer.workspace_stats(ws.reuses(), stats.hits, stats.misses);
            observer.cancel_stats(cancel.polls() - polls0, cancel.deadline_hits() - hits0);
        };

        // Pipeline runs performed so far; the fallback below is run number
        // `runs + 1` whether the loop ran to exhaustion or was cut short.
        let mut runs = 0usize;
        let mut degraded = false;
        'search: {
            for attempt in 1..=self.config.max_attempts.max(1) {
                if cancel.is_cancelled() {
                    degraded = true;
                    break 'search;
                }
                observer.pipeline_started(attempt);
                runs = attempt;
                let t0 = Instant::now();
                let schedule = run_pipeline(ws, &virtual_device, virtual_platform.as_ref());
                scheduling_time += t0.elapsed();

                // Poll before paying for the floorplanner: a deadline that
                // fired during the pipeline must not charge a (possibly
                // long) exact placement search to an expired budget.
                if cancel.is_cancelled() {
                    degraded = true;
                    break 'search;
                }
                let demands: Vec<ResourceVec> = schedule.regions.iter().map(|r| r.res).collect();
                let fabrics: Vec<u32> = schedule.regions.iter().map(|r| r.fabric).collect();
                let t1 = Instant::now();
                // Memoized feasibility: within one call only Infeasible
                // verdicts can repeat (a Feasible one would have ended the
                // loop), so any Feasible witness returned below comes from a
                // cold solve — byte-identical to the uncached path. Platform
                // instances place each fabric's regions against that
                // fabric's own device.
                let outcome = match (cache.as_mut(), real_platform) {
                    (Some(c), Some(p)) => c.check_platform_cancel(p, &demands, &fabrics, cancel),
                    (Some(c), None) => c.check_device_cancel(real_device, &demands, cancel),
                    (None, Some(p)) => self
                        .planner
                        .check_platform_cancel(p, &demands, &fabrics, cancel),
                    (None, None) => self
                        .planner
                        .check_device_cancel(real_device, &demands, cancel),
                };
                let fp_elapsed = t1.elapsed();
                floorplanning_time += fp_elapsed;
                observer.phase_finished(Phase::Floorplan, fp_elapsed);

                if let FloorplanOutcome::Feasible(rects) = outcome {
                    report_stats(ws, &cache);
                    return Ok(PaResult {
                        schedule,
                        scheduling_time,
                        floorplanning_time,
                        attempts: attempt,
                        floorplan: rects,
                        trace: recorder.snapshot(),
                        degraded: false,
                    });
                }
                // A Timeout induced by the token firing mid-solve is a
                // statement about the clock, not the capacity: checking here
                // keeps it from consuming a ratchet shrink.
                if cancel.is_cancelled() {
                    degraded = true;
                    break 'search;
                }
                let (num, den) = self.config.shrink_factor;
                virtual_device.scale_capacity_in_place(num, den);
                if let Some(p) = virtual_platform.as_mut() {
                    p.scale_capacity_in_place(num, den);
                }
            }
        }

        // All-software fallback: zero virtual capacity forces every task to
        // software; no regions, trivially feasible, no floorplan query. On
        // the cancelled path this one bounded pipeline pass is the price of
        // the anytime guarantee — PA always returns a valid schedule.
        let attempts = runs + 1;
        observer.pipeline_started(attempts);
        let t0 = Instant::now();
        virtual_device.max_res = ResourceVec::ZERO;
        if let Some(p) = virtual_platform.as_mut() {
            p.zero_capacity_in_place();
        }
        let schedule = run_pipeline(ws, &virtual_device, virtual_platform.as_ref());
        scheduling_time += t0.elapsed();
        debug_assert!(schedule.regions.is_empty());
        report_stats(ws, &cache);
        Ok(PaResult {
            schedule,
            scheduling_time,
            floorplanning_time,
            attempts,
            floorplan: vec![],
            trace: recorder.snapshot(),
            degraded,
        })
    }
}

/// One run of the scheduling pipeline (phases A–G) against a virtual
/// device capacity; shared by PA and PA-R (`doSchedule` in Algorithm 1).
/// Untraced: phase events go to the no-op observer.
pub(crate) fn do_schedule(
    inst: &ProblemInstance,
    virtual_device: &Device,
    virtual_platform: Option<&Platform>,
    config: &SchedulerConfig,
    ordering: OrderingPolicy,
) -> Schedule {
    do_schedule_traced(
        inst,
        virtual_device,
        virtual_platform,
        config,
        ordering,
        &ObserverHandle::noop(),
    )
}

/// [`do_schedule`] with phase events reported to `observer`. Runs against
/// a throwaway workspace, so every buffer is freshly allocated — the
/// differential baseline for [`do_schedule_in`].
pub(crate) fn do_schedule_traced(
    inst: &ProblemInstance,
    virtual_device: &Device,
    virtual_platform: Option<&Platform>,
    config: &SchedulerConfig,
    ordering: OrderingPolicy,
    observer: &ObserverHandle,
) -> Schedule {
    let mut ws = SchedWorkspace::new();
    do_schedule_in(
        &mut ws,
        inst,
        virtual_device,
        virtual_platform,
        config,
        ordering,
        observer,
        None,
    )
}

/// The scheduling pipeline against caller-owned buffers: `ws` supplies
/// every heap structure of the run and receives them back afterwards, so
/// a loop threading one workspace through repeated calls is
/// allocation-free in the steady state. Byte-identical to
/// [`do_schedule_traced`] by construction.
///
/// Structured as solve-then-commit: [`solve_in`] runs the pure decision
/// core (phases A–F, no timeline reservations), then phase G's timing
/// realization is applied — as one journaled batch commit behind
/// [`SchedulerConfig::solve_commit`], directly otherwise. Identical
/// schedules either way; the seam exists for the online repair engine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn do_schedule_in(
    ws: &mut SchedWorkspace,
    inst: &ProblemInstance,
    virtual_device: &Device,
    virtual_platform: Option<&Platform>,
    config: &SchedulerConfig,
    ordering: OrderingPolicy,
    observer: &ObserverHandle,
    memo: Option<&mut ImplSelectMemo>,
) -> Schedule {
    let state = solve_in(
        ws,
        inst,
        virtual_device,
        virtual_platform,
        config,
        ordering,
        observer,
        memo,
    );

    // Phase G — reconfiguration scheduling / timing realization: the only
    // point where decisions become timeline reservations (the commit).
    let schedule = if config.solve_commit {
        commit::commit_batch(&state, config.module_reuse, &mut ws.reconf_timeline)
    } else {
        reconf::realize_schedule_in(&state, config.module_reuse, &mut ws.reconf_timeline)
    };
    state.recycle(ws);
    schedule
}

/// The pure decision core: phases A–F against `ws`'s buffers. Mutates only
/// the [`SchedState`] it returns — implementation choices, regions,
/// sequencing arcs, core mappings — and reserves nothing on the controller
/// timeline; the caller owns the commit (phase G).
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_in<'a>(
    ws: &mut SchedWorkspace,
    inst: &'a ProblemInstance,
    virtual_device: &'a Device,
    virtual_platform: Option<&'a Platform>,
    config: &SchedulerConfig,
    ordering: OrderingPolicy,
    observer: &ObserverHandle,
    memo: Option<&mut ImplSelectMemo>,
) -> SchedState<'a> {
    // Phase A — implementation selection, into the workspace's buffer.
    // A memo hit replays the stored choice; phase A is deterministic in
    // `(inst, max_res)`, so the replay is byte-identical to re-running it.
    let mut choice = ws.take_impl_choice();
    let weights = match memo {
        Some(memo)
            if memo
                .cached
                .as_ref()
                .is_some_and(|(res, _)| *res == virtual_device.max_res) =>
        {
            let t0 = Instant::now();
            choice.clear();
            choice.extend_from_slice(&memo.choice);
            let weights = memo.cached.as_ref().expect("guard checked").1.clone();
            observer.phase_finished(Phase::ImplSelect, t0.elapsed());
            weights
        }
        memo => {
            let weights = impl_select::run_phase_into(
                inst,
                virtual_device,
                config.cost_policy,
                observer,
                &mut choice,
            );
            if let Some(memo) = memo {
                memo.cached = Some((virtual_device.max_res, weights.clone()));
                memo.choice.clear();
                memo.choice.extend_from_slice(&choice);
            }
            weights
        }
    };

    // Phase B — critical path extraction (CPM inside the state).
    let t0 = Instant::now();
    let mut state = SchedState::from_workspace_with(
        inst,
        virtual_device,
        weights,
        choice,
        ws,
        config.csr_paths,
    )
    .expect("instance validated by the driver");
    observer.phase_finished(Phase::CriticalPath, t0.elapsed());
    state.module_reuse = config.module_reuse;
    state.platform = virtual_platform;
    state.observer = observer.clone();
    // The workspace-reuse fast path also maintains CPM incrementally per
    // mutation instead of recomputing from scratch; identical windows
    // either way, so `workspace_reuse: false` stays a faithful
    // fresh-allocation oracle for the differential tests.
    state.incremental = config.workspace_reuse;

    // Fabric partition — assigns tasks to platform fabrics ahead of region
    // formation (no-op, and untraced, without a platform).
    partition::partition_tasks(&mut state);

    // Phase C — regions definition.
    regions::define_regions(&mut state, ordering);

    // Phase D — software task balancing.
    if config.sw_balancing {
        sw_balance::balance_software_tasks(&mut state);
    }

    // Phase E — start/end anchoring is implicit: every consumer below works
    // from the current CPM windows (`T_START = T_MIN`).

    // Phase F — software task mapping.
    sw_map::map_software_tasks(&mut state);

    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_gen::{GraphConfig, TaskGraphGenerator};
    use prfpga_model::Architecture;
    use prfpga_sim::validate_schedule;

    #[test]
    fn schedules_generated_instances_validly() {
        let pa = PaScheduler::new(SchedulerConfig::default());
        for n in [5usize, 15, 30] {
            let inst = TaskGraphGenerator::new(42).generate(
                &format!("d{n}"),
                &GraphConfig::standard(n),
                Architecture::zedboard(),
            );
            let res = pa.schedule_detailed(&inst).expect("schedulable");
            validate_schedule(&inst, &res.schedule).expect("valid schedule");
            assert!(res.schedule.makespan() > 0);
            assert!(res.attempts >= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let inst = TaskGraphGenerator::new(7).generate(
            "det",
            &GraphConfig::standard(25),
            Architecture::zedboard(),
        );
        let pa = PaScheduler::new(SchedulerConfig::default());
        let a = pa.schedule(&inst).unwrap();
        let b = pa.schedule(&inst).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn uses_hardware_when_beneficial() {
        let inst = TaskGraphGenerator::new(9).generate(
            "hwuse",
            &GraphConfig::standard(20),
            Architecture::zedboard(),
        );
        let pa = PaScheduler::new(SchedulerConfig::default());
        let s = pa.schedule(&inst).unwrap();
        assert!(
            s.hardware_task_count() > 0,
            "generated HW impls are faster than SW; some must be used"
        );
    }

    #[test]
    fn rejects_invalid_instance() {
        use prfpga_model::{Device, ImplPool, ResourceVec, TaskGraph};
        let mut pool = ImplPool::new();
        let h = pool.add(prfpga_model::Implementation::hardware(
            "h",
            1,
            ResourceVec::new(1, 0, 0),
        ));
        let mut g = TaskGraph::new();
        g.add_task("t", vec![h]); // no software implementation
        let inst = ProblemInstance {
            name: "bad".into(),
            architecture: Architecture::new(1, Device::tiny_test(ResourceVec::new(5, 0, 0), 1)),
            graph: g,
            impls: pool,
        };
        let pa = PaScheduler::new(SchedulerConfig::default());
        assert!(matches!(
            pa.schedule(&inst),
            Err(SchedError::InvalidInstance(_))
        ));
    }

    #[test]
    fn all_sw_fallback_under_zero_capacity() {
        // A device with zero capacity from the start: phase C sends every
        // task to software and the schedule has no regions.
        let mut inst = TaskGraphGenerator::new(3).generate(
            "zero",
            &GraphConfig::standard(10),
            Architecture::zedboard(),
        );
        inst.architecture.device.max_res = ResourceVec::ZERO;
        // Hardware impls no longer fit the device; validation would reject
        // them, so strip hardware implementations from the tasks.
        for t in &mut inst.graph.tasks {
            t.impls.retain(|&i| inst.impls.get(i).is_software());
        }
        let pa = PaScheduler::new(SchedulerConfig::default());
        let s = pa.schedule(&inst).unwrap();
        assert!(s.regions.is_empty());
        assert!(s.reconfigurations.is_empty());
        validate_schedule(&inst, &s).expect("valid");
    }

    #[test]
    fn timing_split_is_reported() {
        let inst = TaskGraphGenerator::new(5).generate(
            "times",
            &GraphConfig::standard(30),
            Architecture::zedboard(),
        );
        let pa = PaScheduler::new(SchedulerConfig::default());
        let r = pa.schedule_detailed(&inst).unwrap();
        // Both clocks ticked (floorplanning may be sub-millisecond but the
        // duration fields must exist and the sum be nonzero).
        assert!(r.scheduling_time + r.floorplanning_time > Duration::ZERO);
    }

    #[test]
    fn trace_covers_scheduling_time() {
        // The per-phase timings must account for (nearly) all of the
        // driver-measured scheduling time: only loop scaffolding (a clone
        // of the device, the observer bookkeeping itself) sits between the
        // two clocks. 95% is the acceptance bar; large instances keep the
        // fixed overhead negligible even in debug builds.
        let inst = TaskGraphGenerator::new(21).generate(
            "trace",
            &GraphConfig::standard(60),
            Architecture::zedboard(),
        );
        let pa = PaScheduler::new(SchedulerConfig::default());
        let r = pa.schedule_detailed(&inst).unwrap();
        let traced = r.trace.scheduling_phase_time();
        assert!(
            traced <= r.scheduling_time,
            "phases are timed inside the driver's clock"
        );
        assert!(
            traced.as_secs_f64() >= 0.95 * r.scheduling_time.as_secs_f64(),
            "phase timings ({traced:?}) must cover >=95% of scheduling_time ({:?})",
            r.scheduling_time
        );
    }

    #[test]
    fn floorplan_cache_hits_under_capacity_ratchet() {
        use prfpga_model::{
            Device, FabricColumn, FabricGeometry, ImplPool, Implementation, ResourceVec, TaskGraph,
        };
        // The geometry offers a single CLB column (50 CLB placeable), but
        // the schedulable capacity claims 200 CLB: 60-CLB regions pass
        // every capacity check yet can never be floorplanned. The restart
        // ratchet therefore reproduces the same demand multiset across
        // several attempts — exactly the repetition the memoization cache
        // exists for.
        let mut device = Device::tiny_test(ResourceVec::new(200, 0, 0), 10);
        device.geometry = Some(FabricGeometry {
            columns: vec![FabricColumn::Clb],
            rows: 1,
        });
        let mut pool = ImplPool::new();
        let mut g = TaskGraph::new();
        for i in 0..2 {
            let sw = pool.add(Implementation::software(format!("s{i}"), 1000));
            let hw = pool.add(Implementation::hardware(
                format!("h{i}"),
                10,
                ResourceVec::new(60, 0, 0),
            ));
            g.add_task(format!("t{i}"), vec![sw, hw]);
        }
        let inst = ProblemInstance::new("ratchet", Architecture::new(1, device), g, pool).unwrap();

        let pa = PaScheduler::new(SchedulerConfig::default());
        let r = pa.schedule_detailed(&inst).unwrap();
        validate_schedule(&inst, &r.schedule).expect("valid");
        assert!(
            r.schedule.regions.is_empty(),
            "unplaceable regions end in the all-software fallback"
        );
        assert!(
            r.trace.fp_cache_hits > 0,
            "repeated demand multisets must hit the cache (trace: {:?})",
            r.trace
        );
        assert!(
            r.trace.fp_cache_misses > 0,
            "first query of each multiset is cold"
        );
        assert_eq!(
            r.trace.workspace_reuses,
            (r.attempts - 1) as u64,
            "every run after the first rewinds the workspace"
        );

        // The fresh-allocation baseline must agree byte-for-byte and
        // report no reuse.
        let fresh = PaScheduler::new(SchedulerConfig {
            workspace_reuse: false,
            ..Default::default()
        })
        .schedule_detailed(&inst)
        .unwrap();
        assert_eq!(fresh.schedule, r.schedule);
        assert_eq!(fresh.attempts, r.attempts);
        assert_eq!(fresh.trace.fp_cache_hits, 0);
        assert_eq!(fresh.trace.workspace_reuses, 0);
    }

    #[test]
    fn trace_counters_match_schedule() {
        let inst = TaskGraphGenerator::new(8).generate(
            "tracecnt",
            &GraphConfig::standard(40),
            Architecture::zedboard(),
        );
        let pa = PaScheduler::new(SchedulerConfig::default());
        let r = pa.schedule_detailed(&inst).unwrap();
        let t = &r.trace;
        assert_eq!(t.attempts, r.attempts);
        assert_eq!(t.regions, r.schedule.regions.len());
        assert_eq!(t.reconfigurations, r.schedule.reconfigurations.len());
        assert_eq!(t.sw_tasks + t.hw_tasks, inst.graph.len());
        // Balancing may hoist tasks after regions definition, so the final
        // schedule can only have MORE hardware tasks than phase C reported.
        assert!(r.schedule.hardware_task_count() >= t.hw_tasks);
        assert_eq!(
            r.schedule.hardware_task_count(),
            t.hw_tasks + t.balance_moves
        );
        // Every scheduling phase ran once per attempt; floorplanning runs
        // once per non-fallback attempt.
        use crate::trace::Phase;
        assert_eq!(t.phase_runs[Phase::Regions.index()] as usize, r.attempts);
        assert_eq!(t.time(Phase::Floorplan), r.floorplanning_time);
    }
}

#[cfg(test)]
mod module_reuse_tests {
    use super::*;
    use crate::config::SchedulerConfig;
    use prfpga_model::{Architecture, Device, ImplPool, Implementation, ResourceVec, TaskGraph};
    use prfpga_sim::validate_schedule;

    /// A chain of three tasks sharing one hardware implementation on a
    /// device with room for a single region.
    fn shared_impl_chain() -> ProblemInstance {
        let mut pool = ImplPool::new();
        let sw = pool.add(Implementation::software("sw", 1000));
        let hw = pool.add(Implementation::hardware(
            "hw",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let mut g = TaskGraph::new();
        let mut prev = None;
        for i in 0..3 {
            let t = g.add_task(format!("t{i}"), vec![sw, hw]);
            if let Some(p) = prev {
                g.add_edge(p, t);
            }
            prev = Some(t);
        }
        ProblemInstance::new(
            "pa-reuse",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(5, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap()
    }

    #[test]
    fn module_reuse_removes_reconfigurations() {
        let inst = shared_impl_chain();
        let with = PaScheduler::new(SchedulerConfig {
            module_reuse: true,
            ..Default::default()
        })
        .schedule(&inst)
        .unwrap();
        validate_schedule(&inst, &with).expect("valid");
        assert!(
            with.reconfigurations.is_empty(),
            "same module back-to-back needs no reconfiguration"
        );
        assert_eq!(with.makespan(), 30);
    }

    #[test]
    fn module_reuse_never_hurts_generated_instances() {
        use prfpga_gen::{GraphConfig, TaskGraphGenerator};
        for seed in [1u64, 2, 3] {
            let inst = TaskGraphGenerator::new(seed).generate(
                "reuse",
                &GraphConfig::standard(30),
                Architecture::zedboard_pr(),
            );
            let off = PaScheduler::new(SchedulerConfig::default())
                .schedule(&inst)
                .unwrap();
            let on = PaScheduler::new(SchedulerConfig {
                module_reuse: true,
                ..Default::default()
            })
            .schedule(&inst)
            .unwrap();
            validate_schedule(&inst, &on).expect("valid");
            // Reuse removes reconfigurations; placements also shift, so a
            // strict makespan guarantee does not exist — but the reconfig
            // count on identical placements cannot grow. Assert the weaker
            // and always-true property: both are valid, and reuse never
            // schedules MORE reconfigurations than tasks.
            assert!(on.reconfigurations.len() <= on.hardware_task_count());
            let _ = off;
        }
    }
}
