//! Scheduler error type.

use std::fmt;

/// Errors surfaced by the PA / PA-R drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The task-graph description contains a dependency cycle.
    CyclicTaskGraph,
    /// No floorplan-feasible schedule was found within the configured
    /// attempts and the all-software fallback was impossible (can only
    /// happen on instances that fail validation, which the drivers reject
    /// up front).
    NoFeasibleSchedule,
    /// The instance failed semantic validation.
    InvalidInstance(String),
    /// A cooperative [`CancelToken`](prfpga_model::CancelToken) fired before
    /// any schedule (even a degraded one) could be produced. The workspace is
    /// left rewound and reusable.
    DeadlineExceeded,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::CyclicTaskGraph => write!(f, "task graph contains a cycle"),
            SchedError::NoFeasibleSchedule => write!(f, "no feasible schedule found"),
            SchedError::InvalidInstance(msg) => write!(f, "invalid instance: {msg}"),
            SchedError::DeadlineExceeded => {
                write!(f, "deadline exceeded before a schedule was found")
            }
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SchedError::CyclicTaskGraph.to_string().contains("cycle"));
        assert!(SchedError::InvalidInstance("x".into())
            .to_string()
            .contains('x'));
    }
}
