//! Parallel suite execution.
//!
//! The experiment binaries fan independent work items (one instance
//! running its full set of algorithms, one sweep point, …) over a pool of
//! scoped worker threads that pull items from a shared queue. Results are
//! merged back **by item index**, so the output of [`parallel_map`] is
//! identical to the serial `items.iter().map(f)` regardless of thread
//! count or completion order — schedules, makespans and report tables do
//! not depend on the execution policy, only wall-clock measurements do.
//!
//! Policy selection: `--threads N` / `--serial` on any experiment binary,
//! the `PRFPGA_THREADS` environment variable, or the machine's available
//! parallelism, in that order of precedence. Timing-sensitive studies
//! (Table I wall-clocks, the Fig. 6 convergence traces) are most faithful
//! under `--serial`, since concurrent workers contend for cores; the
//! parallel default is for fast qualitative runs.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// How a suite run distributes its work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Run every item on the calling thread, in order.
    Serial,
    /// Fan items over this many worker threads (at least 1).
    Threads(usize),
}

impl ExecPolicy {
    /// Worker count this policy resolves to.
    pub fn threads(self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Threads(n) => n.max(1),
        }
    }

    /// The machine's available parallelism (1 when unknown).
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Policy from `PRFPGA_THREADS` (`serial`, or a thread count), falling
    /// back to the available parallelism.
    ///
    /// A meaningless value — `0`, or anything that parses as neither
    /// `serial` nor a number — falls back to the available parallelism
    /// with a warning on stderr; it never panics and never silently means
    /// "serial".
    pub fn from_env() -> ExecPolicy {
        let var = std::env::var("PRFPGA_THREADS").ok();
        let (policy, warning) = Self::from_env_value(var.as_deref());
        if let Some(w) = warning {
            eprintln!("warning: {w}");
        }
        policy
    }

    /// The decision behind [`ExecPolicy::from_env`], side-effect free:
    /// maps the raw variable value (`None` = unset) to a policy plus the
    /// warning to print, if the value was meaningless.
    pub fn from_env_value(value: Option<&str>) -> (ExecPolicy, Option<String>) {
        match value {
            None => (ExecPolicy::Threads(Self::default_threads()), None),
            Some("serial") | Some("SERIAL") => (ExecPolicy::Serial, None),
            Some(s) => match s.parse::<usize>() {
                Ok(n) if n > 0 => (ExecPolicy::Threads(n), None),
                Ok(_) | Err(_) => (
                    ExecPolicy::Threads(Self::default_threads()),
                    Some(format!(
                        "PRFPGA_THREADS={s:?} is not `serial` or a positive thread \
                         count; using the available parallelism instead"
                    )),
                ),
            },
        }
    }

    /// Policy from command-line arguments: `--serial` wins, then
    /// `--threads N`, then [`ExecPolicy::from_env`]. Errors on a
    /// malformed or missing `--threads` value.
    pub fn from_args(args: &[String]) -> Result<ExecPolicy, String> {
        if args.iter().any(|a| a == "--serial") {
            return Ok(ExecPolicy::Serial);
        }
        if let Some(i) = args.iter().position(|a| a == "--threads") {
            let v = args
                .get(i + 1)
                .ok_or("--threads requires a value")?
                .parse::<usize>()
                .map_err(|e| format!("--threads: {e}"))?;
            if v == 0 {
                return Err("--threads must be at least 1".into());
            }
            return Ok(ExecPolicy::Threads(v));
        }
        Ok(Self::from_env())
    }
}

/// Maps `f` over `items` under `policy`, returning results in item order.
///
/// Workers claim items through a shared atomic cursor (work stealing
/// degenerates to in-order pulls under no contention) and write each
/// result into the slot of its item, so the merged output is independent
/// of scheduling. A panic in `f` propagates to the caller after the other
/// workers drain.
pub fn parallel_map<T, R, F>(items: &[T], policy: ExecPolicy, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = policy.threads().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock() = Some(r);
            });
        }
    })
    .expect("suite executor worker panicked");

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every claimed slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for policy in [
            ExecPolicy::Serial,
            ExecPolicy::Threads(2),
            ExecPolicy::Threads(8),
        ] {
            let out = parallel_map(&items, policy, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, ExecPolicy::Threads(4), |_, &x| x).is_empty());
        assert_eq!(
            parallel_map(&[7u32], ExecPolicy::Threads(4), |_, &x| x),
            vec![7]
        );
    }

    #[test]
    fn policy_thread_counts() {
        assert_eq!(ExecPolicy::Serial.threads(), 1);
        assert_eq!(ExecPolicy::Threads(0).threads(), 1);
        assert_eq!(ExecPolicy::Threads(5).threads(), 5);
        assert!(ExecPolicy::default_threads() >= 1);
    }

    #[test]
    fn env_values_never_panic_and_warn_on_nonsense() {
        let auto = ExecPolicy::Threads(ExecPolicy::default_threads());
        // Unset and well-formed values: no warning.
        assert_eq!(ExecPolicy::from_env_value(None), (auto, None));
        assert_eq!(
            ExecPolicy::from_env_value(Some("serial")),
            (ExecPolicy::Serial, None)
        );
        assert_eq!(
            ExecPolicy::from_env_value(Some("SERIAL")),
            (ExecPolicy::Serial, None)
        );
        assert_eq!(
            ExecPolicy::from_env_value(Some("6")),
            (ExecPolicy::Threads(6), None)
        );
        // Meaningless values: fall back to available parallelism, warn.
        for bad in ["0", "-3", "lots", "", " 4", "4 "] {
            let (policy, warning) = ExecPolicy::from_env_value(Some(bad));
            assert_eq!(policy, auto, "PRFPGA_THREADS={bad:?}");
            let warning = warning.expect("nonsense must warn");
            assert!(warning.contains("PRFPGA_THREADS"), "{warning}");
        }
    }

    #[test]
    fn args_parsing() {
        let to_args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(
            ExecPolicy::from_args(&to_args(&["--serial"])),
            Ok(ExecPolicy::Serial)
        );
        assert_eq!(
            ExecPolicy::from_args(&to_args(&["--threads", "3"])),
            Ok(ExecPolicy::Threads(3))
        );
        assert_eq!(
            ExecPolicy::from_args(&to_args(&["--serial", "--threads", "3"])),
            Ok(ExecPolicy::Serial)
        );
        assert!(ExecPolicy::from_args(&to_args(&["--threads"])).is_err());
        assert!(ExecPolicy::from_args(&to_args(&["--threads", "x"])).is_err());
        assert!(ExecPolicy::from_args(&to_args(&["--threads", "0"])).is_err());
    }
}
