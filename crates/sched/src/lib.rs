//! # prfpga-sched
//!
//! The paper's contribution: resource-efficient scheduling of task graphs
//! onto SoCs with processor cores and a partially-reconfigurable FPGA.
//!
//! Two schedulers are provided:
//!
//! * [`PaScheduler`] — the fast deterministic heuristic (the paper's *PA*),
//!   an eight-phase pipeline (§V):
//!   implementation selection → critical path extraction → regions
//!   definition → software task balancing → start/end computation →
//!   software task mapping → reconfiguration scheduling → feasibility
//!   check (floorplanning, with capacity-shrinking restarts);
//! * [`PaRScheduler`] — the randomized variant (*PA-R*, §VI, Algorithm 1):
//!   the region-definition ordering for non-critical hardware tasks is
//!   randomized and the core pipeline re-runs under a time budget, keeping
//!   the best floorplan-feasible schedule.
//!
//! The guiding idea is *resource efficiency* (§IV): prefer hardware
//! implementations with a high execution-time-to-area ratio, because they
//! spread load over more, smaller reconfigurable regions — more hardware
//! parallelism, fewer and cheaper reconfigurations.
//!
//! ## Fidelity notes
//!
//! Decision-making follows the paper phase by phase (cost metric eq. 3,
//! efficiency index eq. 5, region rules of §V-C, balancing rule eq. 6,
//! mapping delay eq. 8). Two mechanical refinements are documented in
//! `DESIGN.md`: (1) the final timing realization (paper §V-G) is computed
//! by a discrete-event pass that serializes reconfigurations on the single
//! controller with critical-first priority — equivalent in spirit to the
//! paper's delay-propagation formulation but immune to its
//! reinvalidation corner cases; (2) eq. 8's `min` is read as `max` (the
//! published formula would make every delay non-positive, which
//! contradicts its surrounding text).

#![warn(missing_docs)]

pub mod commit;
pub mod config;
pub mod driver;
pub mod error;
pub mod exec;
pub mod metrics;
pub mod phases;
pub mod randomized;
pub mod repair;
pub mod state;
pub mod trace;

pub use config::{CostPolicy, OrderingPolicy, SchedulerConfig};
pub use driver::{PaResult, PaScheduler};
pub use error::SchedError;
pub use exec::{parallel_map, ExecPolicy};
pub use repair::{RepairConfig, RepairEngine, RepairError, RepairOutcome, RepairStats};
// The cancellation kernel lives in `prfpga-model` (so leaf crates can accept
// tokens without a dependency cycle) and is re-exported here as the
// scheduler-facing API surface.
pub use prfpga_model::{Budget, CancelToken, FakeClock};
pub use randomized::{ConvergencePoint, PaRResult, PaRScheduler};
pub use state::{SchedState, SchedWorkspace};
pub use trace::{ObserverHandle, Phase, PhaseObserver, PhaseTrace, TraceRecorder};
