//! The paper's cost and efficiency metrics (eq. 3–5) in exact integer
//! arithmetic.
//!
//! All real-valued quantities are carried as parts-per-million (ppm) in
//! `u128`, so comparisons are platform-independent and reproducible.

use prfpga_model::{ResourceVec, Time, NUM_RESOURCE_KINDS};

use crate::config::CostPolicy;

/// Precomputed device-level weights for the metrics.
#[derive(Debug, Clone)]
pub struct MetricWeights {
    /// `weightRes_r` in ppm (eq. 4): resources scarcer on the device weigh
    /// more.
    pub weight_ppm: [u64; NUM_RESOURCE_KINDS],
    /// Denominator of eq. 3's resource term:
    /// `sum_r weightRes_r * maxRes_r`, in ppm-weighted units.
    pub cap_weighted: u128,
    /// `maxT` (eq. 4): serial lower-bound horizon, the sum over tasks of
    /// their fastest implementation time.
    pub max_t: Time,
}

impl MetricWeights {
    /// Computes the weights for a device capacity and the instance's
    /// `maxT` horizon.
    pub fn new(max_res: &ResourceVec, max_t: Time) -> Self {
        let total: u64 = max_res.total();
        let mut weight_ppm = [0u64; NUM_RESOURCE_KINDS];
        for (i, w) in weight_ppm.iter_mut().enumerate() {
            *w = if total == 0 {
                1_000_000
            } else {
                let share = (max_res.0[i] as u128 * 1_000_000 / total as u128) as u64;
                1_000_000 - share
            };
        }
        let mut cap_weighted = max_res.weighted_ppm(&weight_ppm);
        // Degenerate device: eq. 4 zeroes the weight of a resource kind
        // that holds *all* capacity, so a single-kind device would weigh
        // every demand at zero. Fall back to uniform weights there.
        if cap_weighted == 0 && total > 0 {
            weight_ppm = [1_000_000; NUM_RESOURCE_KINDS];
            cap_weighted = max_res.weighted_ppm(&weight_ppm);
        }
        MetricWeights {
            weight_ppm,
            cap_weighted,
            max_t,
        }
    }

    /// Implementation cost (eq. 3), scaled by 1e6. Lower is better.
    ///
    /// `cost_i = weighted(res_i)/weighted(maxRes) + time_i/maxT`, where the
    /// active terms follow the ablation policy.
    // The zero-divisor branches return sentinels, not `None`, so
    // `checked_div` would not simplify them.
    #[allow(clippy::manual_checked_ops)]
    pub fn cost_micro(&self, res: &ResourceVec, time: Time, policy: CostPolicy) -> u128 {
        let res_term = if self.cap_weighted == 0 {
            // Zero-capacity device: any hardware demand is infinitely
            // costly; zero demand costs nothing.
            if res.is_zero() {
                0
            } else {
                u128::MAX / 4
            }
        } else {
            res.weighted_ppm(&self.weight_ppm) * 1_000_000 / self.cap_weighted
        };
        let time_term = if self.max_t == 0 {
            0
        } else {
            time as u128 * 1_000_000 / self.max_t as u128
        };
        match policy {
            CostPolicy::Full => res_term + time_term,
            CostPolicy::ResourceOnly => res_term,
            CostPolicy::TimeOnly => time_term,
        }
    }

    /// Efficiency index (eq. 5), scaled by 1e6:
    /// `eff_i = time_i / sum_r(res_{i,r} * weightRes_r)`. Higher means more
    /// resource-efficient (more execution time bought per unit of weighted
    /// area). An implementation with zero weighted area is infinitely
    /// efficient.
    #[allow(clippy::manual_checked_ops)]
    pub fn efficiency_micro(&self, res: &ResourceVec, time: Time) -> u128 {
        let denom = res.weighted_ppm(&self.weight_ppm);
        if denom == 0 {
            u128::MAX / 4
        } else {
            // time (ticks) * 1e6 * 1e6 ppm / denom keeps precision for
            // small times against large weighted areas.
            time as u128 * 1_000_000 * 1_000_000 / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights() -> MetricWeights {
        // Capacity 1000 CLB, 100 BRAM, 100 DSP -> total 1200.
        MetricWeights::new(&ResourceVec::new(1000, 100, 100), 10_000)
    }

    #[test]
    fn scarce_resources_weigh_more() {
        let w = weights();
        // CLB is abundant (1000/1200) -> low weight; BRAM/DSP scarce.
        assert!(w.weight_ppm[0] < w.weight_ppm[1]);
        assert_eq!(w.weight_ppm[1], w.weight_ppm[2]);
        // weightRes_r = 1 - maxRes_r / total.
        assert_eq!(w.weight_ppm[0], 1_000_000 - 1000 * 1_000_000 / 1200);
    }

    #[test]
    fn cost_orders_by_area_at_equal_time() {
        let w = weights();
        let small = w.cost_micro(&ResourceVec::new(10, 1, 1), 100, CostPolicy::Full);
        let large = w.cost_micro(&ResourceVec::new(500, 50, 50), 100, CostPolicy::Full);
        assert!(small < large);
    }

    #[test]
    fn cost_orders_by_time_at_equal_area() {
        let w = weights();
        let fast = w.cost_micro(&ResourceVec::new(100, 10, 10), 100, CostPolicy::Full);
        let slow = w.cost_micro(&ResourceVec::new(100, 10, 10), 5000, CostPolicy::Full);
        assert!(fast < slow);
    }

    #[test]
    fn cost_policies_drop_terms() {
        let w = weights();
        let res = ResourceVec::new(100, 10, 10);
        let full = w.cost_micro(&res, 100, CostPolicy::Full);
        let r = w.cost_micro(&res, 100, CostPolicy::ResourceOnly);
        let t = w.cost_micro(&res, 100, CostPolicy::TimeOnly);
        assert_eq!(full, r + t);
        // Time-only cost ignores area.
        assert_eq!(
            w.cost_micro(&ResourceVec::new(900, 0, 0), 100, CostPolicy::TimeOnly),
            t
        );
    }

    #[test]
    fn efficiency_prefers_time_per_area() {
        let w = weights();
        // Same area, longer time -> more "efficient" in the paper's sense.
        let slow_small = w.efficiency_micro(&ResourceVec::new(50, 0, 0), 2000);
        let fast_big = w.efficiency_micro(&ResourceVec::new(800, 20, 20), 500);
        assert!(slow_small > fast_big);
    }

    #[test]
    fn zero_area_is_infinitely_efficient() {
        let w = weights();
        assert_eq!(w.efficiency_micro(&ResourceVec::ZERO, 10), u128::MAX / 4);
    }

    #[test]
    fn zero_capacity_device_penalizes_hardware() {
        let w = MetricWeights::new(&ResourceVec::ZERO, 100);
        assert!(w.cost_micro(&ResourceVec::new(1, 0, 0), 1, CostPolicy::Full) > 1_000_000_000);
        assert_eq!(w.cost_micro(&ResourceVec::ZERO, 0, CostPolicy::Full), 0);
    }

    #[test]
    fn single_kind_device_falls_back_to_uniform_weights() {
        // All capacity in CLBs: eq. 4 would zero the CLB weight and make
        // every hardware demand free; the fallback keeps areas comparable.
        let w = MetricWeights::new(&ResourceVec::new(1000, 0, 0), 1000);
        let small = w.cost_micro(&ResourceVec::new(100, 0, 0), 100, CostPolicy::ResourceOnly);
        let large = w.cost_micro(&ResourceVec::new(900, 0, 0), 100, CostPolicy::ResourceOnly);
        assert!(small < large);
        assert!(large > 0);
    }

    #[test]
    fn absent_resource_kind_gets_maximum_weight() {
        // Device with no DSPs at all: eq. 4 gives the absent kind weight
        // 1 - 0/total = 1, the maximum — demanding a resource the device
        // lacks must be the most expensive thing an implementation can do,
        // never free.
        let w = MetricWeights::new(&ResourceVec::new(1000, 200, 0), 10_000);
        assert_eq!(w.weight_ppm[2], 1_000_000);
        // Same raw unit count, but spent on the absent kind, costs more.
        let present = w.cost_micro(&ResourceVec::new(0, 10, 0), 0, CostPolicy::ResourceOnly);
        let absent = w.cost_micro(&ResourceVec::new(0, 0, 10), 0, CostPolicy::ResourceOnly);
        assert!(absent > present);
        assert!(absent > 0);
        // Efficiency of a DSP-only demand stays finite (denominator > 0).
        let eff = w.efficiency_micro(&ResourceVec::new(0, 0, 10), 100);
        assert!(eff > 0 && eff < u128::MAX / 4);
    }

    #[test]
    fn ppm_arithmetic_has_headroom_at_extreme_magnitudes() {
        // Largest capacity whose kind-sum still fits in u64 (total() would
        // overflow beyond that), paired with the full u64 time horizon.
        // Every intermediate ppm product must stay inside u128: the
        // weighted capacity is ~2^62 * 10^6 * 3 ~= 2^83, times the 10^6
        // cost scaling ~= 2^103, and the efficiency path peaks at
        // Time::MAX * 10^12 ~= 2^104 — both far below u128::MAX (~2^128).
        // In debug builds any overflow would panic, so arriving at the
        // exact expected values proves the headroom.
        let cap = u64::MAX / 4;
        let max_res = ResourceVec::new(cap, cap, cap);
        let w = MetricWeights::new(&max_res, Time::MAX);

        // Full-device demand at the full horizon: both eq. 3 terms are
        // exactly 1.0, i.e. 1e6 ppm each.
        let cost = w.cost_micro(&max_res, Time::MAX, CostPolicy::Full);
        assert_eq!(cost, 2_000_000);

        let eff = w.efficiency_micro(&max_res, Time::MAX);
        assert!(eff > 0 && eff < u128::MAX / 4);
        // Efficiency still discriminates at this scale.
        assert!(w.efficiency_micro(&max_res, Time::MAX / 2) < eff);
    }

    #[test]
    fn zero_horizon_guard() {
        let w = MetricWeights::new(&ResourceVec::new(10, 10, 10), 0);
        // No division by zero; time term collapses to 0.
        let c = w.cost_micro(&ResourceVec::new(1, 1, 1), 100, CostPolicy::TimeOnly);
        assert_eq!(c, 0);
    }
}
