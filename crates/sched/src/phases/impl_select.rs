//! Phase A — implementation selection (§V-A).
//!
//! For every task: score each hardware implementation with the cost metric
//! of eq. 3 (relative weighted area + normalized execution time, weighting
//! scarce resources more), pick the cheapest hardware candidate `i_H` and
//! the fastest software candidate `i_S`, then select whichever of the two
//! executes faster.

use std::time::Instant;

use prfpga_model::{Device, ImplId, ProblemInstance, Time};

use crate::config::CostPolicy;
use crate::metrics::MetricWeights;
use crate::trace::{ObserverHandle, Phase};

/// Computes `maxT` (eq. 4): the sum over tasks of their fastest
/// implementation time — the all-serial lower-bound horizon used to
/// normalize the cost metric's time term.
pub fn max_t(inst: &ProblemInstance) -> Time {
    inst.graph
        .task_ids()
        .map(|t| {
            inst.graph
                .task(t)
                .impls
                .iter()
                .map(|&i| inst.impls.get(i).time)
                .min()
                .unwrap_or(0)
        })
        .sum()
}

/// Phase A as the driver runs it: derives the metric weights (eq. 4) for
/// the (possibly shrunk) device capacity, selects implementations, and
/// reports the phase wall-clock to `observer`.
pub fn run_phase(
    inst: &ProblemInstance,
    device: &Device,
    policy: CostPolicy,
    observer: &ObserverHandle,
) -> (MetricWeights, Vec<ImplId>) {
    let mut choice = Vec::new();
    let weights = run_phase_into(inst, device, policy, observer, &mut choice);
    (weights, choice)
}

/// [`run_phase`] into a caller-owned choice buffer — the allocation-free
/// variant the workspace-reusing scheduler loops call.
pub fn run_phase_into(
    inst: &ProblemInstance,
    device: &Device,
    policy: CostPolicy,
    observer: &ObserverHandle,
    choice: &mut Vec<ImplId>,
) -> MetricWeights {
    let t0 = Instant::now();
    let weights = MetricWeights::new(&device.max_res, max_t(inst));
    select_implementations_into(inst, &weights, policy, choice);
    observer.phase_finished(Phase::ImplSelect, t0.elapsed());
    weights
}

/// Runs implementation selection, returning the chosen implementation per
/// task.
pub fn select_implementations(
    inst: &ProblemInstance,
    weights: &MetricWeights,
    policy: CostPolicy,
) -> Vec<ImplId> {
    let mut choice = Vec::new();
    select_implementations_into(inst, weights, policy, &mut choice);
    choice
}

/// [`select_implementations`] into `choice` (cleared first).
pub fn select_implementations_into(
    inst: &ProblemInstance,
    weights: &MetricWeights,
    policy: CostPolicy,
    choice: &mut Vec<ImplId>,
) {
    choice.clear();
    choice.extend(inst.graph.task_ids().map(|t| {
        // Cheapest hardware implementation by eq. 3 (ties: lower id).
        let best_hw = inst.hw_impls(t).min_by_key(|&i| {
            let imp = inst.impls.get(i);
            (weights.cost_micro(&imp.resources(), imp.time, policy), i)
        });
        // Fastest software implementation (always present).
        let best_sw = inst.fastest_sw_impl(t);
        match best_hw {
            Some(hw) if inst.impls.get(hw).time < inst.impls.get(best_sw).time => hw,
            _ => best_sw,
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::{Architecture, Device, ImplPool, Implementation, ResourceVec, TaskGraph};

    fn build(impl_sets: Vec<Vec<Implementation>>) -> ProblemInstance {
        let mut pool = ImplPool::new();
        let mut graph = TaskGraph::new();
        for (i, set) in impl_sets.into_iter().enumerate() {
            let ids: Vec<ImplId> = set.into_iter().map(|imp| pool.add(imp)).collect();
            graph.add_task(format!("t{i}"), ids);
        }
        ProblemInstance::new(
            "sel",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(1000, 100, 100), 10)),
            graph,
            pool,
        )
        .unwrap()
    }

    fn weights(inst: &ProblemInstance) -> MetricWeights {
        MetricWeights::new(&inst.architecture.device.max_res, max_t(inst))
    }

    #[test]
    fn max_t_sums_fastest_times() {
        let inst = build(vec![
            vec![
                Implementation::software("s", 100),
                Implementation::hardware("h", 10, ResourceVec::new(5, 0, 0)),
            ],
            vec![Implementation::software("s", 40)],
        ]);
        assert_eq!(max_t(&inst), 50);
    }

    #[test]
    fn picks_cost_effective_hw_over_fast_expensive_hw() {
        // Fast-but-huge vs slower-but-small: the huge one eats most of the
        // device (cost ~1 + eps), the small one is much cheaper and still
        // beats software, so it must win.
        let inst = build(vec![
            vec![
                Implementation::software("s", 10_000),
                Implementation::hardware("huge", 100, ResourceVec::new(950, 90, 90)),
                Implementation::hardware("small", 300, ResourceVec::new(50, 5, 5)),
            ],
            // Companion work inflating maxT to a realistic multi-task
            // horizon (eq. 4 sums the fastest times of *all* tasks).
            vec![Implementation::software("other", 2000)],
        ]);
        let w = weights(&inst);
        let choice = select_implementations(&inst, &w, CostPolicy::Full);
        assert_eq!(inst.impls.get(choice[0]).name, "small");
    }

    #[test]
    fn falls_back_to_sw_when_faster() {
        let inst = build(vec![vec![
            Implementation::software("s", 50),
            Implementation::hardware("h", 80, ResourceVec::new(10, 0, 0)),
        ]]);
        let w = weights(&inst);
        let choice = select_implementations(&inst, &w, CostPolicy::Full);
        assert_eq!(inst.impls.get(choice[0]).name, "s");
    }

    #[test]
    fn hw_wins_ties_only_when_strictly_faster() {
        let inst = build(vec![vec![
            Implementation::software("s", 80),
            Implementation::hardware("h", 80, ResourceVec::new(10, 0, 0)),
        ]]);
        let w = weights(&inst);
        let choice = select_implementations(&inst, &w, CostPolicy::Full);
        assert!(inst.impls.get(choice[0]).is_software());
    }

    #[test]
    fn time_only_policy_picks_fastest_hw() {
        let inst = build(vec![vec![
            Implementation::software("s", 10_000),
            Implementation::hardware("huge_fast", 100, ResourceVec::new(950, 90, 90)),
            Implementation::hardware("small_slow", 300, ResourceVec::new(50, 5, 5)),
        ]]);
        let w = weights(&inst);
        let choice = select_implementations(&inst, &w, CostPolicy::TimeOnly);
        assert_eq!(inst.impls.get(choice[0]).name, "huge_fast");
    }

    #[test]
    fn sw_only_task() {
        let inst = build(vec![vec![Implementation::software("s", 7)]]);
        let w = weights(&inst);
        let choice = select_implementations(&inst, &w, CostPolicy::Full);
        assert!(inst.impls.get(choice[0]).is_software());
    }
}
