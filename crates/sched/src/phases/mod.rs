//! The PA pipeline phases (§V-A .. §V-G).
//!
//! Each phase is a free function over [`SchedState`]; the driver strings
//! them together. Keeping the phases separate makes each unit-testable and
//! lets the ablation benches switch individual phases off.
//!
//! [`SchedState`]: crate::state::SchedState

pub mod impl_select;
pub mod partition;
pub mod reconf;
pub mod regions;
pub mod sw_balance;
pub mod sw_map;
