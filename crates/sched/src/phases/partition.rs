//! Fabric partition: assigns every task to a fabric of the platform.
//!
//! Runs between phase B (CPM) and phase C (regions definition) on
//! multi-fabric platforms; without a platform it is a no-op and the
//! pipeline is byte-identical to the single-device path. The phase follows
//! the greedy-then-refine shape of integrated partitioning/scheduling
//! approaches (Chen et al., arXiv 1803.03748): partitioning decisions are
//! made *before* region formation so phases C/D can enforce per-fabric
//! capacity, instead of bolting a partition onto a finished schedule.
//!
//! * **Seed** — a min-cut-flavored banding of the level profile: tasks are
//!   walked grouped by weakly-connected component (components share no
//!   edges, so splitting *between* them is free) and, within a component,
//!   in CPM window order (`T_MIN`, then id), then dealt into contiguous
//!   bands, one per fabric, sized proportionally to each fabric's capacity
//!   share. Contiguous level bands cut few edges on layered DAGs: an edge
//!   crosses only when its endpoints straddle a band boundary inside one
//!   component.
//! * **Refine** — bounded deterministic improvement passes. A hardware
//!   task moves to the fabric minimizing the weighted cut of its incident
//!   edges; edge weights combine the crossing latency with the edge's data
//!   cost and are doubled when both endpoints are CPM-critical, so the
//!   refinement is scored by the same lower bound the rest of the pipeline
//!   optimizes against. Moves respect a per-fabric load budget
//!   (capacity-proportional share of the total chosen-implementation
//!   load, with one-task slack so refinement never deadlocks).
//!
//! The partition fixes `fabric_of` per task; phase C opens regions on the
//! opening task's fabric and never co-hosts tasks across fabrics. Phases
//! B–F otherwise ignore the crossing latency (the CPM lower bound is
//! node-weighted); phase G, the validator and the repair engine enforce it
//! on the realized schedule, so the partition's cut minimization is
//! heuristic slack, not a hard constraint.

use std::time::Instant;

use prfpga_model::TaskId;

use crate::state::SchedState;
use crate::trace::Phase;

/// Number of refinement passes; each is a full deterministic sweep.
const REFINE_PASSES: usize = 3;

/// Assigns every task a fabric in `state.fabric_of`. No-op (and untraced)
/// without a platform; trivially all-zeros on a 1-fabric platform.
pub fn partition_tasks(state: &mut SchedState<'_>) {
    let Some(platform) = state.platform else {
        return;
    };
    let t0 = Instant::now();
    let nf = platform.num_fabrics();
    if nf > 1 {
        seed_bands(state, nf);
        refine(state, nf);
    }
    state
        .observer
        .phase_finished(Phase::Partition, t0.elapsed());
}

/// Scalar load a task puts on its fabric: total units of its chosen
/// implementation (zero for software tasks).
#[inline]
fn load(state: &SchedState<'_>, t: TaskId) -> u128 {
    state.chosen_res(t).total() as u128
}

/// Tasks in banding order: weakly-connected component first (cutting
/// between components is free), then CPM window start, then id.
fn level_order(state: &SchedState<'_>) -> Vec<TaskId> {
    let comp = component_keys(state);
    let mut order: Vec<TaskId> = state.inst.graph.task_ids().collect();
    order.sort_by_key(|&t| (comp[t.index()], state.window(t).min, t));
    order
}

/// Weakly-connected component label per task: the smallest task id in the
/// component (union-find with path halving).
fn component_keys(state: &SchedState<'_>) -> Vec<u32> {
    let n = state.inst.graph.len();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    for (from, to, _) in state.inst.graph.edges_with_costs() {
        let (a, b) = (find(&mut parent, from.0), find(&mut parent, to.0));
        // Union by id: the smaller id becomes the root, so roots double as
        // deterministic component keys.
        let (lo, hi) = (a.min(b), a.max(b));
        parent[hi as usize] = lo;
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Cumulative capacity-proportional load target for fabrics `0..=f` (equal
/// shares when every capacity was shrunk to zero).
fn prefix_target(state: &SchedState<'_>, total_load: u128, nf: usize, f: usize) -> u128 {
    let caps: Vec<u128> = (0..nf)
        .map(|g| state.fabric_cap(g as u32).total() as u128)
        .collect();
    let total_cap: u128 = caps.iter().sum();
    if total_cap == 0 {
        return total_load * (f as u128 + 1) / nf as u128;
    }
    let prefix: u128 = caps[..=f].iter().sum();
    total_load * prefix / total_cap
}

fn seed_bands(state: &mut SchedState<'_>, nf: usize) {
    let order = level_order(state);
    let total_load: u128 = order.iter().map(|&t| load(state, t)).sum();
    let mut f = 0usize;
    let mut cum: u128 = 0;
    for &t in &order {
        while f < nf - 1 && cum >= prefix_target(state, total_load, nf, f) {
            f += 1;
        }
        state.fabric_of[t.index()] = f as u32;
        cum += load(state, t);
    }
}

/// Weight of edge `(u, v)` in the cut objective: what a crossing would add
/// to the lag phase G imposes (crossing latency plus the data cost the
/// same-fabric colocation could have avoided), doubled when both endpoints
/// are CPM-critical so the refinement protects the lower bound first.
fn edge_weight(state: &SchedState<'_>, u: TaskId, v: TaskId, cost: u64) -> u128 {
    let base = state.crossing_latency() as u128 + cost as u128;
    if state.is_critical(u) && state.is_critical(v) {
        base * 2
    } else {
        base
    }
}

fn refine(state: &mut SchedState<'_>, nf: usize) {
    let n = state.inst.graph.len();
    // Weighted adjacency over hardware-chosen task pairs (only those can
    // ever both land in regions and pay a crossing).
    let mut adj: Vec<Vec<(TaskId, u128)>> = vec![Vec::new(); n];
    for (from, to, cost) in state.inst.graph.edges_with_costs() {
        if !state.is_hw(from) || !state.is_hw(to) {
            continue;
        }
        let w = edge_weight(state, from, to, cost);
        if w == 0 {
            continue;
        }
        adj[from.index()].push((to, w));
        adj[to.index()].push((from, w));
    }

    // Per-fabric load accounting and capacity-proportional budgets.
    let order = level_order(state);
    let hw_tasks: Vec<TaskId> = order.iter().copied().filter(|&t| state.is_hw(t)).collect();
    let total_load: u128 = hw_tasks.iter().map(|&t| load(state, t)).sum();
    let max_single: u128 = hw_tasks.iter().map(|&t| load(state, t)).max().unwrap_or(0);
    let budget: Vec<u128> = (0..nf)
        .map(|f| {
            let lo = if f == 0 {
                0
            } else {
                prefix_target(state, total_load, nf, f - 1)
            };
            prefix_target(state, total_load, nf, f) - lo + max_single
        })
        .collect();
    let mut fabric_load: Vec<u128> = vec![0; nf];
    for &t in &hw_tasks {
        fabric_load[state.fabric_of[t.index()] as usize] += load(state, t);
    }

    for _ in 0..REFINE_PASSES {
        let mut moved = false;
        for &t in &hw_tasks {
            let a = state.fabric_of[t.index()] as usize;
            // Cut cost of hosting t on each fabric.
            let mut cut: Vec<u128> = vec![0; nf];
            for &(u, w) in &adj[t.index()] {
                let fu = state.fabric_of[u.index()] as usize;
                for (f, c) in cut.iter_mut().enumerate() {
                    if f != fu {
                        *c += w;
                    }
                }
            }
            let lt = load(state, t);
            let best = (0..nf)
                .filter(|&b| b == a || fabric_load[b] + lt <= budget[b])
                .min_by_key(|&b| (cut[b], b))
                .unwrap_or(a);
            if best != a && cut[best] < cut[a] {
                state.fabric_of[t.index()] = best as u32;
                fabric_load[a] -= lt;
                fabric_load[best] += lt;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricWeights;
    use prfpga_model::{
        Architecture, Device, ImplPool, Implementation, Platform, ProblemInstance, ResourceVec,
        TaskGraph,
    };

    /// Two independent chains of hw tasks; an ideal 2-fabric partition
    /// puts each chain on its own fabric (zero cut).
    fn two_chain_instance(platform: Platform) -> ProblemInstance {
        let mut impls = ImplPool::new();
        let mut graph = TaskGraph::new();
        for c in 0..2 {
            let mut prev = None;
            for i in 0..4 {
                let sw = impls.add(Implementation::software(format!("s{c}{i}"), 1000));
                let hw = impls.add(Implementation::hardware(
                    format!("h{c}{i}"),
                    100,
                    ResourceVec::new(500, 4, 2),
                ));
                let t = graph.add_task(format!("t{c}{i}"), vec![sw, hw]);
                if let Some(p) = prev {
                    graph.add_edge_with_cost(p, t, 10);
                }
                prev = Some(t);
            }
        }
        ProblemInstance::new(
            "chains",
            Architecture::on_platform(2, platform),
            graph,
            impls,
        )
        .unwrap()
    }

    fn all_hw_choice(inst: &ProblemInstance) -> Vec<prfpga_model::ImplId> {
        inst.graph
            .task_ids()
            .map(|t| inst.hw_impls(t).next().unwrap())
            .collect()
    }

    #[test]
    fn no_platform_is_untouched() {
        let mut inst = two_chain_instance(Platform::dual_zedboard());
        inst.architecture.platform = None;
        let device = inst.architecture.device.clone();
        let weights = MetricWeights::new(&device.max_res, 30);
        let mut st = SchedState::new(&inst, &device, weights, all_hw_choice(&inst)).unwrap();
        partition_tasks(&mut st);
        assert!(st.fabric_of.iter().all(|&f| f == 0));
    }

    #[test]
    fn single_fabric_platform_stays_all_zero() {
        let inst = two_chain_instance(Platform::single(Device::xc7z020()));
        let device = inst.architecture.device.clone();
        let platform = inst.architecture.platform.clone().unwrap();
        let weights = MetricWeights::new(&device.max_res, 30);
        let mut st = SchedState::new(&inst, &device, weights, all_hw_choice(&inst)).unwrap();
        st.platform = Some(&platform);
        partition_tasks(&mut st);
        assert!(st.fabric_of.iter().all(|&f| f == 0));
    }

    #[test]
    fn refinement_uncuts_independent_chains() {
        let inst = two_chain_instance(Platform::dual_zedboard());
        let device = inst.architecture.device.clone();
        let platform = inst.architecture.platform.clone().unwrap();
        let weights = MetricWeights::new(&device.max_res, 30);
        let mut st = SchedState::new(&inst, &device, weights, all_hw_choice(&inst)).unwrap();
        st.platform = Some(&platform);
        partition_tasks(&mut st);
        // Both fabrics used (the seed splits by load) and no chain is cut:
        // every edge stays intra-fabric.
        for (from, to, _) in st.inst.graph.edges_with_costs() {
            assert_eq!(
                st.fabric_of[from.index()],
                st.fabric_of[to.index()],
                "edge {from:?}->{to:?} crosses fabrics"
            );
        }
        let used: std::collections::BTreeSet<u32> = st.fabric_of.iter().copied().collect();
        assert_eq!(used.len(), 2, "load balancing spreads the two chains");
    }

    #[test]
    fn partition_is_deterministic() {
        let inst = two_chain_instance(Platform::alveo_u250());
        let device = inst.architecture.device.clone();
        let platform = inst.architecture.platform.clone().unwrap();
        let weights = MetricWeights::new(&device.max_res, 30);
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut st =
                SchedState::new(&inst, &device, weights.clone(), all_hw_choice(&inst)).unwrap();
            st.platform = Some(&platform);
            partition_tasks(&mut st);
            runs.push(st.fabric_of.clone());
        }
        assert_eq!(runs[0], runs[1]);
    }
}
