//! Phase G — reconfiguration scheduling and final timing realization
//! (§V-G).
//!
//! Generates one reconfiguration task between every pair of subsequent
//! tasks hosted by the same region (PA does not exploit module reuse —
//! §VII-A notes this explicitly) and serializes all reconfigurations on
//! the single controller. Critical reconfigurations (those whose outgoing
//! task is critical) take precedence, as in the paper.
//!
//! Mechanically this is realized as a discrete-event pass: tasks and
//! reconfigurations start as soon as their predecessors (data arcs, region
//! and core sequencing arcs, their own ingoing task) allow, and the
//! controller, whenever free, picks among the ready reconfigurations the
//! critical one with the earliest release. The paper describes the same
//! scheduling goal through explicit delay propagation; the event-driven
//! formulation computes a fixed point of those propagations directly and
//! cannot leave a stale overlap behind (see DESIGN.md, fidelity notes).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use prfpga_dag::CpmAnalysis;
use prfpga_model::{
    Placement, Reconfiguration, Region, RegionId, Schedule, TaskAssignment, TaskId, Time,
    TimeWindow,
};
use prfpga_timeline::{LaneId, Timeline};

use crate::state::SchedState;
use crate::trace::Phase;

/// One planned reconfiguration before timing.
#[derive(Debug, Clone, Copy)]
struct PlannedRec {
    region: usize,
    fabric: u32,
    t_in: TaskId,
    t_out: TaskId,
    duration: Time,
    critical: bool,
}

/// Runs the timing realization and assembles the final [`Schedule`],
/// allocating a throwaway controller timeline. Scheduler loops call
/// [`realize_schedule_in`] with the workspace's recycled timeline instead.
///
/// With `module_reuse` enabled (the paper's future-work extension),
/// consecutive tasks of a region that share an implementation need no
/// reconfiguration between them.
pub fn realize_schedule(state: &SchedState<'_>, module_reuse: bool) -> Schedule {
    realize_schedule_in(state, module_reuse, &mut Timeline::new())
}

/// [`realize_schedule`] with a caller-provided controller timeline (reset
/// here), so repeated runs recycle the lane buffers.
pub fn realize_schedule_in(
    state: &SchedState<'_>,
    module_reuse: bool,
    icap: &mut Timeline,
) -> Schedule {
    icap.reset(0, 0, state.controller_lanes());
    realize_schedule_prepared(state, module_reuse, icap)
}

/// The timing-realization pass against an already-reset controller
/// timeline. The commit layer calls this directly so it can open a named
/// journal checkpoint between the reset and the first reservation;
/// [`realize_schedule_in`] is the reset-then-realize convenience wrapper.
pub(crate) fn realize_schedule_prepared(
    state: &SchedState<'_>,
    module_reuse: bool,
    icap: &mut Timeline,
) -> Schedule {
    let t0 = Instant::now();
    let n = state.inst.graph.len();

    // Criticality of the fully-sequenced graph decides reconfiguration
    // priority.
    let cpm = CpmAnalysis::run(&state.dag, &state.durations);

    // Plan reconfigurations: between subsequent tasks of each region.
    let mut planned: Vec<PlannedRec> = Vec::new();
    for (s, region) in state.regions.iter().enumerate() {
        let dur = state.reconf_time(s);
        for pair in region.tasks.windows(2) {
            if module_reuse
                && state.impl_choice[pair[0].index()] == state.impl_choice[pair[1].index()]
            {
                continue; // same module already configured
            }
            planned.push(PlannedRec {
                region: s,
                fabric: region.fabric,
                t_in: pair[0],
                t_out: pair[1],
                duration: dur,
                critical: cpm.critical[pair[1].index()],
            });
        }
    }
    let m = planned.len();

    // --- Build the event graph: tasks 0..n, reconfigurations n..n+m. ----
    let total = n + m;
    let mut succs: Vec<Vec<(u32, Time)>> = vec![Vec::new(); total];
    let mut pend: Vec<u32> = vec![0; total];
    let mut durations: Vec<Time> = Vec::with_capacity(total);
    durations.extend_from_slice(&state.durations);
    for r in &planned {
        durations.push(r.duration);
    }
    let add =
        |succs: &mut Vec<Vec<(u32, Time)>>, pend: &mut Vec<u32>, a: usize, b: usize, lag: Time| {
            succs[a].push((b as u32, lag));
            pend[b] += 1;
        };
    // All dag arcs (data + sequencing) at zero lag...
    for v in 0..n as u32 {
        for &u in state.dag.succs(v) {
            add(&mut succs, &mut pend, v as usize, u as usize, 0);
        }
    }
    // ...plus a lagged copy of every data arc whose endpoints are not
    // co-located (the communication-cost extension; all-zero costs in the
    // paper's base model make this a no-op) or whose region endpoints sit
    // on different fabrics (the inter-fabric link pays the platform's
    // crossing latency on top of the data cost).
    for (from, to, cost) in state.inst.graph.edges_with_costs() {
        let (pf, pt) = (state.region_of[from.index()], state.region_of[to.index()]);
        let colocated = match (pf, pt) {
            (Some(a), Some(b)) => a == b,
            (None, None) => state.core_of[from.index()] == state.core_of[to.index()],
            _ => false,
        };
        let mut lag = if colocated { 0 } else { cost };
        if let (Some(a), Some(b)) = (pf, pt) {
            if state.regions[a].fabric != state.regions[b].fabric {
                lag += state.crossing_latency();
            }
        }
        if lag > 0 {
            add(&mut succs, &mut pend, from.index(), to.index(), lag);
        }
    }
    for (ri, r) in planned.iter().enumerate() {
        add(&mut succs, &mut pend, r.t_in.index(), n + ri, 0);
        add(&mut succs, &mut pend, n + ri, r.t_out.index(), 0);
    }

    // --- Discrete-event pass. -------------------------------------------
    let mut start: Vec<Time> = vec![0; total];
    let mut done_time: Vec<Time> = vec![0; total];
    let mut task_queue: Vec<u32> = (0..n as u32).filter(|&v| pend[v as usize] == 0).collect();
    // Ready reconfigurations: max-heap on Reverse((non_critical, release,
    // id)) picks critical first, then earliest release, then lowest id.
    let mut icap_ready: BinaryHeap<Reverse<(bool, Time, u32)>> = BinaryHeap::new();
    for ri in 0..m {
        if pend[n + ri] == 0 {
            // A first-in-region reconfiguration (no ingoing task) — cannot
            // happen since pair[0] always precedes, but stay defensive.
            icap_ready.push(Reverse((!planned[ri].critical, 0, ri as u32)));
        }
    }
    // One controller lane per reconfiguration controller (one in the
    // paper's model; its ref. \[8\] generalizes to several), grouped per
    // fabric: fabric `f` owns lanes `[f*k, f*k+k)`. Arbitration is
    // clock-style — `controller_next_free_in`, never a gap backfill — so
    // the event-driven pass keeps its fixed-point semantics. The caller
    // reset the lanes before this pass.
    let k = state.inst.architecture.num_reconfig_controllers.max(1);
    let mut scheduled = 0usize;

    while scheduled < total {
        // Tasks never contend (sequencing arcs serialize them): schedule
        // every ready task at its release time.
        if let Some(v) = task_queue.pop() {
            let vi = v as usize;
            // start[vi] already holds the max end of finished predecessors.
            done_time[vi] = start[vi] + durations[vi];
            scheduled += 1;
            relax(
                vi,
                done_time[vi],
                &succs,
                &mut pend,
                &mut start,
                &mut task_queue,
                &mut icap_ready,
                &planned,
                n,
            );
            continue;
        }
        // No task ready: run one reconfiguration on the least-busy
        // controller.
        if let Some(Reverse((_, release, ri))) = icap_ready.pop() {
            let node = n + ri as usize;
            let fabric = planned[ri as usize].fabric as usize;
            let (ctrl, free) = icap.controller_next_free_in(fabric * k, k);
            let s = free.max(release);
            start[node] = s;
            done_time[node] = s + durations[node];
            icap.reserve(
                LaneId::controller(ctrl),
                TimeWindow::new(s, done_time[node]),
            )
            .expect("reservation starts at the controller's drain tick");
            scheduled += 1;
            relax(
                node,
                done_time[node],
                &succs,
                &mut pend,
                &mut start,
                &mut task_queue,
                &mut icap_ready,
                &planned,
                n,
            );
            continue;
        }
        unreachable!("event graph is acyclic and fully connected to sources");
    }

    // --- Assemble the schedule. ------------------------------------------
    let regions: Vec<Region> = state
        .regions
        .iter()
        .map(|r| Region {
            res: r.res,
            fabric: r.fabric,
        })
        .collect();
    let assignments: Vec<TaskAssignment> = (0..n)
        .map(|i| {
            let placement = match state.region_of[i] {
                Some(s) => Placement::Region(RegionId(s as u32)),
                None => {
                    Placement::Core(state.core_of[i].expect("software tasks mapped in phase F"))
                }
            };
            TaskAssignment {
                impl_id: state.impl_choice[i],
                placement,
                start: start[i],
                end: done_time[i],
            }
        })
        .collect();
    let reconfigurations: Vec<Reconfiguration> = planned
        .iter()
        .enumerate()
        .map(|(ri, r)| Reconfiguration {
            region: RegionId(r.region as u32),
            loads_impl: state.impl_choice[r.t_out.index()],
            outgoing_task: r.t_out,
            start: start[n + ri],
            end: done_time[n + ri],
        })
        .collect();

    let schedule = Schedule {
        regions,
        assignments,
        reconfigurations,
    };
    state
        .observer
        .reconfigurations_planned(schedule.reconfigurations.len());
    let core = state.timeline.stats();
    let ctrl = icap.stats();
    state.observer.timeline_stats(
        core.reservations + ctrl.reservations,
        core.gap_queries + ctrl.gap_queries,
    );
    state.observer.phase_finished(Phase::Reconf, t0.elapsed());
    schedule
}

/// Marks `node` finished at `fin`; releases successors whose predecessors
/// are all done.
#[allow(clippy::too_many_arguments)]
fn relax(
    node: usize,
    fin: Time,
    succs: &[Vec<(u32, Time)>],
    pend: &mut [u32],
    start: &mut [Time],
    task_queue: &mut Vec<u32>,
    icap_ready: &mut BinaryHeap<Reverse<(bool, Time, u32)>>,
    planned: &[PlannedRec],
    n: usize,
) {
    for &(u, lag) in &succs[node] {
        let ui = u as usize;
        start[ui] = start[ui].max(fin + lag);
        pend[ui] -= 1;
        if pend[ui] == 0 {
            if ui < n {
                task_queue.push(u);
            } else {
                let ri = ui - n;
                icap_ready.push(Reverse((!planned[ri].critical, start[ui], ri as u32)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricWeights;
    use crate::phases::impl_select::max_t;
    use prfpga_model::{
        Architecture, Device, ImplId, ImplPool, Implementation, ProblemInstance, ResourceVec,
        TaskGraph,
    };
    use prfpga_sim::validate_schedule;

    /// Chain a -> b, both hardware in the same region (5 CLB, reconf = 5).
    fn shared_region_fixture() -> (ProblemInstance, Vec<ImplId>) {
        let mut pool = ImplPool::new();
        let mut g = TaskGraph::new();
        let sa = pool.add(Implementation::software("sa", 1000));
        let ha = pool.add(Implementation::hardware(
            "ha",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let ta = g.add_task("a", vec![sa, ha]);
        let sb = pool.add(Implementation::software("sb", 1000));
        let hb = pool.add(Implementation::hardware(
            "hb",
            12,
            ResourceVec::new(4, 0, 0),
        ));
        let tb = g.add_task("b", vec![sb, hb]);
        g.add_edge(ta, tb);
        let inst = ProblemInstance::new(
            "rc",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(5, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap();
        (inst, vec![ha, hb])
    }

    #[test]
    fn shared_region_gets_reconfiguration_and_validates() {
        let (inst, choice) = shared_region_fixture();
        let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(&inst));
        let mut st = SchedState::new(&inst, &inst.architecture.device, w, choice.clone()).unwrap();
        st.open_region(TaskId(0), choice[0]);
        st.assign_to_region(TaskId(1), choice[1], 0);
        let sched = realize_schedule(&st, false);
        assert_eq!(sched.reconfigurations.len(), 1);
        // a: [0,10); reconf: [10,15); b: [15,27).
        assert_eq!(sched.assignments[0].start, 0);
        assert_eq!(sched.assignments[0].end, 10);
        assert_eq!(sched.reconfigurations[0].start, 10);
        assert_eq!(sched.reconfigurations[0].end, 15);
        assert_eq!(sched.assignments[1].start, 15);
        assert_eq!(sched.makespan(), 27);
        validate_schedule(&inst, &sched).expect("valid");
    }

    #[test]
    fn independent_regions_need_no_reconfigurations() {
        let mut pool = ImplPool::new();
        let mut g = TaskGraph::new();
        for i in 0..2 {
            let s = pool.add(Implementation::software(format!("s{i}"), 1000));
            let h = pool.add(Implementation::hardware(
                format!("h{i}"),
                10,
                ResourceVec::new(3, 0, 0),
            ));
            g.add_task(format!("t{i}"), vec![s, h]);
        }
        let inst = ProblemInstance::new(
            "indep",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(10, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap();
        let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(&inst));
        let choice = vec![ImplId(1), ImplId(3)];
        let mut st = SchedState::new(&inst, &inst.architecture.device, w, choice).unwrap();
        st.open_region(TaskId(0), ImplId(1));
        st.open_region(TaskId(1), ImplId(3));
        let sched = realize_schedule(&st, false);
        assert!(sched.reconfigurations.is_empty());
        // Both run in parallel from 0.
        assert_eq!(sched.makespan(), 10);
        validate_schedule(&inst, &sched).expect("valid");
    }

    #[test]
    fn controller_contention_serializes_reconfigurations() {
        // Two regions, each hosting a chain of two tasks; the two
        // reconfigurations become ready around the same time and must not
        // overlap on the controller.
        let mut pool = ImplPool::new();
        let mut g = TaskGraph::new();
        let mut ids = Vec::new();
        for i in 0..4 {
            let s = pool.add(Implementation::software(format!("s{i}"), 10_000));
            let h = pool.add(Implementation::hardware(
                format!("h{i}"),
                10,
                ResourceVec::new(5, 0, 0),
            ));
            ids.push(h);
            g.add_task(format!("t{i}"), vec![s, h]);
        }
        // Chains 0 -> 1 and 2 -> 3.
        g.add_edge(TaskId(0), TaskId(1));
        g.add_edge(TaskId(2), TaskId(3));
        let inst = ProblemInstance::new(
            "contend",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(10, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap();
        let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(&inst));
        let mut st = SchedState::new(&inst, &inst.architecture.device, w, ids.clone()).unwrap();
        st.open_region(TaskId(0), ids[0]);
        st.assign_to_region(TaskId(1), ids[1], 0);
        st.open_region(TaskId(2), ids[2]);
        st.assign_to_region(TaskId(3), ids[3], 1);
        let sched = realize_schedule(&st, false);
        assert_eq!(sched.reconfigurations.len(), 2);
        let mut recs = sched.reconfigurations.clone();
        recs.sort_by_key(|r| r.start);
        assert!(recs[0].end <= recs[1].start, "controller must serialize");
        // One chain pays the contention: 10 + 5 (wait) + 5 + 10 = 30.
        assert_eq!(sched.makespan(), 30);
        validate_schedule(&inst, &sched).expect("valid");
    }

    #[test]
    fn software_tasks_flow_through() {
        let mut pool = ImplPool::new();
        let s0 = pool.add(Implementation::software("s0", 100));
        let mut g = TaskGraph::new();
        g.add_task("t0", vec![s0]);
        let inst = ProblemInstance::new(
            "sw",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(10, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap();
        let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(&inst));
        let mut st = SchedState::new(&inst, &inst.architecture.device, w, vec![s0]).unwrap();
        st.core_of[0] = Some(0);
        let sched = realize_schedule(&st, false);
        assert_eq!(sched.assignments[0].placement, Placement::Core(0));
        assert_eq!(sched.makespan(), 100);
        validate_schedule(&inst, &sched).expect("valid");
    }
}
