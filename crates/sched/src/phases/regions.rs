//! Phase C — regions definition (§V-C).
//!
//! Builds the set of reconfigurable regions and assigns every hardware
//! task to one. Processing order is the algorithm's key lever (§IV):
//! critical tasks go first, and within each class tasks are ordered by
//! descending efficiency index (eq. 5) — or randomly for the PA-R
//! non-critical pass. Tasks that cannot be hosted anywhere fall back to
//! their fastest software implementation.

use std::time::Instant;

use prfpga_model::{TaskId, TimeWindow};

use crate::config::OrderingPolicy;
use crate::state::SchedState;
use crate::trace::Phase;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runs regions definition on `state` (after implementation selection and
/// the initial CPM pass).
pub fn define_regions(state: &mut SchedState<'_>, ordering: OrderingPolicy) {
    let t0 = Instant::now();
    // Snapshot criticality and efficiency under the *initial* windows; the
    // paper fixes the processing order once.
    let hw_tasks: Vec<TaskId> = state
        .inst
        .graph
        .task_ids()
        .filter(|&t| state.is_hw(t))
        .collect();

    let eff = |state: &SchedState<'_>, t: TaskId| {
        let imp = state.inst.impls.get(state.impl_choice[t.index()]);
        state.weights.efficiency_micro(&imp.resources(), imp.time)
    };

    let mut critical: Vec<TaskId> = hw_tasks
        .iter()
        .copied()
        .filter(|&t| state.is_critical(t))
        .collect();
    let mut non_critical: Vec<TaskId> = hw_tasks
        .iter()
        .copied()
        .filter(|&t| !state.is_critical(t))
        .collect();

    // Critical tasks: always by descending efficiency (ties: lower id).
    critical.sort_by_key(|&t| (std::cmp::Reverse(eff(state, t)), t));

    // Non-critical tasks: policy-dependent.
    match ordering {
        OrderingPolicy::EfficiencyIndex => {
            non_critical.sort_by_key(|&t| (std::cmp::Reverse(eff(state, t)), t));
        }
        OrderingPolicy::InverseEfficiency => {
            non_critical.sort_by_key(|&t| (eff(state, t), t));
        }
        OrderingPolicy::TaskId => non_critical.sort(),
        OrderingPolicy::RandomizedNonCritical(seed) => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            non_critical.sort();
            non_critical.shuffle(&mut rng);
        }
    }

    for t in critical {
        place_critical(state, t);
    }
    for t in non_critical {
        place_non_critical(state, t);
    }

    let hw = state.region_of.iter().filter(|r| r.is_some()).count();
    state
        .observer
        .regions_defined(state.regions.len(), hw, state.inst.graph.len() - hw);
    state.observer.phase_finished(Phase::Regions, t0.elapsed());
}

/// §V-C critical-task rule: reuse the smallest-bitstream compatible region,
/// else open a new one, else fall back to software.
fn place_critical(state: &mut SchedState<'_>, t: TaskId) {
    let res = state.chosen_res(t);
    let fabric = state.fabric_of[t.index()];
    let candidate = (0..state.regions.len())
        .filter_map(|s| region_eligible(state, t, s, true).map(|imp| (s, imp)))
        .min_by_key(|&(s, imp)| {
            (
                !reuses_module(state, t, s, imp),
                state
                    .fabric_device(state.regions[s].fabric)
                    .bitstream_bits(&state.regions[s].res),
                s,
            )
        });
    if let Some((s, imp)) = candidate {
        state.assign_to_region(t, imp, s);
    } else if (state.used_resources_on(fabric) + res).fits_in(&state.fabric_cap(fabric)) {
        let imp = state.impl_choice[t.index()];
        state.open_region(t, imp);
    } else {
        state.switch_to_sw(t);
    }
}

/// §V-C non-critical rule: prefer opening a new region (maximize fabric
/// utilization), else reuse a compatible one, else fall back to software.
fn place_non_critical(state: &mut SchedState<'_>, t: TaskId) {
    let res = state.chosen_res(t);
    let fabric = state.fabric_of[t.index()];
    if (state.used_resources_on(fabric) + res).fits_in(&state.fabric_cap(fabric)) {
        let imp = state.impl_choice[t.index()];
        state.open_region(t, imp);
        return;
    }
    let candidate = (0..state.regions.len())
        .filter_map(|s| region_eligible(state, t, s, false).map(|imp| (s, imp)))
        .min_by_key(|&(s, imp)| {
            (
                !reuses_module(state, t, s, imp),
                state
                    .fabric_device(state.regions[s].fabric)
                    .bitstream_bits(&state.regions[s].res),
                s,
            )
        });
    if let Some((s, imp)) = candidate {
        state.assign_to_region(t, imp, s);
    } else {
        state.switch_to_sw(t);
    }
}

/// True when hosting `t` with `imp` in region `s` would land right after a
/// task that already uses `imp`, making the reconfiguration between them
/// unnecessary under module reuse. Only meaningful when the scheduler's
/// `module_reuse` extension is active; used as a placement tie-breaker.
fn reuses_module(state: &SchedState<'_>, t: TaskId, s: usize, imp: prfpga_model::ImplId) -> bool {
    if !state.module_reuse {
        return false;
    }
    let pos = state.insertion_pos(s, state.window(t).min);
    pos.checked_sub(1)
        .map(|i| state.regions[s].tasks[i])
        .is_some_and(|prev| state.impl_choice[prev.index()] == imp)
}

/// Region eligibility for task `t`. Returns the implementation to use when
/// the region can host the task, preferring `t`'s currently selected
/// implementation and falling back to its cheapest (eq. 3) hardware
/// implementation that fits — the same implementation flexibility phase D
/// exercises when it hoists software tasks into regions. A region is
/// eligible when:
///
/// * the region is hosted on `t`'s assigned fabric (always true without a
///   multi-fabric platform);
/// * some hardware implementation of `t` fits the region budget;
/// * no hosted task's occupancy overlaps `t`'s planned occupancy (under
///   the implementation considered);
/// * (critical tasks only) the reconfiguration interval
///   `[occ.min - reconf_s, occ.min)` needed to host `t` after an earlier
///   task exists and overlaps no hosted occupancy;
/// * inserting the sequencing arcs around `t` cannot create a dependency
///   cycle.
pub(crate) fn region_eligible(
    state: &SchedState<'_>,
    t: TaskId,
    s: usize,
    require_reconf_gap: bool,
) -> Option<prfpga_model::ImplId> {
    let region = &state.regions[s];
    if region.fabric != state.fabric_of[t.index()] {
        return None;
    }
    // Pick the implementation this region would host: the current choice
    // if it fits, otherwise the cheapest fitting hardware variant.
    let chosen = state.impl_choice[t.index()];
    let imp = if state.chosen_res(t).fits_in(&region.res) {
        chosen
    } else {
        state
            .inst
            .hw_impls(t)
            .filter(|&i| state.inst.impls.get(i).resources().fits_in(&region.res))
            .min_by_key(|&i| {
                let im = state.inst.impls.get(i);
                (
                    state.weights.cost_micro(
                        &im.resources(),
                        im.time,
                        crate::config::CostPolicy::Full,
                    ),
                    i,
                )
            })?
    };
    let w_min = state.window(t).min;
    let w_t = TimeWindow::new(w_min, w_min + state.inst.impls.get(imp).time);
    for &other in &region.tasks {
        if state.occupancy(other).overlaps(&w_t) {
            return None;
        }
    }
    if require_reconf_gap
        && !(state.module_reuse && {
            let pos = state.insertion_pos(s, w_min);
            pos.checked_sub(1)
                .map(|i| region.tasks[i])
                .is_some_and(|prev| state.impl_choice[prev.index()] == imp)
        })
    {
        let has_time_pred = region
            .tasks
            .iter()
            .any(|&o| state.occupancy(o).max <= w_t.min);
        if has_time_pred {
            let reconf = state.reconf_time(s);
            if w_t.min < reconf {
                return None;
            }
            let r_win = TimeWindow::new(w_t.min - reconf, w_t.min);
            if r_win.span() > 0
                && region
                    .tasks
                    .iter()
                    .any(|&o| state.occupancy(o).overlaps(&r_win))
            {
                return None;
            }
        }
    }
    // Cycle safety for the sequencing arcs around the insertion position.
    let pos = state.insertion_pos(s, w_t.min);
    if pos > 0 {
        let prev = region.tasks[pos - 1];
        if state.reachable(t.0, prev.0) {
            return None;
        }
    }
    if let Some(&next) = region.tasks.get(pos) {
        if state.reachable(next.0, t.0) {
            return None;
        }
    }
    Some(imp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CostPolicy;
    use crate::metrics::MetricWeights;
    use crate::phases::impl_select::{max_t, select_implementations};
    use prfpga_model::{
        Architecture, Device, ImplPool, Implementation, ProblemInstance, ResourceVec, TaskGraph,
    };

    /// Builds an instance and a ready state (implementation selection done).
    fn setup(
        sets: Vec<Vec<Implementation>>,
        edges: Vec<(u32, u32)>,
        cap: ResourceVec,
    ) -> (ProblemInstance, Vec<prfpga_model::ImplId>) {
        let mut pool = ImplPool::new();
        let mut graph = TaskGraph::new();
        for (i, set) in sets.into_iter().enumerate() {
            let ids: Vec<_> = set.into_iter().map(|imp| pool.add(imp)).collect();
            graph.add_task(format!("t{i}"), ids);
        }
        for (a, b) in edges {
            graph.add_edge(TaskId(a), TaskId(b));
        }
        let inst = ProblemInstance::new(
            "reg",
            Architecture::new(1, Device::tiny_test(cap, 1)),
            graph,
            pool,
        )
        .unwrap();
        let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(&inst));
        let choice = select_implementations(&inst, &w, CostPolicy::Full);
        (inst, choice)
    }

    fn run(inst: &ProblemInstance, choice: Vec<prfpga_model::ImplId>) -> SchedState<'_> {
        let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(inst));
        let mut st = SchedState::new(inst, &inst.architecture.device, w, choice).unwrap();
        define_regions(&mut st, OrderingPolicy::EfficiencyIndex);
        st
    }

    fn hw(t: u64, clb: u64) -> Implementation {
        Implementation::hardware(format!("h{t}_{clb}"), t, ResourceVec::new(clb, 0, 0))
    }
    fn sw(t: u64) -> Implementation {
        Implementation::software(format!("s{t}"), t)
    }

    #[test]
    fn parallel_tasks_get_separate_regions() {
        // Two independent HW tasks, plenty of capacity: each opens its own
        // region (no window-compatible sharing since they overlap in time).
        let (inst, choice) = setup(
            vec![vec![sw(1000), hw(10, 5)], vec![sw(1000), hw(10, 5)]],
            vec![],
            ResourceVec::new(20, 0, 0),
        );
        let st = run(&inst, choice);
        assert_eq!(st.regions.len(), 2);
        assert!(st.region_of.iter().all(|r| r.is_some()));
    }

    #[test]
    fn chain_reuses_region_when_capacity_tight() {
        // Chain of three HW tasks, capacity fits only one region: the
        // critical chain shares one region via reconfigurations.
        // Windows: 0-10, 10-20, 20-30; reconf time = 5 (5 CLB x 1 bit / 1).
        // Gap check: w2.min = 10 >= reconf 5 and the reconfiguration
        // interval [5,10) overlaps [0,10)... so sharing is *rejected* for
        // zero-slack chains and tasks fall back to SW once capacity runs
        // out. Give slack by making the middle task SW-only.
        let (inst, choice) = setup(
            vec![
                vec![sw(1000), hw(10, 5)],
                vec![sw(50)],
                vec![sw(1000), hw(10, 5)],
            ],
            vec![(0, 1), (1, 2)],
            ResourceVec::new(5, 0, 0),
        );
        let st = run(&inst, choice);
        // Both HW tasks picked HW (faster than SW 1000); capacity only
        // allows one region; task windows 0-10 and 60-70 are disjoint with
        // a 50-tick gap > reconf 5, so they share region 0.
        assert_eq!(st.regions.len(), 1);
        assert_eq!(st.region_of[0], Some(0));
        assert_eq!(st.region_of[2], Some(0));
        assert_eq!(st.regions[0].tasks, vec![TaskId(0), TaskId(2)]);
    }

    #[test]
    fn overflow_falls_back_to_software() {
        // Three parallel HW tasks, capacity for one region only, windows
        // all overlap: two must fall back to software.
        let (inst, choice) = setup(
            vec![
                vec![sw(1000), hw(10, 5)],
                vec![sw(1000), hw(10, 5)],
                vec![sw(1000), hw(10, 5)],
            ],
            vec![],
            ResourceVec::new(5, 0, 0),
        );
        let st = run(&inst, choice);
        assert_eq!(st.regions.len(), 1);
        let hw_count = st.region_of.iter().filter(|r| r.is_some()).count();
        assert_eq!(hw_count, 1);
        // The software fallbacks now run their 1000-tick implementation.
        let sw_durations: Vec<_> = (0..3)
            .filter(|&i| st.region_of[i].is_none())
            .map(|i| st.durations[i])
            .collect();
        assert_eq!(sw_durations, vec![1000, 1000]);
    }

    #[test]
    fn region_sharing_respects_dependencies() {
        // Diamond: 0 -> {1, 2} -> 3 all HW. 1 and 2 overlap in windows so
        // they cannot share; with capacity for two regions, 1 and 2 get one
        // each and 0/3 reuse them.
        let (inst, choice) = setup(
            vec![
                vec![sw(9000), hw(100, 5)],
                vec![sw(9000), hw(200, 5)],
                vec![sw(9000), hw(150, 5)],
                vec![sw(9000), hw(100, 5)],
            ],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
            ResourceVec::new(10, 0, 0),
        );
        let st = run(&inst, choice);
        assert!(st.regions.len() <= 2);
        // Tasks 1 and 2 never share a region (overlapping windows).
        if let (Some(r1), Some(r2)) = (st.region_of[1], st.region_of[2]) {
            assert_ne!(r1, r2);
        }
    }

    #[test]
    fn ordering_policies_change_outcomes_deterministically() {
        let mk = || {
            setup(
                (0..6)
                    .map(|i| vec![sw(5000), hw(100 + i * 37, 4 + (i % 3) * 3)])
                    .collect(),
                vec![(0, 3), (1, 4), (2, 5)],
                ResourceVec::new(14, 0, 0),
            )
        };
        let run_with = |ord: OrderingPolicy| {
            let (inst, choice) = mk();
            let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(&inst));
            let mut st = SchedState::new(&inst, &inst.architecture.device, w, choice).unwrap();
            define_regions(&mut st, ord);
            (st.regions.len(), st.region_of.clone(), st.cpm.makespan)
        };
        // Determinism: same policy twice gives identical results.
        assert_eq!(
            run_with(OrderingPolicy::EfficiencyIndex),
            run_with(OrderingPolicy::EfficiencyIndex)
        );
        assert_eq!(
            run_with(OrderingPolicy::RandomizedNonCritical(5)),
            run_with(OrderingPolicy::RandomizedNonCritical(5))
        );
    }

    #[test]
    fn software_only_tasks_are_untouched() {
        let (inst, choice) = setup(
            vec![vec![sw(10)], vec![sw(20)]],
            vec![(0, 1)],
            ResourceVec::new(100, 0, 0),
        );
        let st = run(&inst, choice);
        assert!(st.regions.is_empty());
        assert_eq!(st.region_of, vec![None, None]);
    }
}
