//! Phase D — software task balancing (§V-D).
//!
//! Regions definition may have pushed tasks to software, leaving fabric
//! idle while hardware tasks wait on slow software producers. This phase
//! walks the software tasks that *do* have hardware implementations, in
//! ascending `T_MIN` order, and hoists one back into hardware when:
//!
//! * its start lies beyond the estimated total reconfiguration load
//!   (`T_MIN > totRecTime`, eq. 6) — so adding one more reconfiguration
//!   will not congest the controller; and
//! * some region can host it without window overlap (and without creating
//!   a dependency cycle through the sequencing arcs).

use std::time::Instant;

use prfpga_model::TaskId;

use crate::state::SchedState;
use crate::trace::Phase;

/// Runs software task balancing; returns the number of tasks hoisted back
/// to hardware.
pub fn balance_software_tasks(state: &mut SchedState<'_>) -> usize {
    let t0 = Instant::now();
    let mut hoisted = 0;
    loop {
        // Candidates: software tasks with hardware implementations,
        // ascending T_MIN under the *current* windows. Re-evaluated after
        // every hoist because windows move.
        let mut cands: Vec<TaskId> = state
            .inst
            .graph
            .task_ids()
            .filter(|&t| !state.is_hw(t) && state.inst.hw_impls(t).next().is_some())
            .collect();
        cands.sort_by_key(|&t| (state.window(t).min, t));

        let tot_rec = state.total_reconf_time();
        let mut moved = false;
        for t in cands {
            if state.window(t).min <= tot_rec {
                continue; // controller estimated busy up to totRecTime
            }
            if let Some((s, imp)) = best_hosting(state, t) {
                state.assign_to_region(t, imp, s);
                hoisted += 1;
                moved = true;
                break; // windows changed; restart scan
            }
        }
        if !moved {
            state.observer.tasks_hoisted(hoisted);
            state
                .observer
                .phase_finished(Phase::SwBalance, t0.elapsed());
            return hoisted;
        }
    }
}

/// Finds the smallest-bitstream region that can host `t` with its
/// lowest-cost hardware implementation that fits (§V-D step 2: "the
/// hardware implementation with the lowest cost").
fn best_hosting(state: &SchedState<'_>, t: TaskId) -> Option<(usize, prfpga_model::ImplId)> {
    let mut best: Option<(u64, usize, prfpga_model::ImplId)> = None;
    for s in 0..state.regions.len() {
        // Only regions on the task's assigned fabric can host it.
        if state.regions[s].fabric != state.fabric_of[t.index()] {
            continue;
        }
        // Cheapest HW implementation fitting region s.
        let imp = state
            .inst
            .hw_impls(t)
            .filter(|&i| {
                state
                    .inst
                    .impls
                    .get(i)
                    .resources()
                    .fits_in(&state.regions[s].res)
            })
            .min_by_key(|&i| {
                let im = state.inst.impls.get(i);
                (
                    state.weights.cost_micro(
                        &im.resources(),
                        im.time,
                        crate::config::CostPolicy::Full,
                    ),
                    i,
                )
            });
        let Some(imp) = imp else { continue };
        // Window compatibility for the *hardware* duration of `imp`: probe
        // with a temporary window anchored at the task's current T_MIN.
        if !hosting_compatible(state, t, s, imp) {
            continue;
        }
        let bits = state
            .fabric_device(state.regions[s].fabric)
            .bitstream_bits(&state.regions[s].res);
        if best.is_none_or(|(b, ..)| bits < b) {
            best = Some((bits, s, imp));
        }
    }
    best.map(|(_, s, imp)| (s, imp))
}

/// Window-overlap + cycle-safety probe for hoisting `t` into `s`.
fn hosting_compatible(
    state: &SchedState<'_>,
    t: TaskId,
    s: usize,
    imp: prfpga_model::ImplId,
) -> bool {
    let w_min = state.window(t).min;
    let hw_time = state.inst.impls.get(imp).time;
    // Planned occupancy under the hardware implementation: anchored at the
    // task's current T_MIN for the hardware duration.
    let w_t = prfpga_model::TimeWindow::new(w_min, w_min + hw_time);
    for &other in &state.regions[s].tasks {
        if state.occupancy(other).overlaps(&w_t) {
            return false;
        }
    }
    let pos = state.insertion_pos(s, w_min);
    if pos > 0 {
        let prev = state.regions[s].tasks[pos - 1];
        if state.reachable(t.0, prev.0) {
            return false;
        }
    }
    if let Some(&next) = state.regions[s].tasks.get(pos) {
        if state.reachable(next.0, t.0) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricWeights;
    use crate::phases::impl_select::max_t;
    use prfpga_model::{
        Architecture, Device, ImplId, ImplPool, Implementation, ProblemInstance, ResourceVec,
        TaskGraph,
    };

    /// Instance: t0 HW in a region finishing at 10; t1 is a *software* task
    /// (with an available HW impl) whose window starts late (depends on a
    /// long SW task t2). t1 can be hoisted into t0's region.
    fn fixture() -> ProblemInstance {
        let mut pool = ImplPool::new();
        let mut g = TaskGraph::new();
        let s0 = pool.add(Implementation::software("s0", 900));
        let h0 = pool.add(Implementation::hardware(
            "h0",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        let t0 = g.add_task("t0", vec![s0, h0]);
        let s2 = pool.add(Implementation::software("s2", 500));
        let t2 = g.add_task("t2", vec![s2]);
        let s1 = pool.add(Implementation::software("s1", 300));
        let h1 = pool.add(Implementation::hardware(
            "h1",
            40,
            ResourceVec::new(4, 0, 0),
        ));
        let t1 = g.add_task("t1", vec![s1, h1]);
        g.add_edge(t2, t1); // t1 starts after the 500-tick software task
        let _ = t0;
        ProblemInstance::new(
            "bal",
            Architecture::new(2, Device::tiny_test(ResourceVec::new(5, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap()
    }

    fn state(inst: &ProblemInstance) -> SchedState<'_> {
        let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(inst));
        // t0 chosen HW, t1/t2 SW.
        let choice = vec![ImplId(1), ImplId(2), ImplId(3)];
        let mut st = SchedState::new(inst, &inst.architecture.device, w, choice).unwrap();
        let h0 = ImplId(1);
        st.open_region(prfpga_model::TaskId(0), h0);
        st
    }

    #[test]
    fn hoists_late_software_task_into_idle_region() {
        let inst = fixture();
        let mut st = state(&inst);
        assert!(!st.is_hw(TaskId(2)));
        // totRecTime = 0 (single task in region); t1's T_MIN = 500 > 0.
        let hoisted = balance_software_tasks(&mut st);
        assert_eq!(hoisted, 1);
        assert!(st.is_hw(TaskId(2)));
        assert_eq!(st.region_of[2], Some(0));
        // Hardware implementation with lowest cost was used (h1 = id 4).
        assert_eq!(st.impl_choice[2], ImplId(4));
        assert_eq!(st.durations[2], 40);
    }

    #[test]
    fn respects_tot_rec_time_gate() {
        let inst = fixture();
        let st = state(&inst);
        // Inflate the estimated reconfiguration load artificially by
        // hosting a second task in the region via a second region trick:
        // instead, shrink t1's T_MIN by removing its dependency — rebuild
        // with t1 independent (T_MIN = 0), so the gate 0 > totRecTime=0
        // fails and nothing is hoisted.
        let mut pool = ImplPool::new();
        let mut g = TaskGraph::new();
        let s0 = pool.add(Implementation::software("s0", 900));
        let h0 = pool.add(Implementation::hardware(
            "h0",
            10,
            ResourceVec::new(5, 0, 0),
        ));
        g.add_task("t0", vec![s0, h0]);
        let s1 = pool.add(Implementation::software("s1", 300));
        let h1 = pool.add(Implementation::hardware(
            "h1",
            40,
            ResourceVec::new(4, 0, 0),
        ));
        g.add_task("t1", vec![s1, h1]);
        let inst2 = ProblemInstance::new(
            "bal2",
            Architecture::new(2, Device::tiny_test(ResourceVec::new(5, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap();
        let w = MetricWeights::new(&inst2.architecture.device.max_res, max_t(&inst2));
        let mut st2 = SchedState::new(
            &inst2,
            &inst2.architecture.device,
            w,
            vec![ImplId(1), ImplId(2)],
        )
        .unwrap();
        st2.open_region(TaskId(0), ImplId(1));
        let hoisted = balance_software_tasks(&mut st2);
        assert_eq!(
            hoisted, 0,
            "T_MIN == 0 is not strictly greater than totRecTime"
        );
        assert!(!st2.is_hw(TaskId(1)));
        drop(st);
    }

    #[test]
    fn no_regions_means_no_balancing() {
        let inst = fixture();
        let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(&inst));
        let mut st = SchedState::new(
            &inst,
            &inst.architecture.device,
            w,
            vec![ImplId(0), ImplId(2), ImplId(3)],
        )
        .unwrap();
        assert_eq!(balance_software_tasks(&mut st), 0);
    }
}
