//! Phase F — software task mapping (§V-F).
//!
//! Binds every software task to a processor core. Tasks are visited in
//! chronological order of their earliest start; each goes to the core with
//! the smallest induced delay `λ_p` (eq. 8, read as
//! `max(0, max_{t2 ∈ T_p} T_END_{t2} - T_MIN_t)` — the published formula
//! writes `min`, which would make every delay non-positive and contradicts
//! steps 3–4 of the same section). A sequencing arc from the core's last
//! task pins the order, and the induced delay is propagated through the
//! dependency graph by the CPM recomputation.

use std::time::Instant;

use prfpga_model::{TaskId, Time};
use prfpga_timeline::LaneId;

use crate::state::SchedState;
use crate::trace::Phase;

/// Runs software task mapping; fills `state.core_of` for software tasks
/// and inserts per-core sequencing arcs.
pub fn map_software_tasks(state: &mut SchedState<'_>) {
    let t0 = Instant::now();
    let num_cores = state.inst.architecture.num_processors;
    // Snapshot processing order by current T_MIN (phase E anchors starts
    // at T_MIN).
    let mut sw_tasks: Vec<TaskId> = state
        .inst
        .graph
        .task_ids()
        .filter(|&t| !state.is_hw(t))
        .collect();
    sw_tasks.sort_by_key(|&t| (state.window(t).min, t));

    // With positive durations an assigned task's occupancy is final: the
    // sequencing arc added below only delays *descendants* of the newly
    // mapped task, and a descendant's T_MIN exceeds its ancestor's by at
    // least one positive duration, so it cannot sit earlier in the
    // processing order — i.e. it is never already assigned. The drain tick
    // of a core is then exactly its timeline lane's `free_from`, replacing
    // the O(tasks-on-core) rescan per candidate core with an O(1) read.
    // A zero-duration software task voids the argument (a delayed task
    // could already be mapped), so that rare case keeps the rescan.
    let cached_free = sw_tasks.iter().all(|&t| state.durations[t.index()] > 0);

    // Per-core: tasks assigned so far (order of assignment equals time
    // order because we process by ascending T_MIN and enqueue at the end).
    let mut core_tasks: Vec<Vec<TaskId>> = vec![Vec::new(); num_cores];

    for t in sw_tasks {
        let t_min = state.window(t).min;
        // λ_p per core: how long t would wait for the core to drain.
        let (best_core, _lambda) = (0..num_cores)
            .map(|p| {
                let busy_until: Time = if cached_free {
                    state.timeline.free_from(LaneId::core(p))
                } else {
                    core_tasks[p]
                        .iter()
                        .map(|&t2| state.occupancy(t2).max)
                        .max()
                        .unwrap_or(0)
                };
                (p, busy_until.saturating_sub(t_min))
            })
            .min_by_key(|&(p, lambda)| (lambda, p))
            .expect("validated instances have at least one core");

        // Sequencing arc from the core's last task; the delay itself is
        // realized by the CPM pass through this arc.
        let mut arc_added = None;
        if let Some(&last) = core_tasks[best_core].last() {
            // The arc can only create a cycle if `last` depends on `t`;
            // since `last` was chosen among tasks with T_MIN no later than
            // t's and arcs only point forward in CPM time, a cycle here
            // means the two tasks are dependency-ordered t -> last. In that
            // case skip the arc: the data dependency already serializes
            // them on the core.
            //
            // Deliberately NOT `insert_sequencing_arc`: no reachability
            // probe happens after this phase, so paying the closure's
            // ancestor-propagation per core-chain arc (~10k arcs on large
            // graphs) would buy nothing — plain insertion lets the index
            // go stale instead.
            if state.dag.add_edge(last.0, t.0).is_ok() {
                arc_added = Some(last);
            }
        }
        core_tasks[best_core].push(t);
        state.core_of[t.index()] = Some(best_core);
        if state.incremental {
            if let Some(last) = arc_added {
                state.cpm_apply_arc(last, t);
            }
        } else {
            state.recompute_windows();
        }
        if cached_free {
            // Commit the (now final) occupancy on the core's lane; the arc
            // just folded in guarantees it starts at or after the drain.
            let occ = state.occupancy(t);
            state
                .timeline
                .reserve(LaneId::core(best_core), occ)
                .expect("occupancy starts at or after the core's drain");
        }
    }
    state.observer.phase_finished(Phase::SwMap, t0.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricWeights;
    use crate::phases::impl_select::max_t;
    use prfpga_model::{
        Architecture, Device, ImplId, ImplPool, Implementation, ProblemInstance, ResourceVec,
        TaskGraph,
    };

    fn sw_instance(times: &[Time], cores: usize) -> ProblemInstance {
        let mut pool = ImplPool::new();
        let mut g = TaskGraph::new();
        for (i, &t) in times.iter().enumerate() {
            let s = pool.add(Implementation::software(format!("s{i}"), t));
            g.add_task(format!("t{i}"), vec![s]);
        }
        ProblemInstance::new(
            "map",
            Architecture::new(cores, Device::tiny_test(ResourceVec::new(10, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap()
    }

    fn state(inst: &ProblemInstance) -> SchedState<'_> {
        let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(inst));
        let choice: Vec<ImplId> = inst
            .graph
            .task_ids()
            .map(|t| inst.fastest_sw_impl(t))
            .collect();
        SchedState::new(inst, &inst.architecture.device, w, choice).unwrap()
    }

    #[test]
    fn parallel_tasks_spread_over_cores() {
        let inst = sw_instance(&[100, 100], 2);
        let mut st = state(&inst);
        map_software_tasks(&mut st);
        assert_ne!(st.core_of[0], st.core_of[1]);
        // No serialization arc between them: makespan stays 100.
        assert_eq!(st.cpm.makespan, 100);
    }

    #[test]
    fn single_core_serializes_and_propagates_delay() {
        let inst = sw_instance(&[100, 80, 60], 1);
        let mut st = state(&inst);
        map_software_tasks(&mut st);
        assert!(st.core_of.iter().all(|c| *c == Some(0)));
        // All three run back to back.
        assert_eq!(st.cpm.makespan, 240);
    }

    #[test]
    fn picks_least_loaded_core() {
        // Four equal tasks on two cores: 2 + 2.
        let inst = sw_instance(&[50, 50, 50, 50], 2);
        let mut st = state(&inst);
        map_software_tasks(&mut st);
        let on0 = st.core_of.iter().filter(|c| **c == Some(0)).count();
        let on1 = st.core_of.iter().filter(|c| **c == Some(1)).count();
        assert_eq!((on0, on1), (2, 2));
        assert_eq!(st.cpm.makespan, 100);
    }

    #[test]
    fn hardware_tasks_are_ignored() {
        let mut pool = ImplPool::new();
        let s = pool.add(Implementation::software("s", 100));
        let h = pool.add(Implementation::hardware("h", 10, ResourceVec::new(2, 0, 0)));
        let mut g = TaskGraph::new();
        g.add_task("t0", vec![s, h]);
        let inst = ProblemInstance::new(
            "hw",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(10, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap();
        let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(&inst));
        let mut st = SchedState::new(&inst, &inst.architecture.device, w, vec![h]).unwrap();
        st.open_region(TaskId(0), h);
        map_software_tasks(&mut st);
        assert_eq!(st.core_of[0], None);
    }

    #[test]
    fn dependency_chain_on_one_core_needs_no_extra_delay() {
        let mut pool = ImplPool::new();
        let a = pool.add(Implementation::software("a", 100));
        let b = pool.add(Implementation::software("b", 50));
        let mut g = TaskGraph::new();
        let ta = g.add_task("a", vec![a]);
        let tb = g.add_task("b", vec![b]);
        g.add_edge(ta, tb);
        let inst = ProblemInstance::new(
            "chain",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(10, 0, 0), 1)),
            g,
            pool,
        )
        .unwrap();
        let w = MetricWeights::new(&inst.architecture.device.max_res, max_t(&inst));
        let mut st = SchedState::new(&inst, &inst.architecture.device, w, vec![a, b]).unwrap();
        map_software_tasks(&mut st);
        assert_eq!(st.cpm.makespan, 150);
    }
}
