//! The randomized scheduler variant PA-R (§VI, Algorithm 1).
//!
//! PA-R relaxes the fixed efficiency-index ordering for *non-critical*
//! hardware tasks during regions definition: each iteration draws a fresh
//! random ordering, runs the core pipeline (`doSchedule`), and — only when
//! the new schedule improves on the incumbent — pays for a floorplan
//! check. Floorplan-infeasible candidates are simply discarded (no
//! capacity-shrinking restarts, unlike the deterministic PA). The search
//! runs until a wall-clock budget or an iteration cap expires, whichever
//! comes first, and returns the best feasible schedule found.

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

use prfpga_floorplan::{FloorplanOutcome, Floorplanner};
use prfpga_model::{ProblemInstance, ResourceVec, Schedule, Time};

use crate::config::{OrderingPolicy, SchedulerConfig};
use crate::driver::{do_schedule, PaScheduler};
use crate::error::SchedError;

/// A point on PA-R's anytime-convergence curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergencePoint {
    /// Iteration (1-based) at which the improvement landed.
    pub iteration: usize,
    /// Wall-clock elapsed since the search started.
    pub elapsed: Duration,
    /// The improved (floorplan-feasible) makespan.
    pub makespan: Time,
}

/// Result of a PA-R run.
#[derive(Debug, Clone)]
pub struct PaRResult {
    /// Best floorplan-feasible schedule found.
    pub schedule: Schedule,
    /// Iterations executed.
    pub iterations: usize,
    /// Every improvement, in order — the data behind the paper's Fig. 6.
    pub trace: Vec<ConvergencePoint>,
}

/// The randomized scheduler (*PA-R*).
#[derive(Debug, Clone, Default)]
pub struct PaRScheduler {
    config: SchedulerConfig,
}

impl PaRScheduler {
    /// Creates a PA-R scheduler; `config.time_budget`, `config.max_iterations`
    /// and `config.seed` drive the search.
    pub fn new(config: SchedulerConfig) -> Self {
        PaRScheduler { config }
    }

    /// Schedules `inst`, returning only the best schedule.
    pub fn schedule(&self, inst: &ProblemInstance) -> Result<Schedule, SchedError> {
        self.schedule_detailed(inst).map(|r| r.schedule)
    }

    /// Runs the randomized search (Algorithm 1) with full diagnostics.
    pub fn schedule_detailed(&self, inst: &ProblemInstance) -> Result<PaRResult, SchedError> {
        inst.validate()
            .map_err(|e| SchedError::InvalidInstance(e.to_string()))?;

        let planner = Floorplanner::new(self.config.floorplan.clone());
        // Virtual capacity ratchet: Algorithm 1 discards floorplan-
        // infeasible candidates outright, but a pipeline run that packs the
        // fabric to 100% is *systematically* unplaceable on a column grid,
        // so repeating it at the same capacity would starve the search.
        // Whenever an improving candidate fails the floorplan, subsequent
        // iterations schedule against a shrunken virtual capacity — the
        // same lever the deterministic PA's restart loop uses (§V-H).
        let mut virtual_device = inst.architecture.device.clone();
        let mut shrinks_left = self.config.max_attempts.max(1);
        let start = Instant::now();
        let deadline = start + self.config.time_budget;
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);

        let mut best: Option<Schedule> = None;
        let mut best_makespan = Time::MAX;
        let mut trace = Vec::new();
        let mut iterations = 0usize;

        loop {
            if self.config.max_iterations > 0 && iterations >= self.config.max_iterations {
                break;
            }
            // Always run at least one iteration so a zero budget still
            // returns a schedule.
            if iterations > 0 && Instant::now() >= deadline {
                break;
            }
            iterations += 1;
            let order_seed: u64 = rng.random();
            let schedule = do_schedule(
                inst,
                &virtual_device,
                &self.config,
                OrderingPolicy::RandomizedNonCritical(order_seed),
            );
            let makespan = schedule.makespan();
            if makespan < best_makespan {
                // Pay for the floorplanner only on improvement (Algorithm 1).
                let demands: Vec<ResourceVec> = schedule.regions.iter().map(|r| r.res).collect();
                if let FloorplanOutcome::Feasible(_) =
                    planner.check_device(&inst.architecture.device, &demands)
                {
                    best_makespan = makespan;
                    best = Some(schedule);
                    trace.push(ConvergencePoint {
                        iteration: iterations,
                        elapsed: start.elapsed(),
                        makespan,
                    });
                } else if shrinks_left > 0 {
                    let (num, den) = self.config.shrink_factor;
                    virtual_device = virtual_device.with_scaled_capacity(num, den);
                    shrinks_left -= 1;
                }
            }
        }

        match best {
            Some(schedule) => Ok(PaRResult {
                schedule,
                iterations,
                trace,
            }),
            // Every random candidate was floorplan-infeasible: fall back to
            // the deterministic PA, whose shrinking loop always terminates
            // with a feasible (possibly all-software) schedule.
            None => {
                let pa = PaScheduler::new(self.config.clone()).schedule_detailed(inst)?;
                Ok(PaRResult {
                    schedule: pa.schedule,
                    iterations,
                    trace,
                })
            }
        }
    }

    /// Parallel PA-R: `threads` workers explore disjoint seed streams and
    /// share the incumbent under a mutex. The result is deterministic for
    /// a fixed `(seed, max_iterations, threads)` triple when the iteration
    /// cap is used (each worker owns an equal slice of the iteration
    /// budget); under a pure wall-clock budget the outcome depends on
    /// timing, as in any anytime search.
    pub fn schedule_parallel(
        &self,
        inst: &ProblemInstance,
        threads: usize,
    ) -> Result<Schedule, SchedError> {
        let threads = threads.max(1);
        if threads == 1 {
            return self.schedule(inst);
        }
        inst.validate()
            .map_err(|e| SchedError::InvalidInstance(e.to_string()))?;

        let best: Mutex<(Time, Option<Schedule>)> = Mutex::new((Time::MAX, None));
        let deadline = Instant::now() + self.config.time_budget;
        let per_worker_iters = if self.config.max_iterations > 0 {
            self.config.max_iterations.div_ceil(threads)
        } else {
            0
        };

        crossbeam::thread::scope(|scope| {
            for w in 0..threads {
                let best = &best;
                let config = &self.config;
                let planner = Floorplanner::new(self.config.floorplan.clone());
                let inst = &*inst;
                scope.spawn(move |_| {
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(w as u64 * 0x9E37));
                    // Per-worker capacity ratchet (see schedule_detailed).
                    let mut virtual_device = inst.architecture.device.clone();
                    let mut shrinks_left = config.max_attempts.max(1);
                    let mut iters = 0usize;
                    loop {
                        if per_worker_iters > 0 && iters >= per_worker_iters {
                            break;
                        }
                        if iters > 0 && Instant::now() >= deadline {
                            break;
                        }
                        iters += 1;
                        let order_seed: u64 = rng.random();
                        let schedule = do_schedule(
                            inst,
                            &virtual_device,
                            config,
                            OrderingPolicy::RandomizedNonCritical(order_seed),
                        );
                        let makespan = schedule.makespan();
                        if makespan < best.lock().0 {
                            let demands: Vec<ResourceVec> =
                                schedule.regions.iter().map(|r| r.res).collect();
                            if let FloorplanOutcome::Feasible(_) =
                                planner.check_device(&inst.architecture.device, &demands)
                            {
                                let mut guard = best.lock();
                                if makespan < guard.0 {
                                    *guard = (makespan, Some(schedule));
                                }
                            } else if shrinks_left > 0 {
                                let (num, den) = config.shrink_factor;
                                virtual_device = virtual_device.with_scaled_capacity(num, den);
                                shrinks_left -= 1;
                            }
                        }
                    }
                });
            }
        })
        .expect("PA-R worker panicked");

        let (_, found) = best.into_inner();
        match found {
            Some(s) => Ok(s),
            None => PaScheduler::new(self.config.clone())
                .schedule_detailed(inst)
                .map(|r| r.schedule),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_gen::{GraphConfig, TaskGraphGenerator};
    use prfpga_model::Architecture;
    use prfpga_sim::validate_schedule;

    fn config_iters(iters: usize) -> SchedulerConfig {
        SchedulerConfig {
            max_iterations: iters,
            time_budget: Duration::from_secs(60),
            ..Default::default()
        }
    }

    fn instance(n: usize, seed: u64) -> ProblemInstance {
        TaskGraphGenerator::new(seed).generate(
            &format!("par{n}"),
            &GraphConfig::standard(n),
            Architecture::zedboard(),
        )
    }

    #[test]
    fn finds_valid_schedules() {
        let inst = instance(20, 11);
        let par = PaRScheduler::new(config_iters(8));
        let r = par.schedule_detailed(&inst).unwrap();
        assert_eq!(r.iterations, 8);
        assert!(!r.trace.is_empty());
        validate_schedule(&inst, &r.schedule).expect("valid");
    }

    #[test]
    fn trace_is_monotonically_improving() {
        let inst = instance(30, 13);
        let par = PaRScheduler::new(config_iters(12));
        let r = par.schedule_detailed(&inst).unwrap();
        for pair in r.trace.windows(2) {
            assert!(pair[1].makespan < pair[0].makespan);
            assert!(pair[1].iteration > pair[0].iteration);
        }
        assert_eq!(
            r.schedule.makespan(),
            r.trace.last().unwrap().makespan,
            "returned schedule is the last improvement"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed_and_iterations() {
        let inst = instance(25, 17);
        let par = PaRScheduler::new(config_iters(6));
        let a = par.schedule(&inst).unwrap();
        let b = par.schedule(&inst).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_iterations_never_hurt() {
        let inst = instance(40, 19);
        let short = PaRScheduler::new(config_iters(2))
            .schedule(&inst)
            .unwrap()
            .makespan();
        let long = PaRScheduler::new(config_iters(16))
            .schedule(&inst)
            .unwrap()
            .makespan();
        assert!(long <= short, "more search cannot worsen the incumbent");
    }

    #[test]
    fn parallel_variant_returns_valid_schedules() {
        let inst = instance(20, 23);
        let par = PaRScheduler::new(config_iters(8));
        let s = par.schedule_parallel(&inst, 4).unwrap();
        validate_schedule(&inst, &s).expect("valid");
    }

    #[test]
    fn zero_budget_still_returns_a_schedule() {
        let inst = instance(15, 29);
        let cfg = SchedulerConfig {
            time_budget: Duration::ZERO,
            max_iterations: 0,
            ..Default::default()
        };
        let s = PaRScheduler::new(cfg).schedule(&inst).unwrap();
        validate_schedule(&inst, &s).expect("valid");
    }
}
