//! The randomized scheduler variant PA-R (§VI, Algorithm 1).
//!
//! PA-R relaxes the fixed efficiency-index ordering for *non-critical*
//! hardware tasks during regions definition: each iteration draws a fresh
//! random ordering, runs the core pipeline (`doSchedule`), and — only when
//! the new schedule improves on the incumbent — pays for a floorplan
//! check. Floorplan-infeasible candidates are simply discarded (no
//! capacity-shrinking restarts, unlike the deterministic PA). The search
//! runs until a wall-clock budget or an iteration cap expires, whichever
//! comes first, and returns the best feasible schedule found.

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

use prfpga_floorplan::{
    CacheStats, FeasibilityCache, FloorplanOutcome, Floorplanner, SharedFeasibilityCache,
    DEFAULT_CACHE_CAPACITY,
};
use prfpga_model::{CancelToken, ProblemInstance, ResourceVec, Schedule, Time};

use crate::config::{OrderingPolicy, SchedulerConfig};
use crate::driver::{do_schedule, do_schedule_in, ImplSelectMemo, PaScheduler};
use crate::error::SchedError;
use crate::state::SchedWorkspace;
use crate::trace::ObserverHandle;

/// A point on PA-R's anytime-convergence curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergencePoint {
    /// Iteration (1-based) at which the improvement landed.
    pub iteration: usize,
    /// Wall-clock elapsed since the search started.
    pub elapsed: Duration,
    /// The improved (floorplan-feasible) makespan.
    pub makespan: Time,
}

/// Result of a PA-R run.
#[derive(Debug, Clone)]
pub struct PaRResult {
    /// Best floorplan-feasible schedule found.
    pub schedule: Schedule,
    /// Iterations executed.
    pub iterations: usize,
    /// Every improvement, in order — the data behind the paper's Fig. 6.
    pub trace: Vec<ConvergencePoint>,
    /// Wall-clock of the whole search.
    pub elapsed: Duration,
    /// Iterations that rewound the warm workspace instead of re-allocating
    /// (0 when `workspace_reuse` is off).
    pub workspace_reuses: u64,
    /// Floorplan-feasibility cache counters (all-zero when
    /// `workspace_reuse` is off or the device carries no geometry).
    pub fp_cache: CacheStats,
    /// True when the run's [`CancelToken`] fired mid-search: the returned
    /// schedule is the incumbent at cancellation time (or the degraded PA
    /// fallback if nothing feasible existed yet). Always `false` when no
    /// deadline was set; a naturally exhausted `time_budget` does not count
    /// as degradation.
    pub degraded: bool,
    /// Cancellation checkpoints this call polled on its token.
    pub cancel_polls: u64,
    /// Checkpoints that observed the fired deadline.
    pub deadline_hits: u64,
}

impl PaRResult {
    /// Search throughput in iterations per second (0 when the clock did
    /// not tick).
    pub fn iterations_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.iterations as f64 / secs
        } else {
            0.0
        }
    }
}

/// The randomized scheduler (*PA-R*).
#[derive(Debug, Clone, Default)]
pub struct PaRScheduler {
    config: SchedulerConfig,
}

impl PaRScheduler {
    /// Creates a PA-R scheduler; `config.time_budget`, `config.max_iterations`
    /// and `config.seed` drive the search.
    pub fn new(config: SchedulerConfig) -> Self {
        PaRScheduler { config }
    }

    /// Schedules `inst`, returning only the best schedule.
    pub fn schedule(&self, inst: &ProblemInstance) -> Result<Schedule, SchedError> {
        self.schedule_detailed(inst).map(|r| r.schedule)
    }

    /// Runs the randomized search (Algorithm 1) with full diagnostics.
    pub fn schedule_detailed(&self, inst: &ProblemInstance) -> Result<PaRResult, SchedError> {
        self.schedule_with_cancel(inst, &CancelToken::never())
    }

    /// [`schedule_detailed`](Self::schedule_detailed) honouring a
    /// cooperative [`CancelToken`].
    ///
    /// PA-R is *anytime*: the search polls `cancel` once per iteration and
    /// around every floorplan check; when the token fires it returns the
    /// best feasible incumbent found so far flagged
    /// [`PaRResult::degraded`], or — if no feasible candidate exists yet —
    /// the deterministic PA's degraded fallback. With a never-firing token
    /// the result is byte-identical to
    /// [`schedule_detailed`](Self::schedule_detailed).
    pub fn schedule_with_cancel(
        &self,
        inst: &ProblemInstance,
        cancel: &CancelToken,
    ) -> Result<PaRResult, SchedError> {
        let mut ws = SchedWorkspace::new();
        self.schedule_with_cancel_in(inst, cancel, &mut ws)
    }

    /// [`schedule_with_cancel`](Self::schedule_with_cancel) against a
    /// caller-owned [`SchedWorkspace`]; every exit leaves `ws` rewound and
    /// reusable.
    pub fn schedule_with_cancel_in(
        &self,
        inst: &ProblemInstance,
        cancel: &CancelToken,
        ws: &mut SchedWorkspace,
    ) -> Result<PaRResult, SchedError> {
        inst.validate()
            .map_err(|e| SchedError::InvalidInstance(e.to_string()))?;

        let polls0 = cancel.polls();
        let hits0 = cancel.deadline_hits();
        let planner = Floorplanner::new(self.config.floorplan.clone());
        // Virtual capacity ratchet: Algorithm 1 discards floorplan-
        // infeasible candidates outright, but a pipeline run that packs the
        // fabric to 100% is *systematically* unplaceable on a column grid,
        // so repeating it at the same capacity would starve the search.
        // Whenever an improving candidate fails the floorplan, subsequent
        // iterations schedule against a shrunken virtual capacity — the
        // same lever the deterministic PA's restart loop uses (§V-H).
        let mut virtual_device = inst.architecture.device.clone();
        let mut virtual_platform = inst.architecture.platform.clone();
        let mut shrinks_left = self.config.max_attempts.max(1);
        let start = Instant::now();
        let deadline = start + self.config.time_budget;
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);

        // One workspace and one feasibility cache persist across every
        // iteration (gated on `workspace_reuse`; verdicts are exact, so
        // the search trajectory is byte-identical either way).
        let reuse = self.config.workspace_reuse;
        let mut memo = ImplSelectMemo::default();
        let mut cache = FeasibilityCache::new(planner.clone(), DEFAULT_CACHE_CAPACITY);
        let noop = ObserverHandle::noop();

        let mut best: Option<Schedule> = None;
        let mut best_makespan = Time::MAX;
        let mut trace = Vec::new();
        let mut iterations = 0usize;
        let mut cancelled = false;

        loop {
            if self.config.max_iterations > 0 && iterations >= self.config.max_iterations {
                break;
            }
            // Always run at least one iteration so a zero budget still
            // returns a schedule.
            if iterations > 0 && Instant::now() >= deadline {
                break;
            }
            if cancel.is_cancelled() {
                cancelled = true;
                break;
            }
            iterations += 1;
            let order_seed: u64 = rng.random();
            let ordering = OrderingPolicy::RandomizedNonCritical(order_seed);
            let schedule = if reuse {
                do_schedule_in(
                    ws,
                    inst,
                    &virtual_device,
                    virtual_platform.as_ref(),
                    &self.config,
                    ordering,
                    &noop,
                    Some(&mut memo),
                )
            } else {
                do_schedule(
                    inst,
                    &virtual_device,
                    virtual_platform.as_ref(),
                    &self.config,
                    ordering,
                )
            };
            let makespan = schedule.makespan();
            if makespan < best_makespan {
                // Pay for the floorplanner only on improvement (Algorithm 1).
                let demands: Vec<ResourceVec> = schedule.regions.iter().map(|r| r.res).collect();
                let fabrics: Vec<u32> = schedule.regions.iter().map(|r| r.fabric).collect();
                let outcome = match (reuse, inst.architecture.platform.as_ref()) {
                    (true, Some(p)) => cache.check_platform_cancel(p, &demands, &fabrics, cancel),
                    (true, None) => {
                        cache.check_device_cancel(&inst.architecture.device, &demands, cancel)
                    }
                    (false, Some(p)) => {
                        planner.check_platform_cancel(p, &demands, &fabrics, cancel)
                    }
                    (false, None) => {
                        planner.check_device_cancel(&inst.architecture.device, &demands, cancel)
                    }
                };
                if let FloorplanOutcome::Feasible(_) = outcome {
                    best_makespan = makespan;
                    best = Some(schedule);
                    trace.push(ConvergencePoint {
                        iteration: iterations,
                        elapsed: start.elapsed(),
                        makespan,
                    });
                } else {
                    // A non-feasible verdict caused by the token firing
                    // mid-solve is a Timeout, not a capacity statement:
                    // break before it can consume a ratchet shrink.
                    if cancel.is_cancelled() {
                        cancelled = true;
                        break;
                    }
                    if shrinks_left > 0 {
                        let (num, den) = self.config.shrink_factor;
                        virtual_device.scale_capacity_in_place(num, den);
                        if let Some(p) = virtual_platform.as_mut() {
                            p.scale_capacity_in_place(num, den);
                        }
                        shrinks_left -= 1;
                    }
                }
            }
        }

        let workspace_reuses = ws.reuses();
        let fp_cache = cache.stats();
        let counters = |c: &CancelToken| (c.polls() - polls0, c.deadline_hits() - hits0);
        match best {
            Some(schedule) => {
                let (cancel_polls, deadline_hits) = counters(cancel);
                Ok(PaRResult {
                    schedule,
                    iterations,
                    trace,
                    elapsed: start.elapsed(),
                    workspace_reuses,
                    fp_cache,
                    degraded: cancelled,
                    cancel_polls,
                    deadline_hits,
                })
            }
            // Every random candidate was floorplan-infeasible (or the token
            // fired before one could be checked): fall back to the
            // deterministic PA, whose shrinking loop always terminates with
            // a feasible (possibly all-software, possibly degraded)
            // schedule. The token is passed through, so a fired deadline
            // short-circuits the fallback to PA's bounded degraded path.
            None => {
                let pa =
                    PaScheduler::new(self.config.clone()).schedule_with_cancel(inst, cancel)?;
                let (cancel_polls, deadline_hits) = counters(cancel);
                Ok(PaRResult {
                    schedule: pa.schedule,
                    iterations,
                    trace,
                    elapsed: start.elapsed(),
                    workspace_reuses,
                    fp_cache,
                    degraded: cancelled || pa.degraded,
                    cancel_polls,
                    deadline_hits,
                })
            }
        }
    }

    /// Parallel PA-R: `threads` workers explore disjoint seed streams and
    /// share the incumbent under a mutex. The result is deterministic for
    /// a fixed `(seed, max_iterations, threads)` triple when the iteration
    /// cap is used (each worker owns an equal slice of the iteration
    /// budget); under a pure wall-clock budget the outcome depends on
    /// timing, as in any anytime search.
    pub fn schedule_parallel(
        &self,
        inst: &ProblemInstance,
        threads: usize,
    ) -> Result<Schedule, SchedError> {
        self.schedule_parallel_with_cancel(inst, threads, &CancelToken::never())
    }

    /// [`schedule_parallel`](Self::schedule_parallel) honouring a
    /// cooperative [`CancelToken`] shared by all workers: each worker polls
    /// it once per iteration (poll counts aggregate across workers) and
    /// stops as soon as it fires. The incumbent at cancellation time is
    /// returned; with none, the deterministic PA's (possibly degraded)
    /// fallback runs under the same token.
    pub fn schedule_parallel_with_cancel(
        &self,
        inst: &ProblemInstance,
        threads: usize,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedError> {
        let threads = threads.max(1);
        if threads == 1 {
            return self.schedule_with_cancel(inst, cancel).map(|r| r.schedule);
        }
        inst.validate()
            .map_err(|e| SchedError::InvalidInstance(e.to_string()))?;

        let best: Mutex<(Time, Option<Schedule>)> = Mutex::new((Time::MAX, None));
        let deadline = Instant::now() + self.config.time_budget;
        let per_worker_iters = if self.config.max_iterations > 0 {
            self.config.max_iterations.div_ceil(threads)
        } else {
            0
        };
        // All workers share one feasibility cache (solves happen outside
        // its lock); each owns a private workspace. Verdicts are exact, so
        // sharing cannot perturb any worker's search trajectory.
        let reuse = self.config.workspace_reuse;
        let shared_cache = SharedFeasibilityCache::new(
            Floorplanner::new(self.config.floorplan.clone()),
            DEFAULT_CACHE_CAPACITY,
        );

        crossbeam::thread::scope(|scope| {
            for w in 0..threads {
                let best = &best;
                let config = &self.config;
                let cache = shared_cache.clone();
                let planner = Floorplanner::new(self.config.floorplan.clone());
                let inst = &*inst;
                scope.spawn(move |_| {
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(w as u64 * 0x9E37));
                    // Per-worker capacity ratchet (see schedule_detailed).
                    let mut virtual_device = inst.architecture.device.clone();
                    let mut virtual_platform = inst.architecture.platform.clone();
                    let mut shrinks_left = config.max_attempts.max(1);
                    let mut ws = SchedWorkspace::new();
                    let mut memo = ImplSelectMemo::default();
                    let noop = ObserverHandle::noop();
                    let mut iters = 0usize;
                    loop {
                        if per_worker_iters > 0 && iters >= per_worker_iters {
                            break;
                        }
                        if iters > 0 && Instant::now() >= deadline {
                            break;
                        }
                        if cancel.is_cancelled() {
                            break;
                        }
                        iters += 1;
                        let order_seed: u64 = rng.random();
                        let ordering = OrderingPolicy::RandomizedNonCritical(order_seed);
                        let schedule = if reuse {
                            do_schedule_in(
                                &mut ws,
                                inst,
                                &virtual_device,
                                virtual_platform.as_ref(),
                                config,
                                ordering,
                                &noop,
                                Some(&mut memo),
                            )
                        } else {
                            do_schedule(
                                inst,
                                &virtual_device,
                                virtual_platform.as_ref(),
                                config,
                                ordering,
                            )
                        };
                        let makespan = schedule.makespan();
                        if makespan < best.lock().0 {
                            let demands: Vec<ResourceVec> =
                                schedule.regions.iter().map(|r| r.res).collect();
                            let fabrics: Vec<u32> =
                                schedule.regions.iter().map(|r| r.fabric).collect();
                            let outcome = match (reuse, inst.architecture.platform.as_ref()) {
                                (true, Some(p)) => {
                                    cache.check_platform_cancel(p, &demands, &fabrics, cancel)
                                }
                                (true, None) => cache.check_device_cancel(
                                    &inst.architecture.device,
                                    &demands,
                                    cancel,
                                ),
                                (false, Some(p)) => {
                                    planner.check_platform_cancel(p, &demands, &fabrics, cancel)
                                }
                                (false, None) => planner.check_device_cancel(
                                    &inst.architecture.device,
                                    &demands,
                                    cancel,
                                ),
                            };
                            if let FloorplanOutcome::Feasible(_) = outcome {
                                let mut guard = best.lock();
                                if makespan < guard.0 {
                                    *guard = (makespan, Some(schedule));
                                }
                            } else if shrinks_left > 0 {
                                let (num, den) = config.shrink_factor;
                                virtual_device.scale_capacity_in_place(num, den);
                                if let Some(p) = virtual_platform.as_mut() {
                                    p.scale_capacity_in_place(num, den);
                                }
                                shrinks_left -= 1;
                            }
                        }
                    }
                });
            }
        })
        .expect("PA-R worker panicked");

        let (_, found) = best.into_inner();
        match found {
            Some(s) => Ok(s),
            None => PaScheduler::new(self.config.clone())
                .schedule_with_cancel(inst, cancel)
                .map(|r| r.schedule),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_gen::{GraphConfig, TaskGraphGenerator};
    use prfpga_model::Architecture;
    use prfpga_sim::validate_schedule;

    fn config_iters(iters: usize) -> SchedulerConfig {
        SchedulerConfig {
            max_iterations: iters,
            time_budget: Duration::from_secs(60),
            ..Default::default()
        }
    }

    fn instance(n: usize, seed: u64) -> ProblemInstance {
        TaskGraphGenerator::new(seed).generate(
            &format!("par{n}"),
            &GraphConfig::standard(n),
            Architecture::zedboard(),
        )
    }

    #[test]
    fn finds_valid_schedules() {
        let inst = instance(20, 11);
        let par = PaRScheduler::new(config_iters(8));
        let r = par.schedule_detailed(&inst).unwrap();
        assert_eq!(r.iterations, 8);
        assert!(!r.trace.is_empty());
        validate_schedule(&inst, &r.schedule).expect("valid");
    }

    #[test]
    fn trace_is_monotonically_improving() {
        let inst = instance(30, 13);
        let par = PaRScheduler::new(config_iters(12));
        let r = par.schedule_detailed(&inst).unwrap();
        for pair in r.trace.windows(2) {
            assert!(pair[1].makespan < pair[0].makespan);
            assert!(pair[1].iteration > pair[0].iteration);
        }
        assert_eq!(
            r.schedule.makespan(),
            r.trace.last().unwrap().makespan,
            "returned schedule is the last improvement"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed_and_iterations() {
        let inst = instance(25, 17);
        let par = PaRScheduler::new(config_iters(6));
        let a = par.schedule(&inst).unwrap();
        let b = par.schedule(&inst).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_iterations_never_hurt() {
        let inst = instance(40, 19);
        let short = PaRScheduler::new(config_iters(2))
            .schedule(&inst)
            .unwrap()
            .makespan();
        let long = PaRScheduler::new(config_iters(16))
            .schedule(&inst)
            .unwrap()
            .makespan();
        assert!(long <= short, "more search cannot worsen the incumbent");
    }

    #[test]
    fn parallel_variant_returns_valid_schedules() {
        let inst = instance(20, 23);
        let par = PaRScheduler::new(config_iters(8));
        let s = par.schedule_parallel(&inst, 4).unwrap();
        validate_schedule(&inst, &s).expect("valid");
    }

    #[test]
    fn reuse_counters_and_throughput_are_reported() {
        let inst = TaskGraphGenerator::new(31).generate(
            "counters",
            &GraphConfig::standard(30),
            Architecture::zedboard_pr(),
        );
        let r = PaRScheduler::new(config_iters(10))
            .schedule_detailed(&inst)
            .unwrap();
        assert_eq!(
            r.workspace_reuses, 9,
            "10 iterations over one instance rewind the workspace 9 times"
        );
        // The device carries geometry and at least one improvement was
        // floorplan-checked, so the cache saw traffic.
        assert!(r.fp_cache.hits + r.fp_cache.misses > 0);
        assert!(r.elapsed > Duration::ZERO);
        assert!(r.iterations_per_sec() > 0.0);
    }

    #[test]
    fn workspace_reuse_off_is_byte_identical() {
        let inst = instance(25, 37);
        let on = PaRScheduler::new(config_iters(8))
            .schedule_detailed(&inst)
            .unwrap();
        let off = PaRScheduler::new(SchedulerConfig {
            workspace_reuse: false,
            ..config_iters(8)
        })
        .schedule_detailed(&inst)
        .unwrap();
        assert_eq!(on.schedule, off.schedule);
        assert_eq!(on.iterations, off.iterations);
        let points = |r: &PaRResult| -> Vec<(usize, Time)> {
            r.trace.iter().map(|p| (p.iteration, p.makespan)).collect()
        };
        assert_eq!(points(&on), points(&off), "same convergence trajectory");
        assert_eq!(off.workspace_reuses, 0);
        assert_eq!(off.fp_cache, CacheStats::default());
    }

    #[test]
    fn zero_budget_still_returns_a_schedule() {
        let inst = instance(15, 29);
        let cfg = SchedulerConfig {
            time_budget: Duration::ZERO,
            max_iterations: 0,
            ..Default::default()
        };
        let s = PaRScheduler::new(cfg).schedule(&inst).unwrap();
        validate_schedule(&inst, &s).expect("valid");
    }
}
