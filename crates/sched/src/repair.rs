//! Event-driven delta repair of a committed schedule.
//!
//! The batch pipeline answers "how do we run this task graph?" once,
//! offline. A deployed system then watches the plan meet reality: tasks
//! finish early or late, estimates get revised, work is cancelled, new
//! work arrives. Re-running the full pipeline per perturbation is wasteful
//! — a single late finish usually moves only the tasks downstream of it —
//! and that waste is exactly what the solve/commit seam exists to avoid:
//! the [`RepairEngine`] re-times only the *invalidation frontier* of each
//! event and re-commits the touched controller reservations through the
//! timeline journal, falling back to a from-scratch re-solve only when the
//! frontier would cascade across most of the live graph.
//!
//! ## Repair model
//!
//! The engine keeps placements fixed and re-times. Per event it:
//!
//! 1. revises the perturbed task's duration (the instance gets a cloned
//!    implementation carrying the observed time, so re-solves and
//!    validators see a consistent problem);
//! 2. computes the frontier — the strict descendants of the seed task
//!    across data, region-sequencing and core-sequencing arcs — via the
//!    bitset [`ReachIndex`] when current, BFS otherwise;
//! 3. re-times the frontier with the same fixed-point rule as phase G
//!    (every start is exactly the max of its predecessors' ends plus
//!    communication lag), re-placing the frontier's reconfigurations into
//!    controller-lane gaps between the untouched ones under a named
//!    journal checkpoint;
//! 4. retires finished source tasks from the dependency DAG
//!    ([`Dag::retire_node`]), folding their ends into per-successor
//!    release floors so later repairs shrink with the remaining horizon.
//!
//! The engine has no notion of "now": an early finish may pull downstream
//! reservations earlier than the event's own tick. A deployment would add
//! a wall-clock floor; the repair algebra is unchanged by one.
//!
//! ## Exactness
//!
//! An on-time [`ScheduleEvent::Finish`] (observed end equals the committed
//! end) short-circuits to a zero-task frontier — the schedule is already a
//! fixed point, so repaired and untouched schedules agree exactly. The
//! differential harness (`tests/repair_differential.rs`) pins this, and
//! bounds every repaired makespan against a from-scratch re-solve.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use prfpga_dag::{CpmAnalysis, CpmScratch, Dag, NodeId, ReachIndex};
use prfpga_model::{
    Implementation, Placement, ProblemInstance, RegionId, Schedule, ScheduleEvent, TaskAssignment,
    TaskId, Time, TimeWindow,
};
use prfpga_timeline::{LaneId, Timeline};

use crate::config::SchedulerConfig;
use crate::driver::PaScheduler;
use crate::error::SchedError;
use crate::trace::ObserverHandle;

/// Tuning of the repair engine.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Cascade threshold in percent of the *live* (non-retired) task
    /// count: when an event's frontier exceeds it, the engine abandons the
    /// delta repair and re-solves the revised instance from scratch — past
    /// that point the full pipeline is both cheaper and better (it may
    /// also re-place).
    pub cascade_threshold_pct: u32,
    /// Scheduler configuration used by the full re-solve fallback.
    pub sched: SchedulerConfig,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            cascade_threshold_pct: 50,
            sched: SchedulerConfig::default(),
        }
    }
}

/// Accumulated repair totals, mirrored into
/// [`PhaseTrace`](crate::PhaseTrace) via the observer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Events applied.
    pub events: u64,
    /// Tasks invalidated and re-timed, summed over events.
    pub frontier_tasks: u64,
    /// Tasks whose window actually changed, summed over events.
    pub moved_tasks: u64,
    /// Reconfigurations re-placed, summed over events.
    pub recs_replaced: u64,
    /// Controller-journal edits covered by repair commits, summed.
    pub commit_edits: u64,
    /// Events that crossed the cascade threshold into a full re-solve.
    pub full_resolves: u64,
    /// Tasks retired from the dependency DAG so far.
    pub retired_tasks: u64,
}

/// What one [`RepairEngine::apply`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Tasks invalidated by the event (0 = the schedule was already a
    /// fixed point, e.g. an on-time finish).
    pub frontier: usize,
    /// Invalidated tasks whose window actually changed.
    pub moved: usize,
    /// Reconfigurations re-placed on the controller lanes.
    pub recs_replaced: usize,
    /// True when the cascade threshold forced a from-scratch re-solve.
    pub full_resolve: bool,
    /// Makespan of the repaired schedule.
    pub makespan: Time,
}

/// Why a repair was refused. The engine's schedule is unchanged when an
/// error is returned.
#[derive(Debug)]
pub enum RepairError {
    /// The event names a task the instance does not have.
    UnknownTask(TaskId),
    /// The event perturbs a task that already finished (or was cancelled).
    TaskFinished(TaskId),
    /// An arrival depends on a task the instance does not have.
    UnknownDependency(TaskId),
    /// The event needs a capability the engine does not model — currently
    /// only revising a region task whose reconfiguration was elided by
    /// module reuse (the revision would break the impl-equality the elision
    /// relies on).
    Unsupported(String),
    /// The baseline schedule contradicts the instance (not produced by the
    /// pipeline, or corrupted).
    InvalidBaseline(String),
    /// The full re-solve fallback failed.
    Solve(SchedError),
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::UnknownTask(t) => write!(f, "event names unknown task {t:?}"),
            RepairError::TaskFinished(t) => write!(f, "task {t:?} already finished"),
            RepairError::UnknownDependency(t) => write!(f, "arrival depends on unknown task {t:?}"),
            RepairError::Unsupported(s) => write!(f, "unsupported repair: {s}"),
            RepairError::InvalidBaseline(s) => write!(f, "invalid baseline schedule: {s}"),
            RepairError::Solve(e) => write!(f, "full re-solve failed: {e}"),
        }
    }
}

impl std::error::Error for RepairError {}

/// A reconfiguration's position in the sequencing structure: the region
/// task it waits on (`t_in`) and the one it enables (`t_out`, the model's
/// `outgoing_task`).
#[derive(Debug, Clone, Copy)]
struct RecArc {
    t_in: TaskId,
    t_out: TaskId,
}

/// The online repair engine: owns the revised instance and the live
/// schedule, applies [`ScheduleEvent`]s one by one.
#[derive(Debug)]
pub struct RepairEngine {
    inst: ProblemInstance,
    schedule: Schedule,
    config: RepairConfig,
    /// Data + region-chain + core-chain arcs; retired tasks are isolated.
    dag: Dag,
    reach: ReachIndex,
    /// Criticality oracle for reconfiguration priority (kept incrementally
    /// current under duration revisions; rebuilt on arrivals and
    /// re-solves; *not* updated on retirement — it only orders recs).
    cpm: CpmAnalysis,
    scratch: CpmScratch,
    durations: Vec<Time>,
    finished: Vec<bool>,
    /// Cancelled tasks are `finished` (no further events may target them)
    /// but stay *retimeable*: their zero-width window is a scheduling
    /// fiction, not an observation, so they keep floating with their
    /// predecessors — which is what keeps their pending reconfiguration
    /// correctly placed when an upstream task later moves.
    cancelled: Vec<bool>,
    retired: Vec<bool>,
    /// Per-task lower bound on the start tick, inherited from retired
    /// predecessors (their arcs are gone; their ends persist here).
    release_floor: Vec<Time>,
    /// Communication lag of each costed, non-colocated data edge.
    lags: HashMap<(NodeId, NodeId), Time>,
    /// Parallel to `schedule.reconfigurations`.
    recs: Vec<RecArc>,
    /// Task -> index of the reconfiguration that loads it (None for
    /// software tasks and region-first tasks).
    rec_of_task: Vec<Option<u32>>,
    /// Task -> index of the reconfiguration waiting on it (the rec whose
    /// `t_in` it is; at most one, since region sequences are chains).
    rec_after_task: Vec<Option<u32>>,
    icap: Timeline,
    observer: ObserverHandle,
    stats: RepairStats,
    /// Monotonic counter naming revised-implementation clones.
    revisions: u64,
}

impl RepairEngine {
    /// Builds the engine over a committed `(instance, schedule)` pair —
    /// normally the output of [`PaScheduler::schedule`].
    ///
    /// [`PaScheduler::schedule`]: crate::PaScheduler::schedule
    pub fn new(
        inst: ProblemInstance,
        schedule: Schedule,
        config: RepairConfig,
    ) -> Result<Self, RepairError> {
        let n = inst.graph.len();
        if schedule.assignments.len() != n {
            return Err(RepairError::InvalidBaseline(format!(
                "{} assignments for {} tasks",
                schedule.assignments.len(),
                n
            )));
        }
        let mut engine = RepairEngine {
            inst,
            schedule,
            config,
            dag: Dag::with_nodes(0),
            reach: ReachIndex::new(),
            cpm: CpmAnalysis::default(),
            scratch: CpmScratch::default(),
            durations: Vec::new(),
            finished: vec![false; n],
            cancelled: vec![false; n],
            retired: vec![false; n],
            release_floor: vec![0; n],
            lags: HashMap::new(),
            recs: Vec::new(),
            rec_of_task: Vec::new(),
            rec_after_task: Vec::new(),
            icap: Timeline::new(),
            observer: ObserverHandle::noop(),
            stats: RepairStats::default(),
            revisions: 0,
        };
        engine.rebuild_model()?;
        Ok(engine)
    }

    /// Installs an observer; repairs report through
    /// [`PhaseObserver::repair_applied`](crate::PhaseObserver::repair_applied).
    pub fn set_observer(&mut self, observer: ObserverHandle) {
        self.observer = observer;
    }

    /// The live (repaired-so-far) schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The revised instance: original tasks plus arrivals, with observed /
    /// revised execution times substituted into the implementation pool.
    pub fn instance(&self) -> &ProblemInstance {
        &self.inst
    }

    /// Accumulated repair totals.
    pub fn stats(&self) -> RepairStats {
        self.stats
    }

    /// True once `task` finished (or was cancelled).
    pub fn is_finished(&self, task: TaskId) -> bool {
        self.finished.get(task.index()).copied().unwrap_or(false)
    }

    /// Applies one event, returning what the repair did.
    pub fn apply(&mut self, event: &ScheduleEvent) -> Result<RepairOutcome, RepairError> {
        let outcome = match *event {
            ScheduleEvent::Finish { task, actual } => self.apply_finish(task, actual)?,
            ScheduleEvent::DurationRevised { task, duration } => {
                self.apply_revision(task, duration, false)?
            }
            ScheduleEvent::Cancel { task } => self.apply_revision(task, 0, true)?,
            ScheduleEvent::Arrive {
                ref name,
                sw_time,
                ref deps,
            } => self.apply_arrival(name, sw_time, deps)?,
        };
        self.stats.events += 1;
        self.stats.frontier_tasks += outcome.frontier as u64;
        self.stats.moved_tasks += outcome.moved as u64;
        self.stats.recs_replaced += outcome.recs_replaced as u64;
        self.stats.full_resolves += u64::from(outcome.full_resolve);
        self.observer.repair_applied(
            outcome.frontier as u64,
            outcome.moved as u64,
            outcome.full_resolve,
        );
        Ok(outcome)
    }

    /// Applies every event of a trace in order, stopping at the first
    /// refusal.
    pub fn apply_all(
        &mut self,
        events: &[ScheduleEvent],
    ) -> Result<Vec<RepairOutcome>, RepairError> {
        events.iter().map(|e| self.apply(e)).collect()
    }

    // --- Event handlers. --------------------------------------------------

    fn apply_finish(&mut self, task: TaskId, actual: Time) -> Result<RepairOutcome, RepairError> {
        self.check_live(task)?;
        let a = &self.schedule.assignments[task.index()];
        let (start, committed_end) = (a.start, a.end);
        // The task physically ran: its start stands and its end is the
        // observation. An `actual` before the committed start is clamped to
        // a zero duration (the event stream outran the plan; the repair
        // still converges, the instance just records a free task).
        let new_dur = actual.saturating_sub(start);
        self.finished[task.index()] = true;
        let outcome = if actual == committed_end {
            // On-time: the schedule is already a fixed point of the window
            // equations; nothing to invalidate. This short-circuit is what
            // makes repaired and untouched schedules *exactly* equal on
            // on-time traces.
            RepairOutcome {
                frontier: 0,
                moved: 0,
                recs_replaced: 0,
                full_resolve: false,
                makespan: self.schedule.makespan(),
            }
        } else {
            self.revise_impl(task, new_dur)?;
            self.schedule.assignments[task.index()].end = start + new_dur;
            // The seed stays out of the frontier: its window is an
            // observation, not a decision — in particular its loading
            // reconfiguration must not move.
            self.retime(task, false)?
        };
        self.try_retire_from(task);
        Ok(outcome)
    }

    fn apply_revision(
        &mut self,
        task: TaskId,
        duration: Time,
        cancel: bool,
    ) -> Result<RepairOutcome, RepairError> {
        self.check_live(task)?;
        if self.durations[task.index()] == duration && !cancel {
            return Ok(RepairOutcome {
                frontier: 0,
                moved: 0,
                recs_replaced: 0,
                full_resolve: false,
                makespan: self.schedule.makespan(),
            });
        }
        self.revise_impl(task, duration)?;
        // The task has not run: its own window is a decision, so the seed
        // joins the frontier (start recomputed from unchanged predecessors,
        // end from the new duration; its reconfiguration may shift).
        let outcome = self.retime(task, true)?;
        if cancel {
            self.finished[task.index()] = true;
            self.cancelled[task.index()] = true;
            self.try_retire_from(task);
        }
        Ok(outcome)
    }

    fn apply_arrival(
        &mut self,
        name: &str,
        sw_time: Time,
        deps: &[TaskId],
    ) -> Result<RepairOutcome, RepairError> {
        let n = self.inst.graph.len();
        for &d in deps {
            if d.index() >= n {
                return Err(RepairError::UnknownDependency(d));
            }
        }

        // Instance growth: one software implementation, one task, the data
        // edges. Arrivals carry no communication cost.
        let imp = self
            .inst
            .impls
            .add(Implementation::software(name.to_string(), sw_time));
        let t = self.inst.graph.add_task(name.to_string(), vec![imp]);
        for &d in deps {
            self.inst.graph.add_edge(d, t);
        }

        // Model growth. Retired dependencies have no arcs anymore; their
        // ends arrive through the release floor instead.
        let v = self.dag.add_node();
        debug_assert_eq!(v as usize, t.index());
        let mut floor = 0;
        for &d in deps {
            if self.retired[d.index()] {
                floor = floor.max(self.schedule.assignments[d.index()].end);
            } else {
                self.dag
                    .add_edge(d.index() as NodeId, v)
                    .expect("new node cannot close a cycle");
            }
        }
        self.durations.push(sw_time);
        self.finished.push(false);
        self.cancelled.push(false);
        self.retired.push(false);
        self.release_floor.push(floor);
        self.rec_of_task.push(None);
        self.rec_after_task.push(None);

        // Least-delay core choice (the phase-F rule specialized to one
        // appended task): earliest start over cores = max(dependency ends,
        // core drain), argmin, ties to the lowest core.
        let release = deps
            .iter()
            .map(|&d| self.schedule.assignments[d.index()].end)
            .max()
            .unwrap_or(0)
            .max(floor);
        let cores = self.inst.architecture.num_processors.max(1);
        let mut best = (usize::MAX, Time::MAX, None::<TaskId>);
        for p in 0..cores {
            let seq = self.schedule.tasks_on_core(p);
            let (drain, last) = match seq.last() {
                Some(&l) => (self.schedule.assignments[l.index()].end, Some(l)),
                None => (0, None),
            };
            let candidate = release.max(drain);
            if candidate < best.1 || (candidate == best.1 && p < best.0) {
                best = (p, candidate, last);
            }
        }
        let (core, start, last) = best;
        if let Some(l) = last {
            // Core-sequencing arc behind the core's current tail, unless
            // the tail is retired (then the floor already orders them).
            if self.retired[l.index()] {
                self.release_floor[t.index()] =
                    self.release_floor[t.index()].max(self.schedule.assignments[l.index()].end);
            } else if !self.dag.has_edge(l.index() as NodeId, v) {
                self.dag
                    .add_edge(l.index() as NodeId, v)
                    .expect("new node cannot close a cycle");
            }
        }
        self.schedule.assignments.push(TaskAssignment {
            impl_id: imp,
            placement: Placement::Core(core),
            start,
            end: start + sw_time,
        });

        // The node count changed: refresh the closure and the criticality
        // oracle wholesale.
        if ReachIndex::fits(self.dag.len()) {
            self.reach.sync(&self.dag, &self.dag.topo_order());
        }
        self.cpm
            .recompute(&self.dag, &self.durations, None, &mut self.scratch);

        Ok(RepairOutcome {
            frontier: 1,
            moved: 1,
            recs_replaced: 0,
            full_resolve: false,
            makespan: self.schedule.makespan(),
        })
    }

    // --- Duration revision. ----------------------------------------------

    fn check_live(&self, task: TaskId) -> Result<(), RepairError> {
        if task.index() >= self.inst.graph.len() {
            return Err(RepairError::UnknownTask(task));
        }
        if self.finished[task.index()] {
            return Err(RepairError::TaskFinished(task));
        }
        Ok(())
    }

    /// Substitutes a cloned implementation carrying `new_dur` for `task`'s
    /// chosen one — in the pool, the task's implementation list, the
    /// assignment and every reconfiguration that loads it — so the revised
    /// instance validates and re-solves consistently.
    fn revise_impl(&mut self, task: TaskId, new_dur: Time) -> Result<(), RepairError> {
        let ti = task.index();
        // A module-reuse schedule may have elided the reconfiguration
        // between equal implementations; a revision clones the impl under a
        // new id, which would break the equality the elision relies on —
        // for the revised task (no loading rec of its own) or for the next
        // task in the region (reusing the revised task's module).
        if let Placement::Region(r) = self.schedule.assignments[ti].placement {
            let seq = self.schedule.tasks_in_region(r);
            let pos = seq
                .iter()
                .position(|&x| x == task)
                .expect("assignment places the task in this region");
            if pos > 0 && self.rec_of_task[ti].is_none() {
                return Err(RepairError::Unsupported(format!(
                    "task {task:?} shares its module with its region predecessor (module reuse)"
                )));
            }
            if let Some(&next) = seq.get(pos + 1) {
                if self.rec_of_task[next.index()].is_none() {
                    return Err(RepairError::Unsupported(format!(
                        "task {next:?} reuses task {task:?}'s module (module reuse)"
                    )));
                }
            }
        }

        let old_id = self.schedule.assignments[ti].impl_id;
        let old = self.inst.impls.get(old_id).clone();
        let name = format!("{}@rev{}", old.name, self.revisions);
        self.revisions += 1;
        let revised = if old.is_hardware() {
            Implementation::hardware(name, new_dur, old.resources())
        } else {
            Implementation::software(name, new_dur)
        };
        let new_id = self.inst.impls.add(revised);
        let impls = &mut self.inst.graph.tasks[ti].impls;
        match impls.iter().position(|&i| i == old_id) {
            Some(pos) => impls[pos] = new_id,
            None => impls.push(new_id),
        }
        self.schedule.assignments[ti].impl_id = new_id;
        for rec in &mut self.schedule.reconfigurations {
            if rec.outgoing_task == task {
                rec.loads_impl = new_id;
            }
        }
        self.durations[ti] = new_dur;
        self.cpm
            .apply_duration(&self.dag, &self.durations, ti as NodeId, &mut self.scratch);
        Ok(())
    }

    // --- Frontier re-timing. ---------------------------------------------

    /// Strict descendants of `seed` among live, unfinished tasks (plus the
    /// seed itself when `include_seed`).
    fn frontier_of(&self, seed: TaskId, include_seed: bool) -> Vec<bool> {
        let n = self.dag.len();
        let mut in_f = vec![false; n];
        if self.reach.is_current(&self.dag) {
            let s = seed.index() as NodeId;
            for (v, f) in in_f.iter_mut().enumerate() {
                *f = self.reach.query(s, v as NodeId);
            }
        } else {
            let mut queue = vec![seed.index() as NodeId];
            in_f[seed.index()] = true;
            while let Some(v) = queue.pop() {
                for &s in self.dag.succs(v) {
                    if !in_f[s as usize] {
                        in_f[s as usize] = true;
                        queue.push(s);
                    }
                }
            }
        }
        for (v, f) in in_f.iter_mut().enumerate() {
            // Finished windows are observations; retired nodes are gone.
            // Cancelled windows are neither: zero-width placeholders that
            // keep floating until retirement freezes them.
            if (self.finished[v] && !self.cancelled[v]) || self.retired[v] {
                *f = false;
            }
        }
        in_f[seed.index()] = include_seed && !self.finished[seed.index()];
        in_f
    }

    /// Re-times the frontier seeded at `seed` (placements fixed), or falls
    /// back to a full re-solve past the cascade threshold.
    fn retime(&mut self, seed: TaskId, include_seed: bool) -> Result<RepairOutcome, RepairError> {
        let n = self.dag.len();
        let in_f = self.frontier_of(seed, include_seed);
        let frontier: Vec<NodeId> = (0..n as NodeId).filter(|&v| in_f[v as usize]).collect();
        if frontier.is_empty() {
            return Ok(RepairOutcome {
                frontier: 0,
                moved: 0,
                recs_replaced: 0,
                full_resolve: false,
                makespan: self.schedule.makespan(),
            });
        }

        let live = (0..n).filter(|&v| !self.retired[v]).count().max(1);
        if frontier.len() * 100 > live * self.config.cascade_threshold_pct as usize {
            return self.full_resolve(frontier.len());
        }

        // Frontier reconfigurations: those loading a frontier task, plus
        // any waiting on one (a frontier `t_in` normally implies a
        // frontier `t_out` via the region chain arc, but a finished
        // `t_out` drops out — its reconfiguration must still follow the
        // moving task it waits on).
        let f_recs: Vec<u32> = (0..self.recs.len() as u32)
            .filter(|&ri| {
                let RecArc { t_in, t_out } = self.recs[ri as usize];
                in_f[t_out.index()] || in_f[t_in.index()]
            })
            .collect();
        let mut rec_in_f = vec![false; self.recs.len()];
        for &ri in &f_recs {
            rec_in_f[ri as usize] = true;
        }

        // Kahn state over the frontier: pending counts and base releases
        // seeded from the *fixed* surroundings (non-frontier predecessor
        // ends, retired-predecessor floors).
        let mut pend: Vec<u32> = vec![0; n];
        let mut start: Vec<Time> = vec![0; n];
        for &v in &frontier {
            let vi = v as usize;
            let mut release = self.release_floor[vi];
            for &p in self.dag.preds(v) {
                let lag = self.lag(p, v);
                if in_f[p as usize] {
                    pend[vi] += 1;
                } else {
                    release = release.max(self.schedule.assignments[p as usize].end + lag);
                }
            }
            if let Some(ri) = self.rec_of_task[vi] {
                debug_assert!(rec_in_f[ri as usize], "frontier task, frontier rec");
                pend[vi] += 1;
            }
            start[vi] = release;
        }
        let mut rec_release: Vec<Time> = vec![0; self.recs.len()];
        let mut rec_pend: Vec<u32> = vec![0; self.recs.len()];
        for &ri in &f_recs {
            let RecArc { t_in, .. } = self.recs[ri as usize];
            if in_f[t_in.index()] {
                rec_pend[ri as usize] = 1;
            } else {
                rec_release[ri as usize] = self.schedule.assignments[t_in.index()].end;
            }
        }

        // Controller lanes: replay the untouched reconfigurations into each
        // fabric's k-lane group (greedy interval packing — it cannot fail
        // on windows that came from a k-lane-per-fabric schedule), then
        // place the frontier's into the remaining gaps under a journal
        // checkpoint. Fabric `f` owns lanes `[f*k, f*k+k)`.
        let k = self.inst.architecture.num_reconfig_controllers.max(1);
        let nf = self.inst.architecture.num_fabrics();
        let mut edits = 0usize;
        if !f_recs.is_empty() {
            self.icap.reset(0, 0, nf * k);
            for f in 0..nf as u32 {
                let fixed: Vec<u32> = (0..self.recs.len() as u32)
                    .filter(|&ri| !rec_in_f[ri as usize] && self.rec_fabric(ri) == f)
                    .collect();
                let windows: Vec<TimeWindow> = fixed
                    .iter()
                    .map(|&ri| {
                        let r = &self.schedule.reconfigurations[ri as usize];
                        TimeWindow::new(r.start, r.end)
                    })
                    .collect();
                for (w, lane) in windows.iter().zip(prfpga_timeline::pack_lanes(&windows, k)) {
                    self.icap
                        .reserve(LaneId::controller(f as usize * k + lane), *w)
                        .map_err(|_| {
                            RepairError::InvalidBaseline(
                                "committed reconfigurations overlap beyond the controller count"
                                    .to_string(),
                            )
                        })?;
                }
            }
            self.icap.checkpoint(REPAIR_CHECKPOINT);
        }

        // Discrete-event pass, mirroring phase G: ready frontier tasks
        // start exactly at their release (sequencing arcs serialize lanes);
        // ready reconfigurations contend for controller gaps, critical
        // first, earliest release next, lowest id last.
        let mut task_queue: Vec<NodeId> = frontier
            .iter()
            .copied()
            .filter(|&v| pend[v as usize] == 0)
            .collect();
        let mut ready_recs: BinaryHeap<Reverse<(bool, Time, u32)>> = f_recs
            .iter()
            .copied()
            .filter(|&ri| rec_pend[ri as usize] == 0)
            .map(|ri| {
                let crit = self.critical(self.recs[ri as usize].t_out);
                Reverse((!crit, rec_release[ri as usize], ri))
            })
            .collect();

        let mut end: Vec<Time> = vec![0; n];
        let mut done = 0usize;
        let total = frontier.len() + f_recs.len();
        while done < total {
            if let Some(v) = task_queue.pop() {
                let vi = v as usize;
                end[vi] = start[vi] + self.durations[vi];
                done += 1;
                for &s in self.dag.succs(v) {
                    let si = s as usize;
                    if !in_f[si] {
                        continue;
                    }
                    start[si] = start[si].max(end[vi] + self.lag(v, s));
                    pend[si] -= 1;
                    if pend[si] == 0 {
                        task_queue.push(s);
                    }
                }
                // The reconfiguration this task feeds (if any) becomes
                // ready once the task vacates the region.
                if let Some(ri) = self.rec_after_task[vi] {
                    if rec_in_f[ri as usize] && rec_pend[ri as usize] > 0 {
                        rec_pend[ri as usize] = 0;
                        rec_release[ri as usize] = end[vi];
                        let crit = self.critical(self.recs[ri as usize].t_out);
                        ready_recs.push(Reverse((!crit, end[vi], ri)));
                    }
                }
                continue;
            }
            if let Some(Reverse((_, release, ri))) = ready_recs.pop() {
                let rec = &self.schedule.reconfigurations[ri as usize];
                let dur = rec.end - rec.start;
                // Argmin over the hosting fabric's lanes of the earliest
                // gap fitting the reconfiguration, ties to the lowest lane.
                let base = self.rec_fabric(ri) as usize * k;
                let mut best = (Time::MAX, base);
                for lane in base..base + k {
                    let s = self
                        .icap
                        .earliest_fit(LaneId::controller(lane), release, dur);
                    if s < best.0 {
                        best = (s, lane);
                    }
                }
                let (s, lane) = best;
                self.icap
                    .reserve(LaneId::controller(lane), TimeWindow::new(s, s + dur))
                    .expect("earliest_fit returned a free gap");
                let rec = &mut self.schedule.reconfigurations[ri as usize];
                rec.start = s;
                rec.end = s + dur;
                done += 1;
                let out = self.recs[ri as usize].t_out.index();
                // A finished `t_out` is not retimed (the rec is a tail
                // following its moving `t_in`); a live one waits for it.
                if in_f[out] {
                    start[out] = start[out].max(s + dur);
                    pend[out] -= 1;
                    if pend[out] == 0 {
                        task_queue.push(out as NodeId);
                    }
                }
                continue;
            }
            unreachable!("frontier is descendant-closed and acyclic");
        }
        if !f_recs.is_empty() {
            edits = self
                .icap
                .commit(REPAIR_CHECKPOINT)
                .expect("checkpoint opened above");
        }
        self.stats.commit_edits += edits as u64;

        // Write the re-timed windows back.
        let mut moved = 0usize;
        for &v in &frontier {
            let vi = v as usize;
            let a = &mut self.schedule.assignments[vi];
            if a.start != start[vi] || a.end != end[vi] {
                moved += 1;
            }
            a.start = start[vi];
            a.end = end[vi];
        }

        Ok(RepairOutcome {
            frontier: frontier.len(),
            moved,
            recs_replaced: f_recs.len(),
            full_resolve: false,
            makespan: self.schedule.makespan(),
        })
    }

    fn critical(&self, t: TaskId) -> bool {
        self.cpm.critical.get(t.index()).copied().unwrap_or(false)
    }

    /// Fabric hosting reconfiguration `ri`'s region (0 on single-device
    /// schedules).
    fn rec_fabric(&self, ri: u32) -> u32 {
        let region = self.schedule.reconfigurations[ri as usize].region;
        self.schedule.regions[region.0 as usize].fabric
    }

    fn lag(&self, from: NodeId, to: NodeId) -> Time {
        self.lags.get(&(from, to)).copied().unwrap_or(0)
    }

    // --- Full re-solve fallback. -----------------------------------------

    /// Re-runs the batch pipeline on the revised instance and rebuilds the
    /// repair model around its output. Finished flags persist; retirement
    /// is re-derived against the new plan. The re-solve re-plans the whole
    /// horizon — committed history survives only through the revised
    /// durations (a deployment would pin executed prefixes with release
    /// floors; see DESIGN.md).
    fn full_resolve(&mut self, frontier: usize) -> Result<RepairOutcome, RepairError> {
        let pa = PaScheduler::new(self.config.sched.clone());
        self.schedule = pa.schedule(&self.inst).map_err(RepairError::Solve)?;
        self.rebuild_model()?;
        Ok(RepairOutcome {
            frontier,
            moved: frontier,
            recs_replaced: 0,
            full_resolve: true,
            makespan: self.schedule.makespan(),
        })
    }

    /// (Re)derives every model structure from `(inst, schedule)`: the
    /// sequencing DAG, reachability closure, criticality oracle,
    /// communication lags, reconfiguration arcs — then re-retires the
    /// finished prefix.
    fn rebuild_model(&mut self) -> Result<(), RepairError> {
        let n = self.inst.graph.len();
        self.finished.resize(n, false);
        self.cancelled.resize(n, false);
        self.retired = vec![false; n];
        self.release_floor = vec![0; n];
        self.stats.retired_tasks = 0;

        self.durations.clear();
        for a in &self.schedule.assignments {
            self.durations.push(self.inst.impls.get(a.impl_id).time);
        }

        // Sequencing DAG: data edges, then region chains, then core chains
        // (deduplicated; chain arcs between data-dependent tasks already
        // exist).
        let mut dag = Dag::with_nodes(n);
        let chain_err = |kind: &str, a: TaskId, b: TaskId| {
            RepairError::InvalidBaseline(format!(
                "{kind} sequence {a:?} -> {b:?} closes a cycle against the data edges"
            ))
        };
        for &(from, to) in &self.inst.graph.edges {
            if !dag.has_edge(from.index() as NodeId, to.index() as NodeId) {
                dag.add_edge(from.index() as NodeId, to.index() as NodeId)
                    .map_err(|_| chain_err("data", from, to))?;
            }
        }
        let mut region_seqs: Vec<Vec<TaskId>> = Vec::with_capacity(self.schedule.regions.len());
        for r in 0..self.schedule.regions.len() {
            let seq = self.schedule.tasks_in_region(RegionId(r as u32));
            for pair in seq.windows(2) {
                if !dag.has_edge(pair[0].index() as NodeId, pair[1].index() as NodeId) {
                    dag.add_edge(pair[0].index() as NodeId, pair[1].index() as NodeId)
                        .map_err(|_| chain_err("region", pair[0], pair[1]))?;
                }
            }
            region_seqs.push(seq);
        }
        for p in 0..self.inst.architecture.num_processors {
            for pair in self.schedule.tasks_on_core(p).windows(2) {
                if !dag.has_edge(pair[0].index() as NodeId, pair[1].index() as NodeId) {
                    dag.add_edge(pair[0].index() as NodeId, pair[1].index() as NodeId)
                        .map_err(|_| chain_err("core", pair[0], pair[1]))?;
                }
            }
        }
        self.dag = dag;
        if ReachIndex::fits(n) {
            self.reach.sync(&self.dag, &self.dag.topo_order());
        }
        self.cpm
            .recompute(&self.dag, &self.durations, None, &mut self.scratch);

        // Communication lags of non-colocated data edges, plus the
        // platform's crossing latency when the endpoints' regions sit on
        // different fabrics — the same lag rule phase G applies.
        self.lags.clear();
        let crossing = self.inst.architecture.crossing_latency();
        for (from, to, cost) in self.inst.graph.edges_with_costs() {
            let pa = &self.schedule.assignments[from.index()].placement;
            let pb = &self.schedule.assignments[to.index()].placement;
            let colocated = match (pa, pb) {
                (Placement::Region(a), Placement::Region(b)) => a == b,
                (Placement::Core(a), Placement::Core(b)) => a == b,
                _ => false,
            };
            let mut lag = if colocated { 0 } else { cost };
            if let (Placement::Region(a), Placement::Region(b)) = (pa, pb) {
                if self.schedule.regions[a.0 as usize].fabric
                    != self.schedule.regions[b.0 as usize].fabric
                {
                    lag += crossing;
                }
            }
            if lag > 0 {
                self.lags
                    .insert((from.index() as NodeId, to.index() as NodeId), lag);
            }
        }

        // Reconfiguration arcs: each rec waits on the region predecessor of
        // its outgoing task.
        self.recs.clear();
        self.rec_of_task = vec![None; n];
        self.rec_after_task = vec![None; n];
        for (ri, rec) in self.schedule.reconfigurations.iter().enumerate() {
            let seq = &region_seqs[rec.region.0 as usize];
            let pos = seq
                .iter()
                .position(|&x| x == rec.outgoing_task)
                .ok_or_else(|| {
                    RepairError::InvalidBaseline(format!(
                        "reconfiguration {ri} loads {:?} outside its region",
                        rec.outgoing_task
                    ))
                })?;
            if pos == 0 {
                return Err(RepairError::InvalidBaseline(format!(
                    "reconfiguration {ri} precedes the region-first task {:?}",
                    rec.outgoing_task
                )));
            }
            let out = rec.outgoing_task.index();
            if self.rec_of_task[out].is_some() {
                return Err(RepairError::InvalidBaseline(format!(
                    "task {:?} is loaded by two reconfigurations",
                    rec.outgoing_task
                )));
            }
            self.rec_of_task[out] = Some(ri as u32);
            let t_in = seq[pos - 1];
            if self.rec_after_task[t_in.index()].is_some() {
                return Err(RepairError::InvalidBaseline(format!(
                    "task {t_in:?} feeds two reconfigurations"
                )));
            }
            self.rec_after_task[t_in.index()] = Some(ri as u32);
            self.recs.push(RecArc {
                t_in,
                t_out: rec.outgoing_task,
            });
        }

        // Re-derive retirement from the (persisted) finished flags.
        for t in 0..n {
            if self.finished[t] {
                self.try_retire_from(TaskId(t as u32));
            }
        }
        Ok(())
    }

    // --- Retirement. ------------------------------------------------------

    /// Retires `t` if it is a finished source, cascading to successors
    /// that become finished sources in turn. Ends fold into successor
    /// release floors before the arcs drop.
    fn try_retire_from(&mut self, t: TaskId) {
        let mut queue = vec![t.index() as NodeId];
        while let Some(v) = queue.pop() {
            let vi = v as usize;
            if !self.finished[vi] || self.retired[vi] || !self.dag.preds(v).is_empty() {
                continue;
            }
            let succs: Vec<NodeId> = self.dag.succs(v).to_vec();
            let end = self.schedule.assignments[vi].end;
            for &s in &succs {
                let lag = self.lag(v, s);
                let floor = &mut self.release_floor[s as usize];
                *floor = (*floor).max(end + lag);
            }
            if self.reach.is_current(&self.dag) {
                self.reach.retire_node(&mut self.dag, v);
            } else {
                self.dag.retire_node(v);
            }
            self.retired[vi] = true;
            self.stats.retired_tasks += 1;
            queue.extend(succs.into_iter().filter(|&s| self.finished[s as usize]));
        }
    }
}

/// Name of the per-event repair commit window on the controller journal.
pub const REPAIR_CHECKPOINT: &str = "repair";

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_gen::{GraphConfig, TaskGraphGenerator};
    use prfpga_model::Architecture;
    use prfpga_sim::validate_schedule;

    fn engine_for(seed: u64, n: usize) -> RepairEngine {
        let inst = TaskGraphGenerator::new(seed).generate(
            &format!("rep{n}"),
            &GraphConfig::standard(n),
            Architecture::zedboard_pr(),
        );
        let schedule = PaScheduler::new(SchedulerConfig::default())
            .schedule(&inst)
            .unwrap();
        RepairEngine::new(inst, schedule, RepairConfig::default()).unwrap()
    }

    /// First task (by start tick) that has at least one successor.
    fn early_task(engine: &RepairEngine) -> TaskId {
        let mut ids: Vec<TaskId> = (0..engine.instance().graph.len() as u32)
            .map(TaskId)
            .collect();
        ids.sort_by_key(|t| engine.schedule().assignment(*t).start);
        ids.into_iter()
            .find(|t| !engine.dag.succs(t.index() as NodeId).is_empty())
            .expect("generated graphs have edges")
    }

    #[test]
    fn on_time_finish_changes_nothing() {
        let mut engine = engine_for(11, 30);
        let before = engine.schedule().clone();
        let t = early_task(&engine);
        let actual = before.assignment(t).end;
        let out = engine
            .apply(&ScheduleEvent::Finish { task: t, actual })
            .unwrap();
        assert_eq!(out.frontier, 0);
        assert_eq!(out.moved, 0);
        assert_eq!(engine.schedule(), &before);
        assert!(engine.is_finished(t));
    }

    #[test]
    fn late_finish_pushes_descendants_and_validates() {
        let mut engine = engine_for(12, 40);
        let t = early_task(&engine);
        let committed = engine.schedule().assignment(t).end;
        let out = engine
            .apply(&ScheduleEvent::Finish {
                task: t,
                actual: committed + 500,
            })
            .unwrap();
        assert!(out.frontier > 0, "descendants must be invalidated");
        assert_eq!(engine.schedule().assignment(t).end, committed + 500);
        validate_schedule(engine.instance(), engine.schedule()).expect("repaired schedule valid");
        assert!(out.makespan >= committed + 500);
    }

    #[test]
    fn early_finish_pulls_schedule_in() {
        // Cascade disabled: this pins the *delta* path. (A full re-solve
        // re-runs the heuristic pipeline on the revised instance and may
        // legitimately land on a slightly different makespan.)
        let inst = TaskGraphGenerator::new(13).generate(
            "early",
            &GraphConfig::standard(40),
            Architecture::zedboard_pr(),
        );
        let schedule = PaScheduler::new(SchedulerConfig::default())
            .schedule(&inst)
            .unwrap();
        let mut engine = RepairEngine::new(
            inst,
            schedule,
            RepairConfig {
                cascade_threshold_pct: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let t = early_task(&engine);
        let a = engine.schedule().assignment(t);
        let (start, committed) = (a.start, a.end);
        if committed == start {
            return; // zero-duration task; nothing to pull
        }
        let before = engine.schedule().makespan();
        let out = engine
            .apply(&ScheduleEvent::Finish {
                task: t,
                actual: start,
            })
            .unwrap();
        assert!(!out.full_resolve);
        validate_schedule(engine.instance(), engine.schedule()).expect("valid");
        // A pure CPM retime (no reconfiguration re-placement) is the
        // monotone fixed point: shrinking an input never grows it. With
        // contended controller gaps the greedy re-placement may trade a
        // little; only the exact property is pinned.
        if out.recs_replaced == 0 {
            assert!(out.makespan <= before, "pure retime is monotone");
        }
    }

    #[test]
    fn cancel_zeroes_and_retires_sources() {
        let mut engine = engine_for(14, 30);
        // Cancel a source task (no predecessors): it must retire.
        let src = (0..engine.instance().graph.len())
            .map(|i| TaskId(i as u32))
            .find(|t| engine.dag.preds(t.index() as NodeId).is_empty())
            .unwrap();
        engine.apply(&ScheduleEvent::Cancel { task: src }).unwrap();
        assert!(engine.is_finished(src));
        assert!(engine.retired[src.index()]);
        assert_eq!(engine.durations[src.index()], 0);
        validate_schedule(engine.instance(), engine.schedule()).expect("valid");
        // A second event against it is refused.
        assert!(matches!(
            engine.apply(&ScheduleEvent::Cancel { task: src }),
            Err(RepairError::TaskFinished(_))
        ));
    }

    #[test]
    fn arrival_lands_on_least_loaded_core_after_deps() {
        let mut engine = engine_for(15, 30);
        let dep = early_task(&engine);
        let out = engine
            .apply(&ScheduleEvent::Arrive {
                name: "late-job".into(),
                sw_time: 777,
                deps: vec![dep],
            })
            .unwrap();
        let n = engine.instance().graph.len();
        let t = TaskId(n as u32 - 1);
        let a = engine.schedule().assignment(t);
        assert!(matches!(a.placement, Placement::Core(_)));
        assert_eq!(a.end - a.start, 777);
        assert!(a.start >= engine.schedule().assignment(dep).end);
        assert_eq!(out.frontier, 1);
        validate_schedule(engine.instance(), engine.schedule()).expect("valid");
    }

    #[test]
    fn cascade_threshold_forces_full_resolve() {
        let inst = TaskGraphGenerator::new(16).generate(
            "cascade",
            &GraphConfig::standard(30),
            Architecture::zedboard_pr(),
        );
        let schedule = PaScheduler::new(SchedulerConfig::default())
            .schedule(&inst)
            .unwrap();
        let mut engine = RepairEngine::new(
            inst,
            schedule,
            RepairConfig {
                cascade_threshold_pct: 0, // every nonempty frontier cascades
                ..Default::default()
            },
        )
        .unwrap();
        let t = early_task(&engine);
        let committed = engine.schedule().assignment(t).end;
        let out = engine
            .apply(&ScheduleEvent::Finish {
                task: t,
                actual: committed + 100,
            })
            .unwrap();
        assert!(out.full_resolve);
        assert_eq!(engine.stats().full_resolves, 1);
        validate_schedule(engine.instance(), engine.schedule()).expect("valid after re-solve");
    }

    #[test]
    fn stats_accumulate_across_events() {
        let mut engine = engine_for(17, 40);
        let t = early_task(&engine);
        let committed = engine.schedule().assignment(t).end;
        engine
            .apply(&ScheduleEvent::Finish {
                task: t,
                actual: committed + 50,
            })
            .unwrap();
        engine
            .apply(&ScheduleEvent::Arrive {
                name: "x".into(),
                sw_time: 10,
                deps: vec![],
            })
            .unwrap();
        let s = engine.stats();
        assert_eq!(s.events, 2);
        assert!(s.frontier_tasks >= 1);
        assert!(s.retired_tasks >= 1, "the finished task's sources retire");
    }

    #[test]
    fn unknown_task_is_refused() {
        let mut engine = engine_for(18, 20);
        assert!(matches!(
            engine.apply(&ScheduleEvent::Cancel { task: TaskId(9999) }),
            Err(RepairError::UnknownTask(_))
        ));
        assert!(matches!(
            engine.apply(&ScheduleEvent::Arrive {
                name: "y".into(),
                sw_time: 5,
                deps: vec![TaskId(9999)],
            }),
            Err(RepairError::UnknownDependency(_))
        ));
    }
}
