//! Mutable scheduler state shared by the pipeline phases, plus the
//! reusable workspace that makes repeated `doSchedule` runs
//! allocation-free.

use std::mem;

use prfpga_dag::{
    reach, CpmAnalysis, CpmScratch, CsrView, CycleError, Dag, DagCheckpoint, NodeId, ReachIndex,
};
use prfpga_model::{
    Device, ImplId, Platform, ProblemInstance, ResourceVec, TaskId, Time, TimeWindow,
};
use prfpga_timeline::Timeline;

use crate::error::SchedError;
use crate::metrics::MetricWeights;
use crate::trace::ObserverHandle;

/// A reconfigurable region being built up during regions definition.
#[derive(Debug, Clone)]
pub struct RegionBuild {
    /// Resource budget (`res_{s,r}`); fixed at creation from the first
    /// hosted implementation.
    pub res: ResourceVec,
    /// Fabric hosting the region; fixed at creation from the opening
    /// task's partition assignment (always 0 on a single-fabric target).
    pub fabric: u32,
    /// Hosted tasks, kept sorted by their window start at insertion time.
    pub tasks: Vec<TaskId>,
}

/// The base (data-dependency) graph cached inside a [`SchedWorkspace`]:
/// enough to recognize "same instance as last run" and rewind the DAG to
/// it instead of rebuilding from scratch.
#[derive(Debug, Default)]
struct BaseGraph {
    nodes: usize,
    edges: Vec<(TaskId, TaskId)>,
    checkpoint: Option<DagCheckpoint>,
}

/// All heap buffers one `doSchedule` pipeline run needs, owned separately
/// from the run so they survive it.
///
/// The PA driver restarts the pipeline up to `max_attempts` times and
/// PA-R runs it once per iteration; without a workspace every run
/// re-allocates the DAG adjacency lists, the CPM vectors, the region
/// tables and the per-task maps. Threading one workspace through
/// ([`crate::driver`]'s restart loop, PA-R's iteration loop, one per
/// worker in the parallel variant) makes the steady state allocation-free:
/// the DAG rolls back to a checkpoint of the base graph, CPM recomputes
/// into warm buffers, and region task lists are recycled through a pool.
///
/// Results are byte-identical to the fresh-allocation path — the rollback
/// restores the exact base graph and every buffer is cleared before reuse.
#[derive(Debug, Default)]
pub struct SchedWorkspace {
    dag: Dag,
    impl_choice: Vec<ImplId>,
    durations: Vec<Time>,
    cpm: CpmAnalysis,
    cpm_scratch: CpmScratch,
    regions: Vec<RegionBuild>,
    region_of: Vec<Option<usize>>,
    core_of: Vec<Option<usize>>,
    fabric_of: Vec<u32>,
    region_pool: Vec<Vec<TaskId>>,
    base: BaseGraph,
    /// Implementation choice the cached `base_cpm` was computed under.
    base_choice: Vec<ImplId>,
    /// Durations the cached `base_cpm` was computed from. `base_choice`
    /// alone is not a valid cache key across instances: `ImplId`s are
    /// per-instance pool indices, so a pooled worker can see two
    /// instances with identical topology and identical chosen indices
    /// whose pools carry different execution times.
    base_durations: Vec<Time>,
    /// Initial CPM analysis of the base graph under `base_choice` /
    /// `base_durations`; reused runs with the same choice restore it by
    /// copy instead of recomputing.
    base_cpm: CpmAnalysis,
    /// Core-lane reservation kernel recycled into [`SchedState::timeline`].
    timeline: Timeline,
    /// Controller-lane reservation kernel for phase G's timing realization
    /// (separate from the state's, because `realize_schedule` reads the
    /// state immutably while committing controller reservations).
    pub(crate) reconf_timeline: Timeline,
    /// Frozen CSR snapshot of the base graph (fast graph path). When a run
    /// rewinds the DAG to the base the view snapshotted, revalidation is a
    /// version stamp ([`CsrView::assume_current`]) instead of a rebuild.
    csr: CsrView,
    /// True when `csr` snapshots the cached base graph.
    csr_is_base: bool,
    /// Bitset reachability closure recycled into the state's probe path.
    reach: ReachIndex,
    rebuilds: u64,
    reuses: u64,
}

impl SchedWorkspace {
    /// An empty workspace; buffers are sized lazily by the first run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the implementation-choice buffer (cleared) so phase A can
    /// fill it without allocating; hand it back via
    /// [`SchedState::from_workspace`].
    pub(crate) fn take_impl_choice(&mut self) -> Vec<ImplId> {
        let mut v = mem::take(&mut self.impl_choice);
        v.clear();
        v
    }

    /// Times a state was built by rewinding the cached base graph instead
    /// of rebuilding it.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Times the base graph had to be (re)built from the instance — 1 for
    /// any sequence of runs over a single instance.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Rewinds `self.dag` to the base graph of `inst`, rebuilding it only
    /// when the cached base does not match the instance. Returns whether
    /// the cached base was reused (vs rebuilt).
    fn reset_graph(&mut self, inst: &ProblemInstance) -> Result<bool, SchedError> {
        let matches = self.base.checkpoint.is_some()
            && self.base.nodes == inst.graph.len()
            && self.base.edges == inst.graph.edges;
        if matches {
            let cp = self.base.checkpoint.expect("checked above");
            self.dag.rollback(cp);
            self.reuses += 1;
        } else {
            self.dag = Dag::from_taskgraph(&inst.graph).map_err(|_| SchedError::CyclicTaskGraph)?;
            self.base = BaseGraph {
                nodes: inst.graph.len(),
                edges: inst.graph.edges.clone(),
                checkpoint: Some(self.dag.checkpoint()),
            };
            self.base_choice.clear();
            self.base_durations.clear();
            self.csr_is_base = false;
            // Re-targeting at a new instance is the natural point to stop
            // pinning DFS scratch sized for the previous (possibly much
            // larger) graph.
            reach::shrink_scratch_to(inst.graph.len());
            self.rebuilds += 1;
        }
        Ok(matches)
    }
}

/// The evolving state of one `doSchedule` run: implementation choices,
/// the dependency DAG (data arcs plus sequencing arcs added by the
/// phases), CPM windows and the region set.
#[derive(Debug)]
pub struct SchedState<'a> {
    /// The instance being scheduled.
    pub inst: &'a ProblemInstance,
    /// Device with possibly shrunk capacity (feasibility restarts). With a
    /// platform attached this is the relaxation device; per-fabric
    /// arithmetic goes through [`SchedState::fabric_device`].
    pub device: &'a Device,
    /// Multi-fabric platform with possibly shrunk capacities, ratcheted in
    /// lockstep with `device` by the restart loops. `None` is the classic
    /// single-device path (injected after construction, like
    /// `module_reuse`, so direct phase callers are unaffected).
    pub platform: Option<&'a Platform>,
    /// Partition assignment per task (fabric index), filled by the
    /// partition phase; all zeros on a single-fabric target.
    pub fabric_of: Vec<u32>,
    /// Metric weights for the current device capacity.
    pub weights: MetricWeights,
    /// Dependency DAG over the tasks.
    pub dag: Dag,
    /// Chosen implementation per task.
    pub impl_choice: Vec<ImplId>,
    /// Execution time of the chosen implementation per task.
    pub durations: Vec<Time>,
    /// Current CPM analysis (windows + critical set); kept in sync by
    /// [`SchedState::recompute_windows`].
    pub cpm: CpmAnalysis,
    /// Regions defined so far.
    pub regions: Vec<RegionBuild>,
    /// Region index per task (`None` = software task).
    pub region_of: Vec<Option<usize>>,
    /// Core index per software task, filled by the mapping phase.
    pub core_of: Vec<Option<usize>>,
    /// Whether the module-reuse extension is active (affects placement
    /// tie-breaking and reconfiguration planning).
    pub module_reuse: bool,
    /// Observer the phases report wall-clock and counters to; no-op unless
    /// the caller installs a recorder (like `module_reuse`, injected after
    /// construction so direct phase callers are unaffected).
    pub observer: ObserverHandle,
    /// When set, window updates after duration/arc mutations use the
    /// incremental CPM maintenance of [`CpmAnalysis::apply_arc`] /
    /// [`CpmAnalysis::apply_duration`] instead of a full recompute.
    /// Byte-identical results (the window equations have a unique fixed
    /// point); enabled by the schedulers' workspace-reuse fast path and
    /// off by default so direct phase callers exercise the plain path.
    pub incremental: bool,
    /// When set, reachability probes go through the bitset closure and
    /// sequencing-arc insertions through [`ReachIndex::add_edge`] (as long
    /// as the closure is current — [`SchedState::reachable`] degrades to
    /// DFS otherwise). Enabled by the schedulers' CSR fast path
    /// ([`crate::SchedulerConfig::csr_paths`]); off by default so direct
    /// phase callers exercise the plain adjacency+DFS path.
    pub fast_graph: bool,
    /// Core-lane reservation kernel: phase F commits every mapped software
    /// task's occupancy here, making per-core drain queries O(1) via
    /// [`Timeline::free_from`] instead of rescanning assigned tasks.
    pub timeline: Timeline,
    /// Warm CPM buffers for [`SchedState::recompute_windows`].
    cpm_scratch: CpmScratch,
    /// Recycled region task lists, fed by the workspace.
    region_pool: Vec<Vec<TaskId>>,
    /// Bitset reachability closure (see [`SchedState::reachable`]).
    reach: ReachIndex,
}

impl<'a> SchedState<'a> {
    /// Builds the state after implementation selection, allocating fresh
    /// buffers. Direct phase callers (tests, experiments) use this;
    /// scheduler loops go through [`SchedState::from_workspace`].
    pub fn new(
        inst: &'a ProblemInstance,
        device: &'a Device,
        weights: MetricWeights,
        impl_choice: Vec<ImplId>,
    ) -> Result<Self, SchedError> {
        let mut ws = SchedWorkspace::new();
        Self::from_workspace(inst, device, weights, impl_choice, &mut ws)
    }

    /// Builds the state out of `ws`'s buffers: the DAG rewinds to the
    /// cached base graph (or is rebuilt on first use / instance change),
    /// CPM recomputes in place, and every table is cleared, not
    /// re-allocated. The buffers return to `ws` via
    /// [`SchedState::recycle`].
    pub fn from_workspace(
        inst: &'a ProblemInstance,
        device: &'a Device,
        weights: MetricWeights,
        impl_choice: Vec<ImplId>,
        ws: &mut SchedWorkspace,
    ) -> Result<Self, SchedError> {
        Self::from_workspace_with(inst, device, weights, impl_choice, ws, false)
    }

    /// [`SchedState::from_workspace`] with the CSR/bitset fast graph paths
    /// switchable: when `fast_graph` is set, the initial CPM pass runs over
    /// the workspace's frozen [`CsrView`] of the base graph and the bitset
    /// reachability closure is synchronized so in-run probes and
    /// sequencing-arc insertions are `O(1)` bit tests instead of DFS.
    /// Results are byte-identical either way — the CSR view preserves
    /// adjacency order and the closure answers exactly like the DFS.
    pub fn from_workspace_with(
        inst: &'a ProblemInstance,
        device: &'a Device,
        weights: MetricWeights,
        impl_choice: Vec<ImplId>,
        ws: &mut SchedWorkspace,
        fast_graph: bool,
    ) -> Result<Self, SchedError> {
        let n = inst.graph.len();
        assert_eq!(impl_choice.len(), n);
        let reused = ws.reset_graph(inst)?;
        let dag = mem::take(&mut ws.dag);

        if fast_graph {
            if reused && ws.csr_is_base {
                // The rollback restored exactly the base content the view
                // snapshotted; revalidation is a version stamp.
                ws.csr.assume_current(&dag);
            } else {
                ws.csr.build(&dag);
                ws.csr_is_base = true;
            }
        }

        let mut durations = mem::take(&mut ws.durations);
        durations.clear();
        durations.extend(impl_choice.iter().map(|&i| inst.impls.get(i).time));

        let mut cpm = mem::take(&mut ws.cpm);
        let mut cpm_scratch = mem::take(&mut ws.cpm_scratch);
        if reused && ws.base_choice == impl_choice && ws.base_durations == durations {
            // Same base graph, same implementation choice, same execution
            // times: the initial analysis is identical to the cached one
            // by determinism. The scratch's topological order stays valid
            // — the rollback only removed arcs, which cannot break an
            // order.
            cpm.clone_from(&ws.base_cpm);
        } else {
            if fast_graph {
                cpm.recompute_csr(&ws.csr, &durations, None, &mut cpm_scratch);
            } else {
                cpm.recompute(&dag, &durations, None, &mut cpm_scratch);
            }
            ws.base_choice.clear();
            ws.base_choice.extend_from_slice(&impl_choice);
            ws.base_durations.clone_from(&durations);
            ws.base_cpm.clone_from(&cpm);
        }

        let mut reach_index = mem::take(&mut ws.reach);
        if fast_graph && ReachIndex::fits(n) {
            // Rebuild the closure for this run (the last run's sequencing
            // arcs invalidated it); beyond the memory ceiling the state
            // falls back to DFS probes automatically.
            reach_index.sync(&dag, ws.csr.topo_order());
        }

        // Recycle last run's region task lists through the pool.
        let mut region_pool = mem::take(&mut ws.region_pool);
        let mut regions = mem::take(&mut ws.regions);
        for r in regions.drain(..) {
            let mut tasks = r.tasks;
            tasks.clear();
            region_pool.push(tasks);
        }

        let mut region_of = mem::take(&mut ws.region_of);
        region_of.clear();
        region_of.resize(n, None);
        let mut core_of = mem::take(&mut ws.core_of);
        core_of.clear();
        core_of.resize(n, None);
        let mut fabric_of = mem::take(&mut ws.fabric_of);
        fabric_of.clear();
        fabric_of.resize(n, 0);

        let mut timeline = mem::take(&mut ws.timeline);
        timeline.reset(inst.architecture.num_processors, 0, 0);

        Ok(SchedState {
            inst,
            device,
            platform: None,
            fabric_of,
            weights,
            dag,
            impl_choice,
            durations,
            cpm,
            regions,
            region_of,
            core_of,
            module_reuse: false,
            observer: ObserverHandle::noop(),
            incremental: false,
            fast_graph,
            timeline,
            cpm_scratch,
            region_pool,
            reach: reach_index,
        })
    }

    /// Hands this run's buffers back to `ws` for the next run. The DAG is
    /// returned with its sequencing arcs still in place; the next
    /// [`SchedState::from_workspace`] rewinds them.
    pub fn recycle(self, ws: &mut SchedWorkspace) {
        ws.dag = self.dag;
        ws.impl_choice = self.impl_choice;
        ws.durations = self.durations;
        ws.cpm = self.cpm;
        ws.cpm_scratch = self.cpm_scratch;
        ws.regions = self.regions;
        ws.region_of = self.region_of;
        ws.core_of = self.core_of;
        ws.fabric_of = self.fabric_of;
        ws.region_pool = self.region_pool;
        ws.timeline = self.timeline;
        ws.reach = self.reach;
    }

    /// True when `to` is reachable from `from` in the dependency DAG: an
    /// `O(1)` closure lookup when the fast graph path is on and the closure
    /// is current, a DFS otherwise. Identical verdicts either way.
    #[inline]
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if self.fast_graph && self.reach.is_current(&self.dag) {
            self.reach.query(from, to)
        } else {
            reach::is_reachable(&self.dag, from, to)
        }
    }

    /// Inserts a sequencing arc, keeping the reachability closure current
    /// when the fast graph path is on. Accept/reject behaviour is exactly
    /// [`Dag::add_edge`]'s.
    pub(crate) fn insert_sequencing_arc(&mut self, u: NodeId, v: NodeId) -> Result<(), CycleError> {
        if self.fast_graph && self.reach.is_current(&self.dag) {
            self.reach.add_edge(&mut self.dag, u, v)
        } else {
            self.dag.add_edge(u, v)
        }
    }

    /// Window of a task under the current CPM analysis.
    #[inline]
    pub fn window(&self, t: TaskId) -> TimeWindow {
        self.cpm.windows[t.index()]
    }

    /// Planned occupancy of a task: `[T_MIN, T_MIN + exe)`. Phase E (§V-E)
    /// anchors every task at its earliest start, so this is the slot a task
    /// is expected to hold on its resource; the window-compatibility checks
    /// of phases C and D compare occupancies (for a critical task the
    /// occupancy *is* its window, since its slack is zero).
    #[inline]
    pub fn occupancy(&self, t: TaskId) -> TimeWindow {
        let w = self.cpm.windows[t.index()];
        TimeWindow::new(w.min, w.min + self.durations[t.index()])
    }

    /// True when the task is on the critical path under the current CPM.
    #[inline]
    pub fn is_critical(&self, t: TaskId) -> bool {
        self.cpm.critical[t.index()]
    }

    /// True when the chosen implementation of `t` is hardware.
    #[inline]
    pub fn is_hw(&self, t: TaskId) -> bool {
        self.inst
            .impls
            .get(self.impl_choice[t.index()])
            .is_hardware()
    }

    /// Resources of the chosen implementation of `t` (zero for software).
    #[inline]
    pub fn chosen_res(&self, t: TaskId) -> ResourceVec {
        self.inst.impls.get(self.impl_choice[t.index()]).resources()
    }

    /// Re-runs CPM after a duration or dependency mutation, into the
    /// state's warm buffers.
    pub fn recompute_windows(&mut self) {
        self.cpm
            .recompute(&self.dag, &self.durations, None, &mut self.cpm_scratch);
    }

    /// Updates the analysis after `durations[t]` changed from `old`:
    /// incrementally when the fast path is on (a no-op if the duration is
    /// in fact unchanged), via full recompute otherwise.
    fn windows_after_duration_change(&mut self, t: TaskId, old: Time) {
        if !self.incremental {
            self.recompute_windows();
        } else if self.durations[t.index()] != old {
            self.cpm
                .apply_duration(&self.dag, &self.durations, t.0, &mut self.cpm_scratch);
        }
    }

    /// Incrementally folds an arc `u -> v` (already inserted into
    /// `self.dag` by the caller) into the analysis.
    pub(crate) fn cpm_apply_arc(&mut self, u: TaskId, v: TaskId) {
        self.cpm
            .apply_arc(&self.dag, &self.durations, u.0, v.0, &mut self.cpm_scratch);
    }

    /// Switches `t` to its fastest software implementation and refreshes
    /// the windows (§V-C fallback rule).
    pub fn switch_to_sw(&mut self, t: TaskId) {
        let sw = self.inst.fastest_sw_impl(t);
        let old = self.durations[t.index()];
        self.impl_choice[t.index()] = sw;
        self.durations[t.index()] = self.inst.impls.get(sw).time;
        self.region_of[t.index()] = None;
        self.windows_after_duration_change(t, old);
    }

    /// Switches `t` to hardware implementation `imp` hosted in region
    /// `region`, inserting the region sequencing arcs around it, and
    /// refreshes the windows. The caller must have verified ordering
    /// consistency (no cycle) beforehand.
    pub fn assign_to_region(&mut self, t: TaskId, imp: ImplId, region: usize) {
        debug_assert!(self.inst.impls.get(imp).is_hardware());
        let old = self.durations[t.index()];
        self.impl_choice[t.index()] = imp;
        self.durations[t.index()] = self.inst.impls.get(imp).time;
        self.region_of[t.index()] = Some(region);

        // Keep the region's task list sorted by current window start and
        // wire sequencing arcs to the immediate neighbours. Insertion
        // position and neighbours are fixed before any window update, so
        // the incremental and full paths make identical decisions.
        let w_min = self.window(t).min;
        let pos = self.insertion_pos(region, w_min);
        let tasks = &mut self.regions[region].tasks;
        tasks.insert(pos, t);
        let prev = pos.checked_sub(1).map(|i| tasks[i]);
        let next = tasks.get(pos + 1).copied();
        if self.incremental && self.durations[t.index()] != old {
            self.cpm
                .apply_duration(&self.dag, &self.durations, t.0, &mut self.cpm_scratch);
        }
        if let Some(p) = prev {
            self.insert_sequencing_arc(p.0, t.0)
                .expect("caller checked ordering consistency (prev)");
            if self.incremental {
                self.cpm
                    .apply_arc(&self.dag, &self.durations, p.0, t.0, &mut self.cpm_scratch);
            }
        }
        if let Some(nx) = next {
            self.insert_sequencing_arc(t.0, nx.0)
                .expect("caller checked ordering consistency (next)");
            if self.incremental {
                self.cpm
                    .apply_arc(&self.dag, &self.durations, t.0, nx.0, &mut self.cpm_scratch);
            }
        }
        if !self.incremental {
            self.recompute_windows();
        }
    }

    /// Opens a new region sized for `imp` on `t`'s partition fabric and
    /// assigns `t` to it.
    pub fn open_region(&mut self, t: TaskId, imp: ImplId) {
        let res = self.inst.impls.get(imp).resources();
        let fabric = self.fabric_of[t.index()];
        let tasks = self.region_pool.pop().unwrap_or_default();
        debug_assert!(tasks.is_empty());
        self.regions.push(RegionBuild { res, fabric, tasks });
        let region = self.regions.len() - 1;
        let old = self.durations[t.index()];
        self.impl_choice[t.index()] = imp;
        self.durations[t.index()] = self.inst.impls.get(imp).time;
        self.region_of[t.index()] = Some(region);
        self.regions[region].tasks.push(t);
        self.windows_after_duration_change(t, old);
    }

    /// Position at which a task whose window starts at `w_min` would be
    /// inserted into region `s`'s task sequence: after every hosted task
    /// whose window starts no later. Eligibility checks and the actual
    /// insertion share this function so the sequencing arcs always match
    /// the cycle-safety probe.
    pub fn insertion_pos(&self, s: usize, w_min: Time) -> usize {
        self.regions[s]
            .tasks
            .iter()
            .take_while(|&&o| self.cpm.windows[o.index()].min <= w_min)
            .count()
    }

    /// Fabric resources already committed to regions (all fabrics summed).
    pub fn used_resources(&self) -> ResourceVec {
        self.regions.iter().map(|r| r.res).sum()
    }

    /// Resources already committed to regions hosted on fabric `f`.
    pub fn used_resources_on(&self, f: u32) -> ResourceVec {
        self.regions
            .iter()
            .filter(|r| r.fabric == f)
            .map(|r| r.res)
            .sum()
    }

    /// Number of fabrics of the target (1 without a platform).
    #[inline]
    pub fn num_fabrics(&self) -> usize {
        match self.platform {
            Some(p) => p.num_fabrics(),
            None => 1,
        }
    }

    /// The (possibly capacity-shrunk) device describing fabric `f`: the
    /// platform fabric, or the lone `device` when no platform is attached.
    /// Bit costs and reconfiguration throughput are never shrunk, so
    /// timing arithmetic through this accessor matches the real fabric.
    #[inline]
    pub fn fabric_device(&self, f: u32) -> &Device {
        match self.platform {
            Some(p) => &p.fabrics[f as usize],
            None => self.device,
        }
    }

    /// Capacity of fabric `f` under the current (possibly shrunk) target.
    #[inline]
    pub fn fabric_cap(&self, f: u32) -> ResourceVec {
        self.fabric_device(f).max_res
    }

    /// Total controller-timeline lanes: `num_reconfig_controllers` per
    /// fabric, fabric `f` owning lanes `[f*k, f*k+k)`. Equals the plain
    /// controller count without a platform.
    #[inline]
    pub fn controller_lanes(&self) -> usize {
        self.inst.architecture.num_reconfig_controllers.max(1) * self.num_fabrics()
    }

    /// Latency added to data edges crossing fabrics (0 without a platform).
    #[inline]
    pub fn crossing_latency(&self) -> Time {
        match self.platform {
            Some(p) => p.crossing_latency,
            None => 0,
        }
    }

    /// Estimated reconfiguration time of region `s` (eq. 2 on `res_s`,
    /// using the hosting fabric's bit costs and throughput).
    #[inline]
    pub fn reconf_time(&self, s: usize) -> Time {
        self.fabric_device(self.regions[s].fabric)
            .reconf_time(&self.regions[s].res)
    }

    /// Estimated total reconfiguration time over all regions (eq. 6):
    /// `sum_s reconf_s * (|T_s| - 1)`.
    pub fn total_reconf_time(&self) -> Time {
        self.regions
            .iter()
            .enumerate()
            .map(|(s, r)| self.reconf_time(s) * (r.tasks.len().saturating_sub(1) as Time))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::{Architecture, ImplPool, Implementation, TaskGraph};

    fn mk_instance() -> ProblemInstance {
        let mut impls = ImplPool::new();
        let mut graph = TaskGraph::new();
        // Three tasks in a chain; each 1 SW (100 ticks) + 1 HW (10 ticks,
        // 5 CLB).
        let mut prev = None;
        for i in 0..3 {
            let sw = impls.add(Implementation::software(format!("s{i}"), 100));
            let hw = impls.add(Implementation::hardware(
                format!("h{i}"),
                10,
                ResourceVec::new(5, 0, 0),
            ));
            let t = graph.add_task(format!("t{i}"), vec![sw, hw]);
            if let Some(p) = prev {
                graph.add_edge(p, t);
            }
            prev = Some(t);
        }
        ProblemInstance::new(
            "st",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(12, 0, 0), 1)),
            graph,
            impls,
        )
        .unwrap()
    }

    fn all_hw_choice(inst: &ProblemInstance) -> Vec<ImplId> {
        inst.graph
            .task_ids()
            .map(|t| inst.hw_impls(t).next().unwrap())
            .collect()
    }

    fn mk_state(inst: &ProblemInstance) -> SchedState<'_> {
        let device = &inst.architecture.device;
        let weights = MetricWeights::new(&device.max_res, 30);
        SchedState::new(inst, device, weights, all_hw_choice(inst)).unwrap()
    }

    #[test]
    fn initial_windows_follow_chain() {
        let inst = mk_instance();
        let st = mk_state(&inst);
        assert_eq!(st.cpm.makespan, 30);
        assert!(st.is_critical(TaskId(1)));
        assert!(st.is_hw(TaskId(0)));
    }

    #[test]
    fn switch_to_sw_updates_windows() {
        let inst = mk_instance();
        let mut st = mk_state(&inst);
        st.switch_to_sw(TaskId(1));
        assert_eq!(st.durations[1], 100);
        assert_eq!(st.cpm.makespan, 120);
        assert!(!st.is_hw(TaskId(1)));
        assert_eq!(st.region_of[1], None);
    }

    #[test]
    fn open_and_assign_regions() {
        let inst = mk_instance();
        let mut st = mk_state(&inst);
        let hw0 = st.impl_choice[0];
        let hw1 = st.impl_choice[1];
        st.open_region(TaskId(0), hw0);
        assert_eq!(st.regions.len(), 1);
        assert_eq!(st.used_resources(), ResourceVec::new(5, 0, 0));
        // Put task 1 in the same region: sequencing edge 0 -> 1 already a
        // data edge, no cycle.
        st.assign_to_region(TaskId(1), hw1, 0);
        assert_eq!(st.regions[0].tasks, vec![TaskId(0), TaskId(1)]);
        assert_eq!(st.region_of[1], Some(0));
        // Reconfiguration: 5 CLB * 1 bit / 1 bit-per-tick.
        assert_eq!(st.reconf_time(0), 5);
        assert_eq!(st.total_reconf_time(), 5);
    }

    #[test]
    fn region_tasks_stay_sorted_by_window() {
        let inst = mk_instance();
        let mut st = mk_state(&inst);
        let hw2 = st.impl_choice[2];
        let hw0 = st.impl_choice[0];
        st.open_region(TaskId(2), hw2);
        // Task 0 precedes task 2 in time; inserting it must land first.
        st.assign_to_region(TaskId(0), hw0, 0);
        assert_eq!(st.regions[0].tasks, vec![TaskId(0), TaskId(2)]);
    }

    #[test]
    fn workspace_reuse_matches_fresh_state() {
        // Two runs through one workspace, with mutations in between, must
        // start from the exact state a fresh allocation produces.
        let inst = mk_instance();
        let device = &inst.architecture.device;
        let weights = MetricWeights::new(&device.max_res, 30);
        let mut ws = SchedWorkspace::new();
        for round in 0..3 {
            let mut st = SchedState::from_workspace(
                &inst,
                device,
                weights.clone(),
                all_hw_choice(&inst),
                &mut ws,
            )
            .unwrap();
            let fresh = mk_state(&inst);
            assert_eq!(st.dag, fresh.dag, "round {round}: base graph restored");
            assert_eq!(st.cpm, fresh.cpm);
            assert_eq!(st.durations, fresh.durations);
            assert!(st.regions.is_empty());
            assert_eq!(st.region_of, vec![None; 3]);
            // Dirty the state so the next round has something to rewind.
            let hw0 = st.impl_choice[0];
            let hw2 = st.impl_choice[2];
            st.open_region(TaskId(0), hw0);
            st.assign_to_region(TaskId(2), hw2, 0);
            st.switch_to_sw(TaskId(1));
            st.recycle(&mut ws);
        }
        assert_eq!(ws.rebuilds(), 1, "base graph built once");
        assert_eq!(ws.reuses(), 2, "rounds 2 and 3 rewound it");
    }

    #[test]
    fn workspace_rebuilds_on_instance_change() {
        let inst_a = mk_instance();
        let mut inst_b = mk_instance();
        inst_b.graph.edges.pop(); // different dependency structure
        let weights = MetricWeights::new(&inst_a.architecture.device.max_res, 30);
        let mut ws = SchedWorkspace::new();
        for inst in [&inst_a, &inst_b, &inst_a] {
            let st = SchedState::from_workspace(
                inst,
                &inst.architecture.device,
                weights.clone(),
                all_hw_choice(inst),
                &mut ws,
            )
            .unwrap();
            let fresh = SchedState::new(
                inst,
                &inst.architecture.device,
                weights.clone(),
                all_hw_choice(inst),
            )
            .unwrap();
            assert_eq!(st.dag, fresh.dag);
            assert_eq!(st.cpm, fresh.cpm);
            st.recycle(&mut ws);
        }
        assert_eq!(ws.rebuilds(), 3, "every instance switch rebuilds");
        assert_eq!(ws.reuses(), 0);
    }

    #[test]
    fn fast_graph_state_matches_plain_state() {
        // Identical mutations through the CSR/bitset fast paths and the
        // adjacency+DFS paths must leave identical state — across repeated
        // workspace reuse, so the `assume_current` re-stamp is exercised.
        let inst = mk_instance();
        let device = &inst.architecture.device;
        let weights = MetricWeights::new(&device.max_res, 30);
        let mut ws = SchedWorkspace::new();
        for round in 0..3 {
            let mut fast = SchedState::from_workspace_with(
                &inst,
                device,
                weights.clone(),
                all_hw_choice(&inst),
                &mut ws,
                true,
            )
            .unwrap();
            assert!(fast.fast_graph);
            let mut plain = mk_state(&inst);
            let hw0 = plain.impl_choice[0];
            let hw2 = plain.impl_choice[2];
            for st in [&mut plain, &mut fast] {
                st.open_region(TaskId(2), hw2);
                st.assign_to_region(TaskId(0), hw0, 0);
                st.switch_to_sw(TaskId(1));
            }
            assert_eq!(fast.dag, plain.dag, "round {round}");
            assert_eq!(fast.cpm, plain.cpm);
            assert_eq!(fast.regions[0].tasks, plain.regions[0].tasks);
            // Probe both directions; the closure was kept current through
            // the inserted sequencing arcs.
            for a in 0..3 {
                for b in 0..3 {
                    assert_eq!(fast.reachable(a, b), plain.reachable(a, b), "{a}->{b}");
                }
            }
            fast.recycle(&mut ws);
        }
        assert_eq!(ws.rebuilds(), 1);
        assert_eq!(ws.reuses(), 2);
    }

    #[test]
    fn instance_switch_shrinks_dfs_scratch() {
        // Re-targeting the workspace at a smaller instance releases DFS
        // scratch sized for the larger one (via `reach::shrink_scratch_to`).
        let mut big = Dag::with_nodes(8192);
        for i in 0..8191 {
            big.add_edge(i, i + 1).unwrap();
        }
        assert!(reach::is_reachable(&big, 0, 8191));
        assert!(reach::scratch_capacity() >= 8192);
        let inst = mk_instance();
        let weights = MetricWeights::new(&inst.architecture.device.max_res, 30);
        let mut ws = SchedWorkspace::new();
        let st = SchedState::from_workspace(
            &inst,
            &inst.architecture.device,
            weights,
            all_hw_choice(&inst),
            &mut ws,
        )
        .unwrap();
        st.recycle(&mut ws);
        assert!(
            reach::scratch_capacity() <= 4096,
            "rebuild path must shrink the thread's DFS scratch"
        );
    }
}
