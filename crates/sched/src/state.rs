//! Mutable scheduler state shared by the pipeline phases.

use prfpga_dag::{CpmAnalysis, Dag};
use prfpga_model::{Device, ImplId, ProblemInstance, ResourceVec, TaskId, Time, TimeWindow};

use crate::error::SchedError;
use crate::metrics::MetricWeights;
use crate::trace::ObserverHandle;

/// A reconfigurable region being built up during regions definition.
#[derive(Debug, Clone)]
pub struct RegionBuild {
    /// Resource budget (`res_{s,r}`); fixed at creation from the first
    /// hosted implementation.
    pub res: ResourceVec,
    /// Hosted tasks, kept sorted by their window start at insertion time.
    pub tasks: Vec<TaskId>,
}

/// The evolving state of one `doSchedule` run: implementation choices,
/// the dependency DAG (data arcs plus sequencing arcs added by the
/// phases), CPM windows and the region set.
#[derive(Debug, Clone)]
pub struct SchedState<'a> {
    /// The instance being scheduled.
    pub inst: &'a ProblemInstance,
    /// Device with possibly shrunk capacity (feasibility restarts).
    pub device: Device,
    /// Metric weights for the current device capacity.
    pub weights: MetricWeights,
    /// Dependency DAG over the tasks.
    pub dag: Dag,
    /// Chosen implementation per task.
    pub impl_choice: Vec<ImplId>,
    /// Execution time of the chosen implementation per task.
    pub durations: Vec<Time>,
    /// Current CPM analysis (windows + critical set); kept in sync by
    /// [`SchedState::recompute_windows`].
    pub cpm: CpmAnalysis,
    /// Regions defined so far.
    pub regions: Vec<RegionBuild>,
    /// Region index per task (`None` = software task).
    pub region_of: Vec<Option<usize>>,
    /// Core index per software task, filled by the mapping phase.
    pub core_of: Vec<Option<usize>>,
    /// Whether the module-reuse extension is active (affects placement
    /// tie-breaking and reconfiguration planning).
    pub module_reuse: bool,
    /// Observer the phases report wall-clock and counters to; no-op unless
    /// the caller installs a recorder (like `module_reuse`, injected after
    /// construction so direct phase callers are unaffected).
    pub observer: ObserverHandle,
}

impl<'a> SchedState<'a> {
    /// Builds the state after implementation selection.
    pub fn new(
        inst: &'a ProblemInstance,
        device: Device,
        weights: MetricWeights,
        impl_choice: Vec<ImplId>,
    ) -> Result<Self, SchedError> {
        let n = inst.graph.len();
        assert_eq!(impl_choice.len(), n);
        let dag = Dag::from_taskgraph(&inst.graph).map_err(|_| SchedError::CyclicTaskGraph)?;
        let durations: Vec<Time> = impl_choice
            .iter()
            .map(|&i| inst.impls.get(i).time)
            .collect();
        let cpm = CpmAnalysis::run(&dag, &durations);
        Ok(SchedState {
            inst,
            device,
            weights,
            dag,
            impl_choice,
            durations,
            cpm,
            regions: Vec::new(),
            region_of: vec![None; n],
            core_of: vec![None; n],
            module_reuse: false,
            observer: ObserverHandle::noop(),
        })
    }

    /// Window of a task under the current CPM analysis.
    #[inline]
    pub fn window(&self, t: TaskId) -> TimeWindow {
        self.cpm.windows[t.index()]
    }

    /// Planned occupancy of a task: `[T_MIN, T_MIN + exe)`. Phase E (§V-E)
    /// anchors every task at its earliest start, so this is the slot a task
    /// is expected to hold on its resource; the window-compatibility checks
    /// of phases C and D compare occupancies (for a critical task the
    /// occupancy *is* its window, since its slack is zero).
    #[inline]
    pub fn occupancy(&self, t: TaskId) -> TimeWindow {
        let w = self.cpm.windows[t.index()];
        TimeWindow::new(w.min, w.min + self.durations[t.index()])
    }

    /// True when the task is on the critical path under the current CPM.
    #[inline]
    pub fn is_critical(&self, t: TaskId) -> bool {
        self.cpm.critical[t.index()]
    }

    /// True when the chosen implementation of `t` is hardware.
    #[inline]
    pub fn is_hw(&self, t: TaskId) -> bool {
        self.inst
            .impls
            .get(self.impl_choice[t.index()])
            .is_hardware()
    }

    /// Resources of the chosen implementation of `t` (zero for software).
    #[inline]
    pub fn chosen_res(&self, t: TaskId) -> ResourceVec {
        self.inst.impls.get(self.impl_choice[t.index()]).resources()
    }

    /// Re-runs CPM after a duration or dependency mutation.
    pub fn recompute_windows(&mut self) {
        self.cpm = CpmAnalysis::run(&self.dag, &self.durations);
    }

    /// Switches `t` to its fastest software implementation and refreshes
    /// the windows (§V-C fallback rule).
    pub fn switch_to_sw(&mut self, t: TaskId) {
        let sw = self.inst.fastest_sw_impl(t);
        self.impl_choice[t.index()] = sw;
        self.durations[t.index()] = self.inst.impls.get(sw).time;
        self.region_of[t.index()] = None;
        self.recompute_windows();
    }

    /// Switches `t` to hardware implementation `imp` hosted in region
    /// `region`, inserting the region sequencing arcs around it, and
    /// refreshes the windows. The caller must have verified ordering
    /// consistency (no cycle) beforehand.
    pub fn assign_to_region(&mut self, t: TaskId, imp: ImplId, region: usize) {
        debug_assert!(self.inst.impls.get(imp).is_hardware());
        self.impl_choice[t.index()] = imp;
        self.durations[t.index()] = self.inst.impls.get(imp).time;
        self.region_of[t.index()] = Some(region);

        // Keep the region's task list sorted by current window start and
        // wire sequencing arcs to the immediate neighbours.
        let w_min = self.window(t).min;
        let pos = self.insertion_pos(region, w_min);
        let tasks = &mut self.regions[region].tasks;
        tasks.insert(pos, t);
        let prev = pos.checked_sub(1).map(|i| tasks[i]);
        let next = tasks.get(pos + 1).copied();
        if let Some(p) = prev {
            self.dag
                .add_edge(p.0, t.0)
                .expect("caller checked ordering consistency (prev)");
        }
        if let Some(nx) = next {
            self.dag
                .add_edge(t.0, nx.0)
                .expect("caller checked ordering consistency (next)");
        }
        self.recompute_windows();
    }

    /// Opens a new region sized for `imp` and assigns `t` to it.
    pub fn open_region(&mut self, t: TaskId, imp: ImplId) {
        let res = self.inst.impls.get(imp).resources();
        self.regions.push(RegionBuild {
            res,
            tasks: Vec::new(),
        });
        let region = self.regions.len() - 1;
        self.impl_choice[t.index()] = imp;
        self.durations[t.index()] = self.inst.impls.get(imp).time;
        self.region_of[t.index()] = Some(region);
        self.regions[region].tasks.push(t);
        self.recompute_windows();
    }

    /// Position at which a task whose window starts at `w_min` would be
    /// inserted into region `s`'s task sequence: after every hosted task
    /// whose window starts no later. Eligibility checks and the actual
    /// insertion share this function so the sequencing arcs always match
    /// the cycle-safety probe.
    pub fn insertion_pos(&self, s: usize, w_min: Time) -> usize {
        self.regions[s]
            .tasks
            .iter()
            .take_while(|&&o| self.cpm.windows[o.index()].min <= w_min)
            .count()
    }

    /// Fabric resources already committed to regions.
    pub fn used_resources(&self) -> ResourceVec {
        self.regions.iter().map(|r| r.res).sum()
    }

    /// Estimated reconfiguration time of region `s` (eq. 2 on `res_s`).
    #[inline]
    pub fn reconf_time(&self, s: usize) -> Time {
        self.device.reconf_time(&self.regions[s].res)
    }

    /// Estimated total reconfiguration time over all regions (eq. 6):
    /// `sum_s reconf_s * (|T_s| - 1)`.
    pub fn total_reconf_time(&self) -> Time {
        self.regions
            .iter()
            .enumerate()
            .map(|(s, r)| self.reconf_time(s) * (r.tasks.len().saturating_sub(1) as Time))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prfpga_model::{Architecture, ImplPool, Implementation, TaskGraph};

    fn mk_instance() -> ProblemInstance {
        let mut impls = ImplPool::new();
        let mut graph = TaskGraph::new();
        // Three tasks in a chain; each 1 SW (100 ticks) + 1 HW (10 ticks,
        // 5 CLB).
        let mut prev = None;
        for i in 0..3 {
            let sw = impls.add(Implementation::software(format!("s{i}"), 100));
            let hw = impls.add(Implementation::hardware(
                format!("h{i}"),
                10,
                ResourceVec::new(5, 0, 0),
            ));
            let t = graph.add_task(format!("t{i}"), vec![sw, hw]);
            if let Some(p) = prev {
                graph.add_edge(p, t);
            }
            prev = Some(t);
        }
        ProblemInstance::new(
            "st",
            Architecture::new(1, Device::tiny_test(ResourceVec::new(12, 0, 0), 1)),
            graph,
            impls,
        )
        .unwrap()
    }

    fn mk_state(inst: &ProblemInstance) -> SchedState<'_> {
        let device = inst.architecture.device.clone();
        let weights = MetricWeights::new(&device.max_res, 30);
        // All HW initially.
        let choice: Vec<ImplId> = inst
            .graph
            .task_ids()
            .map(|t| inst.hw_impls(t).next().unwrap())
            .collect();
        SchedState::new(inst, device, weights, choice).unwrap()
    }

    #[test]
    fn initial_windows_follow_chain() {
        let inst = mk_instance();
        let st = mk_state(&inst);
        assert_eq!(st.cpm.makespan, 30);
        assert!(st.is_critical(TaskId(1)));
        assert!(st.is_hw(TaskId(0)));
    }

    #[test]
    fn switch_to_sw_updates_windows() {
        let inst = mk_instance();
        let mut st = mk_state(&inst);
        st.switch_to_sw(TaskId(1));
        assert_eq!(st.durations[1], 100);
        assert_eq!(st.cpm.makespan, 120);
        assert!(!st.is_hw(TaskId(1)));
        assert_eq!(st.region_of[1], None);
    }

    #[test]
    fn open_and_assign_regions() {
        let inst = mk_instance();
        let mut st = mk_state(&inst);
        let hw0 = st.impl_choice[0];
        let hw1 = st.impl_choice[1];
        st.open_region(TaskId(0), hw0);
        assert_eq!(st.regions.len(), 1);
        assert_eq!(st.used_resources(), ResourceVec::new(5, 0, 0));
        // Put task 1 in the same region: sequencing edge 0 -> 1 already a
        // data edge, no cycle.
        st.assign_to_region(TaskId(1), hw1, 0);
        assert_eq!(st.regions[0].tasks, vec![TaskId(0), TaskId(1)]);
        assert_eq!(st.region_of[1], Some(0));
        // Reconfiguration: 5 CLB * 1 bit / 1 bit-per-tick.
        assert_eq!(st.reconf_time(0), 5);
        assert_eq!(st.total_reconf_time(), 5);
    }

    #[test]
    fn region_tasks_stay_sorted_by_window() {
        let inst = mk_instance();
        let mut st = mk_state(&inst);
        let hw2 = st.impl_choice[2];
        let hw0 = st.impl_choice[0];
        st.open_region(TaskId(2), hw2);
        // Task 0 precedes task 2 in time; inserting it must land first.
        st.assign_to_region(TaskId(0), hw0, 0);
        assert_eq!(st.regions[0].tasks, vec![TaskId(0), TaskId(2)]);
    }
}
