//! Phase-level tracing of the PA pipeline.
//!
//! The driver and every pipeline phase report wall-clock and counters to a
//! [`PhaseObserver`]. The default observer is a no-op (all trait methods
//! have empty bodies), so the untraced paths — PA-R's inner loop, direct
//! phase calls in tests and benches — pay nothing beyond two `Instant`
//! reads per phase. [`PaScheduler::schedule_detailed`] installs a
//! [`TraceRecorder`] and surfaces the resulting [`PhaseTrace`] in
//! [`PaResult::trace`], which the CLI and the bench report render as a
//! per-phase timing table.
//!
//! [`PaScheduler::schedule_detailed`]: crate::PaScheduler::schedule_detailed
//! [`PaResult::trace`]: crate::PaResult

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// The pipeline phases distinguished by the tracer, in execution order.
///
/// Phase E (start/end anchoring, §V-E) is implicit in the CPM windows and
/// has no code of its own, so it does not appear here; phase H
/// (floorplanning) runs outside `scheduling_time` but is traced alongside
/// the others.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Phase A — implementation selection (eq. 3–4 weights included).
    ImplSelect,
    /// Phase B — dependency DAG construction and the initial CPM pass.
    CriticalPath,
    /// Fabric partition (between B and C; a no-op on single-fabric
    /// targets): assigns every task a fabric of the platform.
    Partition,
    /// Phase C — regions definition.
    Regions,
    /// Phase D — software task balancing.
    SwBalance,
    /// Phase F — software task mapping.
    SwMap,
    /// Phase G — reconfiguration scheduling / timing realization.
    Reconf,
    /// Phase H — floorplan feasibility check (outside `scheduling_time`).
    Floorplan,
}

impl Phase {
    /// Every phase, in execution order.
    pub const ALL: [Phase; 8] = [
        Phase::ImplSelect,
        Phase::CriticalPath,
        Phase::Partition,
        Phase::Regions,
        Phase::SwBalance,
        Phase::SwMap,
        Phase::Reconf,
        Phase::Floorplan,
    ];

    /// Number of distinct phases.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable dense index, used to address [`PhaseTrace`] arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Phase::ImplSelect => 0,
            Phase::CriticalPath => 1,
            Phase::Partition => 2,
            Phase::Regions => 3,
            Phase::SwBalance => 4,
            Phase::SwMap => 5,
            Phase::Reconf => 6,
            Phase::Floorplan => 7,
        }
    }

    /// Human-readable label matching the paper's phase lettering.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ImplSelect => "A implementation selection",
            Phase::CriticalPath => "B critical path extraction",
            Phase::Partition => "P fabric partition",
            Phase::Regions => "C regions definition",
            Phase::SwBalance => "D software task balancing",
            Phase::SwMap => "F software task mapping",
            Phase::Reconf => "G reconfiguration scheduling",
            Phase::Floorplan => "H floorplanning",
        }
    }

    /// True for the phases whose time the driver books under
    /// `scheduling_time` (everything but floorplanning).
    #[inline]
    pub fn is_scheduling(self) -> bool {
        self != Phase::Floorplan
    }
}

/// Receiver of pipeline progress events.
///
/// Every method has a no-op default body, so implementations override only
/// what they care about and call sites never need to check for an observer.
pub trait PhaseObserver: Send + Sync {
    /// A pipeline run is starting (`attempt` is 1-based; values above 1 are
    /// feasibility restarts with shrunk virtual capacity, §V-H).
    fn pipeline_started(&self, _attempt: usize) {}

    /// A phase finished after `elapsed` wall-clock.
    fn phase_finished(&self, _phase: Phase, _elapsed: Duration) {}

    /// Regions definition ended with `regions` regions hosting `hw_tasks`
    /// hardware tasks, leaving `sw_tasks` in software.
    fn regions_defined(&self, _regions: usize, _hw_tasks: usize, _sw_tasks: usize) {}

    /// Software balancing hoisted `moved` tasks onto the fabric.
    fn tasks_hoisted(&self, _moved: usize) {}

    /// Timing realization planned `count` reconfigurations.
    fn reconfigurations_planned(&self, _count: usize) {}

    /// End-of-run resource-reuse totals: how many pipeline runs rewound a
    /// warm [`SchedWorkspace`] instead of re-allocating, and the
    /// floorplan-feasibility cache's hit/miss counters.
    ///
    /// [`SchedWorkspace`]: crate::SchedWorkspace
    fn workspace_stats(&self, _workspace_reuses: u64, _fp_cache_hits: u64, _fp_cache_misses: u64) {}

    /// Timeline-kernel counters of the last pipeline run: committed lane
    /// reservations (core occupancies in phase F plus controller windows
    /// in phase G) and gap/arbitration queries answered.
    fn timeline_stats(&self, _reservations: u64, _gap_queries: u64) {}

    /// End-of-run cancellation counters: checkpoints polled on the call's
    /// [`CancelToken`](prfpga_model::CancelToken) and how many of them
    /// observed the fired state (0 hits = the deadline never fired).
    fn cancel_stats(&self, _cancel_polls: u64, _deadline_hits: u64) {}

    /// The commit layer applied a batch realization covering `edits`
    /// controller-timeline journal edits (only emitted behind the
    /// `solve_commit` gate; one call per pipeline run).
    fn batch_committed(&self, _edits: u64) {}

    /// The repair engine finished one event: `frontier` tasks were
    /// invalidated and re-timed, `moved` of them actually changed their
    /// window, and `full_resolve` says the cascade threshold forced a
    /// from-scratch re-solve instead of a delta repair.
    fn repair_applied(&self, _frontier: u64, _moved: u64, _full_resolve: bool) {}
}

/// The do-nothing observer used by untraced paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl PhaseObserver for NoopObserver {}

/// Cheaply-clonable shared handle to an observer, carried by the scheduler
/// state so the phases can report without extra parameters.
#[derive(Clone)]
pub struct ObserverHandle(Arc<dyn PhaseObserver>);

impl ObserverHandle {
    /// Wraps an observer.
    pub fn new(observer: Arc<dyn PhaseObserver>) -> Self {
        ObserverHandle(observer)
    }

    /// The no-op handle.
    pub fn noop() -> Self {
        ObserverHandle(Arc::new(NoopObserver))
    }
}

impl Default for ObserverHandle {
    fn default() -> Self {
        Self::noop()
    }
}

impl std::ops::Deref for ObserverHandle {
    type Target = dyn PhaseObserver;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl fmt::Debug for ObserverHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ObserverHandle(..)")
    }
}

/// Aggregated trace of one scheduler run: per-phase wall-clock summed over
/// restarts, plus the structural counters of the *last* pipeline run (the
/// one whose schedule is returned).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTrace {
    /// Wall-clock per phase (indexed by [`Phase::index`]), summed over
    /// restarts.
    pub phase_time: [Duration; Phase::COUNT],
    /// Times each phase ran (phase D is skipped when balancing is off).
    pub phase_runs: [u32; Phase::COUNT],
    /// Pipeline runs observed (1 = no feasibility restart).
    pub attempts: usize,
    /// Regions defined by the last pipeline run.
    pub regions: usize,
    /// Hardware tasks placed by the last pipeline run.
    pub hw_tasks: usize,
    /// Software tasks left by the last pipeline run.
    pub sw_tasks: usize,
    /// Tasks hoisted to hardware by balancing in the last pipeline run.
    pub balance_moves: usize,
    /// Reconfigurations planned by the last pipeline run.
    pub reconfigurations: usize,
    /// Pipeline runs that rewound a warm workspace instead of
    /// re-allocating (0 when `workspace_reuse` is off or only one run
    /// happened).
    pub workspace_reuses: u64,
    /// Floorplan-feasibility queries answered from the memoization cache.
    pub fp_cache_hits: u64,
    /// Floorplan-feasibility queries that required a cold solve.
    pub fp_cache_misses: u64,
    /// Lane reservations committed by the last pipeline run's timeline
    /// kernel (core occupancies plus controller windows).
    pub timeline_reservations: u64,
    /// Gap / arbitration queries the last pipeline run's timeline kernel
    /// answered.
    pub timeline_gap_queries: u64,
    /// Cancellation checkpoints polled on the run's `CancelToken` (0 when
    /// the caller did not supply one).
    pub cancel_polls: u64,
    /// Checkpoints that observed the fired deadline (nonzero exactly when
    /// the run was cut short and returned a degraded result).
    pub deadline_hits: u64,
    /// Batch commits applied through the solve/commit seam, summed over
    /// restarts (0 when the `solve_commit` gate is off; equals `attempts`
    /// when it is on).
    pub commits: u64,
    /// Controller-timeline journal edits covered by those commits, summed.
    pub commit_edits: u64,
    /// Schedule events the repair engine applied, summed.
    pub repair_events: u64,
    /// Tasks invalidated and re-timed across all repairs, summed.
    pub repair_frontier: u64,
    /// Tasks whose window actually changed across all repairs, summed.
    pub repair_moved: u64,
    /// Repairs that crossed the cascade threshold and fell back to a
    /// from-scratch re-solve.
    pub repair_full_resolves: u64,
}

impl PhaseTrace {
    /// Wall-clock recorded for one phase.
    #[inline]
    pub fn time(&self, phase: Phase) -> Duration {
        self.phase_time[phase.index()]
    }

    /// Sum of the scheduling phases (A–G, excluding floorplanning) — the
    /// traced portion of the driver's `scheduling_time`.
    pub fn scheduling_phase_time(&self) -> Duration {
        Phase::ALL
            .iter()
            .filter(|p| p.is_scheduling())
            .map(|&p| self.time(p))
            .sum()
    }

    /// `(phase, wall-clock, runs)` rows for the phases that actually ran,
    /// in execution order — the data behind the timing tables.
    pub fn rows(&self) -> Vec<(Phase, Duration, u32)> {
        Phase::ALL
            .iter()
            .filter(|p| self.phase_runs[p.index()] > 0)
            .map(|&p| (p, self.time(p), self.phase_runs[p.index()]))
            .collect()
    }

    /// Renders the trace as an aligned plain-text table (used by the CLI).
    pub fn render_table(&self) -> String {
        let total: Duration = self.phase_time.iter().sum();
        let mut out = String::from("phase                           time [ms]   share   runs\n");
        for (phase, time, runs) in self.rows() {
            let share = if total.is_zero() {
                0.0
            } else {
                time.as_secs_f64() / total.as_secs_f64() * 100.0
            };
            out.push_str(&format!(
                "{:<30} {:>10.3} {:>6.1}% {:>6}\n",
                phase.name(),
                time.as_secs_f64() * 1e3,
                share,
                runs,
            ));
        }
        out.push_str(&format!(
            "attempts {} | {} regions, {} hw / {} sw tasks, {} reconfigurations\n",
            self.attempts, self.regions, self.hw_tasks, self.sw_tasks, self.reconfigurations,
        ));
        out.push_str(&format!(
            "workspace reuses {} | floorplan cache {} hits / {} misses\n",
            self.workspace_reuses, self.fp_cache_hits, self.fp_cache_misses,
        ));
        out.push_str(&format!(
            "timeline {} reservations / {} gap queries\n",
            self.timeline_reservations, self.timeline_gap_queries,
        ));
        out.push_str(&format!(
            "cancellation {} polls / {} deadline hits\n",
            self.cancel_polls, self.deadline_hits,
        ));
        if self.commits > 0 {
            out.push_str(&format!(
                "commit {} batches / {} journal edits\n",
                self.commits, self.commit_edits,
            ));
        }
        if self.repair_events > 0 {
            out.push_str(&format!(
                "repair {} events / {} frontier / {} moved / {} full re-solves\n",
                self.repair_events,
                self.repair_frontier,
                self.repair_moved,
                self.repair_full_resolves,
            ));
        }
        out
    }
}

/// A [`PhaseObserver`] that accumulates a [`PhaseTrace`] behind a mutex.
///
/// Durations sum across restarts; structural counters overwrite, so after
/// the run they describe the pipeline pass whose schedule was kept.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    inner: Mutex<PhaseTrace>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the trace accumulated so far.
    pub fn snapshot(&self) -> PhaseTrace {
        self.inner.lock().clone()
    }
}

impl PhaseObserver for TraceRecorder {
    fn pipeline_started(&self, attempt: usize) {
        let mut t = self.inner.lock();
        t.attempts = t.attempts.max(attempt);
    }

    fn phase_finished(&self, phase: Phase, elapsed: Duration) {
        let mut t = self.inner.lock();
        t.phase_time[phase.index()] += elapsed;
        t.phase_runs[phase.index()] += 1;
    }

    fn regions_defined(&self, regions: usize, hw_tasks: usize, sw_tasks: usize) {
        let mut t = self.inner.lock();
        t.regions = regions;
        t.hw_tasks = hw_tasks;
        t.sw_tasks = sw_tasks;
    }

    fn tasks_hoisted(&self, moved: usize) {
        self.inner.lock().balance_moves = moved;
    }

    fn reconfigurations_planned(&self, count: usize) {
        self.inner.lock().reconfigurations = count;
    }

    fn workspace_stats(&self, workspace_reuses: u64, fp_cache_hits: u64, fp_cache_misses: u64) {
        let mut t = self.inner.lock();
        t.workspace_reuses = workspace_reuses;
        t.fp_cache_hits = fp_cache_hits;
        t.fp_cache_misses = fp_cache_misses;
    }

    fn timeline_stats(&self, reservations: u64, gap_queries: u64) {
        let mut t = self.inner.lock();
        t.timeline_reservations = reservations;
        t.timeline_gap_queries = gap_queries;
    }

    fn cancel_stats(&self, cancel_polls: u64, deadline_hits: u64) {
        let mut t = self.inner.lock();
        t.cancel_polls = cancel_polls;
        t.deadline_hits = deadline_hits;
    }

    // Commit/repair counters ACCUMULATE (unlike the last-run structural
    // counters above): a trace over a restart loop or an event stream
    // reports totals, not the final step.
    fn batch_committed(&self, edits: u64) {
        let mut t = self.inner.lock();
        t.commits += 1;
        t.commit_edits += edits;
    }

    fn repair_applied(&self, frontier: u64, moved: u64, full_resolve: bool) {
        let mut t = self.inner.lock();
        t.repair_events += 1;
        t.repair_frontier += frontier;
        t.repair_moved += moved;
        t.repair_full_resolves += u64::from(full_resolve);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::COUNT, 8);
    }

    #[test]
    fn recorder_accumulates_time_and_overwrites_counters() {
        let rec = TraceRecorder::new();
        rec.pipeline_started(1);
        rec.phase_finished(Phase::Regions, Duration::from_millis(2));
        rec.regions_defined(4, 10, 5);
        rec.pipeline_started(2);
        rec.phase_finished(Phase::Regions, Duration::from_millis(3));
        rec.regions_defined(2, 6, 9);
        rec.reconfigurations_planned(7);
        let t = rec.snapshot();
        assert_eq!(t.attempts, 2);
        assert_eq!(t.time(Phase::Regions), Duration::from_millis(5));
        assert_eq!(t.phase_runs[Phase::Regions.index()], 2);
        assert_eq!((t.regions, t.hw_tasks, t.sw_tasks), (2, 6, 9));
        assert_eq!(t.reconfigurations, 7);
    }

    #[test]
    fn scheduling_phase_time_excludes_floorplan() {
        let rec = TraceRecorder::new();
        rec.phase_finished(Phase::ImplSelect, Duration::from_millis(1));
        rec.phase_finished(Phase::Floorplan, Duration::from_millis(100));
        let t = rec.snapshot();
        assert_eq!(t.scheduling_phase_time(), Duration::from_millis(1));
    }

    #[test]
    fn rows_skip_never_run_phases() {
        let rec = TraceRecorder::new();
        rec.phase_finished(Phase::SwMap, Duration::from_millis(1));
        let t = rec.snapshot();
        let rows = t.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, Phase::SwMap);
        assert!(t.render_table().contains("F software task mapping"));
    }

    #[test]
    fn workspace_stats_overwrite_and_render() {
        let rec = TraceRecorder::new();
        rec.workspace_stats(3, 10, 2);
        rec.workspace_stats(5, 12, 4);
        let t = rec.snapshot();
        assert_eq!(
            (t.workspace_reuses, t.fp_cache_hits, t.fp_cache_misses),
            (5, 12, 4)
        );
        assert!(t
            .render_table()
            .contains("workspace reuses 5 | floorplan cache 12 hits / 4 misses"));
    }

    #[test]
    fn timeline_stats_overwrite_and_render() {
        let rec = TraceRecorder::new();
        rec.timeline_stats(8, 20);
        rec.timeline_stats(11, 24);
        let t = rec.snapshot();
        assert_eq!((t.timeline_reservations, t.timeline_gap_queries), (11, 24));
        assert!(t
            .render_table()
            .contains("timeline 11 reservations / 24 gap queries"));
    }

    #[test]
    fn cancel_stats_overwrite_and_render() {
        let rec = TraceRecorder::new();
        rec.cancel_stats(40, 0);
        rec.cancel_stats(55, 2);
        let t = rec.snapshot();
        assert_eq!((t.cancel_polls, t.deadline_hits), (55, 2));
        assert!(t
            .render_table()
            .contains("cancellation 55 polls / 2 deadline hits"));
    }

    #[test]
    fn commit_and_repair_counters_accumulate() {
        let rec = TraceRecorder::new();
        rec.batch_committed(3);
        rec.batch_committed(5);
        rec.repair_applied(10, 4, false);
        rec.repair_applied(200, 180, true);
        let t = rec.snapshot();
        assert_eq!((t.commits, t.commit_edits), (2, 8));
        assert_eq!(
            (
                t.repair_events,
                t.repair_frontier,
                t.repair_moved,
                t.repair_full_resolves
            ),
            (2, 210, 184, 1)
        );
        let table = t.render_table();
        assert!(table.contains("commit 2 batches / 8 journal edits"));
        assert!(table.contains("repair 2 events / 210 frontier / 184 moved / 1 full re-solves"));
    }

    #[test]
    fn commit_lines_hidden_when_seam_unused() {
        let t = PhaseTrace::default();
        let table = t.render_table();
        assert!(!table.contains("commit "));
        assert!(!table.contains("repair "));
    }

    #[test]
    fn noop_observer_is_default() {
        let h = ObserverHandle::default();
        // All events are accepted and discarded.
        h.pipeline_started(1);
        h.phase_finished(Phase::Reconf, Duration::from_secs(1));
        assert_eq!(format!("{h:?}"), "ObserverHandle(..)");
    }
}
