//! Cancellation-point coverage: fire a [`CancelToken`] test double at the
//! N-th poll for *every* N reached by a full un-cancelled run, and assert
//! that each firing yields either a valid degraded schedule or a result
//! byte-identical to the baseline — never a panic or an invalid schedule.
//!
//! Each cancelled run goes through the *same* [`SchedWorkspace`], and after
//! every firing an un-cancelled run through that workspace must reproduce
//! the baseline byte-for-byte: cancellation may not leave partially-applied
//! state behind (rewind safety).
//!
//! The floorplanner config is pinned for determinism: an effectively
//! unlimited `time_limit` (so the internal wall-clock budget never fires
//! and poll counts are reproducible across debug/release builds) and a
//! small candidate cap (so the exact search stays a few thousand nodes —
//! enough to reach the mid-DFS cancellation checkpoints, small enough that
//! the quadratic sweep finishes in seconds).

use std::time::Duration;

use prfpga_floorplan::FloorplannerConfig;
use prfpga_gen::{GraphConfig, TaskGraphGenerator};
use prfpga_model::{Architecture, ProblemInstance};
use prfpga_sched::{CancelToken, PaRScheduler, PaScheduler, SchedWorkspace, SchedulerConfig};
use prfpga_sim::validate_schedule_sweep;

fn instance() -> ProblemInstance {
    TaskGraphGenerator::new(0xBEEF).generate(
        "cancel_sweep",
        &GraphConfig::standard(12),
        Architecture::zedboard_pr(),
    )
}

fn sweep_config() -> SchedulerConfig {
    SchedulerConfig {
        floorplan: FloorplannerConfig {
            time_limit: Duration::from_secs(600),
            max_candidates_per_region: 8,
        },
        ..Default::default()
    }
}

/// PA: every poll index yields Ok (degraded or baseline-identical), the
/// schedule always validates, and the workspace stays reusable.
#[test]
fn pa_survives_cancellation_at_every_poll() {
    let inst = instance();
    let sched = PaScheduler::new(sweep_config());
    let mut ws = SchedWorkspace::new();

    let never = CancelToken::never();
    let baseline = sched
        .schedule_with_cancel_in(&inst, &never, &mut ws)
        .expect("baseline run is feasible");
    let total = never.polls();
    assert!(total > 0, "PA must poll its token at least once");
    assert!(!baseline.degraded);

    for n in 1..=total {
        let tok = CancelToken::fire_on_poll(n);
        let r = sched
            .schedule_with_cancel_in(&inst, &tok, &mut ws)
            .unwrap_or_else(|e| panic!("poll {n}/{total}: PA errored: {e}"));
        validate_schedule_sweep(&inst, &r.schedule)
            .unwrap_or_else(|e| panic!("poll {n}/{total}: invalid schedule: {e:?}"));
        if !r.degraded {
            // The token fired after the search finished (or not at all):
            // the result must be exactly the baseline.
            assert_eq!(r.schedule, baseline.schedule, "poll {n}/{total}");
            assert_eq!(r.attempts, baseline.attempts, "poll {n}/{total}");
        }

        // Rewind safety: the same workspace immediately reproduces the
        // baseline when nothing fires.
        let clean = sched
            .schedule_with_cancel_in(&inst, &CancelToken::never(), &mut ws)
            .expect("post-cancellation run is feasible");
        assert_eq!(
            clean.schedule, baseline.schedule,
            "workspace corrupted after firing at poll {n}/{total}"
        );
        assert_eq!(clean.attempts, baseline.attempts, "poll {n}/{total}");
    }
}

/// PA-R (serial): same sweep over the randomized search, including its
/// incumbent bookkeeping and the PA fallback when nothing feasible exists
/// at cancellation time.
#[test]
fn par_survives_cancellation_at_every_poll() {
    let inst = instance();
    let sched = PaRScheduler::new(SchedulerConfig {
        max_iterations: 3,
        time_budget: Duration::from_secs(600),
        ..sweep_config()
    });
    let mut ws = SchedWorkspace::new();

    let never = CancelToken::never();
    let baseline = sched
        .schedule_with_cancel_in(&inst, &never, &mut ws)
        .expect("baseline run is feasible");
    let total = never.polls();
    assert!(total > 0, "PA-R must poll its token at least once");
    assert!(!baseline.degraded);

    for n in 1..=total {
        let tok = CancelToken::fire_on_poll(n);
        let r = sched
            .schedule_with_cancel_in(&inst, &tok, &mut ws)
            .unwrap_or_else(|e| panic!("poll {n}/{total}: PA-R errored: {e}"));
        validate_schedule_sweep(&inst, &r.schedule)
            .unwrap_or_else(|e| panic!("poll {n}/{total}: invalid schedule: {e:?}"));
        if !r.degraded {
            assert_eq!(r.schedule, baseline.schedule, "poll {n}/{total}");
            assert_eq!(r.iterations, baseline.iterations, "poll {n}/{total}");
        }

        let clean = sched
            .schedule_with_cancel_in(&inst, &CancelToken::never(), &mut ws)
            .expect("post-cancellation run is feasible");
        assert_eq!(
            clean.schedule, baseline.schedule,
            "workspace corrupted after firing at poll {n}/{total}"
        );
        assert_eq!(clean.iterations, baseline.iterations, "poll {n}/{total}");
    }
}

/// Poll counts of the test-double and never tokens are deterministic:
/// repeating an identical run observes the identical number of
/// cancellation checkpoints, which is what makes the exhaustive sweeps
/// above meaningful. (Only wall-clock deadlines are nondeterministic, and
/// the pinned config never arms one.)
#[test]
fn poll_counts_are_deterministic_and_cover_the_floorplan_search() {
    let inst = instance();
    let sched = PaScheduler::new(sweep_config());
    let mut counts = Vec::new();
    for _ in 0..3 {
        let tok = CancelToken::never();
        let mut ws = SchedWorkspace::new();
        sched
            .schedule_with_cancel_in(&inst, &tok, &mut ws)
            .expect("feasible");
        counts.push(tok.polls());
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
    // The sweep must reach checkpoints *inside* the floorplanner's exact
    // search, not only the pipeline-level ones. PA itself polls a handful
    // of times per attempt; anything well beyond that is DFS polling.
    assert!(
        counts[0] > 20,
        "expected mid-floorplan-search polls, got only {}",
        counts[0]
    );
    assert_eq!(
        CancelToken::never().deadline_hits(),
        0,
        "a never token records no hits"
    );
}
