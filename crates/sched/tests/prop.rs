//! Property-based tests of the PA pipeline's internal invariants, checked
//! phase by phase on random instances (the root-level property tests only
//! see the final schedule; these look inside).

use proptest::prelude::*;

use prfpga_model::{
    Architecture, Device, ImplPool, Implementation, ProblemInstance, ResourceVec, TaskGraph, TaskId,
};
use prfpga_sched::config::{CostPolicy, OrderingPolicy};
use prfpga_sched::metrics::MetricWeights;
use prfpga_sched::phases::{impl_select, regions, sw_balance, sw_map};
use prfpga_sched::state::SchedState;

fn arb_instance() -> impl Strategy<Value = ProblemInstance> {
    (2usize..15).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0usize..n, 0usize..n), 0..n * 2);
        let specs = proptest::collection::vec(
            (
                50u64..3000, // sw time
                proptest::option::of((10u64..1000, 1u64..400, 0u64..20, 0u64..20)),
            ),
            n,
        );
        let fabric = (50u64..1500, 0u64..50, 0u64..50);
        let cores = 1usize..3;
        (Just(n), edges, specs, fabric, cores).prop_map(|(_n, edges, specs, fab, cores)| {
            let device = Device::tiny_test(ResourceVec::new(fab.0, fab.1, fab.2), 13);
            let cap = device.max_res;
            let mut impls = ImplPool::new();
            let mut graph = TaskGraph::new();
            for (i, (sw_t, hw)) in specs.into_iter().enumerate() {
                let mut ids = vec![impls.add(Implementation::software(format!("s{i}"), sw_t))];
                if let Some((t, c, b, d)) = hw {
                    let res = ResourceVec::new(c, b, d);
                    if res.fits_in(&cap) {
                        ids.push(impls.add(Implementation::hardware(format!("h{i}"), t, res)));
                    }
                }
                graph.add_task(format!("t{i}"), ids);
            }
            for (a, b) in edges {
                let (lo, hi) = (a.min(b), a.max(b));
                if lo != hi {
                    graph.add_edge(TaskId(lo as u32), TaskId(hi as u32));
                }
            }
            ProblemInstance::new("prop", Architecture::new(cores, device), graph, impls).unwrap()
        })
    })
}

fn pipeline_state(inst: &ProblemInstance, ordering: OrderingPolicy) -> SchedState<'_> {
    let device = &inst.architecture.device;
    let weights = MetricWeights::new(&device.max_res, impl_select::max_t(inst));
    let choice = impl_select::select_implementations(inst, &weights, CostPolicy::Full);
    let mut st = SchedState::new(inst, device, weights, choice).unwrap();
    regions::define_regions(&mut st, ordering);
    sw_balance::balance_software_tasks(&mut st);
    sw_map::map_software_tasks(&mut st);
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Implementation selection always picks from the task's own set, and
    /// only ever picks hardware that is strictly faster than the fastest
    /// software implementation.
    #[test]
    fn impl_selection_invariants(inst in arb_instance()) {
        let w = MetricWeights::new(&inst.architecture.device.max_res, impl_select::max_t(&inst));
        let choice = impl_select::select_implementations(&inst, &w, CostPolicy::Full);
        for (t, &c) in inst.graph.task_ids().zip(choice.iter()) {
            prop_assert!(inst.graph.task(t).impls.contains(&c));
            let imp = inst.impls.get(c);
            if imp.is_hardware() {
                let sw = inst.impls.get(inst.fastest_sw_impl(t)).time;
                prop_assert!(imp.time < sw);
            }
        }
    }

    /// After regions definition (+ balancing + mapping):
    /// * committed region resources never exceed the device capacity;
    /// * every hardware task lives in exactly one region whose budget
    ///   covers its implementation;
    /// * region task sequences are consistent with the (acyclic) DAG;
    /// * every software task has a core.
    #[test]
    fn pipeline_state_invariants(inst in arb_instance()) {
        let st = pipeline_state(&inst, OrderingPolicy::EfficiencyIndex);
        prop_assert!(st.used_resources().fits_in(&st.device.max_res));
        // The mutated dependency graph is still acyclic (Dag enforces it,
        // but verify the public invariant end to end).
        prop_assert_eq!(st.dag.topo_order().len(), inst.graph.len());

        let mut seen = vec![false; inst.graph.len()];
        for (s, region) in st.regions.iter().enumerate() {
            for &t in &region.tasks {
                prop_assert!(!seen[t.index()], "task hosted twice");
                seen[t.index()] = true;
                prop_assert_eq!(st.region_of[t.index()], Some(s));
                prop_assert!(st.chosen_res(t).fits_in(&region.res));
                prop_assert!(st.is_hw(t));
            }
        }
        for t in inst.graph.task_ids() {
            if st.is_hw(t) {
                prop_assert!(st.region_of[t.index()].is_some());
            } else {
                prop_assert!(st.core_of[t.index()].is_some());
                prop_assert!(st.core_of[t.index()].unwrap() < inst.architecture.num_processors);
            }
        }
    }

    /// Every ordering policy yields a pipeline state satisfying the same
    /// invariants (the policies only permute decisions, never break them).
    #[test]
    fn all_orderings_are_safe(inst in arb_instance(), seed in 0u64..100) {
        for ordering in [
            OrderingPolicy::EfficiencyIndex,
            OrderingPolicy::InverseEfficiency,
            OrderingPolicy::TaskId,
            OrderingPolicy::RandomizedNonCritical(seed),
        ] {
            let st = pipeline_state(&inst, ordering);
            prop_assert!(st.used_resources().fits_in(&st.device.max_res));
            prop_assert_eq!(st.dag.topo_order().len(), inst.graph.len());
        }
    }

    /// CPM windows stay coherent through the pipeline: occupancy of every
    /// task fits inside its slack window.
    #[test]
    fn occupancies_fit_windows(inst in arb_instance()) {
        let st = pipeline_state(&inst, OrderingPolicy::EfficiencyIndex);
        for t in inst.graph.task_ids() {
            let w = st.window(t);
            let occ = st.occupancy(t);
            prop_assert_eq!(occ.min, w.min);
            prop_assert!(occ.max <= w.max.max(occ.max)); // occ.max = min + dur <= max on coherent windows
            prop_assert!(w.fits(st.durations[t.index()]));
        }
    }
}
