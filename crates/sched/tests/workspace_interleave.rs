//! Pooled-worker regression: one [`SchedWorkspace`] serving *different*
//! instances interleaved must produce schedules byte-identical to
//! dedicated per-instance workspaces.
//!
//! The sharp edge this pins: the workspace caches the base-graph CPM
//! analysis keyed by the chosen [`ImplId`] vector, but `ImplId`s are
//! per-instance pool indices. A server worker alternating between two
//! instances with identical topology and identical chosen indices whose
//! pools carry *different execution times* (here: the same graph with all
//! implementation times scaled ×2, which preserves the selection) must
//! not restore the other instance's cached windows. The workspace keys
//! the cache on the duration vector as well; before that fix this test
//! fails with the ×2 instance inheriting the ×1 instance's CPM.

use prfpga_gen::{GraphConfig, TaskGraphGenerator};
use prfpga_model::{Architecture, CancelToken, ImplId, ProblemInstance, TaskId};
use prfpga_sched::metrics::MetricWeights;
use prfpga_sched::{PaRScheduler, PaScheduler, SchedState, SchedWorkspace, SchedulerConfig};
use prfpga_sim::validate_schedule_sweep;

fn base_instance() -> ProblemInstance {
    TaskGraphGenerator::new(0x1EAF).generate(
        "interleave_a",
        &GraphConfig::standard(24),
        Architecture::zedboard_pr(),
    )
}

/// The same topology and implementation structure with every execution
/// time scaled by `factor`: ratio-preserving, so the schedulers make the
/// same implementation choices while every CPM window differs.
fn scaled_instance(base: &ProblemInstance, factor: u64) -> ProblemInstance {
    let mut inst = base.clone();
    inst.name = format!("{}_x{factor}", base.name);
    for i in 0..inst.impls.len() {
        inst.impls.get_mut(ImplId(i as u32)).time *= factor;
    }
    inst.validate().expect("scaled instance stays valid");
    inst
}

/// The surgical version of the hazard: the *same* workspace, the *same*
/// graph and the *same* chosen `ImplId` vector, but pools whose execution
/// times differ. The initial CPM analysis must be recomputed for the
/// second instance, not restored from the first one's cache. (The
/// pipeline-level tests below can mask this when implementation selection
/// happens to diverge between the siblings; here the choice is forced.)
#[test]
fn workspace_cpm_cache_keys_on_durations() {
    let a = base_instance();
    let b = scaled_instance(&a, 2);
    let choice: Vec<ImplId> = (0..a.graph.len())
        .map(|i| a.fastest_sw_impl(TaskId(i as u32)))
        .collect();
    let weights = MetricWeights::new(&a.architecture.device.max_res, 1);

    for fast_graph in [false, true] {
        // Expected windows for b, from a workspace that never saw a.
        let fresh = SchedState::from_workspace_with(
            &b,
            &b.architecture.device,
            weights.clone(),
            choice.clone(),
            &mut SchedWorkspace::new(),
            fast_graph,
        )
        .expect("fresh state for b");
        let expect_b = fresh.cpm.windows.clone();

        // A pooled workspace primed by a must reproduce them exactly.
        let mut ws = SchedWorkspace::new();
        let st = SchedState::from_workspace_with(
            &a,
            &a.architecture.device,
            weights.clone(),
            choice.clone(),
            &mut ws,
            fast_graph,
        )
        .expect("state for a");
        let windows_a = st.cpm.windows.clone();
        st.recycle(&mut ws);

        let st = SchedState::from_workspace_with(
            &b,
            &b.architecture.device,
            weights.clone(),
            choice.clone(),
            &mut ws,
            fast_graph,
        )
        .expect("pooled state for b");
        assert_ne!(
            windows_a, expect_b,
            "scaling must move the windows (fast_graph={fast_graph})"
        );
        assert_eq!(
            st.cpm.windows, expect_b,
            "pooled workspace restored instance a's stale CPM (fast_graph={fast_graph})"
        );
        st.recycle(&mut ws);
        assert_eq!(ws.reuses(), 1, "the graph-level cache must still reuse");
    }
}

#[test]
fn pa_interleaved_instances_match_dedicated_workspaces() {
    let a = base_instance();
    let b = scaled_instance(&a, 2);
    let sched = PaScheduler::new(SchedulerConfig::default());

    let base_a = sched
        .schedule_with_cancel_in(&a, &CancelToken::never(), &mut SchedWorkspace::new())
        .expect("instance a schedules");
    let base_b = sched
        .schedule_with_cancel_in(&b, &CancelToken::never(), &mut SchedWorkspace::new())
        .expect("instance b schedules");
    // The scaling must actually move the answer, or the interleave below
    // could pass vacuously.
    assert_ne!(base_a.schedule.makespan(), base_b.schedule.makespan());

    let mut ws = SchedWorkspace::new();
    for round in 0..3 {
        let ra = sched
            .schedule_with_cancel_in(&a, &CancelToken::never(), &mut ws)
            .expect("interleaved a schedules");
        validate_schedule_sweep(&a, &ra.schedule).expect("interleaved a validates");
        assert_eq!(ra.schedule, base_a.schedule, "round {round}, instance a");

        let rb = sched
            .schedule_with_cancel_in(&b, &CancelToken::never(), &mut ws)
            .expect("interleaved b schedules");
        validate_schedule_sweep(&b, &rb.schedule).expect("interleaved b validates");
        assert_eq!(rb.schedule, base_b.schedule, "round {round}, instance b");
    }
}

#[test]
fn par_interleaved_instances_match_dedicated_workspaces() {
    let a = base_instance();
    let b = scaled_instance(&a, 2);
    let config = SchedulerConfig {
        max_iterations: 6,
        ..Default::default()
    };
    let sched = PaRScheduler::new(config);

    let base_a = sched
        .schedule_with_cancel_in(&a, &CancelToken::never(), &mut SchedWorkspace::new())
        .expect("instance a schedules");
    let base_b = sched
        .schedule_with_cancel_in(&b, &CancelToken::never(), &mut SchedWorkspace::new())
        .expect("instance b schedules");

    let mut ws = SchedWorkspace::new();
    for round in 0..2 {
        let ra = sched
            .schedule_with_cancel_in(&a, &CancelToken::never(), &mut ws)
            .expect("interleaved a schedules");
        assert_eq!(ra.schedule, base_a.schedule, "round {round}, instance a");
        let rb = sched
            .schedule_with_cancel_in(&b, &CancelToken::never(), &mut ws)
            .expect("interleaved b schedules");
        assert_eq!(rb.schedule, base_b.schedule, "round {round}, instance b");
    }
}
