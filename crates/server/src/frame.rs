//! Newline-delimited frame decoder.
//!
//! The wire protocol is one JSON object per `\n`-terminated line. The
//! decoder accumulates raw chunks as they arrive from the transport and
//! yields complete lines, enforcing a frame-size bound: once a line
//! exceeds the bound it is reported as [`Frame::Oversized`] exactly once
//! and the remainder of that line is discarded up to the next newline, so
//! the connection survives (the robustness corpus pins this — a client
//! bug must not wedge the server).
//!
//! Whitespace-only lines are ignored (a trailing `\r` is stripped, so
//! `\r\n` clients work); invalid UTF-8 surfaces as [`Frame::Binary`] for
//! the caller to answer with a typed error.

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (newline stripped).
    Line(String),
    /// A line that crossed the size bound; its bytes were discarded.
    Oversized,
    /// A complete line that was not valid UTF-8.
    Binary,
}

/// Streaming line splitter with a frame-size bound.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    max: usize,
    /// Inside an oversized line: discard until the next newline.
    skipping: bool,
}

impl LineFramer {
    /// A framer accepting lines up to `max` bytes (newline excluded).
    pub fn new(max: usize) -> Self {
        LineFramer {
            buf: Vec::new(),
            max,
            skipping: false,
        }
    }

    /// Feeds a chunk, appending every completed frame to `out`.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<Frame>) {
        for &byte in chunk {
            if byte == b'\n' {
                if self.skipping {
                    self.skipping = false;
                } else {
                    let mut line = std::mem::take(&mut self.buf);
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    if !line.iter().all(|b| b.is_ascii_whitespace()) {
                        out.push(match String::from_utf8(line) {
                            Ok(s) => Frame::Line(s),
                            Err(_) => Frame::Binary,
                        });
                    }
                }
                continue;
            }
            if self.skipping {
                continue;
            }
            self.buf.push(byte);
            if self.buf.len() > self.max {
                self.buf.clear();
                self.skipping = true;
                out.push(Frame::Oversized);
            }
        }
    }

    /// Bytes currently buffered for the incomplete line.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn feed(framer: &mut LineFramer, bytes: &[u8]) -> Vec<Frame> {
        let mut out = Vec::new();
        framer.push(bytes, &mut out);
        out
    }

    #[test]
    fn splits_lines_across_chunks() {
        let mut f = LineFramer::new(64);
        assert_eq!(feed(&mut f, b"hel"), vec![]);
        assert_eq!(feed(&mut f, b"lo\nwor"), vec![Frame::Line("hello".into())]);
        assert_eq!(feed(&mut f, b"ld\n"), vec![Frame::Line("world".into())]);
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn strips_carriage_return_and_skips_blank_lines() {
        let mut f = LineFramer::new(64);
        assert_eq!(
            feed(&mut f, b"a\r\n\n   \r\nb\n"),
            vec![Frame::Line("a".into()), Frame::Line("b".into())]
        );
    }

    #[test]
    fn oversized_line_reports_once_and_resyncs() {
        let mut f = LineFramer::new(8);
        let mut out = Vec::new();
        f.push(&[b'x'; 100], &mut out);
        assert_eq!(out, vec![Frame::Oversized]);
        f.push(b" tail\nok\n", &mut out);
        assert_eq!(out, vec![Frame::Oversized, Frame::Line("ok".into())]);
    }

    #[test]
    fn invalid_utf8_is_a_typed_frame() {
        let mut f = LineFramer::new(64);
        assert_eq!(feed(&mut f, &[0xFF, 0xFE, b'\n']), vec![Frame::Binary]);
        assert_eq!(feed(&mut f, b"after\n"), vec![Frame::Line("after".into())]);
    }

    /// Seeded random-bytes fuzz loop: arbitrary chunkings of arbitrary
    /// bytes never panic, never emit a line beyond the bound, and agree
    /// with a single-shot reference split of the same stream.
    #[test]
    fn fuzz_random_bytes_never_panics_and_bounds_lines() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xF0BB_F022);
        for round in 0..200 {
            let len = rng.random_range(0..2048);
            let stream: Vec<u8> = (0..len)
                .map(|_| match rng.random_range(0..10u32) {
                    // Bias towards newlines and ASCII so lines complete.
                    0 | 1 => b'\n',
                    2 => rng.random_range(0..=255u32) as u8,
                    _ => rng.random_range(0x20..0x7Fu32) as u8,
                })
                .collect();

            let max = rng.random_range(1..64);
            let mut chunked = LineFramer::new(max);
            let mut got = Vec::new();
            let mut pos = 0;
            while pos < stream.len() {
                let step = rng.random_range(1..17usize).min(stream.len() - pos);
                chunked.push(&stream[pos..pos + step], &mut got);
                pos += step;
            }

            let mut reference = LineFramer::new(max);
            let mut want = Vec::new();
            reference.push(&stream, &mut want);

            assert_eq!(got, want, "round {round}: chunking changed the frames");
            for frame in &got {
                if let Frame::Line(l) = frame {
                    assert!(l.len() <= max, "round {round}: line beyond bound");
                }
            }
        }
    }
}
