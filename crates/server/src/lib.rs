//! # prfpga-server
//!
//! Scheduling-as-a-service: a long-running daemon that accepts scheduling
//! requests over newline-delimited JSON (TCP, or an in-process transport
//! for tests), runs them on a fixed pool of worker threads with
//! pre-warmed [`prfpga_sched::SchedWorkspace`]s, and answers with
//! sweep-validated schedules plus per-request diagnostics.
//!
//! The layers, bottom-up:
//!
//! * [`frame`] — newline framing with an oversized-line bound and resync;
//! * [`transport`] — the [`transport::Transport`] trait with TCP and
//!   in-process implementations (tests need no socket);
//! * [`queue`] — the bounded request queue between connection readers and
//!   workers; admission control turns "full" into a typed rejection;
//! * [`metrics`] — counters, p50/p99 latency window, EWMA service time;
//! * the server core ([`Server`] / [`ServerHandle`]) — accept loop,
//!   per-connection reader threads, worker pool.
//!
//! Cancellation plumbing: each connection owns a
//! [`prfpga_model::CancelToken`]; every admitted request runs under a
//! child of it carrying the request deadline. A client disconnect cancels
//! the connection token, so in-flight work for that client stops at its
//! next checkpoint and the worker moves on with a rewound workspace.
//!
//! The request/response vocabulary lives in
//! [`prfpga_model::service`], shared with the load generator and the CLI.

#![warn(missing_docs)]

pub mod frame;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod transport;

mod worker;

pub use frame::{Frame, LineFramer};
pub use metrics::ServerMetrics;
pub use server::{Server, ServerConfig, ServerHandle};
pub use transport::{in_proc, tcp_client, ClientConn, InProcConnector, TcpTransport, Transport};
