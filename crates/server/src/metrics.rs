//! Server-level metrics: counters, a bounded latency window for
//! percentiles, and an EWMA service-time estimate feeding admission
//! control.
//!
//! Everything is lock-free on the hot path except the latency ring (one
//! short mutexed write per completed request); snapshots sort a copy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use prfpga_model::service::ServiceStats;

/// Retained latency samples for the p50/p99 window.
const LATENCY_WINDOW: usize = 4096;

/// Shared server metrics; one instance per server, `Arc`'d into every
/// connection and worker thread.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Well-formed requests read off connections.
    pub received: AtomicU64,
    /// Lines rejected before admission.
    pub malformed: AtomicU64,
    /// Requests admitted into the queue.
    pub admitted: AtomicU64,
    /// Admission rejections: queue full.
    pub rejected_queue_full: AtomicU64,
    /// Admission rejections: deadline already unmeetable.
    pub rejected_unmeetable: AtomicU64,
    /// Requests fully served.
    pub completed: AtomicU64,
    /// Requests abandoned on client disconnect.
    pub cancelled: AtomicU64,
    /// Completions within their declared deadline.
    pub deadline_met: AtomicU64,
    /// Completions past their declared deadline.
    pub deadline_missed: AtomicU64,
    /// Workspace rewinds summed over workers.
    pub ws_reuses: AtomicU64,
    /// Workspace rebuilds summed over workers.
    pub ws_rebuilds: AtomicU64,
    /// EWMA of service time in microseconds (0 = no sample yet).
    ewma_us: AtomicU64,
    /// Completed-request latencies, a bounded ring.
    latencies: Mutex<LatencyRing>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl ServerMetrics {
    /// Fresh all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request: latency sample, EWMA update, and
    /// deadline accounting when the request declared one.
    pub fn record_completion(&self, service_us: u64, deadline_met: Option<bool>) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match deadline_met {
            Some(true) => self.deadline_met.fetch_add(1, Ordering::Relaxed),
            Some(false) => self.deadline_missed.fetch_add(1, Ordering::Relaxed),
            None => 0,
        };
        // ewma <- 7/8 ewma + 1/8 sample; seeded by the first sample.
        let prev = self.ewma_us.load(Ordering::Relaxed);
        let next = if prev == 0 {
            service_us.max(1)
        } else {
            (prev - prev / 8 + service_us / 8).max(1)
        };
        self.ewma_us.store(next, Ordering::Relaxed);

        let mut ring = self.latencies.lock().expect("latency lock");
        if ring.samples.len() < LATENCY_WINDOW {
            ring.samples.push(service_us);
        } else {
            let at = ring.next;
            ring.samples[at] = service_us;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    /// EWMA service time in microseconds; 0 until the first completion.
    pub fn ewma_us(&self) -> u64 {
        self.ewma_us.load(Ordering::Relaxed)
    }

    /// Snapshot as the wire-level stats payload; queue gauges come from
    /// the caller (the queue owns them).
    pub fn snapshot(
        &self,
        queue_depth: usize,
        queue_peak: usize,
        queue_bound: usize,
    ) -> ServiceStats {
        let (p50_us, p99_us) = {
            let ring = self.latencies.lock().expect("latency lock");
            percentiles(&ring.samples)
        };
        ServiceStats {
            received: self.received.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_unmeetable: self.rejected_unmeetable.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_met: self.deadline_met.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            queue_depth: queue_depth as u64,
            queue_peak: queue_peak as u64,
            queue_bound: queue_bound as u64,
            p50_us,
            p99_us,
            workspace_reuses: self.ws_reuses.load(Ordering::Relaxed),
            workspace_rebuilds: self.ws_rebuilds.load(Ordering::Relaxed),
        }
    }
}

/// `(p50, p99)` of the retained window; zeros when empty.
fn percentiles(samples: &[u64]) -> (u64, u64) {
    if samples.is_empty() {
        return (0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let at = |pct: usize| sorted[(sorted.len() - 1) * pct / 100];
    (at(50), at(99))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_window() {
        let m = ServerMetrics::new();
        for us in 1..=100u64 {
            m.record_completion(us, Some(us <= 95));
        }
        let s = m.snapshot(3, 5, 8);
        assert_eq!(s.completed, 100);
        assert_eq!(s.deadline_met, 95);
        assert_eq!(s.deadline_missed, 5);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.queue_peak, 5);
        assert_eq!(s.queue_bound, 8);
        assert_eq!(s.deadline_hit_rate_pct(), 95.0);
        assert!(m.ewma_us() > 0);
    }

    #[test]
    fn latency_ring_is_bounded() {
        let m = ServerMetrics::new();
        for us in 0..(LATENCY_WINDOW as u64 * 2) {
            m.record_completion(us, None);
        }
        let ring = m.latencies.lock().unwrap();
        assert_eq!(ring.samples.len(), LATENCY_WINDOW);
    }
}
