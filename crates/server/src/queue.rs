//! Bounded request queue between connection threads and the worker pool.
//!
//! `std::sync::{Mutex, Condvar}` rather than the parking_lot shim: the
//! shim carries no condition variable, and the queue is the only place
//! the server blocks on one.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    jobs: VecDeque<T>,
    peak: usize,
    closed: bool,
}

/// A bounded MPMC queue: producers *never block* — admission control
/// turns a full queue into a typed rejection — and consumers block until
/// a job or shutdown arrives.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    bound: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `bound` pending jobs.
    pub fn new(bound: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                peak: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            bound: bound.max(1),
        }
    }

    /// Enqueues `job`, or hands it back when the queue is full or closed.
    pub fn try_push(&self, job: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.jobs.len() >= self.bound {
            return Err(job);
        }
        inner.jobs.push_back(job);
        inner.peak = inner.peak.max(inner.jobs.len());
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: producers are rejected, consumers drain what is
    /// left and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently pending.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").jobs.len()
    }

    /// High-water mark of [`JobQueue::depth`].
    pub fn peak(&self) -> usize {
        self.inner.lock().expect("queue lock").peak
    }

    /// The admission bound.
    pub fn bound(&self) -> usize {
        self.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_pop_and_peak() {
        let q = JobQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "bound enforced");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.peak(), 2);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_stops_consumers() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue rejects producers");
        assert_eq!(q.pop(), Some(7), "drain continues after close");
        assert_eq!(q.pop(), None);

        // A blocked consumer wakes up on close.
        let q2 = Arc::new(JobQueue::<u32>::new(4));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
