//! The daemon core: accept loop, per-connection reader threads with
//! admission control, the worker pool, and the lifecycle handle.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use prfpga_model::service::{
    ErrorCode, InstanceSpec, ServiceRequest, ServiceResponse, ServiceStats,
};
use prfpga_model::{CancelToken, ProblemInstance};
use prfpga_sched::SchedulerConfig;

use crate::frame::{Frame, LineFramer};
use crate::metrics::ServerMetrics;
use crate::queue::JobQueue;
use crate::transport::{Connection, Transport};
use crate::worker::{worker_loop, ConnHandle, Job};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each owns its pre-warmed workspaces). Defaults to
    /// `PRFPGA_THREADS` when set, else 4 — the same knob the rest of the
    /// workspace uses for thread counts.
    pub workers: usize,
    /// Bound of the request queue; admission rejects past it.
    pub queue_bound: usize,
    /// Largest accepted request line in bytes.
    pub max_frame_bytes: usize,
    /// Base scheduler configuration (per-request deadlines and budgets
    /// override its `time_budget`). Honors `PRFPGA_SOLVE_COMMIT=0` in
    /// [`ServerConfig::default`], like the differential test seam.
    pub sched: SchedulerConfig,
    /// Task count of the per-worker prewarm run (0 disables prewarming).
    pub prewarm_tasks: usize,
    /// Period of the stats log line on stderr (`None` = quiet).
    pub log_every: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::env::var("PRFPGA_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(4);
        let sched = SchedulerConfig {
            solve_commit: !matches!(std::env::var("PRFPGA_SOLVE_COMMIT").as_deref(), Ok("0")),
            ..SchedulerConfig::default()
        };
        ServerConfig {
            workers,
            queue_bound: 64,
            max_frame_bytes: 4 << 20,
            sched,
            prewarm_tasks: 60,
            log_every: None,
        }
    }
}

/// The scheduling daemon. [`Server::start`] spawns the accept loop and
/// the worker pool and returns a handle; the server runs until the handle
/// is stopped or dropped.
pub struct Server;

/// Running-server handle; stopping (or dropping) shuts the server down.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    queue: Arc<JobQueue<Job>>,
    metrics: Arc<ServerMetrics>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    logger: Option<JoinHandle<()>>,
    endpoint: String,
}

impl Server {
    /// Starts the daemon on `transport`. Blocks until every worker has
    /// finished its prewarm run, so the first request meets warm
    /// workspaces.
    pub fn start<T: Transport + 'static>(transport: T, config: ServerConfig) -> ServerHandle {
        let endpoint = transport.endpoint();
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(JobQueue::new(config.queue_bound));
        let metrics = Arc::new(ServerMetrics::new());

        let prewarm: Option<Arc<ProblemInstance>> = (config.prewarm_tasks > 0)
            .then(|| {
                prfpga_gen::service_instance(config.prewarm_tasks, 0, None, 2)
                    .ok()
                    .map(Arc::new)
            })
            .flatten();

        let ready = Arc::new(AtomicUsize::new(0));
        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                let sched = config.sched.clone();
                let prewarm = prewarm.clone();
                let ready = Arc::clone(&ready);
                std::thread::spawn(move || worker_loop(queue, metrics, sched, prewarm, ready))
            })
            .collect();
        while ready.load(Ordering::Acquire) < workers.len() {
            std::thread::sleep(Duration::from_millis(1));
        }

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let config = config.clone();
            std::thread::spawn(move || accept_loop(transport, shutdown, queue, metrics, config))
        };

        let logger = config.log_every.map(|period| {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                let mut last = Instant::now();
                while !shutdown.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(50));
                    if last.elapsed() >= period {
                        last = Instant::now();
                        let stats = metrics.snapshot(queue.depth(), queue.peak(), queue.bound());
                        eprintln!("[prfpga-server] {}", stats.log_line());
                    }
                }
            })
        });

        ServerHandle {
            shutdown,
            queue,
            metrics,
            accept: Some(accept),
            workers,
            logger,
            endpoint,
        }
    }
}

impl ServerHandle {
    /// Where the server listens (log label).
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// A live metrics snapshot (same payload as the `stats` request).
    pub fn stats(&self) -> ServiceStats {
        self.metrics
            .snapshot(self.queue.depth(), self.queue.peak(), self.queue.bound())
    }

    /// Stops the server: the accept loop exits, queued work drains, the
    /// workers join. Connection reader threads exit on their client's
    /// EOF and are not joined (a blocked read on a live client must not
    /// wedge shutdown).
    pub fn stop(mut self) -> ServiceStats {
        self.shut_down();
        self.stats()
    }

    fn shut_down(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.logger.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shut_down();
    }
}

fn accept_loop<T: Transport>(
    mut transport: T,
    shutdown: Arc<AtomicBool>,
    queue: Arc<JobQueue<Job>>,
    metrics: Arc<ServerMetrics>,
    config: ServerConfig,
) {
    while !shutdown.load(Ordering::Acquire) {
        match transport.accept(Duration::from_millis(50)) {
            Ok(Some(conn)) => {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                let config = config.clone();
                // Reader threads exit on client EOF; they are detached so
                // a silent client cannot block shutdown (see
                // `ServerHandle::stop`).
                std::thread::spawn(move || connection_loop(conn, queue, metrics, config));
            }
            Ok(None) => {}
            Err(_) => break,
        }
    }
}

/// Reads one connection until EOF: framing, parsing, admission, enqueue.
/// On EOF or a read error the per-connection token is cancelled, which
/// reaches every in-flight job of this connection at its next
/// cancellation checkpoint.
fn connection_loop(
    conn: Connection,
    queue: Arc<JobQueue<Job>>,
    metrics: Arc<ServerMetrics>,
    config: ServerConfig,
) {
    let Connection { mut reader, writer } = conn;
    let handle = ConnHandle {
        writer: Arc::new(Mutex::new(writer)),
        alive: Arc::new(AtomicBool::new(true)),
        token: CancelToken::never(),
    };

    let mut framer = LineFramer::new(config.max_frame_bytes);
    let mut frames = Vec::new();
    let mut chunk = [0u8; 8 * 1024];
    'conn: loop {
        let n = match reader.read(&mut chunk) {
            Ok(0) | Err(_) => break 'conn,
            Ok(n) => n,
        };
        framer.push(&chunk[..n], &mut frames);
        for frame in frames.drain(..) {
            let delivered = match frame {
                Frame::Line(line) => handle_line(&line, &handle, &queue, &metrics, &config),
                Frame::Oversized => {
                    metrics.malformed.fetch_add(1, Ordering::Relaxed);
                    handle.send(&ServiceResponse::error(
                        None,
                        ErrorCode::Oversized,
                        format!("frame exceeds {} bytes", config.max_frame_bytes),
                    ))
                }
                Frame::Binary => {
                    metrics.malformed.fetch_add(1, Ordering::Relaxed);
                    handle.send(&ServiceResponse::error(
                        None,
                        ErrorCode::Malformed,
                        "request line is not valid UTF-8",
                    ))
                }
            };
            if !delivered {
                break 'conn;
            }
        }
    }
    // Client gone: cancel everything in flight for this connection.
    handle.alive.store(false, Ordering::Release);
    handle.token.cancel();
}

/// Handles one request line; returns whether the connection is still
/// writable (an enqueued schedule request counts as writable — its
/// response comes later, from a worker).
fn handle_line(
    line: &str,
    conn: &ConnHandle,
    queue: &Arc<JobQueue<Job>>,
    metrics: &Arc<ServerMetrics>,
    config: &ServerConfig,
) -> bool {
    let req = match serde_json::from_str::<ServiceRequest>(line) {
        Ok(req) => req,
        Err(e) => {
            metrics.malformed.fetch_add(1, Ordering::Relaxed);
            return conn.send(&ServiceResponse::error(
                None,
                ErrorCode::Malformed,
                e.to_string(),
            ));
        }
    };
    metrics.received.fetch_add(1, Ordering::Relaxed);

    match req {
        ServiceRequest::Ping { id } => conn.send(&ServiceResponse::Pong { id }),
        ServiceRequest::Stats { id } => {
            let stats = metrics.snapshot(queue.depth(), queue.peak(), queue.bound());
            conn.send(&ServiceResponse::Stats { id, stats })
        }
        ServiceRequest::Schedule(req) => {
            let id = req.id;
            // Resolve the instance on the connection thread, keeping the
            // worker path allocation-free for the warm (generated) case.
            let inst = match &req.instance {
                InstanceSpec::Inline(inst) => {
                    if let Err(e) = inst.validate() {
                        return conn.send(&ServiceResponse::error(
                            Some(id),
                            ErrorCode::InvalidInstance,
                            e.to_string(),
                        ));
                    }
                    Arc::new((**inst).clone())
                }
                InstanceSpec::Generated {
                    tasks,
                    seed,
                    platform,
                    cores,
                } => match prfpga_gen::service_instance(*tasks, *seed, platform.as_deref(), *cores)
                {
                    Ok(inst) => Arc::new(inst),
                    Err(e) => {
                        return conn.send(&ServiceResponse::error(
                            Some(id),
                            ErrorCode::InvalidInstance,
                            e,
                        ));
                    }
                },
            };

            // Admission control, cheapest test first. Deadline feasibility
            // uses the EWMA service time: with `depth` jobs ahead on
            // `workers` workers, the expected wait alone already exceeds
            // the declared deadline → reject now instead of burning a
            // worker on a schedule nobody can use.
            let deadline = req.deadline_ms.map(Duration::from_millis);
            if let (Some(d), ewma_us) = (deadline, metrics.ewma_us()) {
                if ewma_us > 0 {
                    let wait_us = (queue.depth() as u64) * ewma_us / (config.workers.max(1) as u64);
                    if Duration::from_micros(wait_us) > d {
                        metrics.rejected_unmeetable.fetch_add(1, Ordering::Relaxed);
                        return conn.send(&ServiceResponse::error(
                            Some(id),
                            ErrorCode::DeadlineUnmeetable,
                            format!(
                                "estimated queue wait {wait_us} us exceeds deadline {} ms",
                                d.as_millis()
                            ),
                        ));
                    }
                }
            }

            let token = match deadline {
                Some(d) => conn.token.with_budget(d),
                None => conn.token.child(),
            };
            let job = Job {
                req: *req,
                inst,
                token,
                conn: conn.clone(),
                admitted_at: Instant::now(),
                deadline,
            };
            match queue.try_push(job) {
                Ok(()) => {
                    metrics.admitted.fetch_add(1, Ordering::Relaxed);
                    true
                }
                Err(_job) => {
                    metrics.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                    conn.send(&ServiceResponse::error(
                        Some(id),
                        ErrorCode::QueueFull,
                        format!("request queue is at its bound of {}", queue.bound()),
                    ))
                }
            }
        }
    }
}
