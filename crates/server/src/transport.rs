//! Connection transports: real TCP and an in-process pipe pair.
//!
//! The server core is written against the [`Transport`] trait, so the
//! whole service-level test pyramid (soak, protocol corpus, disconnect
//! cancellation) runs without opening a socket: [`in_proc`] hands out a
//! connector whose byte streams behave like a TCP connection, including
//! EOF on client drop — which is exactly the signal the server turns into
//! cancellation of in-flight work.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::time::Duration;

/// One accepted connection: a blocking byte reader (EOF on client close)
/// and a writer for responses.
pub struct Connection {
    /// Request byte stream.
    pub reader: Box<dyn Read + Send>,
    /// Response byte stream.
    pub writer: Box<dyn Write + Send>,
}

/// A connection source the server accepts from.
pub trait Transport: Send {
    /// Waits up to `timeout` for the next connection; `Ok(None)` on
    /// timeout, `Err` when the transport is closed for good.
    fn accept(&mut self, timeout: Duration) -> io::Result<Option<Connection>>;

    /// Human-readable endpoint (log lines).
    fn endpoint(&self) -> String;
}

// --- TCP. ----------------------------------------------------------------

/// TCP transport: a non-blocking listener polled by the accept loop.
pub struct TcpTransport {
    listener: TcpListener,
}

impl TcpTransport {
    /// Binds `addr` (e.g. `127.0.0.1:7070`; port 0 picks a free port).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpTransport { listener })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }
}

impl Transport for TcpTransport {
    fn accept(&mut self, timeout: Duration) -> io::Result<Option<Connection>> {
        // Poll the non-blocking listener: accept timeouts are not part of
        // the std socket API, and the granularity here only delays new
        // connections, never requests on established ones.
        let slice = Duration::from_millis(5).min(timeout);
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true).ok();
                    let reader = stream.try_clone()?;
                    return Ok(Some(Connection {
                        reader: Box::new(reader),
                        writer: Box::new(stream),
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if std::time::Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(slice);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn endpoint(&self) -> String {
        self.listener
            .local_addr()
            .map_or_else(|_| "tcp:?".into(), |a| format!("tcp:{a}"))
    }
}

/// A client-side handle to a TCP connection of the server, split into the
/// same reader/writer shape the in-process client uses.
pub fn tcp_client(addr: impl ToSocketAddrs) -> io::Result<ClientConn> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let reader = stream.try_clone()?;
    Ok(ClientConn {
        reader: Box::new(reader),
        writer: Box::new(stream),
    })
}

// --- In-process pipes. ---------------------------------------------------

/// Reader half of a byte-chunk channel; blocks on `read` until bytes
/// arrive and reports EOF once every sender is dropped.
pub struct PipeReader {
    rx: Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                // All senders dropped: clean EOF, like a closed socket.
                Err(_) => return Ok(0),
            }
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Writer half of a byte-chunk channel; `write` fails with `BrokenPipe`
/// once the reader is gone — the signal the server counts as a client
/// disconnect.
pub struct PipeWriter {
    tx: Sender<Vec<u8>>,
}

impl Write for PipeWriter {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        self.tx
            .send(bytes.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))?;
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An in-process duplex pipe: `(a, b)` where bytes written to `a` are read
/// from `b` and vice versa.
fn pipe() -> (PipeReader, PipeWriter) {
    let (tx, rx) = mpsc::channel();
    (
        PipeReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        },
        PipeWriter { tx },
    )
}

/// A client's end of a connection (TCP or in-process): write requests,
/// read responses. Dropping it closes the connection — the server side
/// observes EOF.
pub struct ClientConn {
    /// Response byte stream.
    pub reader: Box<dyn Read + Send>,
    /// Request byte stream.
    pub writer: Box<dyn Write + Send>,
}

impl ClientConn {
    /// Sends one request line (appends the newline).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Blocks for the next newline-terminated response line (newline
    /// stripped); `Ok(None)` on EOF.
    pub fn recv_line(&mut self) -> io::Result<Option<String>> {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match self.reader.read(&mut byte)? {
                0 => {
                    return if line.is_empty() {
                        Ok(None)
                    } else {
                        Err(io::Error::new(io::ErrorKind::UnexpectedEof, "mid-line EOF"))
                    };
                }
                _ => {
                    if byte[0] == b'\n' {
                        return String::from_utf8(line)
                            .map(Some)
                            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
                    }
                    line.push(byte[0]);
                }
            }
        }
    }
}

/// Server side of the in-process transport.
pub struct InProcTransport {
    rx: Receiver<Connection>,
    label: String,
}

/// Client factory for an [`InProcTransport`]; clone-free, call
/// [`InProcConnector::connect`] once per simulated client.
pub struct InProcConnector {
    tx: SyncSender<Connection>,
}

impl InProcConnector {
    /// Opens a new in-process connection to the server.
    pub fn connect(&self) -> io::Result<ClientConn> {
        let (server_reader, client_writer) = pipe();
        let (client_reader, server_writer) = pipe();
        self.tx
            .try_send(Connection {
                reader: Box::new(server_reader),
                writer: Box::new(server_writer),
            })
            .map_err(|e| match e {
                TrySendError::Full(_) => {
                    io::Error::new(io::ErrorKind::WouldBlock, "connection backlog full")
                }
                TrySendError::Disconnected(_) => {
                    io::Error::new(io::ErrorKind::ConnectionRefused, "server stopped")
                }
            })?;
        Ok(ClientConn {
            reader: Box::new(client_reader),
            writer: Box::new(client_writer),
        })
    }
}

/// Creates a connected in-process transport pair: the connector mints
/// client connections, the transport hands them to the server's accept
/// loop.
pub fn in_proc() -> (InProcConnector, InProcTransport) {
    let (tx, rx) = mpsc::sync_channel(64);
    (
        InProcConnector { tx },
        InProcTransport {
            rx,
            label: "in-proc".into(),
        },
    )
}

impl Transport for InProcTransport {
    fn accept(&mut self, timeout: Duration) -> io::Result<Option<Connection>> {
        match self.rx.recv_timeout(timeout) {
            Ok(conn) => Ok(Some(conn)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "connector dropped",
            )),
        }
    }

    fn endpoint(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_proc_round_trip_and_eof_on_drop() {
        let (connector, mut transport) = in_proc();
        let mut client = connector.connect().unwrap();
        let mut conn = transport
            .accept(Duration::from_secs(1))
            .unwrap()
            .expect("connection pending");

        client.send_line("hello").unwrap();
        let mut buf = [0u8; 6];
        conn.reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello\n");

        conn.writer.write_all(b"world\n").unwrap();
        assert_eq!(client.recv_line().unwrap().as_deref(), Some("world"));

        drop(client);
        let mut rest = [0u8; 8];
        assert_eq!(conn.reader.read(&mut rest).unwrap(), 0, "EOF after drop");
        assert!(
            conn.writer.write_all(b"x").is_err(),
            "write to dropped peer"
        );
    }

    #[test]
    fn in_proc_accept_times_out_without_clients() {
        let (_connector, mut transport) = in_proc();
        let got = transport.accept(Duration::from_millis(10)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn tcp_round_trip() {
        let mut transport = TcpTransport::bind("127.0.0.1:0").unwrap();
        let addr = transport.local_addr().unwrap();
        let mut client = tcp_client(addr).unwrap();
        let mut conn = transport
            .accept(Duration::from_secs(2))
            .unwrap()
            .expect("client connected");
        client.send_line("ping").unwrap();
        let mut buf = [0u8; 5];
        conn.reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping\n");
        conn.writer.write_all(b"pong\n").unwrap();
        assert_eq!(client.recv_line().unwrap().as_deref(), Some("pong"));
    }
}
