//! The worker pool: N threads, each owning pre-warmed scheduler
//! workspaces, executing admitted jobs off the bounded queue.
//!
//! Per request the worker path allocates nothing beyond what the
//! schedulers themselves need on an instance switch: the PA / PA-R
//! workspace and the portfolio's per-member pool live in the worker for
//! its whole lifetime and are rewound between requests (their reuse /
//! rebuild counters feed [`ServerMetrics`]). Every schedule is
//! sweep-validated before it is written back; a validation failure is a
//! server bug and answered as [`ErrorCode::Internal`], never sent as a
//! schedule.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use prfpga_baseline::{IsKConfig, IsKScheduler};
use prfpga_model::service::{
    AlgoChoice, ErrorCode, PhaseRow, ScheduleReply, ScheduleRequest, ServiceResponse,
};
use prfpga_model::{CancelToken, ProblemInstance, Schedule};
use prfpga_portfolio::{Portfolio, PortfolioConfig, PortfolioWorkspaces};
use prfpga_sched::{
    PaRScheduler, PaScheduler, PhaseTrace, RepairConfig, RepairEngine, SchedError, SchedWorkspace,
    SchedulerConfig,
};
use prfpga_sim::validate_schedule_sweep;

use crate::metrics::ServerMetrics;
use crate::queue::JobQueue;

/// Shared handle to one client connection: the response writer plus the
/// liveness flag and per-connection cancel token the reader thread owns.
#[derive(Clone)]
pub(crate) struct ConnHandle {
    pub writer: Arc<Mutex<Box<dyn Write + Send>>>,
    pub alive: Arc<AtomicBool>,
    pub token: CancelToken,
}

impl ConnHandle {
    /// Serializes and writes one response line; marks the connection dead
    /// on a failed write. Returns whether the response was delivered.
    pub(crate) fn send(&self, resp: &ServiceResponse) -> bool {
        let mut line = serde_json::to_string(resp).expect("responses always serialize");
        line.push('\n');
        let mut writer = self.writer.lock().expect("writer lock");
        let sent = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
            .is_ok();
        if !sent {
            self.alive.store(false, Ordering::Release);
        }
        sent
    }

    pub(crate) fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }
}

/// One admitted scheduling job.
pub(crate) struct Job {
    pub req: ScheduleRequest,
    pub inst: Arc<ProblemInstance>,
    /// Child of the connection token, carrying the request deadline.
    pub token: CancelToken,
    pub conn: ConnHandle,
    pub admitted_at: Instant,
    pub deadline: Option<Duration>,
}

/// Long-lived per-worker state.
struct WorkerState {
    ws: SchedWorkspace,
    pws: PortfolioWorkspaces,
    base: SchedulerConfig,
    seen_reuses: u64,
    seen_rebuilds: u64,
}

impl WorkerState {
    fn reuse_counters(&self) -> (u64, u64) {
        (
            self.ws.reuses() + self.pws.reuses(),
            self.ws.rebuilds() + self.pws.rebuilds(),
        )
    }

    /// Publishes the reuse/rebuild delta since the last flush.
    fn flush_reuse_delta(&mut self, metrics: &ServerMetrics) {
        let (reuses, rebuilds) = self.reuse_counters();
        metrics
            .ws_reuses
            .fetch_add(reuses - self.seen_reuses, Ordering::Relaxed);
        metrics
            .ws_rebuilds
            .fetch_add(rebuilds - self.seen_rebuilds, Ordering::Relaxed);
        self.seen_reuses = reuses;
        self.seen_rebuilds = rebuilds;
    }
}

/// Body of one worker thread: prewarm, then drain the queue until it
/// closes. `ready` is bumped once the prewarm run is done so the server
/// can report readiness.
pub(crate) fn worker_loop(
    queue: Arc<JobQueue<Job>>,
    metrics: Arc<ServerMetrics>,
    base: SchedulerConfig,
    prewarm: Option<Arc<ProblemInstance>>,
    ready: Arc<AtomicUsize>,
) {
    let mut state = WorkerState {
        ws: SchedWorkspace::new(),
        pws: PortfolioWorkspaces::new(),
        base,
        seen_reuses: 0,
        seen_rebuilds: 0,
    };

    if let Some(inst) = prewarm {
        // Touch both the plain and the portfolio workspaces so the first
        // real request finds warm buffers. Iteration-capped so prewarm is
        // bounded; counters are captured afterwards so prewarm runs never
        // show up in the service metrics.
        let cfg = SchedulerConfig {
            max_iterations: 2,
            time_budget: Duration::from_millis(200),
            ..state.base.clone()
        };
        let _ = PaScheduler::new(cfg.clone()).schedule_with_cancel_in(
            &inst,
            &CancelToken::never(),
            &mut state.ws,
        );
        let _ = Portfolio::new(PortfolioConfig {
            deadline: Some(Duration::from_millis(200)),
            sched: cfg,
            ..Default::default()
        })
        .run_with_cancel_in(&inst, &CancelToken::never(), &mut state.pws);
        let (reuses, rebuilds) = state.reuse_counters();
        state.seen_reuses = reuses;
        state.seen_rebuilds = rebuilds;
    }
    ready.fetch_add(1, Ordering::Release);

    while let Some(job) = queue.pop() {
        // The client vanished while the job sat queued: skip the work.
        if !job.conn.is_alive() {
            metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let resp = execute(&job, &mut state);
        state.flush_reuse_delta(&metrics);
        let delivered = job.conn.send(&resp);
        match (&resp, delivered) {
            (ServiceResponse::Ok(_), true) => {
                let service_us = job.admitted_at.elapsed().as_micros() as u64;
                let met = job.deadline.map(|d| job.admitted_at.elapsed() <= d);
                metrics.record_completion(service_us, met);
            }
            (_, false) => {
                metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            // A typed error that was delivered: already counted at its
            // origin (admission or here via the error path).
            _ => {}
        }
    }
}

/// Per-request scheduler configuration: the request's explicit search
/// budget wins; otherwise 60% of its deadline funds the inner search (the
/// rest covers queueing, validation and serialization); otherwise the
/// server's base budget stands.
fn request_config(base: &SchedulerConfig, req: &ScheduleRequest) -> SchedulerConfig {
    let mut cfg = base.clone();
    if let Some(ms) = req.budget_ms {
        cfg.time_budget = Duration::from_millis(ms);
    } else if let Some(ms) = req.deadline_ms {
        cfg.time_budget = Duration::from_millis(ms) * 3 / 5;
    }
    cfg
}

fn phase_rows(trace: &PhaseTrace) -> Vec<PhaseRow> {
    trace
        .rows()
        .into_iter()
        .map(|(phase, time, runs)| PhaseRow {
            phase: phase.name().to_string(),
            micros: time.as_micros() as u64,
            runs,
        })
        .collect()
}

fn sched_error(id: u64, err: &SchedError) -> ServiceResponse {
    let code = match err {
        SchedError::InvalidInstance(_) => ErrorCode::InvalidInstance,
        _ => ErrorCode::SchedulingFailed,
    };
    ServiceResponse::error(Some(id), code, err.to_string())
}

/// What a successful scheduler run hands to the response builder:
/// the schedule, the instance to validate it against, the algo label,
/// and the degraded / deadline-hit flags plus the PA phase trace.
type RunOutcome = (Schedule, ProblemInstance, String, bool, bool, Vec<PhaseRow>);

/// Runs one job on this worker's warm state and builds the response.
fn execute(job: &Job, state: &mut WorkerState) -> ServiceResponse {
    let req = &job.req;
    let cfg = request_config(&state.base, req);
    let inst = &*job.inst;

    let run: Result<RunOutcome, ServiceResponse> = match req.algo {
        AlgoChoice::Pa => PaScheduler::new(cfg)
            .schedule_with_cancel_in(inst, &job.token, &mut state.ws)
            .map(|r| {
                let hit = r.degraded || job.token.deadline_hits() > 0;
                (
                    r.schedule,
                    inst.clone(),
                    "pa".to_string(),
                    r.degraded,
                    hit,
                    phase_rows(&r.trace),
                )
            })
            .map_err(|e| sched_error(req.id, &e)),
        AlgoChoice::Par => PaRScheduler::new(cfg)
            .schedule_with_cancel_in(inst, &job.token, &mut state.ws)
            .map(|r| {
                let hit = r.degraded || job.token.deadline_hits() > 0;
                (
                    r.schedule,
                    inst.clone(),
                    "par".to_string(),
                    r.degraded,
                    hit,
                    Vec::new(),
                )
            })
            .map_err(|e| sched_error(req.id, &e)),
        AlgoChoice::IsK(k) => IsKScheduler::new(IsKConfig {
            k,
            floorplan: cfg.floorplan.clone(),
            shrink_factor: cfg.shrink_factor,
            max_attempts: cfg.max_attempts,
            ..IsKConfig::is5()
        })
        .schedule_with_cancel(inst, &job.token)
        .map(|r| {
            (
                r.schedule,
                inst.clone(),
                format!("is-{k}"),
                false,
                job.token.deadline_hits() > 0,
                Vec::new(),
            )
        })
        .map_err(|e| sched_error(req.id, &e)),
        AlgoChoice::Portfolio => Portfolio::new(PortfolioConfig {
            deadline: Some(cfg.time_budget),
            sched: cfg,
            ..Default::default()
        })
        .run_with_cancel_in(inst, &job.token, &mut state.pws)
        .map(|r| {
            (
                r.schedule,
                inst.clone(),
                format!("portfolio/{}", r.winner),
                r.degraded,
                r.deadline_hit,
                Vec::new(),
            )
        })
        .map_err(|e| sched_error(req.id, &e)),
        AlgoChoice::Repair => {
            // Commit a PA baseline, then replay the event list through
            // the delta-repair engine. Events mutate the instance
            // (actual durations, cancellations), so validation runs
            // against the engine's revised instance.
            match PaScheduler::new(cfg.clone()).schedule_with_cancel_in(
                inst,
                &job.token,
                &mut state.ws,
            ) {
                Err(e) => Err(sched_error(req.id, &e)),
                Ok(r) => {
                    let degraded = r.degraded;
                    let phases = phase_rows(&r.trace);
                    let repaired = RepairEngine::new(
                        inst.clone(),
                        r.schedule,
                        RepairConfig {
                            sched: cfg,
                            ..Default::default()
                        },
                    )
                    .and_then(|mut engine| {
                        engine.apply_all(&req.events)?;
                        Ok((engine.schedule().clone(), engine.instance().clone()))
                    });
                    match repaired {
                        Ok((schedule, revised)) => Ok((
                            schedule,
                            revised,
                            "repair".to_string(),
                            degraded,
                            degraded || job.token.deadline_hits() > 0,
                            phases,
                        )),
                        Err(e) => Err(ServiceResponse::error(
                            Some(req.id),
                            ErrorCode::SchedulingFailed,
                            format!("repair failed: {e}"),
                        )),
                    }
                }
            }
        }
    };

    let (schedule, validated_against, algo, degraded, deadline_hit, phases) = match run {
        Ok(parts) => parts,
        Err(resp) => return resp,
    };

    // The sweep validator stands between every scheduler result and the
    // wire: a schedule the server cannot prove valid is never sent.
    if let Err(e) = validate_schedule_sweep(&validated_against, &schedule) {
        return ServiceResponse::error(
            Some(req.id),
            ErrorCode::Internal,
            format!("schedule failed validation: {e:?}"),
        );
    }

    let elapsed = job.admitted_at.elapsed();
    ServiceResponse::Ok(Box::new(ScheduleReply {
        id: req.id,
        algo,
        makespan: schedule.makespan(),
        degraded,
        deadline_hit,
        deadline_met: job.deadline.is_none_or(|d| elapsed <= d),
        service_us: elapsed.as_micros() as u64,
        phases,
        schedule,
    }))
}
