//! Shared plumbing for the service-level test pyramid: start an
//! in-process server, exchange request/response lines, and build valid
//! request lines from the typed vocabulary.

#![allow(dead_code)]

use prfpga_model::service::{
    AlgoChoice, ErrorCode, InstanceSpec, ScheduleReply, ScheduleRequest, ServiceRequest,
    ServiceResponse, ServiceStats,
};
use prfpga_model::ScheduleEvent;
use prfpga_server::{in_proc, ClientConn, InProcConnector, Server, ServerConfig, ServerHandle};

/// A quiet in-process server config: explicit worker count, no stats log
/// line, prewarm kept small so tests stay fast but the warm path runs.
pub fn quiet_config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        prewarm_tasks: 0,
        log_every: None,
        ..ServerConfig::default()
    }
}

/// Starts an in-process server; the connector mints client connections.
pub fn start(config: ServerConfig) -> (InProcConnector, ServerHandle) {
    let (connector, transport) = in_proc();
    let handle = Server::start(transport, config);
    (connector, handle)
}

/// Parses the next response line off the connection.
pub fn recv(client: &mut ClientConn) -> ServiceResponse {
    let line = client
        .recv_line()
        .expect("read response")
        .expect("response before EOF");
    serde_json::from_str(&line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e:?}"))
}

/// Sends one raw line and parses the single response it elicits.
pub fn roundtrip(client: &mut ClientConn, line: &str) -> ServiceResponse {
    client.send_line(line).expect("send request");
    recv(client)
}

/// Builds the wire line for a generated-instance schedule request.
pub fn gen_request(
    id: u64,
    algo: AlgoChoice,
    tasks: usize,
    seed: u64,
    deadline_ms: Option<u64>,
    budget_ms: Option<u64>,
) -> String {
    request_line(&ScheduleRequest {
        id,
        algo,
        instance: InstanceSpec::Generated {
            tasks,
            seed,
            platform: None,
            cores: 2,
        },
        deadline_ms,
        budget_ms,
        events: Vec::new(),
    })
}

/// Builds the wire line for a repair request with an event list.
pub fn repair_request(
    id: u64,
    tasks: usize,
    seed: u64,
    budget_ms: Option<u64>,
    events: Vec<ScheduleEvent>,
) -> String {
    request_line(&ScheduleRequest {
        id,
        algo: AlgoChoice::Repair,
        instance: InstanceSpec::Generated {
            tasks,
            seed,
            platform: None,
            cores: 2,
        },
        deadline_ms: None,
        budget_ms,
        events,
    })
}

/// Serializes a typed schedule request to its wire line.
pub fn request_line(req: &ScheduleRequest) -> String {
    serde_json::to_string(&ServiceRequest::Schedule(Box::new(req.clone())))
        .expect("requests serialize")
}

/// Unwraps an `ok` response, panicking with the full payload otherwise.
pub fn expect_ok(resp: ServiceResponse) -> ScheduleReply {
    match resp {
        ServiceResponse::Ok(reply) => *reply,
        other => panic!("expected ok response, got {other:?}"),
    }
}

/// Asserts the response is a typed error with `code`.
pub fn expect_err(resp: ServiceResponse, code: ErrorCode) {
    match resp {
        ServiceResponse::Err { error, .. } => {
            assert_eq!(error.code, code, "wrong error code: {}", error.message)
        }
        other => panic!("expected {code:?} error, got {other:?}"),
    }
}

/// Fetches a stats snapshot over the wire (also exercises the `stats` op).
pub fn fetch_stats(client: &mut ClientConn, id: u64) -> ServiceStats {
    match roundtrip(client, &format!("{{\"op\":\"stats\",\"id\":{id}}}")) {
        ServiceResponse::Stats { id: got, stats } => {
            assert_eq!(got, id);
            stats
        }
        other => panic!("expected stats response, got {other:?}"),
    }
}

/// Pings the server and asserts the pong echo — the liveness probe the
/// protocol corpus runs after every hostile line.
pub fn assert_alive(client: &mut ClientConn, id: u64) {
    match roundtrip(client, &format!("{{\"op\":\"ping\",\"id\":{id}}}")) {
        ServiceResponse::Pong { id: got } => assert_eq!(got, id),
        other => panic!("expected pong, got {other:?}"),
    }
}
