//! Cancellation on client disconnect: dropping a client mid-request must
//! fire the worker's cancel token (the in-flight search stops well before
//! its requested budget), the skipped/undeliverable work must be counted
//! as cancelled, and the worker's rewound workspace must answer the next
//! request byte-identically to a fresh server.

mod common;

use std::time::{Duration, Instant};

use common::{expect_ok, gen_request, quiet_config, roundtrip, start};
use prfpga_model::service::AlgoChoice;
use prfpga_sim::validate_schedule_sweep;

/// The victim's search budget: without cancellation the single worker
/// would be pinned for this long and the probe below could not answer
/// quickly. The probe's latency bound is the proof the token fired.
const VICTIM_BUDGET_MS: u64 = 60_000;
const PROBE_BOUND: Duration = Duration::from_secs(20);

#[test]
fn client_disconnect_cancels_in_flight_work_and_worker_stays_clean() {
    let (connector, handle) = start(quiet_config(1));

    // The victim pipelines two requests: a PA-R run with a 60 s budget
    // (in flight when the client vanishes) and a second request that will
    // still be queued — covering both cancellation paths: the fired
    // token on the running job and the liveness skip on the queued one.
    let mut victim = connector.connect().expect("victim connect");
    victim
        .send_line(&gen_request(
            1,
            AlgoChoice::Par,
            24,
            3,
            None,
            Some(VICTIM_BUDGET_MS),
        ))
        .unwrap();
    victim
        .send_line(&gen_request(2, AlgoChoice::Pa, 24, 3, None, None))
        .unwrap();

    // Wait until the worker has actually popped the first job (admitted
    // twice, at most one still queued), then give it a beat to be deep in
    // the search before the disconnect.
    let t0 = Instant::now();
    loop {
        let stats = handle.stats();
        if stats.admitted == 2 && stats.queue_depth <= 1 {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "jobs never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(50));
    drop(victim);

    // The probe can only be answered once the worker is free again: its
    // latency is bounded far below the victim's budget only if the
    // disconnect actually cancelled the running search.
    let mut probe = connector.connect().expect("probe connect");
    let probe_line = gen_request(3, AlgoChoice::Pa, 18, 7, None, None);
    let sent = Instant::now();
    let reply = expect_ok(roundtrip(&mut probe, &probe_line));
    let latency = sent.elapsed();
    assert!(
        latency < PROBE_BOUND,
        "probe took {latency:?}; the worker was still burning the victim's budget"
    );
    assert_eq!(reply.id, 3);
    let inst = prfpga_gen::service_instance(18, 7, None, 2).unwrap();
    validate_schedule_sweep(&inst, &reply.schedule).expect("probe schedule sweeps clean");

    // Both victim jobs were counted cancelled; only the probe completed.
    // The probe's response is written before its completion is recorded,
    // so poll until both counters have landed.
    let t1 = Instant::now();
    let stats = loop {
        let stats = handle.stats();
        if stats.cancelled >= 2 && stats.completed >= 1 {
            break stats;
        }
        assert!(
            t1.elapsed() < Duration::from_secs(5),
            "counters stuck at cancelled {} completed {} (expected 2 / 1)",
            stats.cancelled,
            stats.completed
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!(
        stats.cancelled, 2,
        "one in-flight + one queued cancellation"
    );
    assert_eq!(stats.completed, 1, "only the probe completed");
    assert_eq!(stats.admitted, 3);
    drop(probe);
    handle.stop();

    // The worker's workspace was rewound, not poisoned: a fresh server
    // answers the identical probe byte-identically.
    let (connector, fresh) = start(quiet_config(1));
    let mut client = connector.connect().expect("fresh connect");
    let fresh_reply = expect_ok(roundtrip(&mut client, &probe_line));
    assert_eq!(
        serde_json::to_string(&fresh_reply.schedule).unwrap(),
        serde_json::to_string(&reply.schedule).unwrap(),
        "post-cancellation answer differs from a fresh-process run"
    );
    drop(client);
    fresh.stop();
}
