//! Protocol robustness corpus: every malformed, hostile, or oversized
//! request line yields a typed error response — never a panic, never a
//! hung or wedged connection. After each hostile line the same connection
//! must still answer a ping, which is the no-hang proof.

mod common;

use std::io::Write;

use common::{
    assert_alive, expect_err, expect_ok, fetch_stats, gen_request, quiet_config, recv,
    request_line, roundtrip, start,
};
use prfpga_model::service::{
    AlgoChoice, ErrorCode, InstanceSpec, ScheduleRequest, ServiceResponse,
};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Every entry: a hostile request line and the error code it must earn.
fn malformed_corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("not json at all", "free text"),
        ("{\"op\":\"schedule\",\"id\":1", "truncated JSON"),
        ("[1,2,3]", "wrong top-level type"),
        ("{\"op\":\"launch\",\"id\":1}", "unknown op"),
        ("{\"op\":\"ping\",\"id\":1,\"extra\":true}", "unknown field"),
        ("{\"op\":\"ping\",\"id\":\"seven\"}", "wrong id type"),
        ("{\"op\":\"ping\"}", "missing id"),
        ("{\"op\":\"stats\",\"id\":-3}", "negative id"),
        (
            "{\"op\":\"schedule\",\"id\":2,\"algo\":\"pa\",\
             \"instance\":{\"gen\":{\"tasks\":10,\"seed\":1}},\"deadline_ms\":0}",
            "zero deadline",
        ),
        (
            "{\"op\":\"schedule\",\"id\":2,\"algo\":\"pa\",\
             \"instance\":{\"gen\":{\"tasks\":10,\"seed\":1}},\"deadline_ms\":-50}",
            "negative deadline",
        ),
        (
            "{\"op\":\"schedule\",\"id\":2,\"algo\":\"par\",\
             \"instance\":{\"gen\":{\"tasks\":10,\"seed\":1}},\"budget_ms\":0}",
            "zero budget",
        ),
        (
            "{\"op\":\"schedule\",\"id\":3,\"algo\":\"magic\",\
             \"instance\":{\"gen\":{\"tasks\":10,\"seed\":1}}}",
            "unknown algorithm",
        ),
        (
            "{\"op\":\"schedule\",\"id\":3,\"algo\":\"is-0\",\
             \"instance\":{\"gen\":{\"tasks\":10,\"seed\":1}}}",
            "is-k with k = 0",
        ),
        (
            "{\"op\":\"schedule\",\"id\":4,\"algo\":\"pa\",\
             \"instance\":{\"gen\":{\"tasks\":0,\"seed\":1}}}",
            "zero tasks",
        ),
        (
            "{\"op\":\"schedule\",\"id\":4,\"algo\":\"pa\",\
             \"instance\":{\"gen\":{\"tasks\":200000,\"seed\":1}}}",
            "tasks beyond the generator cap",
        ),
        (
            "{\"op\":\"schedule\",\"id\":4,\"algo\":\"pa\",\
             \"instance\":{\"gen\":{\"tasks\":10,\"seed\":1,\"cores\":0}}}",
            "zero cores",
        ),
        (
            "{\"op\":\"schedule\",\"id\":5,\"algo\":\"pa\",\"instance\":{}}",
            "empty instance spec",
        ),
        (
            "{\"op\":\"schedule\",\"id\":5,\"algo\":\"pa\",\
             \"instance\":{\"gen\":{\"tasks\":10,\"seed\":1},\"inline\":{}}}",
            "both inline and gen",
        ),
        (
            "{\"op\":\"schedule\",\"id\":6,\"algo\":\"pa\",\
             \"instance\":{\"gen\":{\"tasks\":10,\"seed\":1}},\
             \"events\":[{\"Cancel\":{\"task\":0}}]}",
            "events on a non-repair algorithm",
        ),
        (
            "{\"op\":\"repair\",\"id\":6,\"algo\":\"pa\",\
             \"instance\":{\"gen\":{\"tasks\":10,\"seed\":1}}}",
            "repair op with a non-repair algorithm",
        ),
        (
            "{\"op\":\"schedule\",\"id\":7,\"algo\":\"pa\",\"instance\":7}",
            "instance of the wrong type",
        ),
    ]
}

#[test]
fn malformed_corpus_yields_typed_errors_and_connection_survives() {
    let (connector, handle) = start(quiet_config(1));
    let mut client = connector.connect().expect("connect");

    let corpus = malformed_corpus();
    let cases = corpus.len() as u64;
    for (i, (line, what)) in corpus.into_iter().enumerate() {
        let resp = roundtrip(&mut client, line);
        match resp {
            ServiceResponse::Err { error, .. } => assert_eq!(
                error.code,
                ErrorCode::Malformed,
                "case {i} ({what}): wrong code, message {:?}",
                error.message
            ),
            other => panic!("case {i} ({what}): expected malformed error, got {other:?}"),
        }
        // The connection must survive every hostile line.
        assert_alive(&mut client, 1000 + i as u64);
    }

    let stats = handle.stop();
    assert_eq!(stats.malformed, cases, "every corpus line counted");
    assert_eq!(stats.admitted, 0, "nothing hostile reached the queue");
}

#[test]
fn invalid_utf8_line_is_a_typed_error() {
    let (connector, handle) = start(quiet_config(1));
    let mut client = connector.connect().expect("connect");

    client.writer.write_all(&[0xFF, 0xFE, 0x80, b'\n']).unwrap();
    client.writer.flush().unwrap();
    expect_err(recv(&mut client), ErrorCode::Malformed);
    assert_alive(&mut client, 1);

    drop(client);
    assert!(handle.stop().malformed >= 1);
}

#[test]
fn oversized_payload_is_rejected_and_framing_resyncs() {
    let config = prfpga_server::ServerConfig {
        max_frame_bytes: 1024,
        ..quiet_config(1)
    };
    let (connector, handle) = start(config);
    let mut client = connector.connect().expect("connect");

    // One giant line: rejected exactly once, remainder discarded.
    let huge = format!(
        "{{\"op\":\"ping\",\"id\":1,\"pad\":\"{}\"}}",
        "x".repeat(8192)
    );
    expect_err(roundtrip(&mut client, &huge), ErrorCode::Oversized);
    assert_alive(&mut client, 2);

    // A request just under the bound still parses.
    assert_alive(&mut client, 3);
    drop(client);
    assert_eq!(handle.stop().malformed, 1);
}

#[test]
fn inline_instance_that_fails_validation_is_a_typed_rejection() {
    let (connector, handle) = start(quiet_config(1));
    let mut client = connector.connect().expect("connect");

    // Parses fine, fails `ProblemInstance::validate`: no processors.
    let mut inst = prfpga_gen::service_instance(8, 1, None, 2).expect("generate");
    inst.architecture.num_processors = 0;
    let line = request_line(&ScheduleRequest {
        id: 9,
        algo: AlgoChoice::Pa,
        instance: InstanceSpec::Inline(Box::new(inst)),
        deadline_ms: None,
        budget_ms: None,
        events: Vec::new(),
    });
    expect_err(roundtrip(&mut client, &line), ErrorCode::InvalidInstance);
    assert_alive(&mut client, 10);

    drop(client);
    handle.stop();
}

#[test]
fn unknown_platform_is_a_typed_rejection() {
    let (connector, handle) = start(quiet_config(1));
    let mut client = connector.connect().expect("connect");

    let line = "{\"op\":\"schedule\",\"id\":11,\"algo\":\"pa\",\
                \"instance\":{\"gen\":{\"tasks\":10,\"seed\":1,\"platform\":\"nonesuch\"}}}";
    expect_err(roundtrip(&mut client, line), ErrorCode::InvalidInstance);
    assert_alive(&mut client, 12);

    drop(client);
    handle.stop();
}

/// A valid request sandwiched between hostile ones still schedules: the
/// error path leaves no state behind on the connection or the worker.
#[test]
fn valid_request_between_hostile_lines_still_schedules() {
    let (connector, handle) = start(quiet_config(1));
    let mut client = connector.connect().expect("connect");

    expect_err(roundtrip(&mut client, "garbage"), ErrorCode::Malformed);
    let reply = expect_ok(roundtrip(
        &mut client,
        &gen_request(21, AlgoChoice::Pa, 16, 5, None, None),
    ));
    assert_eq!(reply.id, 21);
    let inst = prfpga_gen::service_instance(16, 5, None, 2).unwrap();
    prfpga_sim::validate_schedule_sweep(&inst, &reply.schedule).expect("valid schedule");
    expect_err(roundtrip(&mut client, "{\"op\":"), ErrorCode::Malformed);

    let stats = fetch_stats(&mut client, 22);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.malformed, 2);

    drop(client);
    handle.stop();
}

/// Seeded random-bytes fuzz at the connection level: hundreds of garbage
/// lines, each answered (when non-blank) with a typed error; a trailing
/// ping proves the connection never wedges. Complements the chunking fuzz
/// in the frame decoder's unit tests.
#[test]
fn fuzzed_garbage_lines_never_wedge_the_connection() {
    let (connector, handle) = start(quiet_config(1));
    let mut client = connector.connect().expect("connect");
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E2F_F002);

    for round in 0..300u64 {
        let len = rng.random_range(1..200usize);
        // Lead with '{' so the line is never blank and never valid JSON
        // by accident; the tail mixes printable ASCII and raw bytes.
        let mut line = vec![b'{'];
        for _ in 0..len {
            let byte = match rng.random_range(0..4u32) {
                0 => rng.random_range(0..=255u32) as u8,
                _ => rng.random_range(0x20..0x7Fu32) as u8,
            };
            if byte != b'\n' && byte != b'\r' {
                line.push(byte);
            }
        }
        line.push(b'\n');
        client.writer.write_all(&line).unwrap();
        client.writer.flush().unwrap();

        match recv(&mut client) {
            ServiceResponse::Err { .. } => {}
            other => panic!("round {round}: garbage earned {other:?}"),
        }
    }
    assert_alive(&mut client, 99);

    drop(client);
    let stats = handle.stop();
    assert_eq!(stats.malformed, 300, "every garbage line counted");
}
